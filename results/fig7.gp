set title "Fig. 7: total forwarded traffic load vs. rho (iota=1.1, 1000 UEs)"
set xlabel "rho"
set ylabel "forwarded traffic (Mbps)"
set key left top
set grid
set style data linespoints
plot "fig7.dat" using 1:2:3 with yerrorlines title "DMRA"
