set title "Fig. 6: total profit of SPs vs. rho (iota=2, 1000 UEs)"
set xlabel "rho"
set ylabel "total profit"
set key left top
set grid
set style data linespoints
plot "fig6.dat" using 1:2:3 with yerrorlines title "DMRA"
