set title "Fig. 4: total profit of SPs vs. number of UEs (iota=1.1, regular BS placement)"
set xlabel "UEs"
set ylabel "total profit"
set key left top
set grid
set style data linespoints
plot "fig4.dat" using 1:2:3 with yerrorlines title "DMRA", \
     "fig4.dat" using 1:4:5 with yerrorlines title "DCSP", \
     "fig4.dat" using 1:6:7 with yerrorlines title "NonCo"
