set title "Fig. 2: total profit of SPs vs. number of UEs (iota=2.0, regular BS placement)"
set xlabel "UEs"
set ylabel "total profit"
set key left top
set grid
set style data linespoints
plot "fig2.dat" using 1:2:3 with yerrorlines title "DMRA", \
     "fig2.dat" using 1:4:5 with yerrorlines title "DCSP", \
     "fig2.dat" using 1:6:7 with yerrorlines title "NonCo"
