file(REMOVE_RECURSE
  "CMakeFiles/deployment_map.dir/deployment_map.cpp.o"
  "CMakeFiles/deployment_map.dir/deployment_map.cpp.o.d"
  "deployment_map"
  "deployment_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
