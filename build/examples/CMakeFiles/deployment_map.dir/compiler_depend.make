# Empty compiler generated dependencies file for deployment_map.
# This may be replaced when dependencies are built.
