# Empty compiler generated dependencies file for multi_sp_marketplace.
# This may be replaced when dependencies are built.
