file(REMOVE_RECURSE
  "CMakeFiles/multi_sp_marketplace.dir/multi_sp_marketplace.cpp.o"
  "CMakeFiles/multi_sp_marketplace.dir/multi_sp_marketplace.cpp.o.d"
  "multi_sp_marketplace"
  "multi_sp_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sp_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
