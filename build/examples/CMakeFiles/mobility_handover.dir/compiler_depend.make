# Empty compiler generated dependencies file for mobility_handover.
# This may be replaced when dependencies are built.
