file(REMOVE_RECURSE
  "CMakeFiles/decentralized_runtime.dir/decentralized_runtime.cpp.o"
  "CMakeFiles/decentralized_runtime.dir/decentralized_runtime.cpp.o.d"
  "decentralized_runtime"
  "decentralized_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentralized_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
