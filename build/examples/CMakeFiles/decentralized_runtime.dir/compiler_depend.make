# Empty compiler generated dependencies file for decentralized_runtime.
# This may be replaced when dependencies are built.
