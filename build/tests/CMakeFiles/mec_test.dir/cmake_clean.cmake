file(REMOVE_RECURSE
  "CMakeFiles/mec_test.dir/mec/allocation_test.cpp.o"
  "CMakeFiles/mec_test.dir/mec/allocation_test.cpp.o.d"
  "CMakeFiles/mec_test.dir/mec/pricing_test.cpp.o"
  "CMakeFiles/mec_test.dir/mec/pricing_test.cpp.o.d"
  "CMakeFiles/mec_test.dir/mec/resources_test.cpp.o"
  "CMakeFiles/mec_test.dir/mec/resources_test.cpp.o.d"
  "CMakeFiles/mec_test.dir/mec/scenario_io_test.cpp.o"
  "CMakeFiles/mec_test.dir/mec/scenario_io_test.cpp.o.d"
  "CMakeFiles/mec_test.dir/mec/scenario_test.cpp.o"
  "CMakeFiles/mec_test.dir/mec/scenario_test.cpp.o.d"
  "mec_test"
  "mec_test.pdb"
  "mec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
