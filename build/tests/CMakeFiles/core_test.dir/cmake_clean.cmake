file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/decentralized_test.cpp.o"
  "CMakeFiles/core_test.dir/core/decentralized_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/incremental_test.cpp.o"
  "CMakeFiles/core_test.dir/core/incremental_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/lossy_network_test.cpp.o"
  "CMakeFiles/core_test.dir/core/lossy_network_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/partial_solver_test.cpp.o"
  "CMakeFiles/core_test.dir/core/partial_solver_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/preference_test.cpp.o"
  "CMakeFiles/core_test.dir/core/preference_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/solver_test.cpp.o"
  "CMakeFiles/core_test.dir/core/solver_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
