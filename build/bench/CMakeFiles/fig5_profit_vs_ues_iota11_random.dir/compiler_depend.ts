# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_profit_vs_ues_iota11_random.
