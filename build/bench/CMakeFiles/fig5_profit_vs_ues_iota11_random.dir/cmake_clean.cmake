file(REMOVE_RECURSE
  "CMakeFiles/fig5_profit_vs_ues_iota11_random.dir/fig_profit_vs_ues.cpp.o"
  "CMakeFiles/fig5_profit_vs_ues_iota11_random.dir/fig_profit_vs_ues.cpp.o.d"
  "fig5_profit_vs_ues_iota11_random"
  "fig5_profit_vs_ues_iota11_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_profit_vs_ues_iota11_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
