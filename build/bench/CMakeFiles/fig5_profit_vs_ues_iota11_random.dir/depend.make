# Empty dependencies file for fig5_profit_vs_ues_iota11_random.
# This may be replaced when dependencies are built.
