file(REMOVE_RECURSE
  "CMakeFiles/abl9_hotspots.dir/abl_hotspots.cpp.o"
  "CMakeFiles/abl9_hotspots.dir/abl_hotspots.cpp.o.d"
  "abl9_hotspots"
  "abl9_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl9_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
