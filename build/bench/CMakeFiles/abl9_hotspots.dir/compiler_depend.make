# Empty compiler generated dependencies file for abl9_hotspots.
# This may be replaced when dependencies are built.
