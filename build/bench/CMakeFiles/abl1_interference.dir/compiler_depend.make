# Empty compiler generated dependencies file for abl1_interference.
# This may be replaced when dependencies are built.
