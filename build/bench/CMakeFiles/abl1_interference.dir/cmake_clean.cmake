file(REMOVE_RECURSE
  "CMakeFiles/abl1_interference.dir/abl_interference.cpp.o"
  "CMakeFiles/abl1_interference.dir/abl_interference.cpp.o.d"
  "abl1_interference"
  "abl1_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
