file(REMOVE_RECURSE
  "CMakeFiles/fig2_profit_vs_ues.dir/fig_profit_vs_ues.cpp.o"
  "CMakeFiles/fig2_profit_vs_ues.dir/fig_profit_vs_ues.cpp.o.d"
  "fig2_profit_vs_ues"
  "fig2_profit_vs_ues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_profit_vs_ues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
