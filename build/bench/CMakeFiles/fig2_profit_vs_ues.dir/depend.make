# Empty dependencies file for fig2_profit_vs_ues.
# This may be replaced when dependencies are built.
