# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_forwarded_load_vs_rho.
