# Empty compiler generated dependencies file for fig7_forwarded_load_vs_rho.
# This may be replaced when dependencies are built.
