file(REMOVE_RECURSE
  "CMakeFiles/fig4_profit_vs_ues_iota11.dir/fig_profit_vs_ues.cpp.o"
  "CMakeFiles/fig4_profit_vs_ues_iota11.dir/fig_profit_vs_ues.cpp.o.d"
  "fig4_profit_vs_ues_iota11"
  "fig4_profit_vs_ues_iota11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_profit_vs_ues_iota11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
