# Empty compiler generated dependencies file for fig4_profit_vs_ues_iota11.
# This may be replaced when dependencies are built.
