# Empty compiler generated dependencies file for abl4_nonco_semantics.
# This may be replaced when dependencies are built.
