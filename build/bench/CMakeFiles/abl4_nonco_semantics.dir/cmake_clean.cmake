file(REMOVE_RECURSE
  "CMakeFiles/abl4_nonco_semantics.dir/abl_nonco_semantics.cpp.o"
  "CMakeFiles/abl4_nonco_semantics.dir/abl_nonco_semantics.cpp.o.d"
  "abl4_nonco_semantics"
  "abl4_nonco_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl4_nonco_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
