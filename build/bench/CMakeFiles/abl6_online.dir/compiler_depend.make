# Empty compiler generated dependencies file for abl6_online.
# This may be replaced when dependencies are built.
