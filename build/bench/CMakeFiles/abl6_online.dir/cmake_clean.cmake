file(REMOVE_RECURSE
  "CMakeFiles/abl6_online.dir/abl_online.cpp.o"
  "CMakeFiles/abl6_online.dir/abl_online.cpp.o.d"
  "abl6_online"
  "abl6_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl6_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
