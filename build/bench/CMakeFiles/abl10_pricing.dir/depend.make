# Empty dependencies file for abl10_pricing.
# This may be replaced when dependencies are built.
