file(REMOVE_RECURSE
  "CMakeFiles/abl10_pricing.dir/abl_pricing.cpp.o"
  "CMakeFiles/abl10_pricing.dir/abl_pricing.cpp.o.d"
  "abl10_pricing"
  "abl10_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl10_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
