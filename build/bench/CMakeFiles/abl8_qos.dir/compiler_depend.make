# Empty compiler generated dependencies file for abl8_qos.
# This may be replaced when dependencies are built.
