file(REMOVE_RECURSE
  "CMakeFiles/abl8_qos.dir/abl_qos.cpp.o"
  "CMakeFiles/abl8_qos.dir/abl_qos.cpp.o.d"
  "abl8_qos"
  "abl8_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl8_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
