# Empty dependencies file for abl7_mobility.
# This may be replaced when dependencies are built.
