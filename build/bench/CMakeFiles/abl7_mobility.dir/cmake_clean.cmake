file(REMOVE_RECURSE
  "CMakeFiles/abl7_mobility.dir/abl_mobility.cpp.o"
  "CMakeFiles/abl7_mobility.dir/abl_mobility.cpp.o.d"
  "abl7_mobility"
  "abl7_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl7_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
