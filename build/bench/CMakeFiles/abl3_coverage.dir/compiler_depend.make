# Empty compiler generated dependencies file for abl3_coverage.
# This may be replaced when dependencies are built.
