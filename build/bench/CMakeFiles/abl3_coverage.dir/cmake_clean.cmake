file(REMOVE_RECURSE
  "CMakeFiles/abl3_coverage.dir/abl_coverage.cpp.o"
  "CMakeFiles/abl3_coverage.dir/abl_coverage.cpp.o.d"
  "abl3_coverage"
  "abl3_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
