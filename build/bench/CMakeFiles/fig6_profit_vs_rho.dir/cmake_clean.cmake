file(REMOVE_RECURSE
  "CMakeFiles/fig6_profit_vs_rho.dir/fig_rho_sweep.cpp.o"
  "CMakeFiles/fig6_profit_vs_rho.dir/fig_rho_sweep.cpp.o.d"
  "fig6_profit_vs_rho"
  "fig6_profit_vs_rho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_profit_vs_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
