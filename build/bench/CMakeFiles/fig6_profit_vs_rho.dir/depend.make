# Empty dependencies file for fig6_profit_vs_rho.
# This may be replaced when dependencies are built.
