# Empty compiler generated dependencies file for abl5_channel_models.
# This may be replaced when dependencies are built.
