file(REMOVE_RECURSE
  "CMakeFiles/abl5_channel_models.dir/abl_channel_models.cpp.o"
  "CMakeFiles/abl5_channel_models.dir/abl_channel_models.cpp.o.d"
  "abl5_channel_models"
  "abl5_channel_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl5_channel_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
