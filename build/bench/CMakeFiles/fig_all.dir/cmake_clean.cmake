file(REMOVE_RECURSE
  "CMakeFiles/fig_all.dir/fig_all.cpp.o"
  "CMakeFiles/fig_all.dir/fig_all.cpp.o.d"
  "fig_all"
  "fig_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
