
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_scaling.cpp" "bench/CMakeFiles/micro_scaling.dir/micro_scaling.cpp.o" "gcc" "bench/CMakeFiles/micro_scaling.dir/micro_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matching/CMakeFiles/dmra_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dmra_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/dmra_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dmra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dmra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/dmra_market.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dmra_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dmra_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/dmra_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/dmra_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/dmra_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dmra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
