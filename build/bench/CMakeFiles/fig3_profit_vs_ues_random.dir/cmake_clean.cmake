file(REMOVE_RECURSE
  "CMakeFiles/fig3_profit_vs_ues_random.dir/fig_profit_vs_ues.cpp.o"
  "CMakeFiles/fig3_profit_vs_ues_random.dir/fig_profit_vs_ues.cpp.o.d"
  "fig3_profit_vs_ues_random"
  "fig3_profit_vs_ues_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_profit_vs_ues_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
