# Empty compiler generated dependencies file for fig3_profit_vs_ues_random.
# This may be replaced when dependencies are built.
