file(REMOVE_RECURSE
  "CMakeFiles/abl2_tiebreaks.dir/abl_tiebreaks.cpp.o"
  "CMakeFiles/abl2_tiebreaks.dir/abl_tiebreaks.cpp.o.d"
  "abl2_tiebreaks"
  "abl2_tiebreaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_tiebreaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
