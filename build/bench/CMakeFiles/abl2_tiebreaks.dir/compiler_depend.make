# Empty compiler generated dependencies file for abl2_tiebreaks.
# This may be replaced when dependencies are built.
