file(REMOVE_RECURSE
  "CMakeFiles/dmra_matching.dir/deferred_acceptance.cpp.o"
  "CMakeFiles/dmra_matching.dir/deferred_acceptance.cpp.o.d"
  "CMakeFiles/dmra_matching.dir/stability.cpp.o"
  "CMakeFiles/dmra_matching.dir/stability.cpp.o.d"
  "libdmra_matching.a"
  "libdmra_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
