file(REMOVE_RECURSE
  "libdmra_matching.a"
)
