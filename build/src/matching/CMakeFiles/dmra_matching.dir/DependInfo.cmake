
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/deferred_acceptance.cpp" "src/matching/CMakeFiles/dmra_matching.dir/deferred_acceptance.cpp.o" "gcc" "src/matching/CMakeFiles/dmra_matching.dir/deferred_acceptance.cpp.o.d"
  "/root/repo/src/matching/stability.cpp" "src/matching/CMakeFiles/dmra_matching.dir/stability.cpp.o" "gcc" "src/matching/CMakeFiles/dmra_matching.dir/stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dmra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
