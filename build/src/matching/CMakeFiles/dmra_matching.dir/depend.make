# Empty dependencies file for dmra_matching.
# This may be replaced when dependencies are built.
