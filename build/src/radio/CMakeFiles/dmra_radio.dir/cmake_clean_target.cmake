file(REMOVE_RECURSE
  "libdmra_radio.a"
)
