file(REMOVE_RECURSE
  "CMakeFiles/dmra_radio.dir/channel.cpp.o"
  "CMakeFiles/dmra_radio.dir/channel.cpp.o.d"
  "CMakeFiles/dmra_radio.dir/ofdma.cpp.o"
  "CMakeFiles/dmra_radio.dir/ofdma.cpp.o.d"
  "CMakeFiles/dmra_radio.dir/pathloss.cpp.o"
  "CMakeFiles/dmra_radio.dir/pathloss.cpp.o.d"
  "CMakeFiles/dmra_radio.dir/units.cpp.o"
  "CMakeFiles/dmra_radio.dir/units.cpp.o.d"
  "libdmra_radio.a"
  "libdmra_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
