# Empty compiler generated dependencies file for dmra_radio.
# This may be replaced when dependencies are built.
