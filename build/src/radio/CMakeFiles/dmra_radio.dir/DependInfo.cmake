
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/channel.cpp" "src/radio/CMakeFiles/dmra_radio.dir/channel.cpp.o" "gcc" "src/radio/CMakeFiles/dmra_radio.dir/channel.cpp.o.d"
  "/root/repo/src/radio/ofdma.cpp" "src/radio/CMakeFiles/dmra_radio.dir/ofdma.cpp.o" "gcc" "src/radio/CMakeFiles/dmra_radio.dir/ofdma.cpp.o.d"
  "/root/repo/src/radio/pathloss.cpp" "src/radio/CMakeFiles/dmra_radio.dir/pathloss.cpp.o" "gcc" "src/radio/CMakeFiles/dmra_radio.dir/pathloss.cpp.o.d"
  "/root/repo/src/radio/units.cpp" "src/radio/CMakeFiles/dmra_radio.dir/units.cpp.o" "gcc" "src/radio/CMakeFiles/dmra_radio.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dmra_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/dmra_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
