# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geometry")
subdirs("radio")
subdirs("mec")
subdirs("topology")
subdirs("workload")
subdirs("matching")
subdirs("net")
subdirs("core")
subdirs("baselines")
subdirs("sim")
subdirs("mobility")
subdirs("market")
