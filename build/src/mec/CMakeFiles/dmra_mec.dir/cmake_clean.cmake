file(REMOVE_RECURSE
  "CMakeFiles/dmra_mec.dir/allocation.cpp.o"
  "CMakeFiles/dmra_mec.dir/allocation.cpp.o.d"
  "CMakeFiles/dmra_mec.dir/pricing.cpp.o"
  "CMakeFiles/dmra_mec.dir/pricing.cpp.o.d"
  "CMakeFiles/dmra_mec.dir/resources.cpp.o"
  "CMakeFiles/dmra_mec.dir/resources.cpp.o.d"
  "CMakeFiles/dmra_mec.dir/scenario.cpp.o"
  "CMakeFiles/dmra_mec.dir/scenario.cpp.o.d"
  "CMakeFiles/dmra_mec.dir/scenario_io.cpp.o"
  "CMakeFiles/dmra_mec.dir/scenario_io.cpp.o.d"
  "libdmra_mec.a"
  "libdmra_mec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_mec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
