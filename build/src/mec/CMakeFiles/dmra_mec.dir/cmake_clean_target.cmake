file(REMOVE_RECURSE
  "libdmra_mec.a"
)
