# Empty dependencies file for dmra_mec.
# This may be replaced when dependencies are built.
