
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mec/allocation.cpp" "src/mec/CMakeFiles/dmra_mec.dir/allocation.cpp.o" "gcc" "src/mec/CMakeFiles/dmra_mec.dir/allocation.cpp.o.d"
  "/root/repo/src/mec/pricing.cpp" "src/mec/CMakeFiles/dmra_mec.dir/pricing.cpp.o" "gcc" "src/mec/CMakeFiles/dmra_mec.dir/pricing.cpp.o.d"
  "/root/repo/src/mec/resources.cpp" "src/mec/CMakeFiles/dmra_mec.dir/resources.cpp.o" "gcc" "src/mec/CMakeFiles/dmra_mec.dir/resources.cpp.o.d"
  "/root/repo/src/mec/scenario.cpp" "src/mec/CMakeFiles/dmra_mec.dir/scenario.cpp.o" "gcc" "src/mec/CMakeFiles/dmra_mec.dir/scenario.cpp.o.d"
  "/root/repo/src/mec/scenario_io.cpp" "src/mec/CMakeFiles/dmra_mec.dir/scenario_io.cpp.o" "gcc" "src/mec/CMakeFiles/dmra_mec.dir/scenario_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dmra_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/dmra_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/dmra_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
