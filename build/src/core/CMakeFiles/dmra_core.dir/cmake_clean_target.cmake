file(REMOVE_RECURSE
  "libdmra_core.a"
)
