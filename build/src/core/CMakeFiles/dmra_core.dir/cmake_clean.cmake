file(REMOVE_RECURSE
  "CMakeFiles/dmra_core.dir/decentralized.cpp.o"
  "CMakeFiles/dmra_core.dir/decentralized.cpp.o.d"
  "CMakeFiles/dmra_core.dir/incremental.cpp.o"
  "CMakeFiles/dmra_core.dir/incremental.cpp.o.d"
  "CMakeFiles/dmra_core.dir/preference.cpp.o"
  "CMakeFiles/dmra_core.dir/preference.cpp.o.d"
  "CMakeFiles/dmra_core.dir/solver.cpp.o"
  "CMakeFiles/dmra_core.dir/solver.cpp.o.d"
  "libdmra_core.a"
  "libdmra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
