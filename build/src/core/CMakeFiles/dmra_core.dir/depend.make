# Empty dependencies file for dmra_core.
# This may be replaced when dependencies are built.
