file(REMOVE_RECURSE
  "libdmra_topology.a"
)
