file(REMOVE_RECURSE
  "CMakeFiles/dmra_topology.dir/placement.cpp.o"
  "CMakeFiles/dmra_topology.dir/placement.cpp.o.d"
  "libdmra_topology.a"
  "libdmra_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
