# Empty dependencies file for dmra_topology.
# This may be replaced when dependencies are built.
