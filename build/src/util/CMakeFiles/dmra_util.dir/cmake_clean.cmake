file(REMOVE_RECURSE
  "CMakeFiles/dmra_util.dir/cli.cpp.o"
  "CMakeFiles/dmra_util.dir/cli.cpp.o.d"
  "CMakeFiles/dmra_util.dir/json.cpp.o"
  "CMakeFiles/dmra_util.dir/json.cpp.o.d"
  "CMakeFiles/dmra_util.dir/log.cpp.o"
  "CMakeFiles/dmra_util.dir/log.cpp.o.d"
  "CMakeFiles/dmra_util.dir/rng.cpp.o"
  "CMakeFiles/dmra_util.dir/rng.cpp.o.d"
  "CMakeFiles/dmra_util.dir/stats.cpp.o"
  "CMakeFiles/dmra_util.dir/stats.cpp.o.d"
  "CMakeFiles/dmra_util.dir/table.cpp.o"
  "CMakeFiles/dmra_util.dir/table.cpp.o.d"
  "libdmra_util.a"
  "libdmra_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
