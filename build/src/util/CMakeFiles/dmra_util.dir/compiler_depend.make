# Empty compiler generated dependencies file for dmra_util.
# This may be replaced when dependencies are built.
