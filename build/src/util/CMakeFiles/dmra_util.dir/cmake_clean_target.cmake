file(REMOVE_RECURSE
  "libdmra_util.a"
)
