file(REMOVE_RECURSE
  "libdmra_workload.a"
)
