file(REMOVE_RECURSE
  "CMakeFiles/dmra_workload.dir/generator.cpp.o"
  "CMakeFiles/dmra_workload.dir/generator.cpp.o.d"
  "libdmra_workload.a"
  "libdmra_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
