# Empty dependencies file for dmra_workload.
# This may be replaced when dependencies are built.
