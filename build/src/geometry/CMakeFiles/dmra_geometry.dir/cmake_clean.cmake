file(REMOVE_RECURSE
  "CMakeFiles/dmra_geometry.dir/geometry.cpp.o"
  "CMakeFiles/dmra_geometry.dir/geometry.cpp.o.d"
  "libdmra_geometry.a"
  "libdmra_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
