# Empty dependencies file for dmra_geometry.
# This may be replaced when dependencies are built.
