file(REMOVE_RECURSE
  "libdmra_geometry.a"
)
