
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dcsp.cpp" "src/baselines/CMakeFiles/dmra_baselines.dir/dcsp.cpp.o" "gcc" "src/baselines/CMakeFiles/dmra_baselines.dir/dcsp.cpp.o.d"
  "/root/repo/src/baselines/exact.cpp" "src/baselines/CMakeFiles/dmra_baselines.dir/exact.cpp.o" "gcc" "src/baselines/CMakeFiles/dmra_baselines.dir/exact.cpp.o.d"
  "/root/repo/src/baselines/greedy.cpp" "src/baselines/CMakeFiles/dmra_baselines.dir/greedy.cpp.o" "gcc" "src/baselines/CMakeFiles/dmra_baselines.dir/greedy.cpp.o.d"
  "/root/repo/src/baselines/nonco.cpp" "src/baselines/CMakeFiles/dmra_baselines.dir/nonco.cpp.o" "gcc" "src/baselines/CMakeFiles/dmra_baselines.dir/nonco.cpp.o.d"
  "/root/repo/src/baselines/random_alloc.cpp" "src/baselines/CMakeFiles/dmra_baselines.dir/random_alloc.cpp.o" "gcc" "src/baselines/CMakeFiles/dmra_baselines.dir/random_alloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dmra_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/dmra_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/dmra_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/dmra_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
