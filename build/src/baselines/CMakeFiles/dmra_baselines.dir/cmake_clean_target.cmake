file(REMOVE_RECURSE
  "libdmra_baselines.a"
)
