# Empty compiler generated dependencies file for dmra_baselines.
# This may be replaced when dependencies are built.
