file(REMOVE_RECURSE
  "CMakeFiles/dmra_baselines.dir/dcsp.cpp.o"
  "CMakeFiles/dmra_baselines.dir/dcsp.cpp.o.d"
  "CMakeFiles/dmra_baselines.dir/exact.cpp.o"
  "CMakeFiles/dmra_baselines.dir/exact.cpp.o.d"
  "CMakeFiles/dmra_baselines.dir/greedy.cpp.o"
  "CMakeFiles/dmra_baselines.dir/greedy.cpp.o.d"
  "CMakeFiles/dmra_baselines.dir/nonco.cpp.o"
  "CMakeFiles/dmra_baselines.dir/nonco.cpp.o.d"
  "CMakeFiles/dmra_baselines.dir/random_alloc.cpp.o"
  "CMakeFiles/dmra_baselines.dir/random_alloc.cpp.o.d"
  "libdmra_baselines.a"
  "libdmra_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
