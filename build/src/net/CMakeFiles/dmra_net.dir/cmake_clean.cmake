file(REMOVE_RECURSE
  "CMakeFiles/dmra_net.dir/stats.cpp.o"
  "CMakeFiles/dmra_net.dir/stats.cpp.o.d"
  "libdmra_net.a"
  "libdmra_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
