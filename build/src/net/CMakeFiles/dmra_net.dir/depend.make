# Empty dependencies file for dmra_net.
# This may be replaced when dependencies are built.
