file(REMOVE_RECURSE
  "libdmra_net.a"
)
