file(REMOVE_RECURSE
  "CMakeFiles/dmra_market.dir/adaptive_pricing.cpp.o"
  "CMakeFiles/dmra_market.dir/adaptive_pricing.cpp.o.d"
  "libdmra_market.a"
  "libdmra_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
