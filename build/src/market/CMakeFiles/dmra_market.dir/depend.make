# Empty dependencies file for dmra_market.
# This may be replaced when dependencies are built.
