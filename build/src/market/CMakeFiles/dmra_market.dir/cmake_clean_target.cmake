file(REMOVE_RECURSE
  "libdmra_market.a"
)
