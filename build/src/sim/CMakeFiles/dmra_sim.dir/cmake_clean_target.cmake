file(REMOVE_RECURSE
  "libdmra_sim.a"
)
