
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/dmra_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/dmra_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/feasibility.cpp" "src/sim/CMakeFiles/dmra_sim.dir/feasibility.cpp.o" "gcc" "src/sim/CMakeFiles/dmra_sim.dir/feasibility.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/dmra_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/dmra_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/online.cpp" "src/sim/CMakeFiles/dmra_sim.dir/online.cpp.o" "gcc" "src/sim/CMakeFiles/dmra_sim.dir/online.cpp.o.d"
  "/root/repo/src/sim/qos.cpp" "src/sim/CMakeFiles/dmra_sim.dir/qos.cpp.o" "gcc" "src/sim/CMakeFiles/dmra_sim.dir/qos.cpp.o.d"
  "/root/repo/src/sim/render.cpp" "src/sim/CMakeFiles/dmra_sim.dir/render.cpp.o" "gcc" "src/sim/CMakeFiles/dmra_sim.dir/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dmra_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/dmra_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dmra_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dmra_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/dmra_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/dmra_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
