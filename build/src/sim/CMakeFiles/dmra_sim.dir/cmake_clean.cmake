file(REMOVE_RECURSE
  "CMakeFiles/dmra_sim.dir/experiment.cpp.o"
  "CMakeFiles/dmra_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/dmra_sim.dir/feasibility.cpp.o"
  "CMakeFiles/dmra_sim.dir/feasibility.cpp.o.d"
  "CMakeFiles/dmra_sim.dir/metrics.cpp.o"
  "CMakeFiles/dmra_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/dmra_sim.dir/online.cpp.o"
  "CMakeFiles/dmra_sim.dir/online.cpp.o.d"
  "CMakeFiles/dmra_sim.dir/qos.cpp.o"
  "CMakeFiles/dmra_sim.dir/qos.cpp.o.d"
  "CMakeFiles/dmra_sim.dir/render.cpp.o"
  "CMakeFiles/dmra_sim.dir/render.cpp.o.d"
  "libdmra_sim.a"
  "libdmra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
