# Empty dependencies file for dmra_sim.
# This may be replaced when dependencies are built.
