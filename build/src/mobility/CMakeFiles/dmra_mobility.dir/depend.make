# Empty dependencies file for dmra_mobility.
# This may be replaced when dependencies are built.
