file(REMOVE_RECURSE
  "CMakeFiles/dmra_mobility.dir/handover.cpp.o"
  "CMakeFiles/dmra_mobility.dir/handover.cpp.o.d"
  "CMakeFiles/dmra_mobility.dir/models.cpp.o"
  "CMakeFiles/dmra_mobility.dir/models.cpp.o.d"
  "libdmra_mobility.a"
  "libdmra_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmra_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
