file(REMOVE_RECURSE
  "libdmra_mobility.a"
)
