# Empty compiler generated dependencies file for dmra_mobility.
# This may be replaced when dependencies are built.
