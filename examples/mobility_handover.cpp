// Mobile UEs: watch the association churn as the population moves, and
// compare mobility models side by side.
//
//   ./build/examples/mobility_handover [--ues 400] [--steps 10]

#include <iostream>

#include "dmra/dmra.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "400", "number of UEs");
  cli.add_flag("steps", "10", "re-allocation steps");
  cli.add_flag("dt", "2", "seconds per step");
  cli.add_flag("seed", "5", "simulation seed");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }

  const dmra::DmraAllocator algo;
  for (const auto kind : {dmra::MobilityKind::kStatic, dmra::MobilityKind::kRandomWaypoint,
                          dmra::MobilityKind::kGaussMarkov}) {
    dmra::HandoverConfig cfg;
    cfg.scenario.num_ues = static_cast<std::size_t>(cli.get_int("ues"));
    cfg.mobility = kind;
    cfg.steps = static_cast<std::size_t>(cli.get_int("steps"));
    cfg.step_duration_s = cli.get_double("dt");
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    cfg.waypoint.speed_min_mps = 5.0;
    cfg.waypoint.speed_max_mps = 15.0;
    cfg.gauss_markov.mean_speed_mps = 10.0;

    const dmra::HandoverResult r = dmra::run_handover_study(cfg, algo);
    std::cout << "--- mobility: " << dmra::mobility_kind_name(kind) << " ---\n"
              << r.to_table().to_aligned() << "mean profit " << dmra::fmt(r.mean_profit)
              << ", handover rate " << dmra::fmt(r.handover_rate, 3)
              << " per served UE per step\n\n";
  }
  std::cout << "reading: a static population locks in one association; moving UEs force\n"
               "re-allocation — DMRA keeps profit steady, and churn scales with how far\n"
               "UEs travel between re-runs.\n";
  return 0;
}
