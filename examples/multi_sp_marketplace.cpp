// Multi-SP marketplace economics: who earns what under DMRA, and how the
// cross-SP markup ι shifts traffic and money between operators.
//
//   ./build/examples/multi_sp_marketplace [--ues 900] [--seed 7]

#include <iostream>

#include "dmra/dmra.hpp"

namespace {

dmra::Scenario make_scenario(std::size_t ues, double iota, std::uint64_t seed) {
  dmra::ScenarioConfig cfg;
  cfg.num_ues = ues;
  cfg.pricing.iota = iota;
  return dmra::generate_scenario(cfg, seed);
}

}  // namespace

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "900", "number of UEs");
  cli.add_flag("seed", "7", "scenario seed");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto ues = static_cast<std::size_t>(cli.get_int("ues"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // --- Part 1: per-SP ledger at the paper's ι = 2 --------------------------
  const dmra::Scenario scenario = make_scenario(ues, 2.0, seed);
  const dmra::Allocation alloc = dmra::DmraAllocator().allocate(scenario);
  const dmra::ProfitBreakdown profit = dmra::compute_profit(scenario, alloc);

  std::cout << "Per-SP ledger under DMRA (" << ues << " UEs, iota=2)\n\n";
  dmra::Table ledger({"SP", "subscribers", "served", "own-BS share", "profit W_k"});
  for (const dmra::ServiceProvider& sp : scenario.sps()) {
    std::size_t subs = 0, served = 0, own = 0;
    for (const dmra::UserEquipment& ue : scenario.ues()) {
      if (ue.sp != sp.id) continue;
      ++subs;
      const auto bs = alloc.bs_of(ue.id);
      if (!bs) continue;
      ++served;
      if (scenario.bs(*bs).sp == sp.id) ++own;
    }
    ledger.add_row({sp.name, std::to_string(subs), std::to_string(served),
                    served ? dmra::fmt(static_cast<double>(own) / served) : "-",
                    dmra::fmt(profit.per_sp[sp.id.idx()])});
  }
  std::cout << ledger.to_aligned() << '\n';
  std::cout << "network total: " << dmra::fmt(profit.total) << " (revenue "
            << dmra::fmt(profit.revenue) << " − BS payments " << dmra::fmt(profit.bs_payments)
            << " − other costs " << dmra::fmt(profit.other_costs) << ")\n\n";

  // --- Part 2: what-if on the cross-SP markup ι -----------------------------
  std::cout << "What-if: sweeping the cross-SP markup iota\n\n";
  dmra::Table whatif(
      {"iota", "total profit", "same-SP ratio", "served", "fwd traffic (Mbps)"});
  for (double iota : {1.1, 1.5, 2.0, 3.0}) {
    const dmra::Scenario s = make_scenario(ues, iota, seed);
    const dmra::RunMetrics m = dmra::evaluate(s, dmra::DmraAllocator().allocate(s));
    whatif.add_row({dmra::fmt(iota, 1), dmra::fmt(m.total_profit), dmra::fmt(m.same_sp_ratio),
                    std::to_string(m.served), dmra::fmt(m.forwarded_traffic_mbps)});
  }
  std::cout << whatif.to_aligned()
            << "\nreading: raising iota makes foreign BSs pricier, so DMRA routes more\n"
               "traffic onto each SP's own infrastructure (same-SP ratio climbs).\n";
  return 0;
}
