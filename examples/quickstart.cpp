// Quickstart: build one paper-default scenario, run DMRA and the two
// baselines, and print what the allocation looks like.
//
//   ./build/examples/quickstart [--ues 800] [--seed 42] [--rho 100] [--iota 2]

#include <iostream>

#include "dmra/dmra.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "800", "number of UEs requesting offloading");
  cli.add_flag("seed", "42", "scenario seed");
  cli.add_flag("rho", "100", "DMRA preference weight (Eq. 17)");
  cli.add_flag("iota", "2", "cross-SP price markup (Eq. 10)");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }

  // 1. A scenario with the paper's §VI-A defaults: 5 SPs × 5 BSs on a
  //    300 m grid, 6 services, U{100..150} CRUs per (BS, service).
  dmra::ScenarioConfig cfg;
  cfg.num_ues = static_cast<std::size_t>(cli.get_int("ues"));
  cfg.pricing.iota = cli.get_double("iota");
  const dmra::Scenario scenario = dmra::generate_scenario(cfg, cli.get_int("seed"));

  std::cout << "scenario: " << scenario.num_sps() << " SPs, " << scenario.num_bss()
            << " BSs, " << scenario.num_ues() << " UEs, " << scenario.num_services()
            << " services\n\n";

  // 2. Run DMRA and the paper's baselines through the common interface.
  const dmra::DmraConfig dmra_cfg{.rho = cli.get_double("rho"), .max_rounds = 0};
  std::vector<dmra::AllocatorPtr> algos;
  algos.push_back(std::make_unique<dmra::DmraAllocator>(dmra_cfg));
  algos.push_back(std::make_unique<dmra::DcspAllocator>());
  algos.push_back(std::make_unique<dmra::NonCoAllocator>());

  dmra::Table table({"algorithm", "total profit", "served", "cloud", "fwd traffic (Mbps)",
                     "same-SP ratio", "RRB util"});
  for (const auto& algo : algos) {
    const dmra::Allocation alloc = algo->allocate(scenario);

    // 3. Always re-validate: Eq. 12–16 hold or check_feasibility says why not.
    const auto feas = dmra::check_feasibility(scenario, alloc);
    if (!feas.ok) {
      std::cerr << algo->name() << " produced an infeasible allocation:\n";
      for (const auto& v : feas.violations) std::cerr << "  " << v << '\n';
      return 1;
    }

    const dmra::RunMetrics m = dmra::evaluate(scenario, alloc);
    table.add_row({algo->name(), dmra::fmt(m.total_profit), std::to_string(m.served),
                   std::to_string(m.cloud), dmra::fmt(m.forwarded_traffic_mbps),
                   dmra::fmt(m.same_sp_ratio), dmra::fmt(m.mean_rrb_utilization)});
  }
  std::cout << table.to_aligned() << '\n';

  // 4. Convergence diagnostics for DMRA itself.
  const dmra::DmraResult r = dmra::solve_dmra(scenario, dmra_cfg);
  std::cout << "DMRA converged in " << r.rounds << " rounds, " << r.proposals_sent
            << " proposals (" << r.rejections << " rejections)\n";
  return 0;
}
