// The message-passing runtime in action: run DMRA as UE/SP/BS agents on
// the in-process bus, confirm the allocation equals the direct solver's,
// and report what the protocol costs in rounds and messages.
//
//   ./build/examples/decentralized_runtime [--seed 3]

#include <iostream>

#include "dmra/dmra.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("seed", "3", "scenario seed");
  cli.add_flag("rho", "100", "DMRA preference weight");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const dmra::DmraConfig dmra_cfg{.rho = cli.get_double("rho")};

  std::cout << "Decentralized DMRA protocol cost vs deployment size\n\n";
  dmra::Table table({"UEs", "DMRA rounds", "bus rounds", "messages", "msgs/UE",
                     "identical to direct?"});
  for (std::size_t ues : {100u, 250u, 500u, 1000u}) {
    dmra::ScenarioConfig cfg;
    cfg.num_ues = ues;
    const dmra::Scenario scenario = dmra::generate_scenario(cfg, seed);

    // The same algorithm, two execution models.
    const dmra::DmraResult direct = dmra::solve_dmra(scenario, dmra_cfg);
    const dmra::DecentralizedResult dec = dmra::run_decentralized_dmra(scenario, dmra_cfg);

    const bool identical = dec.dmra.allocation == direct.allocation;
    table.add_row({std::to_string(ues), std::to_string(dec.dmra.rounds),
                   std::to_string(dec.bus.rounds), std::to_string(dec.bus.messages_sent),
                   dmra::fmt(static_cast<double>(dec.bus.messages_sent) /
                             static_cast<double>(ues), 1),
                   identical ? "yes" : "NO (bug!)"});
    if (!identical) return 1;
  }
  std::cout << table.to_aligned()
            << "\nEvery row's allocation is bit-identical to the in-memory solver: the\n"
               "protocol (UE→SP→BS proposals, BS decisions, resource broadcasts) carries\n"
               "exactly the information Alg. 1 needs, and nothing more.\n\n";

  // Part 2: the same protocol on a lossy network. Safety (feasibility, no
  // double-commit) is preserved by idempotent re-acks; quality degrades
  // gracefully with the drop rate.
  dmra::ScenarioConfig cfg;
  cfg.num_ues = 500;
  const dmra::Scenario scenario = dmra::generate_scenario(cfg, seed);
  const double clean_profit =
      dmra::total_profit(scenario, dmra::solve_dmra(scenario, dmra_cfg).allocation);

  std::cout << "-- the same protocol under message loss (500 UEs) --\n\n";
  dmra::Table lossy({"drop rate", "profit vs reliable", "served", "rounds", "messages",
                     "dropped"});
  for (double drop : {0.0, 0.1, 0.25, 0.4}) {
    const dmra::DecentralizedResult r = dmra::run_decentralized_dmra(
        scenario, dmra_cfg,
        dmra::NetworkConditions{.drop_probability = drop, .seed = seed});
    lossy.add_row({dmra::fmt(drop, 2),
                   dmra::fmt(100.0 * dmra::total_profit(scenario, r.dmra.allocation) /
                             clean_profit, 1) + "%",
                   std::to_string(r.dmra.allocation.num_served()),
                   std::to_string(r.dmra.rounds), std::to_string(r.bus.messages_sent),
                   std::to_string(r.bus.messages_dropped)});
  }
  std::cout << lossy.to_aligned()
            << "\nreading: losses cost retry rounds and rebroadcast traffic, not\n"
               "correctness — the BS-side ledger never double-commits, so every run\n"
               "stays feasible.\n";
  return 0;
}
