// Online operation: batches of offloading tasks arrive, run for a few
// epochs, and depart — the "adjust the allocation in real time" setting
// the paper's §V motivates. Uses the library's OnlineSimulator, which
// re-runs DMRA each epoch on the residual deployment (whatever capacity
// departing tasks have freed up).
//
//   ./build/examples/dynamic_arrivals [--epochs 14] [--batch 260]

#include <iostream>

#include "dmra/dmra.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("epochs", "14", "number of arrival epochs");
  cli.add_flag("batch", "260", "tasks arriving per epoch");
  cli.add_flag("lifetime-min", "3", "shortest task lifetime (epochs)");
  cli.add_flag("lifetime-max", "5", "longest task lifetime (epochs)");
  cli.add_flag("seed", "11", "simulation seed");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }

  dmra::OnlineConfig cfg;
  cfg.scenario.num_ues = static_cast<std::size_t>(cli.get_int("batch"));
  cfg.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  cfg.lifetime_min_epochs = static_cast<std::size_t>(cli.get_int("lifetime-min"));
  cfg.lifetime_max_epochs = static_cast<std::size_t>(cli.get_int("lifetime-max"));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const dmra::DmraAllocator dmra_algo;
  dmra::OnlineSimulator sim(cfg, dmra_algo);
  const dmra::OnlineResult result = sim.run();

  std::cout << "Online DMRA: " << cfg.scenario.num_ues << " tasks/epoch, lifetime "
            << cfg.lifetime_min_epochs << "-" << cfg.lifetime_max_epochs << " epochs\n\n"
            << result.to_table().to_aligned() << "\ncumulative profit over " << cfg.epochs
            << " epochs: " << dmra::fmt(result.cumulative_profit) << " ("
            << result.total_served << " tasks served at the edge, " << result.total_cloud
            << " forwarded)\n"
            << "\nreading: utilization ramps until departures balance arrivals, then the\n"
               "system reaches a steady state where DMRA keeps re-fitting new batches\n"
               "into whatever capacity the departing tasks free up.\n";
  return 0;
}
