// Visualize a deployment and what DMRA does with it — uniform vs hotspot
// populations, side by side.
//
//   ./build/examples/deployment_map [--ues 900] [--seed 4]

#include <iostream>

#include "dmra/dmra.hpp"

namespace {

void show(const char* title, const dmra::ScenarioConfig& cfg, std::uint64_t seed) {
  const dmra::Scenario scenario = dmra::generate_scenario(cfg, seed);
  const dmra::Allocation alloc = dmra::DmraAllocator().allocate(scenario);
  const dmra::RunMetrics m = dmra::evaluate(scenario, alloc);

  std::cout << "=== " << title << " ===\n\n"
            << "deployment (who is where):\n"
            << dmra::render_deployment(scenario) << '\n'
            << "after DMRA (where the load went):\n"
            << dmra::render_utilization(scenario, alloc) << '\n'
            << "served " << m.served << "/" << scenario.num_ues() << ", profit "
            << dmra::fmt(m.total_profit) << ", forwarded " << dmra::fmt(m.forwarded_traffic_mbps)
            << " Mbps\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "900", "number of UEs");
  cli.add_flag("seed", "4", "scenario seed");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  dmra::ScenarioConfig uniform;
  uniform.num_ues = static_cast<std::size_t>(cli.get_int("ues"));
  show("uniform population (paper setup)", uniform, seed);

  dmra::ScenarioConfig hotspots = uniform;
  hotspots.ue_distribution = dmra::UeDistribution::kHotspots;
  hotspots.num_hotspots = 3;
  show("hotspot population (popular areas)", hotspots, seed);

  std::cout << "reading: under hotspots the BS digits near the clusters saturate (9)\n"
               "while far cells idle, and the shaded cloud-forwarded UEs pile up exactly\n"
               "where the local capacity ran out.\n";
  return 0;
}
