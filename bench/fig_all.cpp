// One-shot reproduction driver: regenerates every paper figure (2–7),
// writes a results directory with per-figure .dat/.gp/.csv artifacts and
// a SUMMARY.md of the shape checks. Plot with:
//
//   cd <out>; for f in fig*.gp; do gnuplot -persist "$f"; done
//
//   ./build/bench/fig_all [--out results] [--seeds 10]

#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"

namespace {

struct FigureSpec {
  int number;
  double iota;
  bool regular;
  bool rho_sweep;  // Figs. 6/7 sweep rho at 1000 UEs
};

dmra::ExperimentResult run_figure(const FigureSpec& fig, std::size_t seeds,
                                  std::size_t jobs,
                                  const std::optional<dmra::FaultSpec>& faults) {
  dmra::ExperimentSpec spec;
  spec.seeds = dmra::default_seeds(seeds);
  spec.jobs = jobs;
  if (!fig.rho_sweep) {
    spec.title = "Fig. " + std::to_string(fig.number) +
                 ": total profit of SPs vs. number of UEs (iota=" + dmra::fmt(fig.iota, 1) +
                 ", " + (fig.regular ? "regular" : "random") + " BS placement)";
    spec.x_label = "UEs";
    spec.xs = {400, 500, 600, 700, 800, 900};
    spec.make_config = [fig](double x) {
      dmra::ScenarioConfig cfg;
      cfg.num_ues = static_cast<std::size_t>(x);
      cfg.pricing.iota = fig.iota;
      cfg.placement = fig.regular ? dmra::PlacementMethod::kRegularGrid
                                  : dmra::PlacementMethod::kRandom;
      return cfg;
    };
    spec.make_allocators = [&faults](double) {
      return dmra_bench::paper_allocators({}, faults);
    };
  } else {
    const bool profit = fig.number == 6;
    spec.title = profit ? "Fig. 6: total profit of SPs vs. rho (iota=2, 1000 UEs)"
                        : "Fig. 7: total forwarded traffic load vs. rho (iota=1.1, 1000 UEs)";
    spec.x_label = "rho";
    spec.xs = {0, 50, 100, 150, 200, 300, 400};
    spec.metric_label = profit ? "total profit" : "forwarded traffic (Mbps)";
    spec.metric = [profit](const dmra::RunMetrics& m) {
      return profit ? m.total_profit : m.forwarded_traffic_mbps;
    };
    spec.make_config = [fig](double) {
      dmra::ScenarioConfig cfg;
      cfg.num_ues = 1000;
      cfg.pricing.iota = fig.iota;
      return cfg;
    };
    spec.make_allocators = [&faults](double rho) {
      std::vector<dmra::AllocatorPtr> algos;
      algos.push_back(dmra_bench::make_dmra(dmra::DmraConfig{.rho = rho}, faults));
      return algos;
    };
  }
  return dmra::run_experiment(spec);
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("out", "results", "output directory for .dat/.gp/.csv artifacts");
  cli.add_flag("seeds", "10", "seeds per sweep point");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const std::filesystem::path out_dir = cli.get_string("out");
  std::filesystem::create_directories(out_dir);
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  const auto faults = dmra_bench::faults_from(cli);
  obs_session.describe_scenario(dmra_bench::paper_config());
  obs_session.describe_run(dmra::default_seeds(seeds), jobs);

  const std::vector<FigureSpec> figures = {
      {2, 2.0, true, false},  {3, 2.0, false, false}, {4, 1.1, true, false},
      {5, 1.1, false, false}, {6, 2.0, true, true},   {7, 1.1, true, true},
  };

  std::ostringstream summary;
  summary << "# Reproduction run (" << seeds << " seeds per point)\n\n";

  for (const FigureSpec& fig : figures) {
    const dmra::ExperimentResult result = run_figure(fig, seeds, jobs, faults);
    const std::string stem = "fig" + std::to_string(fig.number);
    write_file(out_dir / (stem + ".dat"), result.to_dat());
    write_file(out_dir / (stem + ".gp"), result.to_gnuplot(stem + ".dat"));
    write_file(out_dir / (stem + ".csv"), result.to_table().to_csv());
    obs_session.note_output("series-csv", (out_dir / (stem + ".csv")).string());

    summary << "## " << result.title << "\n\n```\n" << result.to_table().to_aligned()
            << "```\n";
    if (result.algo_names.size() >= 2) {
      std::size_t wins = 0;
      for (const auto& row : result.cells) {
        bool best = true;
        for (std::size_t ai = 1; ai < row.size(); ++ai)
          if (row[0].mean <= row[ai].mean) best = false;
        if (best) ++wins;
      }
      summary << "\nDMRA leads at " << wins << "/" << result.cells.size()
              << " sweep points.\n";
    } else {
      const double first = result.cells.front()[0].mean;
      const double last = result.cells.back()[0].mean;
      summary << "\nTrend " << dmra::fmt(first) << " -> " << dmra::fmt(last) << " ("
              << (fig.number == 6 ? "paper expects rising profit"
                                  : "paper expects falling forwarded load")
              << ").\n";
    }
    summary << '\n';
    std::cout << "wrote " << (out_dir / stem).string() << ".{dat,gp,csv}\n";
  }

  write_file(out_dir / "SUMMARY.md", summary.str());
  std::cout << "wrote " << (out_dir / "SUMMARY.md").string() << '\n';
  return 0;
}
