// Tracked performance baseline: times the three hot paths this repo
// optimizes — scenario construction, one decentralized DMRA run, and a
// full replicated experiment — at three scales each, and emits the
// numbers as BENCH_core.json so regressions show up in review diffs.
//
//   ./build/bench/perf_report [--out BENCH_core.json] [--quick] [--jobs N]
//
// Methodology (see docs/PERFORMANCE.md): each probe is run `reps` times
// after one untimed warm-up; we report the MINIMUM wall time (least noise
// on a shared machine) plus the protocol's round/message counts, which
// must not change when only the implementation gets faster.

#include <sys/resource.h>

// Same PR105593-family false positive documented in mec/scenario_io.cpp:
// GCC 12's -Wmaybe-uninitialized flags moved-from JsonValue temporaries.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ <= 12
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "util/alloc_count.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Best-of-`reps` wall time of `fn`, in milliseconds (one untimed warm-up).
template <typename Fn>
double time_ms(std::size_t reps, Fn&& fn) {
  fn();  // warm-up: page in code and data, fill allocator caches
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const std::chrono::duration<double, std::milli> dt = Clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

/// Peak resident set size of this process so far, in MiB.
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

dmra::ScenarioConfig config_at(std::size_t ues) {
  dmra::ScenarioConfig cfg = dmra_bench::paper_config();
  cfg.num_ues = ues;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("out", "BENCH_core.json", "output path for the JSON report");
  cli.add_flag("quick", "false", "CI smoke mode: fewer reps, smaller scales");
  cli.add_flag("reps", "0", "timed repetitions per probe (0 = 5, or 2 with --quick)");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  dmra::allocprobe::install();  // count heap allocations in the probes below
  const bool quick = cli.get_bool("quick");
  const std::size_t reps = cli.get_int("reps") > 0
                               ? static_cast<std::size_t>(cli.get_int("reps"))
                               : (quick ? 2 : 5);
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  const std::vector<std::size_t> scales =
      quick ? std::vector<std::size_t>{250, 500, 1000}
            : std::vector<std::size_t>{500, 1000, 2000};
  constexpr std::uint64_t kSeed = 1;
  obs_session.describe_scenario(config_at(scales.back()));
  obs_session.describe_run(dmra::default_seeds(quick ? 4 : 8), jobs);

  dmra::JsonArray scenario_rows, decentralized_rows, experiment_rows;

  // The untraced probes below must be a strict no-op for the tracing layer:
  // the process-wide record() counter standing still is the proof (see
  // obs/recorder.hpp). Checked after the probes unless tracing was asked for.
  const std::uint64_t trace_events_before = dmra::obs::events_recorded_total();

  for (const std::size_t ues : scales) {
    const dmra::ScenarioConfig cfg = config_at(ues);

    // Probe 1: scenario construction (placement + sparse link build).
    const double build_ms =
        time_ms(reps, [&] { dmra::generate_scenario(cfg, kSeed); });
    dmra::JsonObject scenario_row;
    scenario_row["ues"] = static_cast<std::uint64_t>(ues);
    scenario_row["wall_ms"] = build_ms;
    scenario_rows.push_back(std::move(scenario_row));

    // Probe 2: one decentralized DMRA run (message-passing hot path).
    // Rounds/messages are semantic outputs: they must stay identical across
    // performance-only changes, so the report tracks them next to the time.
    // wall_ms is measured with the session's always-on flight recorder
    // installed (the shipping configuration); wall_ms_flight_off uninstalls
    // it for the same reps so the tracked <2% overhead budget
    // (docs/OBSERVABILITY.md) is a measured number, not a claim.
    const dmra::Scenario scenario = dmra::generate_scenario(cfg, kSeed);
    dmra::DecentralizedResult last{};
    const double run_ms =
        time_ms(reps, [&] { last = dmra::run_decentralized_dmra(scenario); });
    double run_off_ms = 0.0;
    {
      dmra::obs::ScopedFlightRecorder flight_off(nullptr);
      run_off_ms =
          time_ms(reps, [&] { last = dmra::run_decentralized_dmra(scenario); });
    }
    // Deterministic flight telemetry for this probe: a fresh recorder so
    // the counts are per-run, not cumulative across the session.
    std::uint64_t flight_retained = 0;
    {
      dmra::obs::FlightRecorder probe_flight;
      dmra::obs::ScopedFlightRecorder probe_scope(&probe_flight);
      dmra::run_decentralized_dmra(scenario);
      flight_retained = probe_flight.events_retained();
    }
    dmra::JsonObject dec_row;
    dec_row["ues"] = static_cast<std::uint64_t>(ues);
    dec_row["wall_ms"] = run_ms;
    dec_row["wall_ms_flight_off"] = run_off_ms;
    dec_row["flight_events_retained"] = flight_retained;
    dec_row["rounds"] = last.bus.rounds;
    dec_row["messages_sent"] = last.bus.messages_sent;
    dec_row["matching_rounds"] = static_cast<std::uint64_t>(last.dmra.rounds);
    // Derived throughput (wall-clock based, noisy like wall_ms) plus the
    // deterministic allocation counters (schema 1.2): this binary links
    // the counting allocator, so steady_state_allocations is an exact,
    // reproducible number — 0 is the tracked budget.
    dec_row["messages_per_sec"] =
        run_ms > 0.0 ? static_cast<double>(last.bus.messages_sent) / (run_ms / 1e3)
                     : 0.0;
    dec_row["alloc_measured"] = last.alloc.measured;
    dec_row["alloc_settle_rounds"] = last.alloc.settle_rounds;
    dec_row["steady_state_allocations"] = last.alloc.steady_state_allocations;
    dec_row["round_loop_allocations"] = last.alloc.total_allocations;
    decentralized_rows.push_back(std::move(dec_row));
    const double flight_overhead_pct =
        run_off_ms > 0.0 ? (run_ms - run_off_ms) / run_off_ms * 100.0 : 0.0;
    std::cout << "decentralized " << ues << " UEs: " << dmra::fmt(run_ms, 2)
              << " ms, " << dmra::to_string(last.bus) << ", flight overhead "
              << dmra::fmt(flight_overhead_pct, 2) << "%\n";

    // Probe 3: a full experiment (replications fanned across --jobs).
    dmra::ExperimentSpec spec;
    spec.title = "perf probe";
    spec.x_label = "UEs";
    spec.xs = {static_cast<double>(ues)};
    spec.seeds = dmra::default_seeds(quick ? 4 : 8);
    spec.jobs = jobs;
    spec.make_config = [&](double x) { return config_at(static_cast<std::size_t>(x)); };
    spec.make_allocators = [](double) { return dmra_bench::paper_allocators({}); };
    const double exp_ms = time_ms(quick ? 1 : 2, [&] { dmra::run_experiment(spec); });
    dmra::JsonObject exp_row;
    exp_row["ues"] = static_cast<std::uint64_t>(ues);
    exp_row["seeds"] = static_cast<std::uint64_t>(spec.seeds.size());
    exp_row["wall_ms"] = exp_ms;
    experiment_rows.push_back(std::move(exp_row));
  }

  // Probe 4 (schema 1.3): the region-sharded runtime at production scale.
  // One big scenario, a shard-count sweep against the single-bus oracle.
  // The per-shard counters (shards, boundary UEs, reconcile stats) and the
  // bus/message totals are deterministic semantic outputs; profit columns
  // are informational (the quality contract itself lives in
  // tests/core/sharded_test.cpp).
  dmra::JsonArray sharded_rows;
  {
    const std::size_t big_ues = quick ? 20'000 : 100'000;
    const dmra::ScenarioConfig big_cfg = config_at(big_ues);
    const dmra::Scenario big = dmra::generate_scenario(big_cfg, kSeed);
    dmra::DecentralizedResult oracle{};
    const double oracle_ms =
        time_ms(quick ? 1 : reps, [&] { oracle = dmra::run_decentralized_dmra(big); });
    const double oracle_profit = dmra::total_profit(big, oracle.dmra.allocation);
    std::cout << "oracle (single bus) " << big_ues << " UEs: " << dmra::fmt(oracle_ms, 2)
              << " ms\n";
    for (const std::size_t shards : {1u, 4u, 16u}) {
      dmra::ShardedResult last{};
      const double run_ms = time_ms(quick ? 1 : reps, [&] {
        last = dmra::run_sharded_dmra(big, {},
                                      {.num_shards = shards, .jobs = jobs});
      });
      dmra::JsonObject row;
      row["ues"] = static_cast<std::uint64_t>(big_ues);
      row["shards"] = static_cast<std::uint64_t>(last.shard.num_shards);
      row["wall_ms"] = run_ms;
      row["oracle_wall_ms"] = oracle_ms;
      row["rounds"] = last.bus.rounds;
      row["messages_sent"] = last.bus.messages_sent;
      row["matching_rounds"] = static_cast<std::uint64_t>(last.dmra.rounds);
      row["interior_ues"] = static_cast<std::uint64_t>(last.shard.interior_ues);
      row["boundary_ues"] = static_cast<std::uint64_t>(last.shard.boundary_ues);
      row["boundary_ues_reconciled"] =
          static_cast<std::uint64_t>(last.shard.boundary_ues_reconciled);
      row["cloud_only_ues"] = static_cast<std::uint64_t>(last.shard.cloud_only_ues);
      row["reconcile_rounds"] = static_cast<std::uint64_t>(last.shard.reconcile_rounds);
      row["max_shard_rounds"] = static_cast<std::uint64_t>(last.shard.max_shard_rounds);
      const double profit = dmra::total_profit(big, last.dmra.allocation);
      const double vs_oracle = oracle_profit > 0.0 ? profit / oracle_profit : 1.0;
      row["profit"] = profit;
      row["profit_vs_oracle"] = vs_oracle;
      row["messages_per_sec"] =
          run_ms > 0.0
              ? static_cast<double>(last.bus.messages_sent) / (run_ms / 1e3)
              : 0.0;
      std::cout << "sharded " << big_ues << " UEs, " << shards
                << " shards: " << dmra::fmt(run_ms, 2) << " ms, profit/oracle "
                << dmra::fmt(vs_oracle, 4) << ", boundary "
                << last.shard.boundary_ues << " (reconciled "
                << last.shard.boundary_ues_reconciled << ")\n";
      sharded_rows.push_back(std::move(row));
    }
  }

  // Probe 5 (schema 1.4): the allocator-as-a-service serving loop
  // (sim/churn through the persistent IncrementalAllocator), one steady
  // run and one with a crash on the event timeline. The event/churn/
  // recovery counters are deterministic semantic outputs; wall time,
  // decision throughput, and the latency percentiles are wall-clock
  // measurements (warn-only in tools/bench_diff.py, like wall_ms).
  dmra::JsonArray serving_rows;
  {
    dmra::ChurnConfig serve;
    serve.deployment = dmra_bench::paper_config();
    serve.arrival_rate_hz = quick ? 10.0 : 20.0;
    serve.mean_dwell_s = quick ? 50.0 : 100.0;
    serve.mean_move_interval_s = 60.0;
    serve.horizon_events = quick ? 1'500 : 10'000;
    serve.resolve_every = quick ? 500 : 2'000;
    serve.prefill = serve.steady_state_target();
    serve.seed = kSeed;

    dmra::FaultSpec crash;
    crash.crashes = 1;
    crash.crash_round = serve.horizon_events / 2;
    crash.down_rounds = serve.horizon_events / 10;
    crash.seed = 9;

    for (const bool faulted : {false, true}) {
      dmra::ChurnConfig cfg = serve;
      if (faulted) cfg.faults = crash;
      // The timeline is identical across reps and fault arms (faults do
      // not perturb arrivals/departures); build it once per arm and time
      // the replay alone, the way a serving process would see it.
      const dmra::ChurnTimeline timeline = dmra::build_churn_timeline(cfg);
      dmra::ChurnResult last;
      const double run_ms =
          time_ms(quick ? 1 : reps, [&] { last = dmra::run_churn(timeline, cfg); });
      // Flight telemetry (schema 1.5): a fresh windowed recorder over one
      // replay, so retained events / dump count / window count are exact
      // per-run semantic outputs (tools/bench_diff.py telemetry keys).
      dmra::obs::FlightRecorder::Config flight_cfg;
      flight_cfg.window_len = 256;
      dmra::obs::FlightRecorder probe_flight(flight_cfg);
      {
        dmra::obs::ScopedFlightRecorder probe_scope(&probe_flight);
        dmra::run_churn(timeline, cfg);
      }
      const dmra::ChurnStats& s = last.stats;
      dmra::JsonObject row;
      row["faults"] = faulted;
      row["steady_state_ues"] = static_cast<std::uint64_t>(cfg.steady_state_target());
      row["horizon_events"] = static_cast<std::uint64_t>(cfg.horizon_events);
      row["events"] = static_cast<std::uint64_t>(s.events);
      row["arrivals"] = static_cast<std::uint64_t>(s.arrivals);
      row["departures"] = static_cast<std::uint64_t>(s.departures);
      row["moves"] = static_cast<std::uint64_t>(s.moves);
      row["reassociations"] = static_cast<std::uint64_t>(s.reassociations);
      row["churn_rate"] = s.churn_rate();
      row["cross_region_moves"] = static_cast<std::uint64_t>(s.cross_region_moves);
      row["readmitted"] = static_cast<std::uint64_t>(s.readmitted);
      row["orphaned"] = static_cast<std::uint64_t>(s.orphaned_ues);
      row["recovery_events_max"] = static_cast<std::uint64_t>(s.recovery_events_max);
      row["resolves"] = static_cast<std::uint64_t>(s.resolves);
      row["resolve_gap_last"] = s.resolve_gap_last;
      row["resolve_gap_max"] = s.resolve_gap_max;
      row["final_active"] = static_cast<std::uint64_t>(s.final_active);
      row["final_served"] = static_cast<std::uint64_t>(s.final_served);
      row["final_profit"] = s.final_profit;
      row["wall_ms"] = run_ms;
      row["events_per_sec"] =
          run_ms > 0.0 ? static_cast<double>(s.events) / (run_ms / 1e3) : 0.0;
      row["latency_p50_ns"] = last.latency.percentile_ns(0.5);
      row["latency_p99_ns"] = last.latency.percentile_ns(0.99);
      row["latency_p999_ns"] = last.latency.percentile_ns(0.999);
      row["flight_events_retained"] = probe_flight.events_retained();
      row["postmortem_dumps"] =
          static_cast<std::uint64_t>(probe_flight.triggered() ? 1 : 0);
      row["metric_windows"] = static_cast<std::uint64_t>(
          probe_flight.metrics().collect_windows().size());
      std::cout << "serving " << (faulted ? "(crash armed) " : "") << s.events
                << " events @ " << cfg.steady_state_target()
                << " steady-state UEs: " << dmra::fmt(run_ms, 2) << " ms, churn "
                << dmra::fmt(s.churn_rate(), 4) << ", p50 "
                << dmra::fmt(last.latency.percentile_ns(0.5) / 1e3, 2)
                << " us, p99 "
                << dmra::fmt(last.latency.percentile_ns(0.99) / 1e3, 2) << " us\n";
      serving_rows.push_back(std::move(row));
    }
  }

  if (!obs_session.enabled()) {
    const std::uint64_t delta =
        dmra::obs::events_recorded_total() - trace_events_before;
    if (delta != 0) {
      std::cerr << "FAIL: tracing disabled but " << delta
                << " trace events were recorded — the disabled path is not a no-op\n";
      return 1;
    }
    std::cout << "no-op check: 0 trace events recorded across untraced probes\n";
  }

  dmra::JsonObject root;
  root["schema"] = "dmra-perf-report/1.5";
  root["git"] = std::string(dmra::obs::git_describe());
  root["build"] = dmra::obs::build_flavor_json();
  root["quick"] = quick;
  root["reps"] = static_cast<std::uint64_t>(reps);
  root["jobs_flag"] = static_cast<std::uint64_t>(jobs);
  root["hardware_threads"] =
      static_cast<std::uint64_t>(dmra::ThreadPool::hardware_concurrency());
  root["scenario_build"] = std::move(scenario_rows);
  root["decentralized_run"] = std::move(decentralized_rows);
  root["experiment"] = std::move(experiment_rows);
  root["sharded_run"] = std::move(sharded_rows);
  root["serving_run"] = std::move(serving_rows);
  root["peak_rss_mib"] = peak_rss_mib();
  const dmra::JsonValue report{std::move(root)};

  const std::string out_path = cli.get_string("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  out << report.dump(2) << '\n';
  std::cout << report.dump(2) << "\n(report written to " << out_path << ")\n";
  obs_session.note_output("bench-json", out_path);
  return 0;
}
