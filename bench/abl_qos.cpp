// Ablation A8: the QoS view the paper motivates but never plots — latency
// proxy and fairness for DMRA vs the baselines, under and over capacity.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "600,1200", "UE counts to sweep");
  cli.add_flag("seeds", "5", "seeds per configuration");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  obs_session.describe_scenario(dmra_bench::paper_config());
  obs_session.describe_run(seeds, jobs);
  const auto faults = dmra_bench::faults_from(cli);
  const dmra::LatencyModel latency;

  std::cout << "== A8: QoS view — latency proxy & fairness (iota=2, regular placement) ==\n"
            << "latency model: edge " << latency.edge_base_ms << " ms + "
            << latency.per_km_ms << " ms/km; cloud +" << latency.cloud_rtt_ms << " ms\n\n";

  dmra::Table table({"UEs", "algorithm", "mean latency (ms)", "p95 (ms)",
                     "edge latency (ms)", "Jain SP profit", "Jain UE latency"});
  for (const double ues : cli.get_double_list("ues")) {
    std::vector<dmra::AllocatorPtr> algos = dmra_bench::paper_allocators({}, faults);
    for (const auto& algo : algos) {
      const auto per_seed = dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t si) {
        dmra::ScenarioConfig cfg = dmra_bench::paper_config();
        cfg.num_ues = static_cast<std::size_t>(ues);
        const dmra::Scenario s = dmra::generate_scenario(cfg, seeds[si]);
        return dmra::evaluate_qos(s, algo->allocate(s), latency);
      });
      dmra::RunningStats mean_lat, p95, edge_lat, jain_sp, jain_ue;
      for (const dmra::QosMetrics& q : per_seed) {  // seed order: jobs-invariant
        mean_lat.add(q.mean_latency_ms);
        p95.add(q.p95_latency_ms);
        edge_lat.add(q.mean_edge_latency_ms);
        jain_sp.add(q.jain_sp_profit);
        jain_ue.add(q.jain_ue_latency);
      }
      table.add_row({dmra::fmt(ues, 0), algo->name(), dmra::fmt(mean_lat.mean(), 1),
                     dmra::fmt(p95.mean(), 1), dmra::fmt(edge_lat.mean(), 1),
                     dmra::fmt(jain_sp.mean(), 3), dmra::fmt(jain_ue.mean(), 3)});
    }
  }
  std::cout << table.to_aligned()
            << "\nreading: under capacity every scheme keeps latency near the edge floor;\n"
               "in overload the schemes that strand fewer UEs (DMRA's rematch, NonCo's\n"
               "radio efficiency) hold the mean and the tail down, and DMRA pays a small\n"
               "edge-latency premium for its same-SP detours.\n";
  return 0;
}
