// Figures 2–5: total SP profit vs. number of UEs, DMRA vs DCSP vs NonCo.
// One binary per figure via the DMRA_FIG compile definition:
//   2 — ι = 2,   regular BS placement
//   3 — ι = 2,   random BS placement
//   4 — ι = 1.1, regular BS placement
//   5 — ι = 1.1, random BS placement

#include <iostream>

#include "bench_common.hpp"

#ifndef DMRA_FIG
#define DMRA_FIG 2
#endif

namespace {

constexpr bool kRegular = (DMRA_FIG == 2 || DMRA_FIG == 4);
constexpr double kIota = (DMRA_FIG <= 3) ? 2.0 : 1.1;

}  // namespace

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "400,500,600,700,800,900", "UE counts to sweep");
  cli.add_flag("seeds", "10", "number of scenario seeds per point");
  cli.add_flag("rho", "100", "DMRA preference weight (Eq. 17)");
  cli.add_flag("csv", "false", "also print the table as CSV");
  cli.add_flag("out", "", "write the series as CSV to this path");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }

  const dmra::DmraConfig dmra_cfg{.rho = cli.get_double("rho")};
  const auto faults = dmra_bench::faults_from(cli);

  dmra::ExperimentSpec spec;
  spec.title = "Fig. " + std::to_string(DMRA_FIG) + ": total profit of SPs vs. number of UEs"
               " (iota=" + dmra::fmt(kIota, 1) + ", " +
               (kRegular ? "regular" : "random") + " BS placement)";
  spec.x_label = "UEs";
  spec.xs = cli.get_double_list("ues");
  spec.seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  spec.make_config = [](double x) {
    dmra::ScenarioConfig cfg = dmra_bench::paper_config();
    cfg.num_ues = static_cast<std::size_t>(x);
    cfg.pricing.iota = kIota;
    cfg.placement =
        kRegular ? dmra::PlacementMethod::kRegularGrid : dmra::PlacementMethod::kRandom;
    return cfg;
  };
  spec.make_allocators = [&](double) {
    return dmra_bench::paper_allocators(dmra_cfg, faults);
  };
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  spec.jobs = dmra_bench::jobs_from(cli);
  if (!spec.xs.empty()) obs_session.describe_scenario(spec.make_config(spec.xs.front()));
  obs_session.describe_run(spec.seeds, spec.jobs);
  const std::string out_path = cli.get_string("out");
  if (!out_path.empty()) obs_session.note_output("series-csv", out_path);

  const dmra::ExperimentResult result = dmra::run_experiment(spec);
  dmra_bench::print_result(result, cli.get_bool("csv"), out_path);
  dmra_bench::print_dominance(result);
  return 0;
}
