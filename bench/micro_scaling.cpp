// M1: algorithm scaling microbenchmarks (google-benchmark).
//
// How solve time grows with |U| and |B| for DMRA, the baselines, and the
// message-passing runtime (whose counters report protocol cost).

#include <benchmark/benchmark.h>

#include "dmra/dmra.hpp"

namespace {

dmra::Scenario make_scenario(std::size_t num_ues, std::size_t bss_per_sp = 5) {
  dmra::ScenarioConfig cfg;
  cfg.num_ues = num_ues;
  cfg.bss_per_sp = bss_per_sp;
  return dmra::generate_scenario(cfg, /*seed=*/7);
}

void BM_DmraSolve_Ues(benchmark::State& state) {
  const dmra::Scenario scenario = make_scenario(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const dmra::DmraResult r = dmra::solve_dmra(scenario);
    benchmark::DoNotOptimize(r.allocation.num_served());
  }
  state.counters["ues"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DmraSolve_Ues)->Arg(100)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000);

void BM_DmraSolve_Bss(benchmark::State& state) {
  const dmra::Scenario scenario =
      make_scenario(800, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const dmra::DmraResult r = dmra::solve_dmra(scenario);
    benchmark::DoNotOptimize(r.allocation.num_served());
  }
  state.counters["bss"] = static_cast<double>(state.range(0) * 5);
}
BENCHMARK(BM_DmraSolve_Bss)->Arg(3)->Arg(5)->Arg(8)->Arg(12);

void BM_Dcsp(benchmark::State& state) {
  const dmra::Scenario scenario = make_scenario(static_cast<std::size_t>(state.range(0)));
  const dmra::DcspAllocator algo;
  for (auto _ : state) {
    const dmra::Allocation a = algo.allocate(scenario);
    benchmark::DoNotOptimize(a.num_served());
  }
}
BENCHMARK(BM_Dcsp)->Arg(500)->Arg(1000);

void BM_NonCo(benchmark::State& state) {
  const dmra::Scenario scenario = make_scenario(static_cast<std::size_t>(state.range(0)));
  const dmra::NonCoAllocator algo;
  for (auto _ : state) {
    const dmra::Allocation a = algo.allocate(scenario);
    benchmark::DoNotOptimize(a.num_served());
  }
}
BENCHMARK(BM_NonCo)->Arg(500)->Arg(1000);

void BM_DecentralizedDmra(benchmark::State& state) {
  const dmra::Scenario scenario = make_scenario(static_cast<std::size_t>(state.range(0)));
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const dmra::DecentralizedResult r = dmra::run_decentralized_dmra(scenario);
    benchmark::DoNotOptimize(r.dmra.allocation.num_served());
    messages = r.bus.messages_sent;
    rounds = r.dmra.rounds;
  }
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_DecentralizedDmra)->Arg(250)->Arg(500)->Arg(1000);

void BM_ScenarioGeneration(benchmark::State& state) {
  dmra::ScenarioConfig cfg;
  cfg.num_ues = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const dmra::Scenario s = dmra::generate_scenario(cfg, seed++);
    benchmark::DoNotOptimize(s.num_ues());
  }
}
BENCHMARK(BM_ScenarioGeneration)->Arg(500)->Arg(2000);

}  // namespace
