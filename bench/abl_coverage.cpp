// Ablation A3: the coverage radius is the one deployment parameter the
// paper never states. Sweeping it shows how the density premise (every UE
// sees several BSs from several SPs) drives the results, and how
// sensitive DMRA's advantage is to it.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("radius", "300,400,500,600,800", "coverage radii (m) to sweep");
  cli.add_flag("ues", "800", "number of UEs");
  cli.add_flag("seeds", "5", "seeds per configuration");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto num_ues = static_cast<std::size_t>(cli.get_int("ues"));
  const auto seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  dmra::ScenarioConfig base_cfg = dmra_bench::paper_config();
  base_cfg.num_ues = num_ues;
  obs_session.describe_scenario(base_cfg);
  obs_session.describe_run(seeds, jobs);
  const auto faults = dmra_bench::faults_from(cli);

  std::cout << "== A3: coverage-radius ablation (" << num_ues
            << " UEs, iota=2, regular placement) ==\n\n";

  struct SeedValues {
    double f_u, uncovered, p_dmra, p_dcsp, p_nonco;
  };
  dmra::Table table({"radius (m)", "mean f_u", "uncovered UEs", "DMRA profit",
                     "DCSP profit", "NonCo profit"});
  for (const double radius : cli.get_double_list("radius")) {
    const auto per_seed = dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t si) {
      dmra::ScenarioConfig cfg = dmra_bench::paper_config();
      cfg.num_ues = num_ues;
      cfg.coverage_radius_m = radius;
      const dmra::Scenario scenario = dmra::generate_scenario(cfg, seeds[si]);

      double fu_sum = 0.0;
      std::size_t none = 0;
      for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
        const auto n = scenario.coverage_count(dmra::UeId{static_cast<std::uint32_t>(ui)});
        fu_sum += static_cast<double>(n);
        if (n == 0) ++none;
      }
      return SeedValues{
          fu_sum / static_cast<double>(scenario.num_ues()), static_cast<double>(none),
          dmra::total_profit(scenario,
                             dmra_bench::make_dmra({}, faults)->allocate(scenario)),
          dmra::total_profit(scenario, dmra::DcspAllocator().allocate(scenario)),
          dmra::total_profit(scenario, dmra::NonCoAllocator().allocate(scenario))};
    });
    dmra::RunningStats f_u, uncovered, p_dmra, p_dcsp, p_nonco;
    for (const SeedValues& v : per_seed) {  // seed order: jobs-invariant
      f_u.add(v.f_u);
      uncovered.add(v.uncovered);
      p_dmra.add(v.p_dmra);
      p_dcsp.add(v.p_dcsp);
      p_nonco.add(v.p_nonco);
    }
    table.add_row({dmra::fmt(radius, 0), dmra::fmt(f_u.mean(), 1),
                   dmra::fmt(uncovered.mean(), 1), dmra::fmt(p_dmra.mean()),
                   dmra::fmt(p_dcsp.mean()), dmra::fmt(p_nonco.mean())});
  }
  std::cout << table.to_aligned() << '\n';
  return 0;
}
