// Ablation A4: how much of DMRA's advantage depends on NonCo being
// one-shot? Compares DMRA against both NonCo readings (one-shot, as the
// paper describes it; iterative, the strongest SP-blind max-SINR scheme)
// across load and both ι values.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "400,700,1000", "UE counts to sweep");
  cli.add_flag("seeds", "10", "seeds per configuration");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  obs_session.describe_scenario(dmra_bench::paper_config());
  obs_session.describe_run(seeds, jobs);
  const auto faults = dmra_bench::faults_from(cli);

  std::cout << "== A4: NonCo semantics ablation (regular placement) ==\n\n";
  struct SeedValues {
    double dmra_p, oneshot_p, iter_p;
  };
  dmra::Table table({"iota", "UEs", "DMRA", "NonCo (one-shot)", "NonCo (iterative)",
                     "DMRA lead vs iter"});
  for (const double iota : {2.0, 1.1}) {
    for (const double ues : cli.get_double_list("ues")) {
      const auto per_seed = dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t si) {
        dmra::ScenarioConfig cfg = dmra_bench::paper_config();
        cfg.num_ues = static_cast<std::size_t>(ues);
        cfg.pricing.iota = iota;
        const dmra::Scenario s = dmra::generate_scenario(cfg, seeds[si]);
        return SeedValues{
            dmra::total_profit(s, dmra_bench::make_dmra({}, faults)->allocate(s)),
            dmra::total_profit(s, dmra::NonCoAllocator().allocate(s)),
            dmra::total_profit(
                s, dmra::NonCoAllocator(dmra::NonCoAllocator::Mode::kIterative).allocate(s))};
      });
      dmra::RunningStats dmra_p, oneshot_p, iter_p;
      for (const SeedValues& v : per_seed) {  // seed order: jobs-invariant
        dmra_p.add(v.dmra_p);
        oneshot_p.add(v.oneshot_p);
        iter_p.add(v.iter_p);
      }
      table.add_row({dmra::fmt(iota, 1), dmra::fmt(ues, 0), dmra::fmt(dmra_p.mean()),
                     dmra::fmt(oneshot_p.mean()), dmra::fmt(iter_p.mean()),
                     dmra::fmt(100.0 * (dmra_p.mean() / iter_p.mean() - 1.0), 1) + "%"});
    }
  }
  std::cout << table.to_aligned()
            << "\nreading: at iota=2 and moderate load DMRA leads even the strongest\n"
               "SP-blind max-SINR scheme (the same-SP margin at work). At saturation\n"
               "or iota~1 the iterative variant catches up or edges ahead: max-SINR\n"
               "serving is the most radio-efficient packing, and with no cross-SP\n"
               "markup to exploit DMRA has nothing left to monetize. The large and\n"
               "uniform Figs. 2-5 gap therefore also reflects NonCo's one-shot\n"
               "stranding, not the same-SP preference alone.\n";
  return 0;
}
