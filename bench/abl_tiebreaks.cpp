// Ablation A2: which parts of DMRA's BS-side preference actually earn the
// profit? Disables each design choice of Alg. 1 in turn:
//   full        — same-SP first, then min f_u, then min footprint (paper)
//   no-same-sp  — drop the same-SP pool preference
//   no-f_u      — drop the fewest-covering-BSs tie-break
//   no-footprint— drop the resource-footprint tie-break
//   price-only  — rho = 0 (UE side ignores remaining resources)

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "800,1000", "UE counts to sweep");
  cli.add_flag("seeds", "10", "seeds per configuration");
  cli.add_flag("rho", "100", "baseline rho");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const double rho = cli.get_double("rho");

  struct Variant {
    const char* label;
    dmra::DmraConfig config;
  };
  const std::vector<Variant> variants = {
      {"full", dmra::DmraConfig{.rho = rho}},
      {"no-same-sp", dmra::DmraConfig{.rho = rho, .prefer_same_sp = false}},
      {"no-f_u", dmra::DmraConfig{.rho = rho, .use_coverage_count = false}},
      {"no-footprint", dmra::DmraConfig{.rho = rho, .use_footprint = false}},
      {"price-only (rho=0)", dmra::DmraConfig{.rho = 0.0}},
  };

  const auto seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  obs_session.describe_scenario(dmra_bench::paper_config());
  obs_session.describe_run(seeds, jobs);
  const auto faults = dmra_bench::faults_from(cli);
  std::cout << "== A2: DMRA tie-break ablation (iota=2, regular placement) ==\n\n";

  dmra::Table table({"UEs", "variant", "total profit", "served", "same-SP ratio"});
  for (const double ues : cli.get_double_list("ues")) {
    for (const Variant& v : variants) {
      const auto per_seed = dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t si) {
        dmra::ScenarioConfig cfg = dmra_bench::paper_config();
        cfg.num_ues = static_cast<std::size_t>(ues);
        const dmra::Scenario scenario = dmra::generate_scenario(cfg, seeds[si]);
        const auto algo = dmra_bench::make_dmra(v.config, faults);
        return dmra::evaluate(scenario, algo->allocate(scenario));
      });
      dmra::RunningStats profit, served, same_sp;
      for (const dmra::RunMetrics& m : per_seed) {  // seed order: jobs-invariant
        profit.add(m.total_profit);
        served.add(static_cast<double>(m.served));
        same_sp.add(m.same_sp_ratio);
      }
      table.add_row({dmra::fmt(ues, 0), v.label, dmra::fmt_pm(profit.mean(),
                     dmra::ci95_halfwidth(profit)), dmra::fmt(served.mean(), 0),
                     dmra::fmt(same_sp.mean())});
    }
  }
  std::cout << table.to_aligned() << '\n';
  return 0;
}
