// Ablation A10: adaptive per-BS pricing on top of DMRA. Does letting BSs
// price congestion (src/market) balance load and change the SPs' take?

#include <iostream>

#include "bench_common.hpp"
#include "market/adaptive_pricing.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "1100", "number of UEs (overloaded on purpose)");
  cli.add_flag("rounds", "12", "pricing adaptation rounds");
  cli.add_flag("target", "0.75", "target RRB utilization");
  cli.add_flag("seed", "3", "scenario seed");
  // Accepted for interface uniformity with the other benches; this
  // single-seed study has no replication axis to fan out, so it is inert.
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  dmra_bench::ObsSession obs_session(cli, argv[0]);

  dmra::AdaptivePricingConfig cfg;
  cfg.scenario.num_ues = static_cast<std::size_t>(cli.get_int("ues"));
  cfg.scenario.ue_distribution = dmra::UeDistribution::kHotspots;  // imbalance to fix
  cfg.rounds = static_cast<std::size_t>(cli.get_int("rounds"));
  cfg.target_utilization = cli.get_double("target");
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  obs_session.describe_scenario(cfg.scenario);
  obs_session.describe_run({cfg.seed}, 1);

  const auto faults = dmra_bench::faults_from(cli);
  const dmra::AllocatorPtr algo = dmra_bench::make_dmra({}, faults);
  const dmra::AdaptivePricingResult r = dmra::run_adaptive_pricing(cfg, *algo);

  std::cout << "== A10: adaptive per-BS pricing under a hotspot load (" << cfg.scenario.num_ues
            << " UEs, target util " << cfg.target_utilization << ") ==\n\n"
            << r.to_table().to_aligned() << '\n';

  const auto& first = r.rounds.front();
  const auto& last = r.rounds.back();
  std::cout << "load imbalance (util stddev): " << dmra::fmt(first.util_stddev, 3) << " -> "
            << dmra::fmt(last.util_stddev, 3) << '\n'
            << "profit: " << dmra::fmt(first.total_profit) << " -> "
            << dmra::fmt(last.total_profit) << '\n'
            << "\nreading: hotspot BSs price up, idle BSs price down; the controller\n"
               "converges (max step shrinks) and shifts price-sensitive UEs outward,\n"
               "narrowing the utilization spread without any change to DMRA itself.\n";
  return 0;
}
