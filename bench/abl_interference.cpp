// Ablation A1: channel-model sensitivity.
//
// Two axes the paper leaves unspecified (DESIGN.md §3):
//  * inter-cell interference — we sweep the activity factor of the
//    derived interference PSD;
//  * the reading of "noise = −170 dBm" — total-per-RRB (paper-literal,
//    our default) vs. a −170 dBm/Hz PSD (physically conventional).
// Output: DMRA vs NonCo profit and served count under each channel, which
// shows how the paper's conclusion depends on the radio regime.

#include <iostream>
#include <utility>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "800", "number of UEs");
  cli.add_flag("seeds", "5", "seeds per configuration");
  cli.add_flag("activity", "0,0.001,0.005,0.02", "interference activity factors to sweep");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto num_ues = static_cast<std::size_t>(cli.get_int("ues"));
  const auto seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  dmra::ScenarioConfig base_cfg = dmra_bench::paper_config();
  base_cfg.num_ues = num_ues;
  obs_session.describe_scenario(base_cfg);
  obs_session.describe_run(seeds, jobs);
  const auto faults = dmra_bench::faults_from(cli);

  std::cout << "== A1: channel-model ablation (" << num_ues << " UEs, iota=2) ==\n\n";

  dmra::Table table({"noise model", "activity", "DMRA profit", "NonCo profit",
                     "DMRA served", "NonCo served"});
  for (const bool psd : {false, true}) {
    for (const double activity : cli.get_double_list("activity")) {
      const auto per_seed = dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t si) {
        dmra::ScenarioConfig cfg = dmra_bench::paper_config();
        cfg.num_ues = num_ues;
        cfg.interference_activity_factor = activity;
        cfg.channel.noise_model =
            psd ? dmra::NoiseModel::kPsd : dmra::NoiseModel::kTotalPerRrb;
        const dmra::Scenario scenario = dmra::generate_scenario(cfg, seeds[si]);

        const auto dmra_algo = dmra_bench::make_dmra({}, faults);
        const dmra::NonCoAllocator nonco;
        return std::make_pair(dmra::evaluate(scenario, dmra_algo->allocate(scenario)),
                              dmra::evaluate(scenario, nonco.allocate(scenario)));
      });
      dmra::RunningStats profit_dmra, profit_nonco, served_dmra, served_nonco;
      for (const auto& [md, mn] : per_seed) {  // seed order: jobs-invariant
        profit_dmra.add(md.total_profit);
        profit_nonco.add(mn.total_profit);
        served_dmra.add(static_cast<double>(md.served));
        served_nonco.add(static_cast<double>(mn.served));
      }
      table.add_row({psd ? "PSD -170dBm/Hz" : "per-RRB -170dBm", dmra::fmt(activity, 2),
                     dmra::fmt(profit_dmra.mean()), dmra::fmt(profit_nonco.mean()),
                     dmra::fmt(served_dmra.mean(), 0), dmra::fmt(served_nonco.mean(), 0)});
    }
  }
  std::cout << table.to_aligned()
            << "\nreading: in the per-RRB regime (paper) DMRA leads on profit; in the PSD\n"
               "regime radio collapses with distance and max-SINR (NonCo) dominates —\n"
               "evidence for the channel reading documented in DESIGN.md.\n";
  return 0;
}
