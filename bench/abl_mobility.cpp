// Ablation A7: association churn under mobility. Sweeps UE speed under
// random-waypoint movement and reports handover rate and profit stability
// for DMRA — quantifying the paper's "the best association changes over
// time" premise and what periodic re-allocation costs.

#include <iostream>
#include <utility>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("speeds", "0,1,5,15,30", "mean UE speeds (m/s) to sweep; 0 = static");
  cli.add_flag("ues", "600", "number of UEs");
  cli.add_flag("steps", "12", "re-allocation steps");
  cli.add_flag("dt", "2", "seconds per step");
  cli.add_flag("seeds", "5", "seeds per configuration");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  obs_session.describe_scenario(dmra_bench::paper_config());
  obs_session.describe_run(seeds, jobs);
  const auto faults = dmra_bench::faults_from(cli);
  const dmra::AllocatorPtr algo = dmra_bench::make_dmra({}, faults);

  std::cout << "== A7: handover churn vs UE speed (random waypoint, DMRA re-run every "
            << cli.get_double("dt") << " s) ==\n\n";
  dmra::Table table({"speed (m/s)", "handover rate", "edge->cloud/step", "mean profit",
                     "profit stddev"});
  struct SeedValues {
    double rate, churn, profit_mean, profit_sd;
  };
  for (const double speed : cli.get_double_list("speeds")) {
    const auto per_seed = dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t si) {
      dmra::HandoverConfig cfg;
      cfg.scenario.num_ues = static_cast<std::size_t>(cli.get_int("ues"));
      cfg.steps = static_cast<std::size_t>(cli.get_int("steps"));
      cfg.step_duration_s = cli.get_double("dt");
      cfg.seed = seeds[si];
      if (speed <= 0.0) {
        cfg.mobility = dmra::MobilityKind::kStatic;
      } else {
        cfg.mobility = dmra::MobilityKind::kRandomWaypoint;
        cfg.waypoint.speed_min_mps = speed * 0.5;
        cfg.waypoint.speed_max_mps = speed * 1.5;
      }
      const dmra::HandoverResult r = dmra::run_handover_study(cfg, *algo);
      dmra::RunningStats per_step_profit;
      double cloud_churn = 0.0;
      for (const dmra::HandoverStepStats& s : r.steps) {
        per_step_profit.add(s.profit);
        cloud_churn += static_cast<double>(s.edge_to_cloud);
      }
      return SeedValues{r.handover_rate,
                        cloud_churn / static_cast<double>(r.steps.size()),
                        per_step_profit.mean(), per_step_profit.stddev()};
    });
    dmra::RunningStats rate, churn, profit_mean, profit_sd;
    for (const SeedValues& v : per_seed) {  // seed order: jobs-invariant
      rate.add(v.rate);
      churn.add(v.churn);
      profit_mean.add(v.profit_mean);
      profit_sd.add(v.profit_sd);
    }
    table.add_row({dmra::fmt(speed, 0), dmra::fmt(rate.mean(), 3),
                   dmra::fmt(churn.mean(), 1), dmra::fmt(profit_mean.mean()),
                   dmra::fmt(profit_sd.mean())});
  }
  std::cout << table.to_aligned()
            << "\nreading: handover rate grows with speed while mean profit stays flat —\n"
               "re-running DMRA keeps the allocation near-optimal as UEs move, at the\n"
               "price of churn that incremental re-allocation damps (below).\n\n";

  // Part 2: full re-run vs incremental DMRA at one representative speed.
  std::cout << "-- re-allocation policy at 15 m/s --\n\n";
  dmra::Table policy_table(
      {"policy", "hysteresis", "handover rate", "mean profit"});
  struct PolicyRow {
    const char* label;
    dmra::ReallocationPolicy policy;
    double margin;
  };
  const std::vector<PolicyRow> rows = {
      {"full re-run", dmra::ReallocationPolicy::kFullRerun, 0.0},
      {"incremental (sticky)", dmra::ReallocationPolicy::kIncremental, 1e18},
      {"incremental", dmra::ReallocationPolicy::kIncremental, 0.5},
      {"incremental (eager)", dmra::ReallocationPolicy::kIncremental, 0.1},
  };
  for (const PolicyRow& row : rows) {
    const auto per_seed = dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t si) {
      dmra::HandoverConfig cfg;
      cfg.scenario.num_ues = static_cast<std::size_t>(cli.get_int("ues"));
      cfg.steps = static_cast<std::size_t>(cli.get_int("steps"));
      cfg.step_duration_s = cli.get_double("dt");
      cfg.seed = seeds[si];
      cfg.mobility = dmra::MobilityKind::kRandomWaypoint;
      cfg.waypoint.speed_min_mps = 7.5;
      cfg.waypoint.speed_max_mps = 22.5;
      cfg.policy = row.policy;
      cfg.incremental.hysteresis_margin = row.margin;
      const dmra::HandoverResult r = dmra::run_handover_study(cfg, *algo);
      return std::make_pair(r.handover_rate, r.mean_profit);
    });
    dmra::RunningStats rate, profit;
    for (const auto& [r, p] : per_seed) {  // seed order: jobs-invariant
      rate.add(r);
      profit.add(p);
    }
    policy_table.add_row({row.label,
                          row.margin > 1e17 ? "inf" : dmra::fmt(row.margin, 1),
                          dmra::fmt(rate.mean(), 3), dmra::fmt(profit.mean())});
  }
  std::cout << policy_table.to_aligned()
            << "\nreading: incremental DMRA keeps most of the full-rerun profit at a\n"
               "fraction of the handovers; the hysteresis margin trades the two off.\n";
  return 0;
}
