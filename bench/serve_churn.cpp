// Allocator-as-a-service driver: a long-horizon streaming churn run
// through the persistent IncrementalAllocator (src/sim/churn), with the
// serving SLO metrics an operator cares about — per-decision latency
// percentiles, re-allocation churn, profit vs a periodic from-scratch
// re-solve, and recovery time after injected faults.
//
//   ./build/bench/serve_churn --rate 20 --dwell 100 --horizon 10000
//       --resolve-every 1000 --faults "crashes=1,crash-round=5000,down-rounds=2000"
//       --event-log events.log --latency-csv latency.csv
//
// Determinism (docs/SERVING.md): the per-seed event logs, the final
// allocations, and the --out CSV are byte-identical for a given seed set
// across reruns and across --jobs values. Wall-clock latency appears only
// on stdout and in --latency-csv, never in a deterministic surface.

#include <algorithm>
#include <charconv>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

/// Shortest round-trip number formatting (std::to_chars) — the --out CSV
/// is a deterministic surface, same rule as the round CSV exporter.
template <typename T>
std::string csv_num(T v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

/// Deterministic per-seed serving row for the --out CSV (no wall-clock
/// columns — latency lives in --latency-csv and on stdout).
std::string serving_csv_header() {
  return "seed,events,arrivals,departures,moves,reassociations,churn_rate,"
         "cross_region_moves,readmitted,orphaned,recovery_events_max,resolves,"
         "resolve_gap_last,final_profit,final_active,final_served,final_cloud,"
         "peak_active,universe_slots,boundary_slots,cloud_only_slots\n";
}

void append_serving_row(std::string& out, std::uint64_t seed,
                        const dmra::ChurnStats& s) {
  const auto num = [&](auto v) { out += csv_num(v); };
  num(seed);
  out += ',';
  num(static_cast<std::uint64_t>(s.events));
  out += ',';
  num(static_cast<std::uint64_t>(s.arrivals));
  out += ',';
  num(static_cast<std::uint64_t>(s.departures));
  out += ',';
  num(static_cast<std::uint64_t>(s.moves));
  out += ',';
  num(static_cast<std::uint64_t>(s.reassociations));
  out += ',';
  num(s.churn_rate());
  out += ',';
  num(static_cast<std::uint64_t>(s.cross_region_moves));
  out += ',';
  num(static_cast<std::uint64_t>(s.readmitted));
  out += ',';
  num(static_cast<std::uint64_t>(s.orphaned_ues));
  out += ',';
  num(static_cast<std::uint64_t>(s.recovery_events_max));
  out += ',';
  num(static_cast<std::uint64_t>(s.resolves));
  out += ',';
  num(s.resolve_gap_last);
  out += ',';
  num(s.final_profit);
  out += ',';
  num(static_cast<std::uint64_t>(s.final_active));
  out += ',';
  num(static_cast<std::uint64_t>(s.final_served));
  out += ',';
  num(static_cast<std::uint64_t>(s.final_cloud));
  out += ',';
  num(static_cast<std::uint64_t>(s.peak_active));
  out += ',';
  num(static_cast<std::uint64_t>(s.universe_slots));
  out += ',';
  num(static_cast<std::uint64_t>(s.boundary_slots));
  out += ',';
  num(static_cast<std::uint64_t>(s.cloud_only_slots));
  out += '\n';
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("rate", "20", "Poisson UE arrival rate, arrivals per second");
  cli.add_flag("dwell", "100", "mean UE dwell time, seconds (exponential)");
  cli.add_flag("move-every", "0",
               "mean seconds between waypoint re-associations per UE (0 = static)");
  cli.add_flag("horizon", "10000", "events to apply before stopping");
  cli.add_flag("prefill", "-1",
               "UEs admitted at t=0 (-1 = the rate*dwell steady-state target)");
  cli.add_flag("resolve-every", "1000",
               "events between from-scratch re-solve baselines (0 = off)");
  cli.add_flag("readmit-every", "64",
               "events between cloud-dweller readmission sweeps (0 = off)");
  cli.add_flag("recovery-batch", "4", "crash-orphan re-placement attempts per event");
  cli.add_flag("regions", "4", "partition_regions() classes for coverage accounting");
  cli.add_flag("seeds", "4", "number of replication seeds");
  cli.add_flag("rho", "100", "DMRA preference weight ρ (Eq. 17)");
  cli.add_flag("slo-p99-us", "0",
               "per-decision p99 latency objective in microseconds (0 = SLO "
               "tracking off); a breached window triggers the flight recorder");
  cli.add_flag("slo-window", "256", "applied events per SLO evaluation window");
  cli.add_flag("out", "", "write the per-seed serving CSV to this path");
  cli.add_flag("event-log", "",
               "write the deterministic event logs (all seeds, in seed order)");
  cli.add_flag("latency-csv", "",
               "write the merged decision-latency histogram (wall clock)");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }

  dmra::ChurnConfig base;
  base.deployment = dmra_bench::paper_config();
  base.arrival_rate_hz = cli.get_double("rate");
  base.mean_dwell_s = cli.get_double("dwell");
  base.mean_move_interval_s = cli.get_double("move-every");
  base.horizon_events = static_cast<std::size_t>(cli.get_int("horizon"));
  base.resolve_every = static_cast<std::size_t>(cli.get_int("resolve-every"));
  base.readmit_every = static_cast<std::size_t>(cli.get_int("readmit-every"));
  base.recovery_batch = static_cast<std::size_t>(cli.get_int("recovery-batch"));
  base.regions = static_cast<std::size_t>(cli.get_int("regions"));
  base.incremental.dmra.rho = cli.get_double("rho");
  base.slo_p99_ns =
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, cli.get_int("slo-p99-us"))) *
      1000u;
  base.slo_window_events =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("slo-window")));
  base.faults = dmra_bench::faults_from(cli);
  base.prefill = cli.get_int("prefill") < 0
                     ? base.steady_state_target()
                     : static_cast<std::size_t>(cli.get_int("prefill"));

  const std::size_t num_seeds =
      std::max<std::int64_t>(1, cli.get_int("seeds"));
  const std::vector<std::uint64_t> seeds =
      dmra::default_seeds(static_cast<std::size_t>(num_seeds));
  const std::size_t jobs = dmra_bench::jobs_from(cli);

  dmra_bench::ObsSession obs_session(cli, argv[0]);
  obs_session.describe_scenario(base.deployment);
  obs_session.describe_run(seeds, jobs);

  // One independent serving run per seed, fanned across --jobs. Trace
  // shards merge back in seed order, so every export is jobs-invariant.
  std::vector<dmra::ChurnResult> runs =
      dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t k) {
        dmra::ChurnConfig cfg = base;
        cfg.seed = seeds[k];
        return dmra::run_churn(cfg);
      });

  std::cout << "== serve_churn: rate " << base.arrival_rate_hz << "/s, dwell "
            << base.mean_dwell_s << " s (steady-state target "
            << base.steady_state_target() << " UEs), horizon "
            << base.horizon_events << " events ==\n";

  std::string csv = serving_csv_header();
  std::string event_logs;
  dmra::obs::LatencyHistogram merged;
  for (std::size_t k = 0; k < runs.size(); ++k) {
    const dmra::ChurnStats& s = runs[k].stats;
    append_serving_row(csv, seeds[k], s);
    event_logs += runs[k].event_log;
    merged.merge_from(runs[k].latency);
    std::cout << "seed " << seeds[k] << ": " << s.events << " events ("
              << s.arrivals << " arrive / " << s.departures << " depart / "
              << s.moves << " move), churn " << dmra::fmt(s.churn_rate(), 4)
              << ", served " << s.final_served << "/" << s.final_active
              << ", profit " << dmra::fmt(s.final_profit, 1);
    if (s.resolves > 0)
      std::cout << ", resolve gap " << dmra::fmt(s.resolve_gap_last, 4);
    if (s.crashes > 0)
      std::cout << ", recovery<=" << s.recovery_events_max << " events";
    std::cout << ", p50 "
              << dmra::fmt(runs[k].latency.percentile_ns(0.5) / 1e3, 2) << " us\n";
  }
  std::cout << "decision latency (all seeds, wall clock): p50 "
            << dmra::fmt(merged.percentile_ns(0.5) / 1e3, 2) << " us, p99 "
            << dmra::fmt(merged.percentile_ns(0.99) / 1e3, 2) << " us, p999 "
            << dmra::fmt(merged.percentile_ns(0.999) / 1e3, 2) << " us over "
            << merged.count() << " decisions\n";
  if (base.slo_p99_ns > 0) {
    // Wall-clock SLO accounting — stdout only, never a deterministic
    // surface (ChurnSloReport contract in sim/churn.hpp).
    std::size_t windows = 0;
    std::size_t breached = 0;
    double worst_ns = 0.0;
    double burn = 0.0;
    for (const dmra::ChurnResult& r : runs) {
      windows += r.slo.windows;
      breached += r.slo.breached_windows;
      worst_ns = std::max(worst_ns, r.slo.worst_window_p99_ns);
      burn = std::max(burn, r.slo.burn_rate);
    }
    std::cout << "SLO (window p99 <= "
              << dmra::fmt(static_cast<double>(base.slo_p99_ns) / 1e3, 1)
              << " us): " << breached << "/" << windows
              << " windows breached, worst window p99 "
              << dmra::fmt(worst_ns / 1e3, 2) << " us, burn rate "
              << dmra::fmt(burn, 2) << "x budget\n";
  }

  const std::string out_path = cli.get_string("out");
  if (!out_path.empty() && write_file(out_path, csv))
    obs_session.note_output("serving-csv", out_path);
  const std::string log_path = cli.get_string("event-log");
  if (!log_path.empty() && write_file(log_path, event_logs))
    obs_session.note_output("event-log", log_path);
  const std::string lat_path = cli.get_string("latency-csv");
  if (!lat_path.empty() && write_file(lat_path, merged.to_csv()))
    obs_session.note_output("latency-csv", lat_path);
  return 0;
}
