// Shard-smoke gate: run the region-sharded runtime against the
// single-bus oracle on one scenario and fail when the profit gap
// exceeds the documented bound.
//
//   ./build/bench/shard_smoke [--ues N] [--shards K] [--seed S] [--max-gap G]
//
// Prints a one-line verdict with both profits, the relative gap, and
// the shard/boundary accounting; exits 1 when the gap exceeds
// --max-gap (a fraction: 0.05 = sharding may cost at most 5% of the
// oracle's profit), or when the sharded allocation is infeasible.
// CI runs this at 2 and 4 shards (see .github/workflows/ci.yml); the
// quality contract it enforces is documented in docs/PERFORMANCE.md
// and pinned at finer grain by tests/core/sharded_test.cpp.

// Same PR105593-family false positive documented in mec/scenario_io.cpp:
// GCC 12's -Wmaybe-uninitialized flags moved-from JsonValue temporaries.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ <= 12
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <iostream>
#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "20000", "number of UEs in the generated scenario");
  cli.add_flag("shards", "4", "region count for the sharded runtime");
  cli.add_flag("seed", "1", "scenario generation seed");
  cli.add_flag("max-gap", "0.05",
               "largest tolerated relative profit gap vs the oracle");
  dmra_bench::add_jobs_flag(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const std::size_t ues = static_cast<std::size_t>(cli.get_int("ues"));
  const std::size_t shards = static_cast<std::size_t>(cli.get_int("shards"));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double max_gap = cli.get_double("max-gap");

  dmra::ScenarioConfig cfg = dmra_bench::paper_config();
  cfg.num_ues = ues;
  const dmra::Scenario scenario = dmra::generate_scenario(cfg, seed);

  const dmra::DecentralizedResult oracle = dmra::run_decentralized_dmra(scenario);
  const double oracle_profit = dmra::total_profit(scenario, oracle.dmra.allocation);

  const dmra::ShardedResult sharded = dmra::run_sharded_dmra(
      scenario, {}, {.num_shards = shards, .jobs = dmra_bench::jobs_from(cli)});
  const double profit = dmra::total_profit(scenario, sharded.dmra.allocation);

  const dmra::FeasibilityReport feasibility =
      dmra::check_feasibility(scenario, sharded.dmra.allocation);
  const double gap =
      oracle_profit > 0.0 ? 1.0 - profit / oracle_profit : 0.0;

  std::cout << "shard_smoke: ues=" << ues << " shards=" << sharded.shard.num_shards
            << " seed=" << seed << "\n"
            << "  oracle profit  " << dmra::fmt(oracle_profit, 2) << " ("
            << oracle.dmra.rounds << " rounds)\n"
            << "  sharded profit " << dmra::fmt(profit, 2) << " (max shard rounds "
            << sharded.shard.max_shard_rounds << ", reconcile rounds "
            << sharded.shard.reconcile_rounds << ")\n"
            << "  gap " << dmra::fmt(100.0 * gap, 3) << "% (bound "
            << dmra::fmt(100.0 * max_gap, 3) << "%), interior "
            << sharded.shard.interior_ues << ", boundary " << sharded.shard.boundary_ues
            << " (reconciled " << sharded.shard.boundary_ues_reconciled << "), cloud-only "
            << sharded.shard.cloud_only_ues << "\n";

  bool ok = true;
  if (!feasibility.ok) {
    std::cerr << "FAIL: sharded allocation infeasible\n" << feasibility;
    ok = false;
  }
  if (gap > max_gap) {
    std::cerr << "FAIL: profit gap " << dmra::fmt(100.0 * gap, 3)
              << "% exceeds the " << dmra::fmt(100.0 * max_gap, 3) << "% bound\n";
    ok = false;
  }
  if (ok) std::cout << "OK\n";
  return ok ? 0 : 1;
}
