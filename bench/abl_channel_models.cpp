// Ablation A5: propagation-environment sensitivity. Swaps the large-scale
// path-loss model and adds log-normal shadowing, then reruns the Fig. 2
// comparison at one load point. Shows which conclusions survive a
// different radio environment (DMRA's ordering does; absolute profit and
// the served count do not).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "800", "number of UEs");
  cli.add_flag("seeds", "5", "seeds per configuration");
  cli.add_flag("shadowing", "0,4,8", "shadowing sigmas (dB) to sweep");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto num_ues = static_cast<std::size_t>(cli.get_int("ues"));
  const auto seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));

  std::cout << "== A5: path-loss model x shadowing ablation (" << num_ues
            << " UEs, iota=2) ==\n\n";
  dmra::Table table({"model", "shadow (dB)", "DMRA", "DCSP", "NonCo", "DMRA served"});

  for (const auto model :
       {dmra::PathlossModel::kPaperEq18, dmra::PathlossModel::kLteMacro,
        dmra::PathlossModel::kFreeSpace, dmra::PathlossModel::kTwoRay}) {
    for (const double sigma : cli.get_double_list("shadowing")) {
      dmra::RunningStats p_dmra, p_dcsp, p_nonco, served;
      for (std::uint64_t seed : seeds) {
        dmra::ScenarioConfig cfg = dmra_bench::paper_config();
        cfg.num_ues = num_ues;
        cfg.channel.pathloss_model = model;
        cfg.channel.shadowing_sigma_db = sigma;
        cfg.channel.shadowing_seed = seed;
        const dmra::Scenario s = dmra::generate_scenario(cfg, seed);
        const dmra::RunMetrics md = dmra::evaluate(s, dmra::DmraAllocator().allocate(s));
        p_dmra.add(md.total_profit);
        served.add(static_cast<double>(md.served));
        p_dcsp.add(dmra::total_profit(s, dmra::DcspAllocator().allocate(s)));
        p_nonco.add(dmra::total_profit(s, dmra::NonCoAllocator().allocate(s)));
      }
      table.add_row({dmra::pathloss_model_name(model), dmra::fmt(sigma, 0),
                     dmra::fmt(p_dmra.mean()), dmra::fmt(p_dcsp.mean()),
                     dmra::fmt(p_nonco.mean()), dmra::fmt(served.mean(), 0)});
    }
  }
  std::cout << table.to_aligned() << '\n';
  return 0;
}
