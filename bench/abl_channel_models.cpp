// Ablation A5: propagation-environment sensitivity. Swaps the large-scale
// path-loss model and adds log-normal shadowing, then reruns the Fig. 2
// comparison at one load point. Shows which conclusions survive a
// different radio environment (DMRA's ordering does; absolute profit and
// the served count do not).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "800", "number of UEs");
  cli.add_flag("seeds", "5", "seeds per configuration");
  cli.add_flag("shadowing", "0,4,8", "shadowing sigmas (dB) to sweep");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto num_ues = static_cast<std::size_t>(cli.get_int("ues"));
  const auto seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  dmra::ScenarioConfig base_cfg = dmra_bench::paper_config();
  base_cfg.num_ues = num_ues;
  obs_session.describe_scenario(base_cfg);
  obs_session.describe_run(seeds, jobs);
  const auto faults = dmra_bench::faults_from(cli);

  std::cout << "== A5: path-loss model x shadowing ablation (" << num_ues
            << " UEs, iota=2) ==\n\n";
  struct SeedValues {
    double p_dmra, p_dcsp, p_nonco, served;
  };
  dmra::Table table({"model", "shadow (dB)", "DMRA", "DCSP", "NonCo", "DMRA served"});

  for (const auto model :
       {dmra::PathlossModel::kPaperEq18, dmra::PathlossModel::kLteMacro,
        dmra::PathlossModel::kFreeSpace, dmra::PathlossModel::kTwoRay}) {
    for (const double sigma : cli.get_double_list("shadowing")) {
      const auto per_seed = dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t si) {
        dmra::ScenarioConfig cfg = dmra_bench::paper_config();
        cfg.num_ues = num_ues;
        cfg.channel.pathloss_model = model;
        cfg.channel.shadowing_sigma_db = sigma;
        cfg.channel.shadowing_seed = seeds[si];
        const dmra::Scenario s = dmra::generate_scenario(cfg, seeds[si]);
        const dmra::RunMetrics md =
            dmra::evaluate(s, dmra_bench::make_dmra({}, faults)->allocate(s));
        return SeedValues{md.total_profit,
                          dmra::total_profit(s, dmra::DcspAllocator().allocate(s)),
                          dmra::total_profit(s, dmra::NonCoAllocator().allocate(s)),
                          static_cast<double>(md.served)};
      });
      dmra::RunningStats p_dmra, p_dcsp, p_nonco, served;
      for (const SeedValues& v : per_seed) {  // seed order: jobs-invariant
        p_dmra.add(v.p_dmra);
        p_dcsp.add(v.p_dcsp);
        p_nonco.add(v.p_nonco);
        served.add(v.served);
      }
      table.add_row({dmra::pathloss_model_name(model), dmra::fmt(sigma, 0),
                     dmra::fmt(p_dmra.mean()), dmra::fmt(p_dcsp.mean()),
                     dmra::fmt(p_nonco.mean()), dmra::fmt(served.mean(), 0)});
    }
  }
  std::cout << table.to_aligned() << '\n';
  return 0;
}
