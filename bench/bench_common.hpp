// Shared plumbing for the figure benches: paper-default configuration,
// the paper's algorithm roster, and result printing.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dmra/dmra.hpp"

namespace dmra_bench {

/// ScenarioConfig with the paper's §VI-A values; callers override ι,
/// placement, and UE count per figure.
inline dmra::ScenarioConfig paper_config() { return dmra::ScenarioConfig{}; }

/// Every bench takes --jobs: worker threads for the per-seed replication
/// fan-out (0 = hardware concurrency, 1 = serial). Results are identical
/// for every value — parallelism only changes wall-clock.
inline void add_jobs_flag(dmra::Cli& cli) {
  cli.add_flag("jobs", "0",
               "worker threads for per-seed replication (0 = hardware concurrency)");
}

/// The --jobs value as run_experiment / parallel_map expect it.
inline std::size_t jobs_from(const dmra::Cli& cli) {
  const std::int64_t v = cli.get_int("jobs");
  return v <= 0 ? 0 : static_cast<std::size_t>(v);
}

/// Every bench takes --trace / --round-csv / --manifest: observability
/// exports (docs/OBSERVABILITY.md, docs/PROVENANCE.md). Empty (the
/// default) = disabled; disabled tracing is a strict no-op in the
/// instrumented code paths. All three are jobs-invariant: a traced
/// --jobs=8 run writes byte-identical files to --jobs=1 (obs/shard.hpp).
inline void add_obs_flags(dmra::Cli& cli) {
  cli.add_flag("trace", "", "write a Chrome trace-event JSON of the run to this path");
  cli.add_flag("round-csv", "", "write per-round aggregate metrics as CSV to this path");
  cli.add_flag("manifest", "",
               "write a dmra-manifest/1 run-provenance JSON to this path");
  cli.add_flag("metrics-out", "",
               "write a Prometheus text exposition of the run's metrics "
               "(flight + trace registries) to this path");
  cli.add_flag("metrics-window", "0",
               "fixed-window metrics rollup length in logical rounds/events "
               "(0 = windowing off; docs/OBSERVABILITY.md)");
  cli.add_flag("postmortem", "",
               "write the dmra-postmortem/1 flight-recorder dump to this path");
  cli.add_flag("dump-on", "",
               "explicit flight-recorder trigger predicate, e.g. \"round=200\"");
}

/// RAII observability session for a bench main. When --trace or
/// --round-csv was given, installs a TraceRecorder for the session's
/// lifetime (parallel sections shard per task and merge back
/// deterministically — obs/shard.hpp) and writes the requested exports,
/// plus a metrics summary to stdout, on destruction. When --manifest was
/// given, also writes a run-provenance manifest (obs/manifest.hpp)
/// capturing the flag snapshot, scenario config, seeds, jobs, fault spec,
/// and every export path the bench reported via note_output().
///
/// Independently of tracing, a FlightRecorder (obs/flight.hpp) is
/// *always* installed for the session's lifetime: the last-N-events ring
/// keeps rolling at steady-state-allocation-free cost, and a trigger
/// (BS crash, audit violation, SLO breach, --dump-on) freezes it for the
/// post-mortem. --postmortem writes the dmra-postmortem/1 dump (trigger:
/// null when nothing fired), --metrics-out writes the Prometheus text
/// exposition of the combined flight + trace registries, and
/// --metrics-window arms fixed-window rollups inside both artifacts.
///
/// Distinct export flags must name distinct paths; a collision is a hard
/// error (exit 2) rather than a silent overwrite.
class ObsSession {
 public:
  explicit ObsSession(const dmra::Cli& cli, const std::string& program = "bench")
      : trace_path_(cli.get_string("trace")),
        csv_path_(cli.get_string("round-csv")),
        manifest_path_(cli.get_string("manifest")),
        metrics_path_(cli.get_string("metrics-out")),
        postmortem_path_(cli.get_string("postmortem")),
        flight_(flight_config(cli)) {
    input_.program = program;
    input_.flags = cli.values();
    if (auto it = input_.flags.find("faults"); it != input_.flags.end())
      input_.fault_spec = it->second;
    reject_duplicate_paths();
    flight_.set_fault_context(input_.fault_spec);
    arm_dump_on(cli.get_string("dump-on"));
    flight_install_.emplace(&flight_);
    if (enabled()) {
      install_.emplace(&recorder_);
      // Tracing composes with parallelism by construction; say so once
      // so nobody serializes a run out of caution (docs/OBSERVABILITY.md).
      std::cerr << dmra::obs::trace_jobs_notice() << '\n';
    }
  }

  ~ObsSession() {
    install_.reset();         // uninstall before exporting
    flight_install_.reset();  // ditto: the rings are now quiescent
    if (enabled()) {
      if (!trace_path_.empty()) {
        write(trace_path_, recorder_.to_chrome_trace_json());
        input_.outputs.emplace_back("trace", trace_path_);
      }
      if (!csv_path_.empty()) {
        write(csv_path_, recorder_.to_round_csv());
        input_.outputs.emplace_back("round-csv", csv_path_);
      }
      if (!recorder_.metrics().empty())
        std::cout << "\n== observability metrics ==\n"
                  << recorder_.metrics().to_table().to_aligned();
    }
    if (!postmortem_path_.empty()) {
      write(postmortem_path_, flight_.postmortem_json());
      input_.outputs.emplace_back("postmortem", postmortem_path_);
    }
    if (!metrics_path_.empty()) {
      // Flight first so the always-on serving counters lead; trace
      // counters (when traced) extend rather than replace them.
      dmra::obs::MetricsRegistry combined;
      combined.merge_from(flight_.metrics());
      if (enabled()) combined.merge_from(recorder_.metrics());
      write(metrics_path_, dmra::obs::to_prometheus_text(combined));
      input_.outputs.emplace_back("metrics-out", metrics_path_);
    }
    if (!manifest_path_.empty()) {
      input_.metrics = enabled() ? &recorder_.metrics() : nullptr;
      write(manifest_path_, dmra::obs::manifest_to_json(input_));
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// True iff tracing (trace and/or round CSV) is active.
  bool enabled() const { return !trace_path_.empty() || !csv_path_.empty(); }

  /// The session's always-on flight recorder (installed thread-local for
  /// the session's lifetime; benches may read triggers / inject SLO state).
  dmra::obs::FlightRecorder& flight_recorder() { return flight_; }

  /// Record the generator configuration the run used (manifest provenance).
  void describe_scenario(const dmra::ScenarioConfig& cfg) {
    input_.scenario_config = dmra::scenario_config_json(cfg);
  }

  /// Record the replication inputs the run used (manifest provenance).
  void describe_run(std::vector<std::uint64_t> seeds, std::size_t jobs) {
    input_.seeds = std::move(seeds);
    input_.jobs = jobs;
  }

  /// Report a non-observability export (bench JSON, series CSV, ...) so the
  /// manifest cross-links every file the run produced.
  void note_output(const std::string& kind, const std::string& path) {
    input_.outputs.emplace_back(kind, path);
  }

 private:
  static dmra::obs::FlightRecorder::Config flight_config(const dmra::Cli& cli) {
    dmra::obs::FlightRecorder::Config config;
    const std::int64_t window = cli.get_int("metrics-window");
    if (window > 0) config.window_len = static_cast<std::uint64_t>(window);
    return config;
  }

  /// --dump-on grammar: "round=K". A malformed predicate is fatal — a
  /// bench silently never dumping would defeat the whole point.
  void arm_dump_on(const std::string& text) {
    if (text.empty()) return;
    const std::string prefix = "round=";
    std::uint64_t round = 0;
    if (text.rfind(prefix, 0) == 0) {
      const char* begin = text.data() + prefix.size();
      const char* end = text.data() + text.size();
      if (begin != end &&
          std::from_chars(begin, end, round).ptr == end) {
        flight_.arm_dump_on_round(round);
        return;
      }
    }
    std::cerr << "error: --dump-on expects \"round=K\", got '" << text << "'\n";
    std::exit(1);
  }

  void reject_duplicate_paths() const {
    const std::pair<const char*, const std::string*> paths[] = {
        {"--trace", &trace_path_},
        {"--round-csv", &csv_path_},
        {"--manifest", &manifest_path_},
        {"--metrics-out", &metrics_path_},
        {"--postmortem", &postmortem_path_},
    };
    for (std::size_t a = 0; a < std::size(paths); ++a)
      for (std::size_t b = a + 1; b < std::size(paths); ++b)
        if (!paths[a].second->empty() && *paths[a].second == *paths[b].second) {
          std::cerr << "error: " << paths[a].first << " and " << paths[b].first
                    << " both write to '" << *paths[a].second
                    << "' — each export needs its own path\n";
          std::exit(2);
        }
  }

  static void write(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << '\n';
      return;
    }
    out << content;
    std::cout << "(observability export written to " << path << ")\n";
  }

  std::string trace_path_;
  std::string csv_path_;
  std::string manifest_path_;
  std::string metrics_path_;
  std::string postmortem_path_;
  dmra::obs::ManifestInput input_;
  dmra::obs::TraceRecorder recorder_;
  dmra::obs::FlightRecorder flight_;
  std::optional<dmra::obs::ScopedTraceRecorder> install_;
  std::optional<dmra::obs::ScopedFlightRecorder> flight_install_;
};

/// Every bench takes --faults: a fault-injection spec (sim/faults.hpp
/// grammar, docs/RESILIENCE.md) applied to the DMRA runs. Empty (the
/// default) = the fault-free direct solver, byte-identical to before the
/// flag existed.
inline void add_fault_flags(dmra::Cli& cli) {
  cli.add_flag("faults", "",
               "run DMRA decentralized under a fault spec, e.g. "
               "\"loss=0.1,crashes=2,seed=7\" (docs/RESILIENCE.md)");
}

/// The parsed --faults spec, or nullopt when the flag is empty / injects
/// nothing. Spec errors are fatal: a bench silently falling back to
/// fault-free DMRA would corrupt a resilience sweep.
inline std::optional<dmra::FaultSpec> faults_from(const dmra::Cli& cli) {
  const std::string text = cli.get_string("faults");
  if (text.empty()) return std::nullopt;
  try {
    dmra::FaultSpec spec = dmra::parse_fault_spec(text);
    if (!spec.any()) return std::nullopt;
    return spec;
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    std::exit(1);
  }
}

/// The DMRA entry for a bench roster: the direct solver normally, the
/// fault-injected decentralized runtime when --faults asks for one.
inline dmra::AllocatorPtr make_dmra(const dmra::DmraConfig& cfg,
                                    const std::optional<dmra::FaultSpec>& faults) {
  if (faults) return std::make_unique<dmra::FaultyDmraAllocator>(*faults, cfg);
  return std::make_unique<dmra::DmraAllocator>(cfg);
}

/// The roster of Figs. 2–5: DMRA vs DCSP vs NonCo.
inline std::vector<dmra::AllocatorPtr> paper_allocators(
    const dmra::DmraConfig& cfg,
    const std::optional<dmra::FaultSpec>& faults = std::nullopt) {
  std::vector<dmra::AllocatorPtr> algos;
  algos.push_back(make_dmra(cfg, faults));
  algos.push_back(std::make_unique<dmra::DcspAllocator>());
  algos.push_back(std::make_unique<dmra::NonCoAllocator>());
  return algos;
}

/// Print the experiment table plus a per-column CSV block when asked;
/// optionally also write the CSV to `csv_path` (empty = don't).
inline void print_result(const dmra::ExperimentResult& result, bool csv,
                         const std::string& csv_path = "") {
  std::cout << "== " << result.title << " ==\n";
  std::cout << "metric: " << result.metric_label << " (mean ± 95% CI over "
            << (result.cells.empty() ? 0 : result.cells[0][0].count) << " seeds)\n\n";
  const dmra::Table table = result.to_table();
  std::cout << table.to_aligned() << '\n';
  if (csv) std::cout << table.to_csv() << '\n';
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot write " << csv_path << '\n';
    } else {
      out << table.to_csv();
      std::cout << "(series written to " << csv_path << ")\n";
    }
  }
}

/// How often the first algorithm (DMRA) strictly leads every other column —
/// the headline comparison of Figs. 2–5 — plus Welch t-tests of each gap.
inline void print_dominance(const dmra::ExperimentResult& result) {
  if (result.algo_names.size() < 2) return;
  std::size_t wins = 0;
  for (const auto& row : result.cells) {
    bool best = true;
    for (std::size_t ai = 1; ai < row.size(); ++ai)
      if (row[0].mean <= row[ai].mean) best = false;
    if (best) ++wins;
  }
  std::cout << "shape check: " << result.algo_names[0] << " leads at " << wins << "/"
            << result.cells.size() << " sweep points\n";
  if (!result.cells.empty() && result.cells[0][0].count >= 2) {
    std::cout << "\nsignificance (Welch, two-sided 95%):\n"
              << result.to_significance_table().to_aligned();
  }
}

}  // namespace dmra_bench
