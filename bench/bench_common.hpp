// Shared plumbing for the figure benches: paper-default configuration,
// the paper's algorithm roster, and result printing.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dmra/dmra.hpp"

namespace dmra_bench {

/// ScenarioConfig with the paper's §VI-A values; callers override ι,
/// placement, and UE count per figure.
inline dmra::ScenarioConfig paper_config() { return dmra::ScenarioConfig{}; }

/// Every bench takes --jobs: worker threads for the per-seed replication
/// fan-out (0 = hardware concurrency, 1 = serial). Results are identical
/// for every value — parallelism only changes wall-clock.
inline void add_jobs_flag(dmra::Cli& cli) {
  cli.add_flag("jobs", "0",
               "worker threads for per-seed replication (0 = hardware concurrency)");
}

/// The --jobs value as run_experiment / parallel_map expect it.
inline std::size_t jobs_from(const dmra::Cli& cli) {
  const std::int64_t v = cli.get_int("jobs");
  return v <= 0 ? 0 : static_cast<std::size_t>(v);
}

/// Every bench takes --trace / --round-csv: observability exports
/// (docs/OBSERVABILITY.md). Empty (the default) = tracing disabled, which
/// is a strict no-op in the instrumented code paths.
inline void add_obs_flags(dmra::Cli& cli) {
  cli.add_flag("trace", "", "write a Chrome trace-event JSON of the run to this path");
  cli.add_flag("round-csv", "", "write per-round aggregate metrics as CSV to this path");
}

/// RAII tracing session for a bench main. When --trace or --round-csv was
/// given, installs a TraceRecorder on the calling thread for the session's
/// lifetime and writes the requested export files (plus a metrics summary
/// to stdout) on destruction. The recorder is thread-local, so traced runs
/// must stay on this thread: route the --jobs value through clamp_jobs().
class ObsSession {
 public:
  explicit ObsSession(const dmra::Cli& cli)
      : trace_path_(cli.get_string("trace")), csv_path_(cli.get_string("round-csv")) {
    if (enabled()) install_.emplace(&recorder_);
  }

  ~ObsSession() {
    if (!enabled()) return;
    install_.reset();  // uninstall before exporting
    if (!trace_path_.empty()) write(trace_path_, recorder_.to_chrome_trace_json());
    if (!csv_path_.empty()) write(csv_path_, recorder_.to_round_csv());
    if (!recorder_.metrics().empty())
      std::cout << "\n== observability metrics ==\n"
                << recorder_.metrics().to_table().to_aligned();
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool enabled() const { return !trace_path_.empty() || !csv_path_.empty(); }

  /// Tracing forces serial replication (recorder is thread-local); an
  /// untraced run keeps whatever --jobs asked for.
  std::size_t clamp_jobs(std::size_t jobs) const {
    if (!enabled()) return jobs;
    if (jobs != 1) std::cerr << "(tracing enabled: forcing --jobs=1)\n";
    return 1;
  }

 private:
  static void write(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << '\n';
      return;
    }
    out << content;
    std::cout << "(observability export written to " << path << ")\n";
  }

  std::string trace_path_;
  std::string csv_path_;
  dmra::obs::TraceRecorder recorder_;
  std::optional<dmra::obs::ScopedTraceRecorder> install_;
};

/// Every bench takes --faults: a fault-injection spec (sim/faults.hpp
/// grammar, docs/RESILIENCE.md) applied to the DMRA runs. Empty (the
/// default) = the fault-free direct solver, byte-identical to before the
/// flag existed.
inline void add_fault_flags(dmra::Cli& cli) {
  cli.add_flag("faults", "",
               "run DMRA decentralized under a fault spec, e.g. "
               "\"loss=0.1,crashes=2,seed=7\" (docs/RESILIENCE.md)");
}

/// The parsed --faults spec, or nullopt when the flag is empty / injects
/// nothing. Spec errors are fatal: a bench silently falling back to
/// fault-free DMRA would corrupt a resilience sweep.
inline std::optional<dmra::FaultSpec> faults_from(const dmra::Cli& cli) {
  const std::string text = cli.get_string("faults");
  if (text.empty()) return std::nullopt;
  try {
    dmra::FaultSpec spec = dmra::parse_fault_spec(text);
    if (!spec.any()) return std::nullopt;
    return spec;
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    std::exit(1);
  }
}

/// The DMRA entry for a bench roster: the direct solver normally, the
/// fault-injected decentralized runtime when --faults asks for one.
inline dmra::AllocatorPtr make_dmra(const dmra::DmraConfig& cfg,
                                    const std::optional<dmra::FaultSpec>& faults) {
  if (faults) return std::make_unique<dmra::FaultyDmraAllocator>(*faults, cfg);
  return std::make_unique<dmra::DmraAllocator>(cfg);
}

/// The roster of Figs. 2–5: DMRA vs DCSP vs NonCo.
inline std::vector<dmra::AllocatorPtr> paper_allocators(
    const dmra::DmraConfig& cfg,
    const std::optional<dmra::FaultSpec>& faults = std::nullopt) {
  std::vector<dmra::AllocatorPtr> algos;
  algos.push_back(make_dmra(cfg, faults));
  algos.push_back(std::make_unique<dmra::DcspAllocator>());
  algos.push_back(std::make_unique<dmra::NonCoAllocator>());
  return algos;
}

/// Print the experiment table plus a per-column CSV block when asked;
/// optionally also write the CSV to `csv_path` (empty = don't).
inline void print_result(const dmra::ExperimentResult& result, bool csv,
                         const std::string& csv_path = "") {
  std::cout << "== " << result.title << " ==\n";
  std::cout << "metric: " << result.metric_label << " (mean ± 95% CI over "
            << (result.cells.empty() ? 0 : result.cells[0][0].count) << " seeds)\n\n";
  const dmra::Table table = result.to_table();
  std::cout << table.to_aligned() << '\n';
  if (csv) std::cout << table.to_csv() << '\n';
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot write " << csv_path << '\n';
    } else {
      out << table.to_csv();
      std::cout << "(series written to " << csv_path << ")\n";
    }
  }
}

/// How often the first algorithm (DMRA) strictly leads every other column —
/// the headline comparison of Figs. 2–5 — plus Welch t-tests of each gap.
inline void print_dominance(const dmra::ExperimentResult& result) {
  if (result.algo_names.size() < 2) return;
  std::size_t wins = 0;
  for (const auto& row : result.cells) {
    bool best = true;
    for (std::size_t ai = 1; ai < row.size(); ++ai)
      if (row[0].mean <= row[ai].mean) best = false;
    if (best) ++wins;
  }
  std::cout << "shape check: " << result.algo_names[0] << " leads at " << wins << "/"
            << result.cells.size() << " sweep points\n";
  if (!result.cells.empty() && result.cells[0][0].count >= 2) {
    std::cout << "\nsignificance (Welch, two-sided 95%):\n"
              << result.to_significance_table().to_aligned();
  }
}

}  // namespace dmra_bench
