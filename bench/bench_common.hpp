// Shared plumbing for the figure benches: paper-default configuration,
// the paper's algorithm roster, and result printing.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dmra/dmra.hpp"

namespace dmra_bench {

/// ScenarioConfig with the paper's §VI-A values; callers override ι,
/// placement, and UE count per figure.
inline dmra::ScenarioConfig paper_config() { return dmra::ScenarioConfig{}; }

/// Every bench takes --jobs: worker threads for the per-seed replication
/// fan-out (0 = hardware concurrency, 1 = serial). Results are identical
/// for every value — parallelism only changes wall-clock.
inline void add_jobs_flag(dmra::Cli& cli) {
  cli.add_flag("jobs", "0",
               "worker threads for per-seed replication (0 = hardware concurrency)");
}

/// The --jobs value as run_experiment / parallel_map expect it.
inline std::size_t jobs_from(const dmra::Cli& cli) {
  const std::int64_t v = cli.get_int("jobs");
  return v <= 0 ? 0 : static_cast<std::size_t>(v);
}

/// Every bench takes --trace / --round-csv / --manifest: observability
/// exports (docs/OBSERVABILITY.md, docs/PROVENANCE.md). Empty (the
/// default) = disabled; disabled tracing is a strict no-op in the
/// instrumented code paths. All three are jobs-invariant: a traced
/// --jobs=8 run writes byte-identical files to --jobs=1 (obs/shard.hpp).
inline void add_obs_flags(dmra::Cli& cli) {
  cli.add_flag("trace", "", "write a Chrome trace-event JSON of the run to this path");
  cli.add_flag("round-csv", "", "write per-round aggregate metrics as CSV to this path");
  cli.add_flag("manifest", "",
               "write a dmra-manifest/1 run-provenance JSON to this path");
}

/// RAII observability session for a bench main. When --trace or
/// --round-csv was given, installs a TraceRecorder for the session's
/// lifetime (parallel sections shard per task and merge back
/// deterministically — obs/shard.hpp) and writes the requested exports,
/// plus a metrics summary to stdout, on destruction. When --manifest was
/// given, also writes a run-provenance manifest (obs/manifest.hpp)
/// capturing the flag snapshot, scenario config, seeds, jobs, fault spec,
/// and every export path the bench reported via note_output().
///
/// Distinct export flags must name distinct paths; a collision is a hard
/// error (exit 2) rather than a silent overwrite.
class ObsSession {
 public:
  explicit ObsSession(const dmra::Cli& cli, const std::string& program = "bench")
      : trace_path_(cli.get_string("trace")),
        csv_path_(cli.get_string("round-csv")),
        manifest_path_(cli.get_string("manifest")) {
    input_.program = program;
    input_.flags = cli.values();
    if (auto it = input_.flags.find("faults"); it != input_.flags.end())
      input_.fault_spec = it->second;
    reject_duplicate_paths();
    if (enabled()) install_.emplace(&recorder_);
  }

  ~ObsSession() {
    if (enabled()) {
      install_.reset();  // uninstall before exporting
      if (!trace_path_.empty()) {
        write(trace_path_, recorder_.to_chrome_trace_json());
        input_.outputs.emplace_back("trace", trace_path_);
      }
      if (!csv_path_.empty()) {
        write(csv_path_, recorder_.to_round_csv());
        input_.outputs.emplace_back("round-csv", csv_path_);
      }
      if (!recorder_.metrics().empty())
        std::cout << "\n== observability metrics ==\n"
                  << recorder_.metrics().to_table().to_aligned();
    }
    if (!manifest_path_.empty()) {
      input_.metrics = enabled() ? &recorder_.metrics() : nullptr;
      write(manifest_path_, dmra::obs::manifest_to_json(input_));
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// True iff tracing (trace and/or round CSV) is active.
  bool enabled() const { return !trace_path_.empty() || !csv_path_.empty(); }

  /// Record the generator configuration the run used (manifest provenance).
  void describe_scenario(const dmra::ScenarioConfig& cfg) {
    input_.scenario_config = dmra::scenario_config_json(cfg);
  }

  /// Record the replication inputs the run used (manifest provenance).
  void describe_run(std::vector<std::uint64_t> seeds, std::size_t jobs) {
    input_.seeds = std::move(seeds);
    input_.jobs = jobs;
  }

  /// Report a non-observability export (bench JSON, series CSV, ...) so the
  /// manifest cross-links every file the run produced.
  void note_output(const std::string& kind, const std::string& path) {
    input_.outputs.emplace_back(kind, path);
  }

 private:
  void reject_duplicate_paths() const {
    const std::pair<const char*, const std::string*> paths[] = {
        {"--trace", &trace_path_},
        {"--round-csv", &csv_path_},
        {"--manifest", &manifest_path_},
    };
    for (std::size_t a = 0; a < std::size(paths); ++a)
      for (std::size_t b = a + 1; b < std::size(paths); ++b)
        if (!paths[a].second->empty() && *paths[a].second == *paths[b].second) {
          std::cerr << "error: " << paths[a].first << " and " << paths[b].first
                    << " both write to '" << *paths[a].second
                    << "' — each export needs its own path\n";
          std::exit(2);
        }
  }

  static void write(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << '\n';
      return;
    }
    out << content;
    std::cout << "(observability export written to " << path << ")\n";
  }

  std::string trace_path_;
  std::string csv_path_;
  std::string manifest_path_;
  dmra::obs::ManifestInput input_;
  dmra::obs::TraceRecorder recorder_;
  std::optional<dmra::obs::ScopedTraceRecorder> install_;
};

/// Every bench takes --faults: a fault-injection spec (sim/faults.hpp
/// grammar, docs/RESILIENCE.md) applied to the DMRA runs. Empty (the
/// default) = the fault-free direct solver, byte-identical to before the
/// flag existed.
inline void add_fault_flags(dmra::Cli& cli) {
  cli.add_flag("faults", "",
               "run DMRA decentralized under a fault spec, e.g. "
               "\"loss=0.1,crashes=2,seed=7\" (docs/RESILIENCE.md)");
}

/// The parsed --faults spec, or nullopt when the flag is empty / injects
/// nothing. Spec errors are fatal: a bench silently falling back to
/// fault-free DMRA would corrupt a resilience sweep.
inline std::optional<dmra::FaultSpec> faults_from(const dmra::Cli& cli) {
  const std::string text = cli.get_string("faults");
  if (text.empty()) return std::nullopt;
  try {
    dmra::FaultSpec spec = dmra::parse_fault_spec(text);
    if (!spec.any()) return std::nullopt;
    return spec;
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    std::exit(1);
  }
}

/// The DMRA entry for a bench roster: the direct solver normally, the
/// fault-injected decentralized runtime when --faults asks for one.
inline dmra::AllocatorPtr make_dmra(const dmra::DmraConfig& cfg,
                                    const std::optional<dmra::FaultSpec>& faults) {
  if (faults) return std::make_unique<dmra::FaultyDmraAllocator>(*faults, cfg);
  return std::make_unique<dmra::DmraAllocator>(cfg);
}

/// The roster of Figs. 2–5: DMRA vs DCSP vs NonCo.
inline std::vector<dmra::AllocatorPtr> paper_allocators(
    const dmra::DmraConfig& cfg,
    const std::optional<dmra::FaultSpec>& faults = std::nullopt) {
  std::vector<dmra::AllocatorPtr> algos;
  algos.push_back(make_dmra(cfg, faults));
  algos.push_back(std::make_unique<dmra::DcspAllocator>());
  algos.push_back(std::make_unique<dmra::NonCoAllocator>());
  return algos;
}

/// Print the experiment table plus a per-column CSV block when asked;
/// optionally also write the CSV to `csv_path` (empty = don't).
inline void print_result(const dmra::ExperimentResult& result, bool csv,
                         const std::string& csv_path = "") {
  std::cout << "== " << result.title << " ==\n";
  std::cout << "metric: " << result.metric_label << " (mean ± 95% CI over "
            << (result.cells.empty() ? 0 : result.cells[0][0].count) << " seeds)\n\n";
  const dmra::Table table = result.to_table();
  std::cout << table.to_aligned() << '\n';
  if (csv) std::cout << table.to_csv() << '\n';
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot write " << csv_path << '\n';
    } else {
      out << table.to_csv();
      std::cout << "(series written to " << csv_path << ")\n";
    }
  }
}

/// How often the first algorithm (DMRA) strictly leads every other column —
/// the headline comparison of Figs. 2–5 — plus Welch t-tests of each gap.
inline void print_dominance(const dmra::ExperimentResult& result) {
  if (result.algo_names.size() < 2) return;
  std::size_t wins = 0;
  for (const auto& row : result.cells) {
    bool best = true;
    for (std::size_t ai = 1; ai < row.size(); ++ai)
      if (row[0].mean <= row[ai].mean) best = false;
    if (best) ++wins;
  }
  std::cout << "shape check: " << result.algo_names[0] << " leads at " << wins << "/"
            << result.cells.size() << " sweep points\n";
  if (!result.cells.empty() && result.cells[0][0].count >= 2) {
    std::cout << "\nsignificance (Welch, two-sided 95%):\n"
              << result.to_significance_table().to_aligned();
  }
}

}  // namespace dmra_bench
