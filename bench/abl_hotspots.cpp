// Ablation A9: non-uniform demand. The paper's introduction motivates
// densely-deployed BSs in "popular areas" but evaluates a uniform UE
// population; this bench concentrates the population into hotspots and
// skews service popularity (Zipf) to see which scheme degrades and how.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "800", "number of UEs");
  cli.add_flag("seeds", "5", "seeds per configuration");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto num_ues = static_cast<std::size_t>(cli.get_int("ues"));
  const auto seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  dmra::ScenarioConfig base_cfg = dmra_bench::paper_config();
  base_cfg.num_ues = num_ues;
  obs_session.describe_scenario(base_cfg);
  obs_session.describe_run(seeds, jobs);
  const auto faults = dmra_bench::faults_from(cli);

  struct Variant {
    const char* label;
    dmra::UeDistribution dist;
    dmra::ServicePopularity pop;
  };
  const std::vector<Variant> variants = {
      {"uniform/uniform (paper)", dmra::UeDistribution::kUniform,
       dmra::ServicePopularity::kUniform},
      {"hotspots/uniform", dmra::UeDistribution::kHotspots,
       dmra::ServicePopularity::kUniform},
      {"uniform/zipf", dmra::UeDistribution::kUniform, dmra::ServicePopularity::kZipf},
      {"hotspots/zipf", dmra::UeDistribution::kHotspots, dmra::ServicePopularity::kZipf},
  };

  std::cout << "== A9: demand-skew ablation (" << num_ues << " UEs, iota=2) ==\n\n";
  dmra::Table table({"workload", "DMRA profit", "DCSP profit", "NonCo profit",
                     "DMRA served", "DMRA fwd (Mbps)"});
  struct SeedValues {
    double p_dmra, p_dcsp, p_nonco, served, fwd;
  };
  for (const Variant& v : variants) {
    const auto per_seed = dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t si) {
      dmra::ScenarioConfig cfg = dmra_bench::paper_config();
      cfg.num_ues = num_ues;
      cfg.ue_distribution = v.dist;
      cfg.service_popularity = v.pop;
      cfg.zipf_s = 1.0;
      const dmra::Scenario s = dmra::generate_scenario(cfg, seeds[si]);
      const dmra::RunMetrics m =
          dmra::evaluate(s, dmra_bench::make_dmra({}, faults)->allocate(s));
      return SeedValues{m.total_profit,
                        dmra::total_profit(s, dmra::DcspAllocator().allocate(s)),
                        dmra::total_profit(s, dmra::NonCoAllocator().allocate(s)),
                        static_cast<double>(m.served), m.forwarded_traffic_mbps};
    });
    dmra::RunningStats p_dmra, p_dcsp, p_nonco, served, fwd;
    for (const SeedValues& sv : per_seed) {  // seed order: jobs-invariant
      p_dmra.add(sv.p_dmra);
      p_dcsp.add(sv.p_dcsp);
      p_nonco.add(sv.p_nonco);
      served.add(sv.served);
      fwd.add(sv.fwd);
    }
    table.add_row({v.label, dmra::fmt(p_dmra.mean()), dmra::fmt(p_dcsp.mean()),
                   dmra::fmt(p_nonco.mean()), dmra::fmt(served.mean(), 0),
                   dmra::fmt(fwd.mean())});
  }
  std::cout << table.to_aligned()
            << "\nreading: hotspots overload the few covering BSs (cloud overflow rises\n"
               "for everyone); Zipf contention concentrates per-service CRU pressure.\n"
               "DMRA's lead persists under both skews — its rematch loop is what keeps\n"
               "hotspot UEs from stranding.\n";
  return 0;
}
