// Figures 6 & 7: the effect of the preference weight ρ (Eq. 17) at 1000
// UEs with regular BS placement.
//   Fig. 6 — total SP profit vs. ρ           (ι = 2)
//   Fig. 7 — total forwarded traffic vs. ρ   (ι = 1.1)
// The paper's claim: larger ρ steers UEs toward BSs with more remaining
// resources, so fewer tasks overflow to the cloud — profit rises,
// forwarded load falls.

#include <iostream>

#include "bench_common.hpp"

#ifndef DMRA_FIG
#define DMRA_FIG 6
#endif

namespace {
constexpr bool kProfit = (DMRA_FIG == 6);
constexpr double kIota = kProfit ? 2.0 : 1.1;
}  // namespace

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("rho", "0,50,100,150,200,300,400", "rho values to sweep");
  cli.add_flag("ues", "1000", "number of UEs");
  cli.add_flag("seeds", "10", "number of scenario seeds per point");
  cli.add_flag("csv", "false", "also print the table as CSV");
  cli.add_flag("out", "", "write the series as CSV to this path");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto num_ues = static_cast<std::size_t>(cli.get_int("ues"));
  const auto faults = dmra_bench::faults_from(cli);

  dmra::ExperimentSpec spec;
  spec.title = kProfit
                   ? std::string("Fig. 6: total profit of SPs vs. rho (iota=2, 1000 UEs)")
                   : std::string(
                         "Fig. 7: total forwarded traffic load vs. rho (iota=1.1, 1000 UEs)");
  spec.x_label = "rho";
  spec.xs = cli.get_double_list("rho");
  spec.seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  spec.metric_label = kProfit ? "total profit" : "forwarded traffic (Mbps)";
  spec.metric = [](const dmra::RunMetrics& m) {
    return kProfit ? m.total_profit : m.forwarded_traffic_mbps;
  };
  spec.make_config = [&](double) {
    dmra::ScenarioConfig cfg = dmra_bench::paper_config();
    cfg.num_ues = num_ues;
    cfg.pricing.iota = kIota;
    cfg.placement = dmra::PlacementMethod::kRegularGrid;
    return cfg;
  };
  spec.make_allocators = [&](double rho) {
    std::vector<dmra::AllocatorPtr> algos;
    algos.push_back(dmra_bench::make_dmra(dmra::DmraConfig{.rho = rho}, faults));
    return algos;
  };
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  spec.jobs = dmra_bench::jobs_from(cli);
  if (!spec.xs.empty()) obs_session.describe_scenario(spec.make_config(spec.xs.front()));
  obs_session.describe_run(spec.seeds, spec.jobs);
  const std::string out_path = cli.get_string("out");
  if (!out_path.empty()) obs_session.note_output("series-csv", out_path);

  const dmra::ExperimentResult result = dmra::run_experiment(spec);
  dmra_bench::print_result(result, cli.get_bool("csv"), out_path);

  // Shape check: monotone trend from the first to the last sweep point.
  const double first = result.cells.front()[0].mean;
  const double last = result.cells.back()[0].mean;
  if (kProfit) {
    std::cout << "shape check: profit " << (last >= first ? "rises" : "FALLS")
              << " with rho (" << dmra::fmt(first) << " -> " << dmra::fmt(last) << ")\n";
  } else {
    std::cout << "shape check: forwarded load " << (last <= first ? "falls" : "RISES")
              << " with rho (" << dmra::fmt(first) << " -> " << dmra::fmt(last) << ")\n";
  }
  return 0;
}
