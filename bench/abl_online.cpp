// Ablation A6: online operation under increasing arrival rate. Runs the
// epochized simulator (src/sim/online.hpp) with DMRA and the baselines on
// identical arrival processes and reports steady-state behaviour — the
// dynamic counterpart of the static Figs. 2–5.

#include <iostream>

#include "bench_common.hpp"

namespace {

dmra::OnlineResult run_online(std::size_t batch, const dmra::Allocator& algo,
                              std::uint64_t seed, std::size_t epochs) {
  dmra::OnlineConfig cfg;
  cfg.scenario.num_ues = batch;
  cfg.epochs = epochs;
  cfg.lifetime_min_epochs = 3;
  cfg.lifetime_max_epochs = 5;
  cfg.seed = seed;
  return dmra::OnlineSimulator(cfg, algo).run();
}

/// Mean over the post-warm-up half of the run.
double steady_mean(const dmra::OnlineResult& r,
                   double (*pick)(const dmra::EpochStats&)) {
  dmra::RunningStats s;
  for (std::size_t e = r.epochs.size() / 2; e < r.epochs.size(); ++e)
    s.add(pick(r.epochs[e]));
  return s.mean();
}

}  // namespace

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("batch", "120,200,280,360", "arrival batch sizes to sweep");
  cli.add_flag("epochs", "16", "epochs per run");
  cli.add_flag("seeds", "5", "seeds per configuration");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  dmra_bench::add_fault_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  const auto seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  obs_session.describe_scenario(dmra_bench::paper_config());
  obs_session.describe_run(seeds, jobs);
  const auto faults = dmra_bench::faults_from(cli);

  std::cout << "== A6: online arrival-rate sweep (steady-state means over the last "
            << epochs / 2 << " epochs) ==\n\n";
  dmra::Table table({"batch/epoch", "algorithm", "profit/epoch", "served/epoch",
                     "fwd Mbps/epoch", "RRB util"});

  for (const double batch : cli.get_double_list("batch")) {
    struct Algo {
      const char* label;
      dmra::AllocatorPtr ptr;
    };
    std::vector<Algo> algos;
    algos.push_back({"DMRA", dmra_bench::make_dmra({}, faults)});
    algos.push_back({"DCSP", std::make_unique<dmra::DcspAllocator>()});
    algos.push_back({"NonCo", std::make_unique<dmra::NonCoAllocator>()});
    struct SeedValues {
      double profit, served, fwd, util;
    };
    for (const Algo& algo : algos) {
      const auto per_seed = dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t si) {
        const dmra::OnlineResult r =
            run_online(static_cast<std::size_t>(batch), *algo.ptr, seeds[si], epochs);
        return SeedValues{
            steady_mean(r, [](const dmra::EpochStats& e) { return e.profit; }),
            steady_mean(
                r, [](const dmra::EpochStats& e) { return static_cast<double>(e.served); }),
            steady_mean(r, [](const dmra::EpochStats& e) { return e.forwarded_mbps; }),
            steady_mean(
                r, [](const dmra::EpochStats& e) { return e.mean_rrb_utilization; })};
      });
      dmra::RunningStats profit, served, fwd, util;
      for (const SeedValues& v : per_seed) {  // seed order: jobs-invariant
        profit.add(v.profit);
        served.add(v.served);
        fwd.add(v.fwd);
        util.add(v.util);
      }
      table.add_row({dmra::fmt(batch, 0), algo.label, dmra::fmt(profit.mean()),
                     dmra::fmt(served.mean(), 0), dmra::fmt(fwd.mean()),
                     dmra::fmt(util.mean())});
    }
  }
  std::cout << table.to_aligned()
            << "\nreading: the static Figs. 2-5 ordering (DMRA first) carries over to\n"
               "steady-state online operation; overload shows up as forwarded traffic\n"
               "once arrivals times lifetime exceeds the edge capacity.\n";
  return 0;
}
