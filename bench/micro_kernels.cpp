// M2: kernel microbenchmarks — the radio math, preference evaluation,
// BS selection, and the generic matching mechanisms.

#include <benchmark/benchmark.h>

#include "dmra/dmra.hpp"
#include "mec/resources.hpp"

namespace {

void BM_Pathloss(benchmark::State& state) {
  double d = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dmra::pathloss_db(d));
    d = d < 2000.0 ? d + 1.0 : 1.0;
  }
}
BENCHMARK(BM_Pathloss);

void BM_SinrAndRrbs(benchmark::State& state) {
  const dmra::ChannelConfig ch;
  const dmra::OfdmaConfig of;
  double d = 10.0;
  for (auto _ : state) {
    const double s = dmra::sinr(ch, d, of.rrb_bandwidth_hz);
    const double e = dmra::rrb_rate_bps(of.rrb_bandwidth_hz, s);
    benchmark::DoNotOptimize(dmra::rrbs_needed(4e6, e));
    d = d < 1500.0 ? d + 3.0 : 10.0;
  }
}
BENCHMARK(BM_SinrAndRrbs);

void BM_PreferenceEval(benchmark::State& state) {
  dmra::ScenarioConfig cfg;
  cfg.num_ues = 500;
  const dmra::Scenario scenario = dmra::generate_scenario(cfg, 3);
  const dmra::ResourceState rs(scenario);
  struct View final : dmra::ResourceView {
    const dmra::ResourceState* rs;
    std::uint32_t remaining_crus(dmra::BsId i, dmra::ServiceId j) const override {
      return rs->remaining_crus(i, j);
    }
    std::uint32_t remaining_rrbs(dmra::BsId i) const override {
      return rs->remaining_rrbs(i);
    }
  } view;
  view.rs = &rs;
  std::size_t ui = 0;
  for (auto _ : state) {
    const dmra::UeId u{static_cast<std::uint32_t>(ui % scenario.num_ues())};
    double acc = 0.0;
    for (dmra::BsId i : scenario.candidates(u))
      acc += dmra::ue_preference_value(scenario, view, u, i, 100.0);
    benchmark::DoNotOptimize(acc);
    ++ui;
  }
}
BENCHMARK(BM_PreferenceEval);

void BM_BsSelect(benchmark::State& state) {
  dmra::ScenarioConfig cfg;
  cfg.num_ues = 500;
  const dmra::Scenario scenario = dmra::generate_scenario(cfg, 3);
  // Center BS with all covered UEs as proposers — the worst-case inbox.
  const dmra::BsId bs{12};
  std::vector<dmra::ProposalInfo> proposals;
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const dmra::UeId u{static_cast<std::uint32_t>(ui)};
    const auto cands = scenario.candidates(u);
    if (std::find(cands.begin(), cands.end(), bs) != cands.end())
      proposals.push_back({u, static_cast<std::uint32_t>(cands.size())});
  }
  dmra::BsLocalResources local;
  local.crus = scenario.bs(bs).cru_capacity;
  local.rrbs = scenario.bs(bs).num_rrbs;
  for (auto _ : state) {
    const auto accepted = dmra::bs_select(scenario, bs, proposals, local);
    benchmark::DoNotOptimize(accepted.size());
  }
  state.counters["proposals"] = static_cast<double>(proposals.size());
}
BENCHMARK(BM_BsSelect);

// Raw bus throughput: N sends fanned across a fixed agent population,
// one batch deliver(), then every inbox drained. items_per_second is the
// msgs/sec figure tracked in docs/PERFORMANCE.md (ISSUE 7 before/after).
void BM_BusSendDeliver(benchmark::State& state) {
  const auto total = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kAgents = 256;
  dmra::MessageBus<std::uint64_t> bus;
  std::vector<dmra::AgentId> agents;
  agents.reserve(kAgents);
  for (std::size_t a = 0; a < kAgents; ++a)
    agents.push_back(bus.register_agent());
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t m = 0; m < total; ++m)
      bus.send(agents[m % kAgents], agents[(m * 7 + 3) % kAgents], m);
    bus.deliver();
    for (const dmra::AgentId id : agents) {
      const auto inbox = bus.take_inbox(id);
      for (const auto& env : inbox) sink += env.payload;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_BusSendDeliver)->Arg(10000)->Arg(100000)->Arg(1000000);

dmra::PreferenceLists random_prefs(std::size_t n, std::size_t m, dmra::Rng& rng) {
  dmra::PreferenceLists prefs(n);
  for (auto& list : prefs) {
    list.resize(m);
    for (std::size_t i = 0; i < m; ++i) list[i] = i;
    rng.shuffle(list);
  }
  return prefs;
}

void BM_StableMarriage(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dmra::Rng rng("bench-sm", 11);
  const auto pp = random_prefs(n, n, rng);
  const auto ap = random_prefs(n, n, rng);
  for (auto _ : state) {
    const dmra::Matching m = dmra::stable_marriage(pp, ap);
    benchmark::DoNotOptimize(m.proposer_to_acceptor.size());
  }
}
BENCHMARK(BM_StableMarriage)->Arg(64)->Arg(256)->Arg(1024);

void BM_CollegeAdmissions(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t colleges = n / 16 + 1;
  dmra::Rng rng("bench-ca", 13);
  const auto pp = random_prefs(n, colleges, rng);
  const auto ap = random_prefs(colleges, n, rng);
  const std::vector<std::size_t> caps(colleges, 16);
  for (auto _ : state) {
    const dmra::ManyToOneMatching m = dmra::college_admissions(pp, ap, caps);
    benchmark::DoNotOptimize(m.proposer_to_acceptor.size());
  }
}
BENCHMARK(BM_CollegeAdmissions)->Arg(256)->Arg(1024);

}  // namespace
