// A11: resilience sweep — decentralized DMRA under injected faults.
//
// Sweeps message-loss rate x number of BS crashes and reports, per cell,
// what graceful degradation costs: how much of the fault-free profit the
// hardened protocol retains, how many extra rounds and messages the
// recovery machinery spends, and where the orphaned UEs ended up
// (re-admitted in-protocol, re-placed by the final repair pass, or at
// the cloud). docs/RESILIENCE.md walks through the output.
//
//   ./build/bench/abl11_faults [--ues 600] [--loss 0,0.1,0.2]
//       [--crashes 0,1,2] [--down-rounds 0] [--seeds 5] [--csv] [--out f.csv]

#include <iostream>

#include "bench_common.hpp"

namespace {

struct CellValues {
  double retention_pct = 0.0;  // faulty profit / fault-free profit
  double extra_rounds = 0.0;   // protocol rounds beyond the fault-free run
  double repair_rounds = 0.0;  // rounds spent in the final repair pass
  double extra_msgs = 0.0;     // bus messages beyond the fault-free run
  double orphaned = 0.0;
  double reproto = 0.0;  // orphans re-admitted by the live protocol
  double rematch = 0.0;  // orphans re-placed by the final repair pass
  double cloud = 0.0;    // orphans left at the cloud
};

}  // namespace

int main(int argc, char** argv) {
  dmra::Cli cli;
  cli.add_flag("ues", "600", "number of UEs");
  cli.add_flag("loss", "0,0.1,0.2", "per-message loss rates to sweep");
  cli.add_flag("crashes", "0,1,2", "BS crash counts to sweep");
  cli.add_flag("down-rounds", "0", "outage length in rounds (0 = never recovers)");
  cli.add_flag("crash-round", "2", "round the first crash fires (rest staggered +1)");
  cli.add_flag("seeds", "5", "number of scenario seeds per cell");
  cli.add_flag("csv", "false", "also print the table as CSV");
  cli.add_flag("out", "", "write the table as CSV to this path");
  dmra_bench::add_jobs_flag(cli);
  dmra_bench::add_obs_flags(cli);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << "\n" << cli.help_text(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    return 0;
  }
  const auto num_ues = static_cast<std::size_t>(cli.get_int("ues"));
  const auto down_rounds = static_cast<std::size_t>(cli.get_int("down-rounds"));
  const auto crash_round = static_cast<std::size_t>(cli.get_int("crash-round"));
  const auto seeds = dmra::default_seeds(static_cast<std::size_t>(cli.get_int("seeds")));
  dmra_bench::ObsSession obs_session(cli, argv[0]);
  const std::size_t jobs = dmra_bench::jobs_from(cli);
  dmra::ScenarioConfig base_cfg = dmra_bench::paper_config();
  base_cfg.num_ues = num_ues;
  obs_session.describe_scenario(base_cfg);
  obs_session.describe_run(seeds, jobs);

  std::cout << "== A11: fault injection — profit retention & recovery overhead (" << num_ues
            << " UEs, iota=2, regular placement) ==\n"
            << "baseline: fault-free decentralized DMRA on the same scenario/seed\n\n";

  dmra::Table table({"loss", "crashes", "profit kept", "extra rounds", "repair rounds",
                     "extra msgs", "orphaned", "re-proto", "re-match", "cloud"});
  for (const double loss : cli.get_double_list("loss")) {
    for (const double crashes : cli.get_double_list("crashes")) {
      const auto per_seed = dmra::obs::traced_parallel_map(jobs, seeds.size(), [&](std::size_t si) {
        dmra::ScenarioConfig cfg = dmra_bench::paper_config();
        cfg.num_ues = num_ues;
        const dmra::Scenario s = dmra::generate_scenario(cfg, seeds[si]);
        const dmra::DecentralizedResult base = dmra::run_decentralized_dmra(s);
        const double base_profit = dmra::total_profit(s, base.dmra.allocation);

        dmra::FaultSpec spec;
        spec.loss = loss;
        spec.crashes = static_cast<std::size_t>(crashes);
        spec.crash_round = crash_round;
        spec.down_rounds = down_rounds;
        spec.seed = seeds[si];
        const dmra::FaultyDmraAllocator faulty(spec);
        const dmra::DecentralizedResult r = faulty.run(s);
        const double profit = dmra::total_profit(s, r.dmra.allocation);

        CellValues v;
        v.retention_pct = base_profit > 0.0 ? 100.0 * profit / base_profit : 100.0;
        v.extra_rounds = static_cast<double>(r.dmra.rounds) -
                         static_cast<double>(base.dmra.rounds);
        v.repair_rounds = static_cast<double>(r.recovery.repair_rounds);
        v.extra_msgs = static_cast<double>(r.bus.messages_sent) -
                       static_cast<double>(base.bus.messages_sent);
        v.orphaned = static_cast<double>(r.recovery.orphaned_ues);
        v.reproto = static_cast<double>(r.recovery.repaired_in_protocol);
        v.rematch = static_cast<double>(r.recovery.repaired_by_rematch);
        v.cloud = static_cast<double>(r.recovery.cloud_fallbacks);
        return v;
      });
      dmra::RunningStats retention, rounds, repair, msgs, orphaned, reproto, rematch,
          cloud;
      for (const CellValues& v : per_seed) {  // seed order: jobs-invariant
        retention.add(v.retention_pct);
        rounds.add(v.extra_rounds);
        repair.add(v.repair_rounds);
        msgs.add(v.extra_msgs);
        orphaned.add(v.orphaned);
        reproto.add(v.reproto);
        rematch.add(v.rematch);
        cloud.add(v.cloud);
      }
      table.add_row({dmra::fmt(loss, 2), dmra::fmt(crashes, 0),
                     dmra::fmt(retention.mean(), 1) + "%", dmra::fmt(rounds.mean(), 1),
                     dmra::fmt(repair.mean(), 1), dmra::fmt(msgs.mean(), 0),
                     dmra::fmt(orphaned.mean(), 1), dmra::fmt(reproto.mean(), 1),
                     dmra::fmt(rematch.mean(), 1), dmra::fmt(cloud.mean(), 1)});
    }
  }
  std::cout << table.to_aligned();
  if (cli.get_bool("csv")) std::cout << '\n' << table.to_csv();
  const std::string out = cli.get_string("out");
  if (!out.empty()) {
    std::ofstream f(out);
    if (!f) {
      std::cerr << "cannot write " << out << '\n';
    } else {
      f << table.to_csv();
      std::cout << "(series written to " << out << ")\n";
    }
  }
  std::cout << "\nreading: losses alone cost little profit (retries + rebroadcasts heal\n"
               "them) but buy extra rounds and messages; crashes orphan whole cells and\n"
               "the orphan column splits into in-protocol re-admissions, repair-pass\n"
               "re-placements, and the cloud-fallback floor. Every run passes the\n"
               "invariant auditor (DMRA_AUDIT=1) regardless of the cell.\n";
  return 0;
}
