#include "mobility/models.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace dmra {

namespace {

class StaticModel final : public MobilityModel {
 public:
  explicit StaticModel(std::vector<Point> initial) : positions_(std::move(initial)) {}
  const std::vector<Point>& positions() const override { return positions_; }
  void advance(double dt_s) override { DMRA_REQUIRE(dt_s >= 0.0); }

 private:
  std::vector<Point> positions_;
};

class RandomWaypointModel final : public MobilityModel {
 public:
  RandomWaypointModel(std::vector<Point> initial, const RandomWaypointConfig& config,
                      Rng rng)
      : config_(config), rng_(std::move(rng)), positions_(std::move(initial)) {
    DMRA_REQUIRE(config_.speed_min_mps > 0.0);
    DMRA_REQUIRE(config_.speed_min_mps <= config_.speed_max_mps);
    DMRA_REQUIRE(config_.pause_s >= 0.0);
    states_.resize(positions_.size());
    for (std::size_t i = 0; i < positions_.size(); ++i) pick_waypoint(i);
  }

  const std::vector<Point>& positions() const override { return positions_; }

  void advance(double dt_s) override {
    DMRA_REQUIRE(dt_s >= 0.0);
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      double remaining = dt_s;
      while (remaining > 0.0) {
        UeState& st = states_[i];
        if (st.pausing > 0.0) {
          const double pause = std::min(st.pausing, remaining);
          st.pausing -= pause;
          remaining -= pause;
          continue;
        }
        const double dist = distance_m(positions_[i], st.destination);
        const double reach = st.speed_mps * remaining;
        if (reach >= dist) {
          // Arrive, start the pause, then a new leg.
          positions_[i] = st.destination;
          remaining -= st.speed_mps > 0.0 ? dist / st.speed_mps : remaining;
          st.pausing = config_.pause_s;
          pick_waypoint(i);
        } else {
          const double frac = reach / dist;
          positions_[i].x += (st.destination.x - positions_[i].x) * frac;
          positions_[i].y += (st.destination.y - positions_[i].y) * frac;
          remaining = 0.0;
        }
      }
    }
  }

 private:
  struct UeState {
    Point destination;
    double speed_mps = 1.0;
    double pausing = 0.0;
  };

  void pick_waypoint(std::size_t i) {
    states_[i].destination = {rng_.uniform_real(config_.area.x0, config_.area.x1),
                              rng_.uniform_real(config_.area.y0, config_.area.y1)};
    states_[i].speed_mps = rng_.uniform_real(config_.speed_min_mps, config_.speed_max_mps);
  }

  RandomWaypointConfig config_;
  Rng rng_;
  std::vector<Point> positions_;
  std::vector<UeState> states_;
};

class GaussMarkovModel final : public MobilityModel {
 public:
  GaussMarkovModel(std::vector<Point> initial, const GaussMarkovConfig& config, Rng rng)
      : config_(config), rng_(std::move(rng)), positions_(std::move(initial)) {
    DMRA_REQUIRE(config_.alpha >= 0.0 && config_.alpha < 1.0);
    DMRA_REQUIRE(config_.mean_speed_mps >= 0.0);
    DMRA_REQUIRE(config_.speed_sigma_mps >= 0.0);
    velocities_.resize(positions_.size());
    for (auto& v : velocities_) v = draw_velocity();
  }

  const std::vector<Point>& positions() const override { return positions_; }

  void advance(double dt_s) override {
    DMRA_REQUIRE(dt_s >= 0.0);
    const double a = config_.alpha;
    const double noise_scale = std::sqrt(1.0 - a * a);
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      // Correlated velocity update (component-wise Gauss–Markov).
      const Point fresh = draw_velocity();
      velocities_[i].x = a * velocities_[i].x + noise_scale * fresh.x;
      velocities_[i].y = a * velocities_[i].y + noise_scale * fresh.y;
      positions_[i].x += velocities_[i].x * dt_s;
      positions_[i].y += velocities_[i].y * dt_s;
      reflect(positions_[i].x, velocities_[i].x, config_.area.x0, config_.area.x1);
      reflect(positions_[i].y, velocities_[i].y, config_.area.y0, config_.area.y1);
    }
  }

 private:
  Point draw_velocity() {
    // Isotropic direction; speed ~ N(mean, sigma) clamped at 0.
    const double angle = rng_.uniform_real(0.0, 6.283185307179586);
    const double speed =
        std::max(0.0, rng_.gaussian(config_.mean_speed_mps, config_.speed_sigma_mps));
    return {speed * std::cos(angle), speed * std::sin(angle)};
  }

  static void reflect(double& coord, double& velocity, double lo, double hi) {
    if (coord < lo) {
      coord = lo + (lo - coord);
      velocity = -velocity;
    } else if (coord > hi) {
      coord = hi - (coord - hi);
      velocity = -velocity;
    }
    // A huge step could overshoot twice; clamp as the backstop.
    coord = std::clamp(coord, lo, hi);
  }

  GaussMarkovConfig config_;
  Rng rng_;
  std::vector<Point> positions_;
  std::vector<Point> velocities_;  // component-wise velocity, m/s
};

}  // namespace

std::unique_ptr<MobilityModel> make_random_waypoint(std::vector<Point> initial,
                                                    const RandomWaypointConfig& config,
                                                    Rng rng) {
  return std::make_unique<RandomWaypointModel>(std::move(initial), config, std::move(rng));
}

std::unique_ptr<MobilityModel> make_gauss_markov(std::vector<Point> initial,
                                                 const GaussMarkovConfig& config, Rng rng) {
  return std::make_unique<GaussMarkovModel>(std::move(initial), config, std::move(rng));
}

std::unique_ptr<MobilityModel> make_static(std::vector<Point> initial) {
  return std::make_unique<StaticModel>(std::move(initial));
}

}  // namespace dmra
