// UE mobility models.
//
// The paper motivates DMRA with an environment that "changes over time"
// (§V: the best association changes as UEs move); this module supplies
// the movement processes, and mobility/handover.hpp re-runs an allocator
// over the moving population to measure what that costs.
//
// Two classic models:
//  * RandomWaypoint — pick a uniform destination, travel at a uniform
//    speed, pause, repeat. The standard ad-hoc evaluation model.
//  * GaussMarkov  — temporally-correlated velocity (tunable memory α),
//    reflecting at the area boundary. Smooth, no teleport-like turns.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "geometry/geometry.hpp"
#include "util/rng.hpp"

namespace dmra {

/// Advances a population of positions through time. Implementations own
/// all per-UE state (destinations, velocities, pause clocks).
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Current positions (size fixed at construction).
  virtual const std::vector<Point>& positions() const = 0;

  /// Move everyone forward by dt seconds.
  virtual void advance(double dt_s) = 0;
};

struct RandomWaypointConfig {
  Rect area{0.0, 0.0, 1200.0, 1200.0};
  double speed_min_mps = 1.0;
  double speed_max_mps = 15.0;
  double pause_s = 0.0;  ///< dwell time at each waypoint
};

/// Build a random-waypoint process over `initial` positions.
std::unique_ptr<MobilityModel> make_random_waypoint(std::vector<Point> initial,
                                                    const RandomWaypointConfig& config,
                                                    Rng rng);

struct GaussMarkovConfig {
  Rect area{0.0, 0.0, 1200.0, 1200.0};
  double mean_speed_mps = 5.0;
  double speed_sigma_mps = 2.0;
  /// Memory parameter α in [0, 1): 0 = fresh random velocity every step,
  /// →1 = nearly constant velocity.
  double alpha = 0.75;
};

/// Build a Gauss–Markov process over `initial` positions.
std::unique_ptr<MobilityModel> make_gauss_markov(std::vector<Point> initial,
                                                 const GaussMarkovConfig& config, Rng rng);

/// A model that never moves (control case for handover studies).
std::unique_ptr<MobilityModel> make_static(std::vector<Point> initial);

}  // namespace dmra
