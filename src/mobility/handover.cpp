#include "mobility/handover.hpp"

#include "util/require.hpp"
#include "util/stats.hpp"

namespace dmra {

const char* mobility_kind_name(MobilityKind kind) {
  switch (kind) {
    case MobilityKind::kStatic: return "static";
    case MobilityKind::kRandomWaypoint: return "random-waypoint";
    case MobilityKind::kGaussMarkov: return "gauss-markov";
  }
  return "?";
}

namespace {

Scenario with_positions(const Scenario& base, const std::vector<Point>& positions) {
  DMRA_REQUIRE(positions.size() == base.num_ues());
  ScenarioData data;
  data.num_services = base.num_services();
  data.sps.assign(base.sps().begin(), base.sps().end());
  data.bss.assign(base.bss().begin(), base.bss().end());
  data.ues.assign(base.ues().begin(), base.ues().end());
  for (std::size_t i = 0; i < positions.size(); ++i) data.ues[i].position = positions[i];
  data.channel = base.channel();
  data.ofdma = base.ofdma();
  data.pricing = base.pricing();
  data.coverage_radius_m = base.coverage_radius_m();
  return Scenario(std::move(data));
}

}  // namespace

HandoverResult run_handover_study(const HandoverConfig& config,
                                  const Allocator& allocator) {
  DMRA_REQUIRE(config.steps > 0);
  DMRA_REQUIRE(config.step_duration_s > 0.0);

  const Scenario base = generate_scenario(config.scenario, config.seed);
  std::vector<Point> initial;
  initial.reserve(base.num_ues());
  for (const UserEquipment& u : base.ues()) initial.push_back(u.position);

  Rng mobility_rng("mobility", config.seed);
  std::unique_ptr<MobilityModel> model;
  switch (config.mobility) {
    case MobilityKind::kStatic:
      model = make_static(std::move(initial));
      break;
    case MobilityKind::kRandomWaypoint: {
      RandomWaypointConfig wp = config.waypoint;
      wp.area = config.scenario.area();
      model = make_random_waypoint(std::move(initial), wp, std::move(mobility_rng));
      break;
    }
    case MobilityKind::kGaussMarkov: {
      GaussMarkovConfig gm = config.gauss_markov;
      gm.area = config.scenario.area();
      model = make_gauss_markov(std::move(initial), gm, std::move(mobility_rng));
      break;
    }
  }

  HandoverResult result;
  Allocation previous = allocator.allocate(base);
  std::vector<Point> prev_positions = model->positions();

  RunningStats profit_stats;
  std::uint64_t total_handovers = 0;
  std::uint64_t total_served_steps = 0;

  for (std::size_t step = 0; step < config.steps; ++step) {
    model->advance(config.step_duration_s);
    const Scenario scenario = with_positions(base, model->positions());
    const Allocation alloc =
        config.policy == ReallocationPolicy::kFullRerun
            ? allocator.allocate(scenario)
            : solve_incremental_dmra(scenario, previous, config.incremental).allocation;

    HandoverStepStats stats;
    stats.step = step;
    stats.profit = total_profit(scenario, alloc);
    stats.served = alloc.num_served();
    double displacement = 0.0;
    for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
      const UeId u{static_cast<std::uint32_t>(ui)};
      displacement += distance_m(prev_positions[ui], model->positions()[ui]);
      const auto before = previous.bs_of(u);
      const auto after = alloc.bs_of(u);
      if (before && after && *before != *after) ++stats.handovers;
      else if (before && !after) ++stats.edge_to_cloud;
      else if (!before && after) ++stats.cloud_to_edge;
    }
    stats.mean_displacement_m =
        displacement / static_cast<double>(scenario.num_ues());

    profit_stats.add(stats.profit);
    total_handovers += stats.handovers;
    total_served_steps += stats.served;
    result.steps.push_back(stats);

    previous = alloc;
    prev_positions = model->positions();
  }

  result.mean_profit = profit_stats.mean();
  result.handover_rate =
      total_served_steps
          ? static_cast<double>(total_handovers) / static_cast<double>(total_served_steps)
          : 0.0;
  return result;
}

Table HandoverResult::to_table() const {
  Table table({"step", "profit", "served", "handovers", "edge->cloud", "cloud->edge",
               "mean move (m)"});
  for (const HandoverStepStats& s : steps) {
    table.add_row({std::to_string(s.step), fmt(s.profit), std::to_string(s.served),
                   std::to_string(s.handovers), std::to_string(s.edge_to_cloud),
                   std::to_string(s.cloud_to_edge), fmt(s.mean_displacement_m, 1)});
  }
  return table;
}

}  // namespace dmra
