// Handover study: re-run an allocator over a moving UE population and
// measure how the association churns — the cost of the paper's "the best
// association changes over time" premise.
//
// Each step: advance the mobility model, rebuild the scenario with the
// new positions (same subscriptions/demands), re-allocate from scratch,
// and diff against the previous association.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/incremental.hpp"
#include "mec/allocator.hpp"
#include "mobility/models.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace dmra {

enum class MobilityKind { kStatic, kRandomWaypoint, kGaussMarkov };

const char* mobility_kind_name(MobilityKind kind);

/// How each step's allocation is derived.
enum class ReallocationPolicy {
  kFullRerun,    ///< forget the past; run the allocator from scratch
  kIncremental,  ///< keep valid assignments, DMRA-rematch the displaced
};

struct HandoverConfig {
  ScenarioConfig scenario;   ///< deployment + population distributions
  MobilityKind mobility = MobilityKind::kRandomWaypoint;
  RandomWaypointConfig waypoint;
  GaussMarkovConfig gauss_markov;
  std::size_t steps = 20;
  double step_duration_s = 1.0;
  std::uint64_t seed = 1;
  ReallocationPolicy policy = ReallocationPolicy::kFullRerun;
  /// Incremental-policy tuning (hysteresis margin, DMRA config). The
  /// `allocator` passed to run_handover_study still produces the initial
  /// allocation under either policy.
  IncrementalConfig incremental;
};

struct HandoverStepStats {
  std::size_t step = 0;
  double profit = 0.0;
  std::size_t served = 0;
  std::size_t handovers = 0;      ///< served before and after, different BS
  std::size_t edge_to_cloud = 0;  ///< served before, cloud now
  std::size_t cloud_to_edge = 0;  ///< cloud before, served now
  double mean_displacement_m = 0.0;
};

struct HandoverResult {
  std::vector<HandoverStepStats> steps;
  double mean_profit = 0.0;
  double handover_rate = 0.0;  ///< handovers per served UE per step

  Table to_table() const;
};

/// Run the study. Deterministic in (config, allocator).
HandoverResult run_handover_study(const HandoverConfig& config, const Allocator& allocator);

}  // namespace dmra
