// Adaptive per-BS pricing — the price-based mechanism direction the paper
// cites as related work ([23] Xie et al., distributed price adjustment)
// layered on top of the DMRA substrate.
//
// Each pricing round, every BS nudges its price multiplier toward a
// target utilization: congested BSs raise their price (shedding
// price-sensitive UEs), idle BSs cut it (attracting them). The UE side
// needs no change at all — DMRA's Eq. 17 preference already reads
// prices — so the controller composes with any allocator. The multiplier
// is clamped so Eq. 16 (every pair profitable) keeps holding, which the
// Scenario re-validates every round.
#pragma once

#include <cstdint>
#include <vector>

#include "mec/allocator.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace dmra {

struct AdaptivePricingConfig {
  ScenarioConfig scenario;
  std::size_t rounds = 12;
  /// RRB-utilization each BS steers toward.
  double target_utilization = 0.8;
  /// Multiplier step per unit of utilization error, per round.
  double gain = 0.3;
  /// Multiplier bounds. The upper bound is additionally capped so Eq. 16
  /// still holds at the coverage edge (computed from the pricing config).
  double min_multiplier = 0.6;
  double max_multiplier = 1.6;
  std::uint64_t seed = 1;
};

struct PricingRoundStats {
  std::size_t round = 0;
  double total_profit = 0.0;
  std::size_t served = 0;
  double util_mean = 0.0;
  double util_stddev = 0.0;        ///< load imbalance across BSs
  double multiplier_mean = 0.0;
  double multiplier_stddev = 0.0;
  double max_multiplier_change = 0.0;  ///< convergence indicator
};

struct AdaptivePricingResult {
  std::vector<PricingRoundStats> rounds;
  std::vector<double> final_multipliers;
  Table to_table() const;
};

/// Run the pricing adaptation loop with `allocator` clearing the market
/// each round. Deterministic.
AdaptivePricingResult run_adaptive_pricing(const AdaptivePricingConfig& config,
                                           const Allocator& allocator);

/// The largest multiplier that keeps Eq. 16 satisfied at `radius_m` for
/// cross-SP pairs under `pricing`.
double eq16_safe_max_multiplier(const PricingConfig& pricing, double radius_m);

}  // namespace dmra
