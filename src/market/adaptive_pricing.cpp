#include "market/adaptive_pricing.hpp"

#include <algorithm>
#include <cmath>

#include "sim/metrics.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace dmra {

double eq16_safe_max_multiplier(const PricingConfig& pricing, double radius_m) {
  const double worst_price = cru_price(pricing, radius_m, /*same_sp=*/false);
  DMRA_REQUIRE(worst_price > 0.0);
  // Strictly below the boundary; shave a hair for float safety.
  return (pricing.m_k - pricing.m_k_o) / worst_price * (1.0 - 1e-9);
}

namespace {

Scenario with_multipliers(const Scenario& base, const std::vector<double>& multipliers) {
  ScenarioData data;
  data.num_services = base.num_services();
  data.sps.assign(base.sps().begin(), base.sps().end());
  data.bss.assign(base.bss().begin(), base.bss().end());
  for (std::size_t i = 0; i < data.bss.size(); ++i)
    data.bss[i].price_multiplier = multipliers[i];
  data.ues.assign(base.ues().begin(), base.ues().end());
  data.channel = base.channel();
  data.ofdma = base.ofdma();
  data.pricing = base.pricing();
  data.coverage_radius_m = base.coverage_radius_m();
  return Scenario(std::move(data));
}

}  // namespace

AdaptivePricingResult run_adaptive_pricing(const AdaptivePricingConfig& config,
                                           const Allocator& allocator) {
  DMRA_REQUIRE(config.rounds > 0);
  DMRA_REQUIRE(config.target_utilization > 0.0 && config.target_utilization <= 1.0);
  DMRA_REQUIRE(config.gain > 0.0);
  DMRA_REQUIRE(config.min_multiplier > 0.0);
  DMRA_REQUIRE(config.min_multiplier <= config.max_multiplier);

  const Scenario base = generate_scenario(config.scenario, config.seed);
  const double hard_cap =
      eq16_safe_max_multiplier(base.pricing(), base.coverage_radius_m());
  const double cap = std::min(config.max_multiplier, hard_cap);
  DMRA_REQUIRE_MSG(config.min_multiplier <= cap,
                   "min_multiplier already violates Eq. 16 at the coverage edge");

  std::vector<double> multipliers(base.num_bss(), 1.0);
  for (double& m : multipliers) m = std::clamp(m, config.min_multiplier, cap);

  AdaptivePricingResult result;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    const Scenario scenario = with_multipliers(base, multipliers);
    const Allocation alloc = allocator.allocate(scenario);
    const RunMetrics metrics = evaluate(scenario, alloc);

    // Per-BS RRB utilization under this round's prices.
    std::vector<double> util(base.num_bss(), 0.0);
    {
      std::vector<std::uint64_t> used(base.num_bss(), 0);
      for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
        const UeId u{static_cast<std::uint32_t>(ui)};
        if (const auto bs = alloc.bs_of(u)) used[bs->idx()] += scenario.link(u, *bs).n_rrbs;
      }
      for (std::size_t i = 0; i < util.size(); ++i) {
        const auto budget = base.bs(BsId{static_cast<std::uint32_t>(i)}).num_rrbs;
        util[i] = budget ? static_cast<double>(used[i]) / budget : 0.0;
      }
    }

    // Controller step: price follows congestion.
    double max_change = 0.0;
    RunningStats util_stats, mult_stats;
    for (std::size_t i = 0; i < multipliers.size(); ++i) {
      const double next = std::clamp(
          multipliers[i] + config.gain * (util[i] - config.target_utilization),
          config.min_multiplier, cap);
      max_change = std::max(max_change, std::abs(next - multipliers[i]));
      multipliers[i] = next;
      util_stats.add(util[i]);
      mult_stats.add(next);
    }

    PricingRoundStats stats;
    stats.round = round;
    stats.total_profit = metrics.total_profit;
    stats.served = metrics.served;
    stats.util_mean = util_stats.mean();
    stats.util_stddev = util_stats.stddev();
    stats.multiplier_mean = mult_stats.mean();
    stats.multiplier_stddev = mult_stats.stddev();
    stats.max_multiplier_change = max_change;
    result.rounds.push_back(stats);
  }
  result.final_multipliers = multipliers;
  return result;
}

Table AdaptivePricingResult::to_table() const {
  Table table({"round", "profit", "served", "util mean", "util stddev", "mult mean",
               "mult stddev", "max step"});
  for (const PricingRoundStats& r : rounds) {
    table.add_row({std::to_string(r.round), fmt(r.total_profit), std::to_string(r.served),
                   fmt(r.util_mean), fmt(r.util_stddev, 3), fmt(r.multiplier_mean, 3),
                   fmt(r.multiplier_stddev, 3), fmt(r.max_multiplier_change, 4)});
  }
  return table;
}

}  // namespace dmra
