#include "mec/audit.hpp"

#include <cstdlib>

#include "mec/resources.hpp"

namespace dmra::audit {

namespace {

// The observer slot is thread-local: parallel workers (util/thread_pool)
// each install — or env-install — their own observer, so instrumented
// allocators running concurrently never share mutable auditor state.
thread_local Observer* g_observer = nullptr;
Observer* (*g_env_factory)() = nullptr;  // written once at static init
thread_local bool g_env_checked = false;

/// One-shot: honor DMRA_AUDIT=1 in the environment by installing the
/// registered default auditor (registered by src/check when linked in).
void maybe_install_from_env() {
  if (g_env_checked) return;
  g_env_checked = true;
  if (g_observer != nullptr || g_env_factory == nullptr) return;
  const char* value = std::getenv("DMRA_AUDIT");
  if (value == nullptr || value[0] == '\0') return;
  if (value[0] == '0' && value[1] == '\0') return;
  g_observer = g_env_factory();
}

}  // namespace

bool enabled() {
#if defined(DMRA_AUDIT_ENABLED) && DMRA_AUDIT_ENABLED
  maybe_install_from_env();
  return g_observer != nullptr;
#else
  return false;
#endif
}

Observer* observer() {
  maybe_install_from_env();
  return g_observer;
}

Observer* set_observer(Observer* obs) {
  Observer* previous = g_observer;
  g_observer = obs;
  return previous;
}

void set_env_observer_factory(Observer* (*factory)()) { g_env_factory = factory; }

void report_state_round(std::string_view source, std::size_t round,
                        const Scenario& scenario, const Allocation& allocation,
                        const ResourceState& state) {
  if (!enabled()) return;
  RoundContext ctx;
  ctx.scenario = &scenario;
  ctx.allocation = &allocation;
  ctx.ledger = snapshot_ledger(
      scenario, [&](BsId i, ServiceId j) { return state.remaining_crus(i, j); },
      [&](BsId i) { return state.remaining_rrbs(i); });
  ctx.round = round;
  ctx.source = source;
  observer()->on_round(ctx);
}

}  // namespace dmra::audit
