// Mutable resource ledger: remaining CRUs per (BS, service) and remaining
// RRBs per BS, with commit/release bookkeeping.
//
// Algorithms mutate a ResourceState while deciding the association; the
// final Allocation can always be re-validated from scratch against the
// Scenario (sim/feasibility.hpp), so the ledger is an optimization, not
// the source of truth.
#pragma once

#include <cstdint>
#include <vector>

#include "mec/ids.hpp"
#include "mec/scenario.hpp"

namespace dmra {

class Allocation;

class ResourceState {
 public:
  /// Full capacities from the scenario's BSs.
  explicit ResourceState(const Scenario& scenario);

  /// Remaining CRUs of service j at BS i.
  std::uint32_t remaining_crus(BsId i, ServiceId j) const;

  /// Remaining RRBs at BS i.
  std::uint32_t remaining_rrbs(BsId i) const;

  /// True iff BS i can currently serve UE u: hosts the service, has the
  /// CRUs, and has the RRBs (per the precomputed n(u,i)).
  bool can_serve(UeId u, BsId i) const;

  /// Deduct u's demands from i. Requires can_serve(u, i).
  void commit(UeId u, BsId i);

  /// Return u's demands to i (inverse of commit). The caller is
  /// responsible for pairing releases with prior commits.
  void release(UeId u, BsId i);

  /// Lower i's remaining resources to at most the given levels (per-service
  /// CRUs, then RRBs); levels already below the caps are kept. Used by the
  /// fault-recovery repair pass to reconcile a from-scratch recount with
  /// the live BS agents' own ledgers (crashed BSs clamp to zero), so a
  /// repair never hands out capacity a BS does not believe it has.
  /// `cru_caps` must have one entry per service.
  void clamp_remaining(BsId i, const std::vector<std::uint32_t>& cru_caps,
                       std::uint32_t rrb_cap);

  /// Recompute i's remaining resources from scratch: full scenario
  /// capacity minus the demands of every UE `alloc` currently assigns to
  /// i. The inverse of clamp_remaining for fault recovery — a BS that
  /// returns from an outage or degradation gets its nominal capacity back
  /// minus whatever it is (still) serving. O(|U|); recovery events are
  /// rare, so the scan is off every hot path.
  void recount_remaining(BsId i, const Allocation& alloc);

  /// Total remaining CRUs at i summed over services + remaining RRBs —
  /// the denominator of the DMRA preference (Eq. 17 uses the per-service
  /// CRU remainder; see remaining_for_preference).
  std::uint32_t remaining_for_preference(BsId i, ServiceId j) const;

  const Scenario& scenario() const { return *scenario_; }

 private:
  const Scenario* scenario_;
  std::vector<std::uint32_t> crus_;  // |B| × |S| row-major
  std::vector<std::uint32_t> rrbs_;  // |B|

  std::size_t cru_index(BsId i, ServiceId j) const;
};

}  // namespace dmra
