// Strongly-typed identifiers for the MEC entities.
//
// A bare `int` crossing a module boundary invites mixing up UE indices
// with BS indices; these wrappers make that a compile error while staying
// trivially copyable and hashable.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace dmra {

namespace detail {
/// CRTP-free tagged index. `Tag` only disambiguates the type.
template <typename Tag>
struct TaggedId {
  std::uint32_t value = 0;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(std::uint32_t v) : value(v) {}

  constexpr friend auto operator<=>(TaggedId, TaggedId) = default;

  /// Index into a container keyed by this id family.
  constexpr std::size_t idx() const { return value; }
};
}  // namespace detail

struct SpTag {};
struct BsTag {};
struct UeTag {};
struct ServiceTag {};

using SpId = detail::TaggedId<SpTag>;        ///< Service provider.
using BsId = detail::TaggedId<BsTag>;        ///< Base station / MEC server.
using UeId = detail::TaggedId<UeTag>;        ///< User equipment.
using ServiceId = detail::TaggedId<ServiceTag>;  ///< MEC service type.

}  // namespace dmra

namespace std {
template <typename Tag>
struct hash<dmra::detail::TaggedId<Tag>> {
  size_t operator()(dmra::detail::TaggedId<Tag> id) const noexcept {
    return std::hash<uint32_t>{}(id.value);
  }
};
}  // namespace std
