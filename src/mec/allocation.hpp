// The output of an allocator: every UE is either associated with exactly
// one BS (a_{u,i} = 1) or forwarded to the remote cloud.
//
// Profit accounting (Eq. 5–8 summed over SPs) and the forwarded-traffic
// metric of Fig. 7 live here; constraint validation against a Scenario is
// in sim/feasibility.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mec/ids.hpp"
#include "mec/scenario.hpp"

namespace dmra {

/// UE → BS association. Internally -1 encodes "remote cloud".
class Allocation {
 public:
  /// All UEs start at the cloud (unassociated).
  explicit Allocation(std::size_t num_ues);

  std::size_t num_ues() const { return assignment_.size(); }

  /// BS serving u, or nullopt if u is forwarded to the cloud.
  std::optional<BsId> bs_of(UeId u) const;

  bool is_cloud(UeId u) const { return !bs_of(u).has_value(); }

  /// Associate u with i (overwrites a previous association).
  void assign(UeId u, BsId i);

  /// Send u to the cloud.
  void assign_cloud(UeId u);

  std::size_t num_served() const;         ///< UEs served at the MEC layer
  std::size_t num_cloud() const;          ///< UEs forwarded to the cloud

  friend bool operator==(const Allocation&, const Allocation&) = default;

 private:
  std::vector<std::int64_t> assignment_;  // BsId value or -1 for cloud
};

/// Per-SP and total profit of an allocation (Eq. 5 summed over k ∈ ς).
/// Cloud-forwarded UEs contribute zero MEC-layer profit.
struct ProfitBreakdown {
  std::vector<double> per_sp;   ///< W_k, indexed by SpId::idx()
  double total = 0.0;           ///< Σ_k W_k — the TPM objective (Eq. 11)
  double revenue = 0.0;         ///< Σ_k W_k^r
  double bs_payments = 0.0;     ///< Σ_k W_k^B
  double other_costs = 0.0;     ///< Σ_k W_k^S
};

/// Evaluate Eq. 5–8 for `alloc` on `scenario`.
ProfitBreakdown compute_profit(const Scenario& scenario, const Allocation& alloc);

/// Total SP profit (Eq. 11) — shorthand for compute_profit(...).total.
double total_profit(const Scenario& scenario, const Allocation& alloc);

/// Fig. 7's metric: Σ w_u over cloud-forwarded UEs, in bit/s.
double forwarded_traffic_bps(const Scenario& scenario, const Allocation& alloc);

/// Fraction of served UEs whose serving BS belongs to their own SP.
/// (Diagnostic for the ι effect; 0 if nothing is served.)
double same_sp_ratio(const Scenario& scenario, const Allocation& alloc);

}  // namespace dmra
