#include "mec/scenario_io.hpp"

#include "util/json.hpp"
#include "util/require.hpp"

// GCC 12's -Wmaybe-uninitialized cannot see through std::variant's move
// machinery and flags moved-from JsonValue temporaries in the *_to_json
// builders below (PR105593-family false positive; every path is
// initialized). Clang and newer GCCs compile this TU clean.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ <= 12
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace dmra {

namespace {

constexpr int kFormatVersion = 1;

JsonObject channel_to_json(const ChannelConfig& c) {
  JsonObject o;
  o["tx_power_dbm"] = c.tx_power_dbm;
  o["noise_dbm"] = c.noise_dbm;
  o["noise_model"] = c.noise_model == NoiseModel::kPsd ? "psd" : "total-per-rrb";
  o["min_distance_m"] = c.min_distance_m;
  o["interference_psd_mw_hz"] = c.interference_psd_mw_hz;
  o["pathloss_model"] = pathloss_model_name(c.pathloss_model);
  o["carrier_mhz"] = c.pathloss_params.carrier_mhz;
  o["bs_height_m"] = c.pathloss_params.bs_height_m;
  o["ue_height_m"] = c.pathloss_params.ue_height_m;
  o["shadowing_sigma_db"] = c.shadowing_sigma_db;
  o["shadowing_seed"] = c.shadowing_seed;
  return o;
}

ChannelConfig channel_from_json(const JsonValue& v) {
  ChannelConfig c;
  c.tx_power_dbm = v.at("tx_power_dbm").as_number();
  c.noise_dbm = v.at("noise_dbm").as_number();
  const std::string& noise = v.at("noise_model").as_string();
  if (noise == "psd") c.noise_model = NoiseModel::kPsd;
  else if (noise == "total-per-rrb") c.noise_model = NoiseModel::kTotalPerRrb;
  else DMRA_REQUIRE_MSG(false, "unknown noise model: " + noise);
  c.min_distance_m = v.at("min_distance_m").as_number();
  c.interference_psd_mw_hz = v.at("interference_psd_mw_hz").as_number();
  const std::string& pl = v.at("pathloss_model").as_string();
  bool found = false;
  for (auto model : {PathlossModel::kPaperEq18, PathlossModel::kFreeSpace,
                     PathlossModel::kLteMacro, PathlossModel::kTwoRay}) {
    if (pl == pathloss_model_name(model)) {
      c.pathloss_model = model;
      found = true;
    }
  }
  DMRA_REQUIRE_MSG(found, "unknown path-loss model: " + pl);
  c.pathloss_params.carrier_mhz = v.at("carrier_mhz").as_number();
  c.pathloss_params.bs_height_m = v.at("bs_height_m").as_number();
  c.pathloss_params.ue_height_m = v.at("ue_height_m").as_number();
  c.shadowing_sigma_db = v.at("shadowing_sigma_db").as_number();
  c.shadowing_seed = static_cast<std::uint64_t>(v.at("shadowing_seed").as_int());
  return c;
}

JsonObject pricing_to_json(const PricingConfig& p) {
  JsonObject o;
  o["b"] = p.b;
  o["iota"] = p.iota;
  o["sigma"] = p.sigma;
  o["transmission"] =
      p.transmission == TransmissionPricing::kLinear ? "linear" : "power";
  o["m_k"] = p.m_k;
  o["m_k_o"] = p.m_k_o;
  o["min_distance_m"] = p.min_distance_m;
  return o;
}

PricingConfig pricing_from_json(const JsonValue& v) {
  PricingConfig p;
  p.b = v.at("b").as_number();
  p.iota = v.at("iota").as_number();
  p.sigma = v.at("sigma").as_number();
  const std::string& t = v.at("transmission").as_string();
  if (t == "linear") p.transmission = TransmissionPricing::kLinear;
  else if (t == "power") p.transmission = TransmissionPricing::kPower;
  else DMRA_REQUIRE_MSG(false, "unknown transmission pricing: " + t);
  p.m_k = v.at("m_k").as_number();
  p.m_k_o = v.at("m_k_o").as_number();
  p.min_distance_m = v.at("min_distance_m").as_number();
  return p;
}

}  // namespace

std::string scenario_to_json(const Scenario& scenario) {
  JsonObject root;
  root["format"] = "dmra-scenario";
  root["version"] = kFormatVersion;
  root["num_services"] = static_cast<std::uint64_t>(scenario.num_services());
  root["coverage_radius_m"] = scenario.coverage_radius_m();
  root["channel"] = channel_to_json(scenario.channel());
  JsonObject ofdma;
  ofdma["uplink_bandwidth_hz"] = scenario.ofdma().uplink_bandwidth_hz;
  ofdma["rrb_bandwidth_hz"] = scenario.ofdma().rrb_bandwidth_hz;
  root["ofdma"] = std::move(ofdma);
  root["pricing"] = pricing_to_json(scenario.pricing());

  JsonArray sps;
  for (const ServiceProvider& sp : scenario.sps()) {
    JsonObject o;
    o["id"] = sp.id.value;
    o["name"] = sp.name;
    sps.push_back(std::move(o));
  }
  root["sps"] = std::move(sps);

  JsonArray bss;
  for (const BaseStation& b : scenario.bss()) {
    JsonObject o;
    o["id"] = b.id.value;
    o["sp"] = b.sp.value;
    o["x"] = b.position.x;
    o["y"] = b.position.y;
    JsonArray caps;
    for (std::uint32_t c : b.cru_capacity) caps.push_back(JsonValue(c));
    o["cru_capacity"] = std::move(caps);
    o["num_rrbs"] = b.num_rrbs;
    o["price_multiplier"] = b.price_multiplier;
    bss.push_back(std::move(o));
  }
  root["bss"] = std::move(bss);

  JsonArray ues;
  for (const UserEquipment& u : scenario.ues()) {
    JsonObject o;
    o["id"] = u.id.value;
    o["sp"] = u.sp.value;
    o["x"] = u.position.x;
    o["y"] = u.position.y;
    o["service"] = u.service.value;
    o["cru_demand"] = u.cru_demand;
    o["rate_demand_bps"] = u.rate_demand_bps;
    ues.push_back(std::move(o));
  }
  root["ues"] = std::move(ues);

  return JsonValue(std::move(root)).dump(2);
}

Scenario scenario_from_json(const std::string& text) {
  const JsonParseResult parsed = json_parse(text);
  DMRA_REQUIRE_MSG(parsed.ok, "scenario JSON parse error at offset " +
                                  std::to_string(parsed.offset) + ": " + parsed.error);
  const JsonValue& root = parsed.value;
  DMRA_REQUIRE_MSG(root.at("format").as_string() == "dmra-scenario",
                   "not a dmra-scenario document");
  DMRA_REQUIRE_MSG(root.at("version").as_int() == kFormatVersion,
                   "unsupported scenario format version");

  ScenarioData data;
  data.num_services = static_cast<std::size_t>(root.at("num_services").as_int());
  data.coverage_radius_m = root.at("coverage_radius_m").as_number();
  data.channel = channel_from_json(root.at("channel"));
  data.ofdma.uplink_bandwidth_hz = root.at("ofdma").at("uplink_bandwidth_hz").as_number();
  data.ofdma.rrb_bandwidth_hz = root.at("ofdma").at("rrb_bandwidth_hz").as_number();
  data.pricing = pricing_from_json(root.at("pricing"));

  for (const JsonValue& v : root.at("sps").as_array()) {
    ServiceProvider sp;
    sp.id = SpId{v.at("id").as_u32()};
    sp.name = v.at("name").as_string();
    data.sps.push_back(std::move(sp));
  }
  for (const JsonValue& v : root.at("bss").as_array()) {
    BaseStation b;
    b.id = BsId{v.at("id").as_u32()};
    b.sp = SpId{v.at("sp").as_u32()};
    b.position = {v.at("x").as_number(), v.at("y").as_number()};
    for (const JsonValue& c : v.at("cru_capacity").as_array())
      b.cru_capacity.push_back(c.as_u32());
    b.num_rrbs = v.at("num_rrbs").as_u32();
    b.price_multiplier = v.at("price_multiplier").as_number();
    data.bss.push_back(std::move(b));
  }
  for (const JsonValue& v : root.at("ues").as_array()) {
    UserEquipment u;
    u.id = UeId{v.at("id").as_u32()};
    u.sp = SpId{v.at("sp").as_u32()};
    u.position = {v.at("x").as_number(), v.at("y").as_number()};
    u.service = ServiceId{v.at("service").as_u32()};
    u.cru_demand = v.at("cru_demand").as_u32();
    u.rate_demand_bps = v.at("rate_demand_bps").as_number();
    data.ues.push_back(u);
  }
  return Scenario(std::move(data));
}

std::string allocation_to_json(const Allocation& alloc) {
  JsonObject root;
  root["format"] = "dmra-allocation";
  root["version"] = kFormatVersion;
  JsonArray assignment;
  for (std::size_t ui = 0; ui < alloc.num_ues(); ++ui) {
    const auto bs = alloc.bs_of(UeId{static_cast<std::uint32_t>(ui)});
    assignment.push_back(bs ? JsonValue(bs->value) : JsonValue(nullptr));
  }
  root["assignment"] = std::move(assignment);
  return JsonValue(std::move(root)).dump(2);
}

Allocation allocation_from_json(const std::string& text) {
  const JsonParseResult parsed = json_parse(text);
  DMRA_REQUIRE_MSG(parsed.ok, "allocation JSON parse error at offset " +
                                  std::to_string(parsed.offset) + ": " + parsed.error);
  const JsonValue& root = parsed.value;
  DMRA_REQUIRE_MSG(root.at("format").as_string() == "dmra-allocation",
                   "not a dmra-allocation document");
  DMRA_REQUIRE_MSG(root.at("version").as_int() == kFormatVersion,
                   "unsupported allocation format version");
  const JsonArray& assignment = root.at("assignment").as_array();
  Allocation alloc(assignment.size());
  for (std::size_t ui = 0; ui < assignment.size(); ++ui) {
    if (assignment[ui].is_null()) continue;
    alloc.assign(UeId{static_cast<std::uint32_t>(ui)}, BsId{assignment[ui].as_u32()});
  }
  return alloc;
}

}  // namespace dmra
