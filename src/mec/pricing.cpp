#include "mec/pricing.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace dmra {

double cru_price(const PricingConfig& cfg, double distance_m, bool same_sp) {
  DMRA_REQUIRE(distance_m >= 0.0);
  DMRA_REQUIRE(cfg.b > 0.0);
  DMRA_REQUIRE_MSG(cfg.iota > 1.0, "Eq. 10 requires iota > 1");
  const double d = std::max(distance_m, cfg.min_distance_m);
  const double transmission = cfg.transmission == TransmissionPricing::kLinear
                                  ? cfg.sigma * d * cfg.b
                                  : std::pow(d, cfg.sigma) * cfg.b;
  const double computing = same_sp ? cfg.b : cfg.iota * cfg.b;
  return computing + transmission;
}

double cru_margin(const PricingConfig& cfg, double distance_m, bool same_sp) {
  return cfg.m_k - cru_price(cfg, distance_m, same_sp) - cfg.m_k_o;
}

bool is_profitable(const PricingConfig& cfg, double distance_m, bool same_sp) {
  return cru_margin(cfg, distance_m, same_sp) > 0.0;
}

bool pricing_valid_for(const PricingConfig& cfg, double max_distance_m) {
  // cru_price is strictly increasing in distance and cross-SP dominates
  // same-SP, so the worst case is (max_distance_m, different SP).
  return is_profitable(cfg, max_distance_m, /*same_sp=*/false);
}

}  // namespace dmra
