// Scenario and allocation persistence (JSON).
//
// A saved scenario captures everything needed to re-run an experiment —
// entities, demands, channel/OFDMA/pricing configuration — so a run can
// be archived, diffed, or replayed on another machine. Derived link
// statistics are NOT stored; Scenario recomputes them on load, which
// doubles as a consistency check (the channel config round-trips).
#pragma once

#include <string>

#include "mec/allocation.hpp"
#include "mec/scenario.hpp"

namespace dmra {

/// Serialize a scenario (version-tagged, pretty-printed JSON).
std::string scenario_to_json(const Scenario& scenario);

/// Parse a scenario produced by scenario_to_json. Throws ContractViolation
/// on malformed input, unknown version, or data failing Scenario
/// validation.
Scenario scenario_from_json(const std::string& text);

/// Serialize an allocation (UE → BS id, null for the remote cloud).
std::string allocation_to_json(const Allocation& alloc);

/// Parse an allocation produced by allocation_to_json.
Allocation allocation_from_json(const std::string& text);

}  // namespace dmra
