// Pricing and SP-utility model (paper §III-D, Eq. 5–10).
//
// p(i,u) — the CRU price a BS charges the SP — depends on whether the UE's
// SP owns the BS and on the UE–BS distance:
//     p(i,u) = b + d^σ·b      (same SP)       (Eq. 9)
//     p(i,u) = ι·b + d^σ·b    (different SP)  (Eq. 10)
// The SP's per-task profit is c_u · (m_k − p(i,u) − m_k^o); Eq. 16 demands
// m_k > p(i,u) + m_k^o for every feasible pair.
#pragma once

namespace dmra {

/// Form of the distance-dependent transmission term in Eq. 9/10.
///
/// The equations print it as d^σ·b, but the surrounding text says the
/// price "increases with the transmission cost in a linear fashion", and
/// with the paper's σ = 0.01 the power form is inert (d^0.01 ≈ 1.05 for
/// every distance in the deployment — no spatial signal at all). The
/// linear reading σ·d·b makes σ = 0.01/m meaningful and reproduces the
/// paper's ρ trends (Figs. 6–7); it is the default. See DESIGN.md §3.
enum class TransmissionPricing {
  kLinear,  ///< transmission term = σ · d · b   (paper prose; default)
  kPower,   ///< transmission term = d^σ · b     (paper formula, literal)
};

/// Pricing constants. The paper fixes σ = 0.01 and studies ι ∈ {1.1, 2};
/// b, m_k, m_k^o are not given numerically — see DESIGN.md §3 for the
/// defaults chosen here (they satisfy Eq. 16 for the whole deployment).
struct PricingConfig {
  double b = 1.0;        ///< base CRU price charged by a BS
  double iota = 2.0;     ///< cross-SP markup (ι > 1)
  /// Distance weight (1/m, linear form) or exponent (power form) of the
  /// transmission term. The default 0.003/m keeps the typical
  /// intra-candidate distance spread (~0.3–1.5·b across a 500 m coverage
  /// disk) comparable to the cross-SP markup (ι−1)·b, which is the regime
  /// where the paper's trade-offs (Figs. 2–7) are all live — see
  /// DESIGN.md §3.
  double sigma = 0.003;
  TransmissionPricing transmission = TransmissionPricing::kLinear;
  double m_k = 6.0;      ///< CRU price an SP charges its subscribers
  double m_k_o = 1.0;    ///< SP's other per-CRU cost (m_k^o)
  /// Distances below this are clamped before the distance term (d^σ is
  /// not meaningful at d = 0).
  double min_distance_m = 1.0;
};

/// Eq. 9/10: price per CRU charged by BS i to UE u's SP.
double cru_price(const PricingConfig& cfg, double distance_m, bool same_sp);

/// Per-CRU profit margin m_k − p(i,u) − m_k^o for the UE's SP.
double cru_margin(const PricingConfig& cfg, double distance_m, bool same_sp);

/// Eq. 16 check for one pair: serving must be strictly profitable.
bool is_profitable(const PricingConfig& cfg, double distance_m, bool same_sp);

/// Validates Eq. 16 over every distance in [0, max_distance_m] for both
/// same-SP and cross-SP prices (the price is monotone in distance, so the
/// extreme distance suffices).
bool pricing_valid_for(const PricingConfig& cfg, double max_distance_m);

}  // namespace dmra
