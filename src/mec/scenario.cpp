#include "mec/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/require.hpp"

namespace dmra {

const LinkStats Scenario::kNoLink{};

namespace {

/// Dense link storage caps out at this many (UE, BS) entries; larger
/// deployments switch to the spatial-hash + CSR build (LinkBuild::kAuto).
/// 2^16 entries ≈ 2.6 MB keeps every paper-scale scenario on the O(1)
/// dense path while million-user deployments stay O(U·k̄) in memory.
constexpr std::size_t kDenseLinkThreshold = std::size_t{1} << 16;

/// Spatial hash over BS positions with cell size = coverage radius: every
/// BS within the radius of a point lies in the point's 3×3 cell block.
class BsGrid {
 public:
  BsGrid(const std::vector<BaseStation>& bss, double cell_m) : cell_m_(cell_m) {
    for (std::uint32_t i = 0; i < bss.size(); ++i)
      cells_[key(cell(bss[i].position.x), cell(bss[i].position.y))].push_back(i);
  }

  /// BS indices in the 3×3 block around `p`, ascending (callers rely on
  /// CSR rows being sorted by BS id).
  void neighbors(const Point& p, std::vector<std::uint32_t>& out) const {
    out.clear();
    const std::int64_t cx = cell(p.x), cy = cell(p.y);
    for (std::int64_t dx = -1; dx <= 1; ++dx)
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells_.find(key(cx + dx, cy + dy));
        if (it == cells_.end()) continue;
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    std::sort(out.begin(), out.end());
  }

 private:
  std::int64_t cell(double v) const {
    return static_cast<std::int64_t>(std::floor(v / cell_m_));
  }
  static std::uint64_t key(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }

  double cell_m_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace

Scenario::Scenario(ScenarioData data) : data_(std::move(data)) {
  validate();
  build_links();
}

void Scenario::validate() const {
  DMRA_REQUIRE_MSG(!data_.sps.empty(), "scenario needs at least one SP");
  // Zero BSs (and zero UEs) are legal degenerate instances: a residual
  // scenario of an online run, or a region with no deployment yet. Every
  // UE is then cloud-forwarded; metrics and allocators must cope.
  DMRA_REQUIRE_MSG(data_.num_services > 0, "scenario needs at least one service");
  DMRA_REQUIRE(data_.coverage_radius_m > 0.0);

  for (std::size_t k = 0; k < data_.sps.size(); ++k)
    DMRA_REQUIRE_MSG(data_.sps[k].id.idx() == k, "SP ids must be contiguous 0..n-1");

  for (std::size_t i = 0; i < data_.bss.size(); ++i) {
    const BaseStation& b = data_.bss[i];
    DMRA_REQUIRE_MSG(b.id.idx() == i, "BS ids must be contiguous 0..n-1");
    DMRA_REQUIRE_MSG(b.sp.idx() < data_.sps.size(), "BS references unknown SP");
    DMRA_REQUIRE_MSG(b.cru_capacity.size() == data_.num_services,
                     "BS CRU capacity vector must cover every service");
    // num_rrbs == 0 is allowed: a radio-exhausted BS (e.g. in a residual
    // scenario of an online run) simply can never be a candidate.
  }

  for (std::size_t u = 0; u < data_.ues.size(); ++u) {
    const UserEquipment& e = data_.ues[u];
    DMRA_REQUIRE_MSG(e.id.idx() == u, "UE ids must be contiguous 0..n-1");
    DMRA_REQUIRE_MSG(e.sp.idx() < data_.sps.size(), "UE references unknown SP");
    DMRA_REQUIRE_MSG(e.service.idx() < data_.num_services, "UE requests unknown service");
    DMRA_REQUIRE_MSG(e.cru_demand > 0, "UE CRU demand must be positive");
    DMRA_REQUIRE_MSG(e.rate_demand_bps > 0.0, "UE rate demand must be positive");
  }

  // Eq. 16 over the whole deployment: the farthest profitable pair is at
  // the coverage radius (beyond it no association is possible), priced at
  // each BS's own multiplier.
  for (const BaseStation& b : data_.bss) {
    DMRA_REQUIRE_MSG(b.price_multiplier > 0.0, "price multiplier must be positive");
    const double worst_price =
        b.price_multiplier *
        cru_price(data_.pricing, data_.coverage_radius_m, /*same_sp=*/false);
    DMRA_REQUIRE_MSG(data_.pricing.m_k > worst_price + data_.pricing.m_k_o,
                     "pricing violates Eq. 16 within the coverage radius");
  }
}

void Scenario::build_links() {
  const std::size_t nu = num_ues();
  const std::size_t nb = num_bss();
  dense_links_ = data_.link_build == LinkBuild::kDense ||
                 (data_.link_build == LinkBuild::kAuto && nu * nb <= kDenseLinkThreshold);
  cand_offsets_.assign(nu + 1, 0);
  candidates_.clear();
  cand_price_.clear();
  cand_rrbs_.clear();
  links_.clear();
  link_cols_.clear();
  link_offsets_.clear();

  // Shared per-pair computation: only ever invoked for in-radius pairs,
  // so the dense and sparse builds produce bit-identical stats. Pairs the
  // radio cannot serve at all (zero rate) are kept but demoted to
  // out-of-coverage, matching the historical dense semantics.
  const auto compute_link = [&](const UserEquipment& u, const BaseStation& b,
                                double distance) {
    LinkStats l;
    l.distance_m = distance;
    l.in_coverage = true;
    l.sinr = sinr(data_.channel, l.distance_m, data_.ofdma.rrb_bandwidth_hz, u.id.value,
                  b.id.value);
    l.rrb_rate_bps = rrb_rate_bps(data_.ofdma.rrb_bandwidth_hz, l.sinr);
    if (l.rrb_rate_bps > 0.0) {
      l.n_rrbs = rrbs_needed(u.rate_demand_bps, l.rrb_rate_bps);
    } else {
      l.n_rrbs = 0;
      l.in_coverage = false;
    }
    return l;
  };
  // Candidate rule: coverage + service hosted + radio demand individually
  // satisfiable + enough capacity for the demand. Stored flat to keep
  // Scenario cheap to copy around.
  const auto is_candidate = [](const UserEquipment& u, const BaseStation& b,
                               const LinkStats& l) {
    return l.in_coverage && b.hosts(u.service) && l.n_rrbs <= b.num_rrbs &&
           u.cru_demand <= b.cru_capacity[u.service.idx()];
  };

  if (dense_links_) {
    links_.resize(nu * nb);
    for (std::size_t ui = 0; ui < nu; ++ui) {
      const UserEquipment& u = data_.ues[ui];
      for (std::size_t bi = 0; bi < nb; ++bi) {
        const BaseStation& b = data_.bss[bi];
        const double d = distance_m(u.position, b.position);
        if (d > data_.coverage_radius_m) continue;  // stays all-zero
        const LinkStats l = compute_link(u, b, d);
        links_[ui * nb + bi] = l;
        if (is_candidate(u, b, l)) {
          candidates_.push_back(BsId{static_cast<std::uint32_t>(bi)});
          cand_price_.push_back(b.price_multiplier *
                                cru_price(data_.pricing, l.distance_m, u.sp == b.sp));
          cand_rrbs_.push_back(l.n_rrbs);
        }
      }
      cand_offsets_[ui + 1] = candidates_.size();
    }
    return;
  }

  // Sparse build: hash BS positions into coverage-radius cells, then per
  // UE examine only the 3×3 block — O(U·k̄) link computations and memory
  // instead of O(U·B).
  const BsGrid grid(data_.bss, data_.coverage_radius_m);
  link_offsets_.assign(nu + 1, 0);
  std::vector<std::uint32_t> nearby;
  for (std::size_t ui = 0; ui < nu; ++ui) {
    const UserEquipment& u = data_.ues[ui];
    grid.neighbors(u.position, nearby);
    for (const std::uint32_t bi : nearby) {
      const BaseStation& b = data_.bss[bi];
      const double d = distance_m(u.position, b.position);
      if (d > data_.coverage_radius_m) continue;
      const LinkStats l = compute_link(u, b, d);
      links_.push_back(l);
      link_cols_.push_back(bi);
      if (is_candidate(u, b, l)) {
        candidates_.push_back(BsId{bi});
        cand_price_.push_back(b.price_multiplier *
                              cru_price(data_.pricing, l.distance_m, u.sp == b.sp));
        cand_rrbs_.push_back(l.n_rrbs);
      }
    }
    link_offsets_[ui + 1] = links_.size();
    cand_offsets_[ui + 1] = candidates_.size();
  }
}

double Scenario::price(UeId u, BsId i) const {
  return bs(i).price_multiplier *
         cru_price(data_.pricing, link(u, i).distance_m, same_sp(u, i));
}

double Scenario::pair_profit(UeId u, BsId i) const {
  const double margin = data_.pricing.m_k - price(u, i) - data_.pricing.m_k_o;
  return static_cast<double>(ue(u).cru_demand) * margin;
}

RegionPartition partition_regions(const Scenario& scenario, std::size_t num_regions) {
  const std::size_t nb = scenario.num_bss();
  const std::size_t nu = scenario.num_ues();
  RegionPartition part;
  part.num_regions = std::clamp<std::size_t>(num_regions, 1, std::max<std::size_t>(1, nb));
  const std::size_t nr = part.num_regions;

  // BS strips: equal-width x intervals over the BS bounding box. The last
  // strip is closed on the right so max_x lands in region nr - 1.
  part.bs_region.resize(nb);
  if (nb > 0) {
    double min_x = scenario.bs(BsId{0}).position.x;
    double max_x = min_x;
    for (const BaseStation& b : scenario.bss()) {
      min_x = std::min(min_x, b.position.x);
      max_x = std::max(max_x, b.position.x);
    }
    const double width = (max_x - min_x) / static_cast<double>(nr);
    for (std::size_t bi = 0; bi < nb; ++bi) {
      std::size_t r = 0;
      if (width > 0.0) {
        const double rel = (scenario.bs(BsId{static_cast<std::uint32_t>(bi)}).position.x -
                            min_x) / width;
        r = std::min(static_cast<std::size_t>(rel), nr - 1);
      }
      part.bs_region[bi] = static_cast<std::uint32_t>(r);
    }
  }

  // UE classification from candidate-set regions alone: a UE belongs to a
  // region iff every BS it could ever propose to lives there.
  part.ue_region.resize(nu);
  for (std::size_t ui = 0; ui < nu; ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto cands = scenario.candidates(u);
    if (cands.empty()) {
      part.ue_region[ui] = RegionPartition::kCloudOnly;
      part.cloud_ues.push_back(u);
      continue;
    }
    const std::uint32_t first = part.bs_region[cands[0].idx()];
    bool interior = true;
    for (const BsId i : cands)
      if (part.bs_region[i.idx()] != first) {
        interior = false;
        break;
      }
    if (interior) {
      part.ue_region[ui] = first;
    } else {
      part.ue_region[ui] = RegionPartition::kBoundary;
      part.boundary_ues.push_back(u);
    }
  }

  // CSR membership lists: count, prefix-sum, fill. Ids ascend within each
  // region because the fill walks ids in order.
  part.region_bs_offsets.assign(nr + 1, 0);
  for (std::size_t bi = 0; bi < nb; ++bi) part.region_bs_offsets[part.bs_region[bi] + 1]++;
  for (std::size_t r = 0; r < nr; ++r)
    part.region_bs_offsets[r + 1] += part.region_bs_offsets[r];
  part.region_bss.resize(nb);
  {
    std::vector<std::size_t> cursor(part.region_bs_offsets.begin(),
                                    part.region_bs_offsets.end() - 1);
    for (std::size_t bi = 0; bi < nb; ++bi)
      part.region_bss[cursor[part.bs_region[bi]]++] = BsId{static_cast<std::uint32_t>(bi)};
  }

  part.region_ue_offsets.assign(nr + 1, 0);
  std::size_t interior_ues = 0;
  for (std::size_t ui = 0; ui < nu; ++ui)
    if (part.ue_region[ui] < nr) {
      part.region_ue_offsets[part.ue_region[ui] + 1]++;
      ++interior_ues;
    }
  for (std::size_t r = 0; r < nr; ++r)
    part.region_ue_offsets[r + 1] += part.region_ue_offsets[r];
  part.region_ues.resize(interior_ues);
  {
    std::vector<std::size_t> cursor(part.region_ue_offsets.begin(),
                                    part.region_ue_offsets.end() - 1);
    for (std::size_t ui = 0; ui < nu; ++ui)
      if (part.ue_region[ui] < nr)
        part.region_ues[cursor[part.ue_region[ui]]++] = UeId{static_cast<std::uint32_t>(ui)};
  }
  return part;
}

}  // namespace dmra
