#include "mec/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace dmra {

Scenario::Scenario(ScenarioData data) : data_(std::move(data)) {
  validate();
  build_links();
}

void Scenario::validate() const {
  DMRA_REQUIRE_MSG(!data_.sps.empty(), "scenario needs at least one SP");
  DMRA_REQUIRE_MSG(!data_.bss.empty(), "scenario needs at least one BS");
  DMRA_REQUIRE_MSG(data_.num_services > 0, "scenario needs at least one service");
  DMRA_REQUIRE(data_.coverage_radius_m > 0.0);

  for (std::size_t k = 0; k < data_.sps.size(); ++k)
    DMRA_REQUIRE_MSG(data_.sps[k].id.idx() == k, "SP ids must be contiguous 0..n-1");

  for (std::size_t i = 0; i < data_.bss.size(); ++i) {
    const BaseStation& b = data_.bss[i];
    DMRA_REQUIRE_MSG(b.id.idx() == i, "BS ids must be contiguous 0..n-1");
    DMRA_REQUIRE_MSG(b.sp.idx() < data_.sps.size(), "BS references unknown SP");
    DMRA_REQUIRE_MSG(b.cru_capacity.size() == data_.num_services,
                     "BS CRU capacity vector must cover every service");
    // num_rrbs == 0 is allowed: a radio-exhausted BS (e.g. in a residual
    // scenario of an online run) simply can never be a candidate.
  }

  for (std::size_t u = 0; u < data_.ues.size(); ++u) {
    const UserEquipment& e = data_.ues[u];
    DMRA_REQUIRE_MSG(e.id.idx() == u, "UE ids must be contiguous 0..n-1");
    DMRA_REQUIRE_MSG(e.sp.idx() < data_.sps.size(), "UE references unknown SP");
    DMRA_REQUIRE_MSG(e.service.idx() < data_.num_services, "UE requests unknown service");
    DMRA_REQUIRE_MSG(e.cru_demand > 0, "UE CRU demand must be positive");
    DMRA_REQUIRE_MSG(e.rate_demand_bps > 0.0, "UE rate demand must be positive");
  }

  // Eq. 16 over the whole deployment: the farthest profitable pair is at
  // the coverage radius (beyond it no association is possible), priced at
  // each BS's own multiplier.
  for (const BaseStation& b : data_.bss) {
    DMRA_REQUIRE_MSG(b.price_multiplier > 0.0, "price multiplier must be positive");
    const double worst_price =
        b.price_multiplier *
        cru_price(data_.pricing, data_.coverage_radius_m, /*same_sp=*/false);
    DMRA_REQUIRE_MSG(data_.pricing.m_k > worst_price + data_.pricing.m_k_o,
                     "pricing violates Eq. 16 within the coverage radius");
  }
}

void Scenario::build_links() {
  const std::size_t nu = num_ues();
  const std::size_t nb = num_bss();
  links_.resize(nu * nb);
  cand_offsets_.assign(nu + 1, 0);

  for (std::size_t ui = 0; ui < nu; ++ui) {
    const UserEquipment& u = data_.ues[ui];
    for (std::size_t bi = 0; bi < nb; ++bi) {
      const BaseStation& b = data_.bss[bi];
      LinkStats& l = links_[ui * nb + bi];
      l.distance_m = distance_m(u.position, b.position);
      l.in_coverage = l.distance_m <= data_.coverage_radius_m;
      l.sinr = sinr(data_.channel, l.distance_m, data_.ofdma.rrb_bandwidth_hz,
                    u.id.value, b.id.value);
      l.rrb_rate_bps = rrb_rate_bps(data_.ofdma.rrb_bandwidth_hz, l.sinr);
      if (l.in_coverage && l.rrb_rate_bps > 0.0) {
        const std::uint32_t n = rrbs_needed(u.rate_demand_bps, l.rrb_rate_bps);
        l.n_rrbs = n;
      } else {
        l.n_rrbs = 0;
        l.in_coverage = false;
      }
    }
  }

  // Candidate sets: coverage + service hosted + radio demand individually
  // satisfiable. Stored flat to keep Scenario cheap to copy around.
  candidates_.clear();
  for (std::size_t ui = 0; ui < nu; ++ui) {
    const UserEquipment& u = data_.ues[ui];
    for (std::size_t bi = 0; bi < nb; ++bi) {
      const LinkStats& l = links_[ui * nb + bi];
      const BaseStation& b = data_.bss[bi];
      if (l.in_coverage && b.hosts(u.service) && l.n_rrbs <= b.num_rrbs &&
          u.cru_demand <= b.cru_capacity[u.service.idx()]) {
        candidates_.push_back(BsId{static_cast<std::uint32_t>(bi)});
      }
    }
    cand_offsets_[ui + 1] = candidates_.size();
  }
}

double Scenario::price(UeId u, BsId i) const {
  return bs(i).price_multiplier *
         cru_price(data_.pricing, link(u, i).distance_m, same_sp(u, i));
}

double Scenario::pair_profit(UeId u, BsId i) const {
  const double margin = data_.pricing.m_k - price(u, i) - data_.pricing.m_k_o;
  return static_cast<double>(ue(u).cru_demand) * margin;
}

}  // namespace dmra
