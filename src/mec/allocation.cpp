#include "mec/allocation.hpp"

#include "util/require.hpp"

namespace dmra {

namespace {
constexpr std::int64_t kCloud = -1;
}

Allocation::Allocation(std::size_t num_ues) : assignment_(num_ues, kCloud) {}

std::optional<BsId> Allocation::bs_of(UeId u) const {
  DMRA_REQUIRE(u.idx() < assignment_.size());
  const std::int64_t v = assignment_[u.idx()];
  if (v == kCloud) return std::nullopt;
  return BsId{static_cast<std::uint32_t>(v)};
}

void Allocation::assign(UeId u, BsId i) {
  DMRA_REQUIRE(u.idx() < assignment_.size());
  assignment_[u.idx()] = static_cast<std::int64_t>(i.value);
}

void Allocation::assign_cloud(UeId u) {
  DMRA_REQUIRE(u.idx() < assignment_.size());
  assignment_[u.idx()] = kCloud;
}

std::size_t Allocation::num_served() const {
  std::size_t n = 0;
  for (std::int64_t v : assignment_)
    if (v != kCloud) ++n;
  return n;
}

std::size_t Allocation::num_cloud() const { return assignment_.size() - num_served(); }

ProfitBreakdown compute_profit(const Scenario& scenario, const Allocation& alloc) {
  DMRA_REQUIRE(alloc.num_ues() == scenario.num_ues());
  ProfitBreakdown out;
  out.per_sp.assign(scenario.num_sps(), 0.0);
  const PricingConfig& pc = scenario.pricing();
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto bs = alloc.bs_of(u);
    if (!bs) continue;  // cloud: no MEC-layer profit (U_k excludes it)
    const UserEquipment& e = scenario.ue(u);
    const double crus = static_cast<double>(e.cru_demand);
    const double revenue = crus * pc.m_k;                      // Eq. 6 term
    const double payment = crus * scenario.price(u, *bs);      // Eq. 7 term
    const double other = crus * pc.m_k_o;                      // Eq. 8 term
    out.per_sp[e.sp.idx()] += revenue - payment - other;       // Eq. 5
    out.revenue += revenue;
    out.bs_payments += payment;
    out.other_costs += other;
  }
  for (double w : out.per_sp) out.total += w;
  return out;
}

double total_profit(const Scenario& scenario, const Allocation& alloc) {
  return compute_profit(scenario, alloc).total;
}

double forwarded_traffic_bps(const Scenario& scenario, const Allocation& alloc) {
  DMRA_REQUIRE(alloc.num_ues() == scenario.num_ues());
  double sum = 0.0;
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    if (alloc.is_cloud(u)) sum += scenario.ue(u).rate_demand_bps;
  }
  return sum;
}

double same_sp_ratio(const Scenario& scenario, const Allocation& alloc) {
  std::size_t served = 0;
  std::size_t same = 0;
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto bs = alloc.bs_of(u);
    if (!bs) continue;
    ++served;
    if (scenario.same_sp(u, *bs)) ++same;
  }
  if (served == 0) return 0.0;
  return static_cast<double>(same) / static_cast<double>(served);
}

}  // namespace dmra
