#include "mec/resources.hpp"

#include <algorithm>

#include "mec/allocation.hpp"
#include "util/require.hpp"

namespace dmra {

ResourceState::ResourceState(const Scenario& scenario) : scenario_(&scenario) {
  const std::size_t nb = scenario.num_bss();
  const std::size_t ns = scenario.num_services();
  crus_.resize(nb * ns);
  rrbs_.resize(nb);
  for (std::size_t i = 0; i < nb; ++i) {
    const BaseStation& b = scenario.bs(BsId{static_cast<std::uint32_t>(i)});
    rrbs_[i] = b.num_rrbs;
    for (std::size_t j = 0; j < ns; ++j) crus_[i * ns + j] = b.cru_capacity[j];
  }
}

std::size_t ResourceState::cru_index(BsId i, ServiceId j) const {
  return i.idx() * scenario_->num_services() + j.idx();
}

std::uint32_t ResourceState::remaining_crus(BsId i, ServiceId j) const {
  return crus_[cru_index(i, j)];
}

std::uint32_t ResourceState::remaining_rrbs(BsId i) const { return rrbs_[i.idx()]; }

bool ResourceState::can_serve(UeId u, BsId i) const {
  const UserEquipment& e = scenario_->ue(u);
  const LinkStats& l = scenario_->link(u, i);
  if (!l.in_coverage || l.n_rrbs == 0) return false;
  return remaining_crus(i, e.service) >= e.cru_demand && remaining_rrbs(i) >= l.n_rrbs;
}

void ResourceState::commit(UeId u, BsId i) {
  DMRA_REQUIRE_MSG(can_serve(u, i), "commit on a BS that cannot serve the UE");
  const UserEquipment& e = scenario_->ue(u);
  crus_[cru_index(i, e.service)] -= e.cru_demand;
  rrbs_[i.idx()] -= scenario_->link(u, i).n_rrbs;
}

void ResourceState::release(UeId u, BsId i) {
  const UserEquipment& e = scenario_->ue(u);
  const BaseStation& b = scenario_->bs(i);
  const std::uint32_t next_cru = crus_[cru_index(i, e.service)] + e.cru_demand;
  const std::uint32_t next_rrb = rrbs_[i.idx()] + scenario_->link(u, i).n_rrbs;
  DMRA_REQUIRE_MSG(next_cru <= b.cru_capacity[e.service.idx()],
                   "release exceeds the BS's CRU capacity (unpaired release?)");
  DMRA_REQUIRE_MSG(next_rrb <= b.num_rrbs,
                   "release exceeds the BS's RRB budget (unpaired release?)");
  crus_[cru_index(i, e.service)] = next_cru;
  rrbs_[i.idx()] = next_rrb;
}

void ResourceState::clamp_remaining(BsId i, const std::vector<std::uint32_t>& cru_caps,
                                    std::uint32_t rrb_cap) {
  const std::size_t ns = scenario_->num_services();
  DMRA_REQUIRE_MSG(cru_caps.size() == ns, "clamp_remaining needs one CRU cap per service");
  for (std::size_t j = 0; j < ns; ++j) {
    std::uint32_t& c = crus_[i.idx() * ns + j];
    c = std::min(c, cru_caps[j]);
  }
  rrbs_[i.idx()] = std::min(rrbs_[i.idx()], rrb_cap);
}

void ResourceState::recount_remaining(BsId i, const Allocation& alloc) {
  const std::size_t ns = scenario_->num_services();
  const BaseStation& b = scenario_->bs(i);
  for (std::size_t j = 0; j < ns; ++j) crus_[i.idx() * ns + j] = b.cru_capacity[j];
  rrbs_[i.idx()] = b.num_rrbs;
  for (std::size_t ui = 0; ui < alloc.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto bs = alloc.bs_of(u);
    if (!bs || *bs != i) continue;
    const UserEquipment& e = scenario_->ue(u);
    const std::uint32_t demand_rrbs = scenario_->link(u, i).n_rrbs;
    DMRA_REQUIRE_MSG(crus_[cru_index(i, e.service)] >= e.cru_demand &&
                         rrbs_[i.idx()] >= demand_rrbs,
                     "recount_remaining: allocation overcommits the BS");
    crus_[cru_index(i, e.service)] -= e.cru_demand;
    rrbs_[i.idx()] -= demand_rrbs;
  }
}

std::uint32_t ResourceState::remaining_for_preference(BsId i, ServiceId j) const {
  return remaining_crus(i, j) + remaining_rrbs(i);
}

}  // namespace dmra
