// The allocator interface every scheme implements (DMRA, the paper's
// baselines, and the extra comparators).
//
// An allocator maps an immutable Scenario to an Allocation; any UE it
// leaves unassigned is, by definition, forwarded to the remote cloud.
// Allocators must be deterministic for a fixed scenario (randomized
// schemes take their seed at construction).
#pragma once

#include <memory>
#include <string>

#include "mec/allocation.hpp"
#include "mec/scenario.hpp"

namespace dmra {

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Short display name used in experiment tables ("DMRA", "DCSP", ...).
  virtual std::string name() const = 0;

  /// Compute the UE→BS association. Must satisfy constraints (12)–(15);
  /// sim/feasibility.hpp re-validates this in tests.
  virtual Allocation allocate(const Scenario& scenario) const = 0;
};

using AllocatorPtr = std::unique_ptr<Allocator>;

}  // namespace dmra
