// Per-round audit hooks — the seam between allocators and the invariant
// auditor (src/check).
//
// Allocators that keep an internal resource ledger report it here at the
// end of every proposal round, together with the partial allocation built
// so far. An installed Observer (normally check/invariant_auditor.hpp)
// recounts everything from scratch and cross-checks; with no observer
// installed the hook site is a single relaxed pointer test, cheap enough
// to keep in release builds. The hook sites themselves compile out when
// the DMRA_AUDIT CMake option is OFF.
//
// Two gates, per the correctness-tooling design (docs/CORRECTNESS.md):
//  * compile-time — DMRA_AUDIT_ENABLED (CMake option DMRA_AUDIT);
//  * run-time — an Observer installed via ScopedAuditObserver, or the
//    DMRA_AUDIT=1 environment variable, which installs a process-wide
//    throwing auditor on first use so any binary can run audited without
//    code changes.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "mec/allocation.hpp"
#include "mec/scenario.hpp"

namespace dmra::audit {

/// An allocator's own view of remaining resources, flattened the same way
/// ResourceState stores it: crus[i * num_services + j], rrbs[i].
struct LedgerSnapshot {
  std::vector<std::uint32_t> crus;
  std::vector<std::uint32_t> rrbs;
};

/// Everything an observer needs to re-derive the truth for one round.
struct RoundContext {
  const Scenario* scenario = nullptr;
  /// The (partial) allocation after this round's commits.
  const Allocation* allocation = nullptr;
  /// The producer's internal ledger after this round's commits.
  LedgerSnapshot ledger;
  /// Round counter within the producing run; 0 resets per-run state
  /// (e.g. the monotonic-profit baseline) in stateful observers.
  std::size_t round = 0;
  /// Instrumentation site, e.g. "core/solver", "baselines/greedy".
  std::string_view source;
};

class Observer {
 public:
  virtual ~Observer() = default;
  /// Called after each proposal round of an instrumented allocator.
  /// Implementations may throw to abort the run (the default auditor
  /// throws AuditFailure).
  virtual void on_round(const RoundContext& ctx) = 0;
};

/// True iff hook sites are compiled in AND an observer is installed
/// (installing one lazily from the DMRA_AUDIT env var on first query).
/// Producers must guard snapshot construction with this.
bool enabled();

/// The installed observer, or nullptr.
Observer* observer();

/// Install `obs` (nullptr uninstalls) for the CALLING THREAD and return
/// the thread's previous observer. The slot is thread-local, so parallel
/// workers running instrumented allocators each audit independently —
/// install on the thread that runs the work.
Observer* set_observer(Observer* obs);

/// Register the factory the DMRA_AUDIT=1 env path uses to build its
/// process-wide auditor. src/check registers its InvariantAuditor from
/// an inline registrar in check/invariant_auditor.hpp, so any binary
/// that includes that header gets env-var support automatically.
void set_env_observer_factory(Observer* (*factory)());

/// RAII installation for the duration of a scope (tests, AuditedAllocator).
class ScopedAuditObserver {
 public:
  explicit ScopedAuditObserver(Observer* obs) : previous_(set_observer(obs)) {}
  ~ScopedAuditObserver() { set_observer(previous_); }
  ScopedAuditObserver(const ScopedAuditObserver&) = delete;
  ScopedAuditObserver& operator=(const ScopedAuditObserver&) = delete;

 private:
  Observer* previous_;
};

/// Convenience for producers: build a LedgerSnapshot by querying
/// remaining resources through callables (avoids exposing internals).
template <typename CruFn, typename RrbFn>
LedgerSnapshot snapshot_ledger(const Scenario& scenario, CruFn&& crus, RrbFn&& rrbs) {
  LedgerSnapshot snap;
  const std::size_t nb = scenario.num_bss();
  const std::size_t ns = scenario.num_services();
  snap.crus.resize(nb * ns);
  snap.rrbs.resize(nb);
  for (std::size_t i = 0; i < nb; ++i) {
    const BsId bs{static_cast<std::uint32_t>(i)};
    snap.rrbs[i] = rrbs(bs);
    for (std::size_t j = 0; j < ns; ++j)
      snap.crus[i * ns + j] = crus(bs, ServiceId{static_cast<std::uint32_t>(j)});
  }
  return snap;
}

}  // namespace dmra::audit

namespace dmra {
class ResourceState;

namespace audit {
/// One-call round report for ResourceState-backed allocators: snapshots
/// the ledger and forwards to the installed observer. No-op when
/// disabled, but call sites should still guard with DMRA_AUDIT_ACTIVE()
/// so the call compiles out entirely under -DDMRA_AUDIT=OFF.
void report_state_round(std::string_view source, std::size_t round,
                        const Scenario& scenario, const Allocation& allocation,
                        const ResourceState& state);
}  // namespace audit
}  // namespace dmra

// Hook-site gate: `if (DMRA_AUDIT_ACTIVE()) { build context; report }`.
// Compiles to `if (false)` when auditing is configured out, so the
// snapshot construction in the body is dead-stripped.
#if defined(DMRA_AUDIT_ENABLED) && DMRA_AUDIT_ENABLED
#define DMRA_AUDIT_ACTIVE() (::dmra::audit::enabled())
#else
#define DMRA_AUDIT_ACTIVE() (false)
#endif
