// The static problem instance: SPs, BSs, UEs, services, and all derived
// per-link radio quantities (paper §III).
//
// A Scenario is immutable once built; algorithms read it and track the
// mutable resource state separately (mec/resources.hpp). All per-(UE, BS)
// quantities — distance, SINR, per-RRB rate, RRB demand — are precomputed
// at construction so that algorithms and the decentralized runtime agree
// on the channel exactly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geometry/geometry.hpp"
#include "mec/ids.hpp"
#include "mec/pricing.hpp"
#include "radio/channel.hpp"
#include "radio/ofdma.hpp"

namespace dmra {

/// A service provider (e.g. a mobile carrier). Owns BSs; UEs subscribe.
struct ServiceProvider {
  SpId id;
  std::string name;
};

/// A base station with a co-located MEC server.
struct BaseStation {
  BsId id;
  SpId sp;           ///< deploying/owning SP
  Point position;
  /// c_{i,j}: CRU capacity per service, indexed by ServiceId::idx().
  /// 0 means the service is not hosted (z_{i,j} = 0).
  std::vector<std::uint32_t> cru_capacity;
  /// N_i: uplink RRB budget.
  std::uint32_t num_rrbs = 0;
  /// Multiplier this BS applies to the Eq. 9/10 price (1.0 = the paper's
  /// uniform pricing). Lets BSs price-differentiate — see src/market.
  /// Must keep every coverage-feasible pair profitable (Eq. 16).
  double price_multiplier = 1.0;

  bool hosts(ServiceId j) const { return cru_capacity[j.idx()] > 0; }
};

/// A user equipment with one offloadable computing task.
struct UserEquipment {
  UeId id;
  SpId sp;                 ///< subscribed SP
  Point position;
  ServiceId service;       ///< the single requested service (J_{u,j} = 1)
  std::uint32_t cru_demand = 0;  ///< c_j^u
  double rate_demand_bps = 0.0;  ///< w_u
};

/// Precomputed uplink statistics for one (UE, BS) pair.
struct LinkStats {
  double distance_m = 0.0;
  double sinr = 0.0;          ///< λ(u,i), linear
  double rrb_rate_bps = 0.0;  ///< e(u,i), Eq. 2
  std::uint32_t n_rrbs = 0;   ///< n(u,i), Eq. 3 (0 if out of coverage)
  bool in_coverage = false;   ///< within the coverage radius
};

/// Link-matrix storage strategy (a construction detail, not serialized).
/// Both strategies produce identical link stats, candidate sets, and
/// coverage counts — tests/mec/scenario_test.cpp proves it per config.
enum class LinkBuild {
  kAuto,    ///< dense below a size threshold, sparse above
  kDense,   ///< |U|×|B| matrix, O(1) lookup
  kSparse,  ///< spatial-hash build + CSR rows of in-coverage links only
};

/// Plain-data inputs to Scenario construction. Generators (src/workload)
/// fill this in; tests may craft it by hand.
struct ScenarioData {
  std::size_t num_services = 0;
  std::vector<ServiceProvider> sps;
  std::vector<BaseStation> bss;
  std::vector<UserEquipment> ues;
  ChannelConfig channel;
  OfdmaConfig ofdma;
  PricingConfig pricing;
  /// A BS covers a UE iff their distance is at most this (see DESIGN.md).
  double coverage_radius_m = 500.0;
  LinkBuild link_build = LinkBuild::kAuto;
};

/// Immutable problem instance with derived link matrix and candidate sets.
///
/// Throws ContractViolation if the data is inconsistent (non-contiguous
/// ids, out-of-range SP/service references, no SPs or services, or a
/// pricing configuration violating Eq. 16 anywhere in the deployment).
/// Zero-BS and zero-UE instances are legal degenerate cases (e.g. the
/// residual scenario of a drained online run): candidate sets are simply
/// empty and every UE is cloud-forwarded.
class Scenario {
 public:
  explicit Scenario(ScenarioData data);

  std::size_t num_sps() const { return data_.sps.size(); }
  std::size_t num_bss() const { return data_.bss.size(); }
  std::size_t num_ues() const { return data_.ues.size(); }
  std::size_t num_services() const { return data_.num_services; }

  const ServiceProvider& sp(SpId k) const { return data_.sps[k.idx()]; }
  const BaseStation& bs(BsId i) const { return data_.bss[i.idx()]; }
  const UserEquipment& ue(UeId u) const { return data_.ues[u.idx()]; }

  std::span<const ServiceProvider> sps() const { return data_.sps; }
  std::span<const BaseStation> bss() const { return data_.bss; }
  std::span<const UserEquipment> ues() const { return data_.ues; }

  const ChannelConfig& channel() const { return data_.channel; }
  const OfdmaConfig& ofdma() const { return data_.ofdma; }
  const PricingConfig& pricing() const { return data_.pricing; }
  double coverage_radius_m() const { return data_.coverage_radius_m; }

  /// Precomputed link statistics for any (u, i) pair. Out-of-coverage
  /// pairs yield the canonical zero stats (in_coverage = false,
  /// n_rrbs = 0) under either storage strategy.
  const LinkStats& link(UeId u, BsId i) const {
    if (dense_links_) return links_[u.idx() * num_bss() + i.idx()];
    const auto* begin = link_cols_.data() + link_offsets_[u.idx()];
    const auto* end = link_cols_.data() + link_offsets_[u.idx() + 1];
    const auto* it = std::lower_bound(begin, end, i.value);
    if (it == end || *it != i.value) return kNoLink;
    return links_[static_cast<std::size_t>(it - link_cols_.data())];
  }

  /// B_u of Alg. 1: BSs that cover u, host u's requested service, and whose
  /// RRB budget could carry u at all (n(u,i) ≤ N_i). Sorted by BsId.
  std::span<const BsId> candidates(UeId u) const {
    return {candidates_.data() + cand_offsets_[u.idx()],
            cand_offsets_[u.idx() + 1] - cand_offsets_[u.idx()]};
  }

  /// f_u of Alg. 1 at t = 0: number of candidate BSs (the paper refines
  /// f_u to "with available resources"; algorithms recompute it against
  /// live resource state — this is the static upper bound).
  std::size_t coverage_count(UeId u) const { return candidates(u).size(); }

  /// p(i,u) per candidate slot, parallel to candidates(u) — the same
  /// doubles price() computes, hoisted to construction so the per-round
  /// preference passes read a contiguous array instead of re-deriving
  /// multiplier × cru_price per evaluation.
  std::span<const double> candidate_prices(UeId u) const {
    return {cand_price_.data() + cand_offsets_[u.idx()],
            cand_offsets_[u.idx() + 1] - cand_offsets_[u.idx()]};
  }

  /// n(u,i) per candidate slot, parallel to candidates(u). Nonzero for
  /// every slot (a zero-RRB link is never a candidate).
  std::span<const std::uint32_t> candidate_rrbs(UeId u) const {
    return {cand_rrbs_.data() + cand_offsets_[u.idx()],
            cand_offsets_[u.idx() + 1] - cand_offsets_[u.idx()]};
  }

  /// Base of u's row in the flat candidate-slot index space [0,
  /// num_candidate_slots()). Runtimes keep per-slot side arrays (e.g. the
  /// decentralized broadcast view) indexed by candidate_offset(u) + k.
  std::size_t candidate_offset(UeId u) const { return cand_offsets_[u.idx()]; }

  /// Total candidate slots across all UEs.
  std::size_t num_candidate_slots() const { return candidates_.size(); }

  bool same_sp(UeId u, BsId i) const { return ue(u).sp == bs(i).sp; }

  /// p(i,u) of Eq. 9/10.
  double price(UeId u, BsId i) const;

  /// The UE's SP's profit if u is served by i:
  /// c_j^u · (m_k − p(i,u) − m_k^o).  Always > 0 per Eq. 16.
  double pair_profit(UeId u, BsId i) const;

 private:
  static const LinkStats kNoLink;  // all-zero, in_coverage = false

  ScenarioData data_;
  /// dense: |U| × |B| row-major. sparse: in-coverage entries only, CSR —
  /// row u is links_[link_offsets_[u] .. link_offsets_[u+1]) with BS ids
  /// (sorted ascending) in the parallel link_cols_.
  bool dense_links_ = true;
  std::vector<LinkStats> links_;
  std::vector<std::uint32_t> link_cols_;
  std::vector<std::size_t> link_offsets_;
  std::vector<BsId> candidates_;          // concatenated per-UE candidate lists
  std::vector<std::size_t> cand_offsets_; // |U| + 1 offsets into candidates_
  std::vector<double> cand_price_;        // p(i,u) per candidate slot
  std::vector<std::uint32_t> cand_rrbs_;  // n(u,i) per candidate slot

  void validate() const;
  void build_links();
};

/// Spatial region partition for the sharded decentralized runtime
/// (core/sharded.cpp). BSs are assigned to equal-width vertical strips
/// over the BS bounding box (the same geometry the spatial-hash link
/// build buckets by); each UE is then classified purely from the regions
/// of its candidate set — geometry decides where *BSs* live, coverage
/// decides where *UEs* belong:
///   * interior — every candidate BS falls in one region; the UE's whole
///     matching game is local to that region's shard;
///   * boundary — candidates straddle a region cut; the UE is withheld
///     from the shard pass and matched in the deterministic reconcile
///     pass against post-shard residual resources;
///   * cloud-only — no candidates at all; the cloud floor applies and no
///     shard needs to see the UE.
struct RegionPartition {
  /// ue_region value: candidates straddle a cut, reconcile pass owns it.
  static constexpr std::uint32_t kBoundary = 0xFFFFFFFFu;
  /// ue_region value: empty candidate set, cloud-forwarded directly.
  static constexpr std::uint32_t kCloudOnly = 0xFFFFFFFEu;

  std::size_t num_regions = 0;
  std::vector<std::uint32_t> bs_region;  ///< |B|: strip index per BS
  std::vector<std::uint32_t> ue_region;  ///< |U|: region, kBoundary, or kCloudOnly

  /// CSR membership lists, ids ascending within each region.
  std::vector<BsId> region_bss;
  std::vector<std::size_t> region_bs_offsets;  ///< num_regions + 1
  std::vector<UeId> region_ues;
  std::vector<std::size_t> region_ue_offsets;  ///< num_regions + 1

  std::vector<UeId> boundary_ues;  ///< ascending
  std::vector<UeId> cloud_ues;     ///< ascending

  std::span<const BsId> bss_in(std::size_t r) const {
    return {region_bss.data() + region_bs_offsets[r],
            region_bs_offsets[r + 1] - region_bs_offsets[r]};
  }
  std::span<const UeId> ues_in(std::size_t r) const {
    return {region_ues.data() + region_ue_offsets[r],
            region_ue_offsets[r + 1] - region_ue_offsets[r]};
  }
};

/// Partition a scenario into `num_regions` vertical strips (clamped to
/// [1, max(1, |B|)]). Deterministic: depends only on the scenario and the
/// region count. Degenerate inputs are legal — zero BSs puts every UE in
/// cloud_ues; co-located BSs collapse into strip 0.
RegionPartition partition_regions(const Scenario& scenario, std::size_t num_regions);

}  // namespace dmra
