#include "topology/placement.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dmra {

const char* placement_name(PlacementMethod m) {
  switch (m) {
    case PlacementMethod::kRegularGrid: return "regular";
    case PlacementMethod::kRandom: return "random";
  }
  return "?";
}

std::vector<Point> place_bss(PlacementMethod method, const Rect& area, std::size_t num_bss,
                             double grid_spacing_m, Rng& rng) {
  DMRA_REQUIRE(num_bss > 0);
  switch (method) {
    case PlacementMethod::kRandom:
      return sample_uniform(area, num_bss, rng);
    case PlacementMethod::kRegularGrid: {
      const auto cols =
          static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(num_bss))));
      const std::size_t rows = (num_bss + cols - 1) / cols;
      std::vector<Point> pts = grid_points(area, rows, cols, grid_spacing_m);
      pts.resize(num_bss);
      return pts;
    }
  }
  DMRA_REQUIRE_MSG(false, "unknown placement method");
  return {};
}

std::vector<SpId> assign_owners(OwnershipPolicy policy, std::size_t num_bss,
                                std::size_t num_sps, Rng& rng) {
  DMRA_REQUIRE(num_bss > 0 && num_sps > 0);
  std::vector<SpId> owners(num_bss);
  for (std::size_t i = 0; i < num_bss; ++i)
    owners[i] = SpId{static_cast<std::uint32_t>(i % num_sps)};
  if (policy == OwnershipPolicy::kShuffled) rng.shuffle(owners);
  return owners;
}

}  // namespace dmra
