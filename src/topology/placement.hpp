// BS placement and SP ownership (paper §VI-A).
//
// Two placement methods are evaluated in the paper:
//  * regular — a square grid with 300 m inter-site distance;
//  * random  — uniform in a 1200 m × 1200 m rectangle.
// Ownership interleaves SPs round-robin across sites so that overlapping
// coverage areas mix operators (the paper's densely-deployed premise).
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/geometry.hpp"
#include "mec/ids.hpp"
#include "util/rng.hpp"

namespace dmra {

enum class PlacementMethod {
  kRegularGrid,  ///< near-square grid, fixed inter-site distance
  kRandom,       ///< uniform in the deployment area
};

const char* placement_name(PlacementMethod m);

/// Site positions for `num_bss` BSs.
///
/// Regular: the most-square rows × cols grid with rows·cols ≥ num_bss,
/// spaced `grid_spacing_m`, centered in `area`; extra sites are dropped
/// from the end. Random: uniform samples (consumes `rng`).
std::vector<Point> place_bss(PlacementMethod method, const Rect& area, std::size_t num_bss,
                             double grid_spacing_m, Rng& rng);

/// SP owner per site. `kRoundRobin` interleaves SPs (site s → SP s mod K)
/// so neighbouring sites belong to different operators; `kShuffled`
/// assigns each SP an equal share at random positions.
enum class OwnershipPolicy { kRoundRobin, kShuffled };

std::vector<SpId> assign_owners(OwnershipPolicy policy, std::size_t num_bss,
                                std::size_t num_sps, Rng& rng);

}  // namespace dmra
