#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "util/require.hpp"

namespace dmra {

namespace {

std::vector<std::uint32_t> host_capacities(const ScenarioConfig& cfg, Rng& rng) {
  // Choose which services this BS hosts, then draw each hosted capacity.
  std::vector<std::uint32_t> caps(cfg.num_services, 0);
  std::vector<std::size_t> service_ids(cfg.num_services);
  std::iota(service_ids.begin(), service_ids.end(), std::size_t{0});
  if (cfg.services_per_bs < cfg.num_services) rng.shuffle(service_ids);
  for (std::size_t n = 0; n < cfg.services_per_bs; ++n) {
    const std::size_t j = service_ids[n];
    caps[j] = static_cast<std::uint32_t>(
        rng.uniform_int(cfg.cru_capacity_min, cfg.cru_capacity_max));
  }
  return caps;
}

/// Zipf(s) sampler over ranks 0..n-1 via inverse-CDF on precomputed
/// cumulative weights.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) {
    DMRA_REQUIRE(n > 0);
    DMRA_REQUIRE(s >= 0.0);
    cdf_.reserve(n);
    double total = 0.0;
    for (std::size_t r = 1; r <= n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t draw(Rng& rng) const {
    const double u = rng.uniform_real(0.0, 1.0);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Clamp a coordinate into the deployment area.
double clamp_coord(double v, double side) { return std::clamp(v, 0.0, side); }

Point draw_ue_position(const ScenarioConfig& cfg, const std::vector<Point>& hotspots,
                       Rng& rng) {
  if (cfg.ue_distribution == UeDistribution::kUniform || hotspots.empty() ||
      !rng.bernoulli(cfg.hotspot_fraction)) {
    return {rng.uniform_real(0.0, cfg.area_side_m), rng.uniform_real(0.0, cfg.area_side_m)};
  }
  const Point& center = hotspots[rng.index(hotspots.size())];
  return {clamp_coord(rng.gaussian(center.x, cfg.hotspot_sigma_m), cfg.area_side_m),
          clamp_coord(rng.gaussian(center.y, cfg.hotspot_sigma_m), cfg.area_side_m)};
}

double derived_interference_psd(const ScenarioConfig& cfg,
                                const std::vector<BaseStation>& bss,
                                const std::vector<UserEquipment>& ues) {
  if (cfg.interference_activity_factor <= 0.0 || ues.empty()) return 0.0;
  // Mean aggregate received UE power per BS, scaled by the fraction of UEs
  // transmitting at once, spread uniformly over the uplink band.
  double total_mw = 0.0;
  for (const BaseStation& b : bss)
    for (const UserEquipment& u : ues)
      total_mw += received_power_mw(cfg.channel, distance_m(u.position, b.position));
  const double mean_per_bs = total_mw / static_cast<double>(bss.size());
  return cfg.interference_activity_factor * mean_per_bs / cfg.ofdma.uplink_bandwidth_hz;
}

}  // namespace

Scenario generate_scenario(const ScenarioConfig& cfg, std::uint64_t seed) {
  // num_ues == 0 is legal (Scenario allows empty populations): the churn
  // driver generates the deployment alone and appends its own slot
  // universe (sim/churn.hpp).
  DMRA_REQUIRE(cfg.num_sps > 0 && cfg.bss_per_sp > 0);
  DMRA_REQUIRE(cfg.num_services > 0 && cfg.services_per_bs > 0);
  DMRA_REQUIRE(cfg.services_per_bs <= cfg.num_services);
  DMRA_REQUIRE(cfg.cru_capacity_min <= cfg.cru_capacity_max);
  DMRA_REQUIRE(cfg.cru_demand_min <= cfg.cru_demand_max);
  DMRA_REQUIRE(cfg.cru_demand_min > 0);
  DMRA_REQUIRE(cfg.rate_demand_min_bps > 0.0 &&
               cfg.rate_demand_min_bps <= cfg.rate_demand_max_bps);

  ScenarioData data;
  data.num_services = cfg.num_services;
  data.channel = cfg.channel;
  data.ofdma = cfg.ofdma;
  data.pricing = cfg.pricing;
  data.coverage_radius_m = cfg.coverage_radius_m;
  data.link_build = cfg.link_build;

  for (std::size_t k = 0; k < cfg.num_sps; ++k)
    data.sps.push_back({SpId{static_cast<std::uint32_t>(k)}, "SP-" + std::to_string(k)});

  Rng topo_rng("topology", seed);
  const std::size_t nb = cfg.num_bss();
  const std::vector<Point> sites =
      place_bss(cfg.placement, cfg.area(), nb, cfg.grid_spacing_m, topo_rng);
  const std::vector<SpId> owners = assign_owners(cfg.ownership, nb, cfg.num_sps, topo_rng);

  Rng cap_rng("capacity", seed);
  const std::uint32_t n_rrbs = cfg.ofdma.num_rrbs();
  for (std::size_t i = 0; i < nb; ++i) {
    BaseStation b;
    b.id = BsId{static_cast<std::uint32_t>(i)};
    b.sp = owners[i];
    b.position = sites[i];
    b.cru_capacity = host_capacities(cfg, cap_rng);
    b.num_rrbs = n_rrbs;
    data.bss.push_back(std::move(b));
  }

  Rng ue_rng("workload", seed);
  std::vector<Point> hotspots;
  if (cfg.ue_distribution == UeDistribution::kHotspots) {
    DMRA_REQUIRE(cfg.num_hotspots > 0);
    DMRA_REQUIRE(cfg.hotspot_sigma_m > 0.0);
    DMRA_REQUIRE(cfg.hotspot_fraction >= 0.0 && cfg.hotspot_fraction <= 1.0);
    Rng hotspot_rng("hotspots", seed);
    hotspots = sample_uniform(cfg.area(), cfg.num_hotspots, hotspot_rng);
  }
  const ZipfSampler zipf(cfg.num_services,
                         cfg.service_popularity == ServicePopularity::kZipf ? cfg.zipf_s
                                                                            : 0.0);
  for (std::size_t u = 0; u < cfg.num_ues; ++u) {
    UserEquipment e;
    e.id = UeId{static_cast<std::uint32_t>(u)};
    e.sp = SpId{static_cast<std::uint32_t>(ue_rng.index(cfg.num_sps))};
    e.position = draw_ue_position(cfg, hotspots, ue_rng);
    // The uniform branch keeps the pre-Zipf draw sequence so paper-default
    // scenarios are bit-identical across library versions.
    e.service = cfg.service_popularity == ServicePopularity::kUniform
                    ? ServiceId{static_cast<std::uint32_t>(ue_rng.index(cfg.num_services))}
                    : ServiceId{static_cast<std::uint32_t>(zipf.draw(ue_rng))};
    e.cru_demand =
        static_cast<std::uint32_t>(ue_rng.uniform_int(cfg.cru_demand_min, cfg.cru_demand_max));
    e.rate_demand_bps = ue_rng.uniform_real(cfg.rate_demand_min_bps, cfg.rate_demand_max_bps);
    data.ues.push_back(e);
  }

  data.channel.interference_psd_mw_hz = derived_interference_psd(cfg, data.bss, data.ues);

  return Scenario(std::move(data));
}

JsonObject scenario_config_json(const ScenarioConfig& cfg) {
  JsonObject o;
  o["num_sps"] = static_cast<std::uint64_t>(cfg.num_sps);
  o["bss_per_sp"] = static_cast<std::uint64_t>(cfg.bss_per_sp);
  o["num_ues"] = static_cast<std::uint64_t>(cfg.num_ues);
  o["num_services"] = static_cast<std::uint64_t>(cfg.num_services);
  o["services_per_bs"] = static_cast<std::uint64_t>(cfg.services_per_bs);
  o["cru_capacity_min"] = cfg.cru_capacity_min;
  o["cru_capacity_max"] = cfg.cru_capacity_max;
  o["cru_demand_min"] = cfg.cru_demand_min;
  o["cru_demand_max"] = cfg.cru_demand_max;
  o["rate_demand_min_bps"] = cfg.rate_demand_min_bps;
  o["rate_demand_max_bps"] = cfg.rate_demand_max_bps;
  o["placement"] = placement_name(cfg.placement);
  o["ownership"] =
      cfg.ownership == OwnershipPolicy::kRoundRobin ? "round-robin" : "shuffled";
  o["area_side_m"] = cfg.area_side_m;
  o["grid_spacing_m"] = cfg.grid_spacing_m;
  o["coverage_radius_m"] = cfg.coverage_radius_m;
  o["ue_distribution"] =
      cfg.ue_distribution == UeDistribution::kUniform ? "uniform" : "hotspots";
  o["num_hotspots"] = static_cast<std::uint64_t>(cfg.num_hotspots);
  o["hotspot_sigma_m"] = cfg.hotspot_sigma_m;
  o["hotspot_fraction"] = cfg.hotspot_fraction;
  o["service_popularity"] =
      cfg.service_popularity == ServicePopularity::kUniform ? "uniform" : "zipf";
  o["zipf_s"] = cfg.zipf_s;
  JsonObject channel;
  channel["tx_power_dbm"] = cfg.channel.tx_power_dbm;
  channel["noise_dbm"] = cfg.channel.noise_dbm;
  channel["noise_model"] =
      cfg.channel.noise_model == NoiseModel::kPsd ? "psd" : "total-per-rrb";
  channel["min_distance_m"] = cfg.channel.min_distance_m;
  channel["interference_psd_mw_hz"] = cfg.channel.interference_psd_mw_hz;
  channel["pathloss_model"] = pathloss_model_name(cfg.channel.pathloss_model);
  channel["shadowing_sigma_db"] = cfg.channel.shadowing_sigma_db;
  channel["shadowing_seed"] = cfg.channel.shadowing_seed;
  o["channel"] = std::move(channel);
  JsonObject ofdma;
  ofdma["uplink_bandwidth_hz"] = cfg.ofdma.uplink_bandwidth_hz;
  ofdma["rrb_bandwidth_hz"] = cfg.ofdma.rrb_bandwidth_hz;
  o["ofdma"] = std::move(ofdma);
  JsonObject pricing;
  pricing["b"] = cfg.pricing.b;
  pricing["iota"] = cfg.pricing.iota;
  pricing["sigma"] = cfg.pricing.sigma;
  pricing["transmission"] =
      cfg.pricing.transmission == TransmissionPricing::kLinear ? "linear" : "power";
  pricing["m_k"] = cfg.pricing.m_k;
  pricing["m_k_o"] = cfg.pricing.m_k_o;
  pricing["min_distance_m"] = cfg.pricing.min_distance_m;
  o["pricing"] = std::move(pricing);
  o["interference_activity_factor"] = cfg.interference_activity_factor;
  switch (cfg.link_build) {
    case LinkBuild::kAuto: o["link_build"] = "auto"; break;
    case LinkBuild::kDense: o["link_build"] = "dense"; break;
    case LinkBuild::kSparse: o["link_build"] = "sparse"; break;
  }
  return o;
}

}  // namespace dmra
