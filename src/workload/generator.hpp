// Scenario generation from the paper's §VI-A parameters.
//
// Every field of ScenarioConfig defaults to the paper's setup: 5 SPs ×
// 5 BSs, 6 services per BS, per-(BS,service) capacity U{100..150} CRUs,
// task demand U{3..5} CRUs, rate demand U[2,6] Mbit/s, 10 MHz uplink,
// 180 kHz RRBs, 10 dBm UEs, path loss per Eq. 18, 300 m inter-site
// distance / 1200 m × 1200 m area.
//
// Generation is a pure function of (config, seed): independent named RNG
// streams drive topology, capacities, and UEs, so e.g. changing the UE
// count does not move the BS grid.
#pragma once

#include <cstdint>

#include "mec/scenario.hpp"
#include "topology/placement.hpp"
#include "util/json.hpp"

namespace dmra {

/// Spatial distribution of the UE population.
enum class UeDistribution {
  kUniform,   ///< uniform over the deployment area (the paper's setup)
  kHotspots,  ///< Gaussian clusters around random hotspot centers — the
              ///< "popular areas" the paper's introduction motivates
};

/// How UEs pick their requested service.
enum class ServicePopularity {
  kUniform,  ///< every service equally likely (the paper's setup)
  kZipf,     ///< rank-skewed: P(rank r) ∝ 1/r^s (service 0 most popular)
};

struct ScenarioConfig {
  std::size_t num_sps = 5;
  std::size_t bss_per_sp = 5;
  std::size_t num_ues = 500;

  /// Size of the global service catalog S.
  std::size_t num_services = 6;
  /// Services hosted per BS (≤ num_services; a random subset if smaller —
  /// the paper's setup hosts all six everywhere).
  std::size_t services_per_bs = 6;

  /// Per-(BS, service) CRU capacity range (inclusive).
  std::uint32_t cru_capacity_min = 100;
  std::uint32_t cru_capacity_max = 150;
  /// Per-task CRU demand range (inclusive).
  std::uint32_t cru_demand_min = 3;
  std::uint32_t cru_demand_max = 5;
  /// Per-UE uplink rate demand, bit/s.
  double rate_demand_min_bps = 2e6;
  double rate_demand_max_bps = 6e6;

  PlacementMethod placement = PlacementMethod::kRegularGrid;
  OwnershipPolicy ownership = OwnershipPolicy::kRoundRobin;
  double area_side_m = 1200.0;
  double grid_spacing_m = 300.0;
  double coverage_radius_m = 500.0;

  UeDistribution ue_distribution = UeDistribution::kUniform;
  /// Hotspot parameters (used when ue_distribution == kHotspots).
  std::size_t num_hotspots = 4;
  double hotspot_sigma_m = 120.0;  ///< cluster spread
  /// Fraction of UEs drawn from hotspots; the rest stay uniform.
  double hotspot_fraction = 0.8;

  ServicePopularity service_popularity = ServicePopularity::kUniform;
  /// Zipf exponent s (used when service_popularity == kZipf).
  double zipf_s = 1.0;

  ChannelConfig channel;
  OfdmaConfig ofdma;
  PricingConfig pricing;

  /// If > 0, an inter-cell interference PSD is derived from the generated
  /// deployment: mean received UE power at the BSs × this activity factor,
  /// spread over the uplink band (see DESIGN.md §3). 0 = SNR-only channel.
  double interference_activity_factor = 0.0;

  /// Link-matrix storage strategy (kAuto picks by deployment size). Both
  /// strategies yield identical scenarios; exposed for tests/benchmarks.
  LinkBuild link_build = LinkBuild::kAuto;

  std::size_t num_bss() const { return num_sps * bss_per_sp; }
  Rect area() const { return Rect{0.0, 0.0, area_side_m, area_side_m}; }
};

/// Build a full, validated Scenario. Deterministic in (config, seed).
Scenario generate_scenario(const ScenarioConfig& config, std::uint64_t seed);

/// One-way provenance dump of every ScenarioConfig field (enum values as
/// the names the persistence layer uses). Run manifests embed this so a
/// recorded run documents the exact generator inputs; it is not a
/// round-trip format — scenarios persist via mec/scenario_io.hpp.
JsonObject scenario_config_json(const ScenarioConfig& config);

}  // namespace dmra
