// Umbrella header for the DMRA library.
//
// Typical use:
//
//   #include "dmra/dmra.hpp"
//
//   dmra::ScenarioConfig cfg;            // paper §VI-A defaults
//   cfg.num_ues = 800;
//   const dmra::Scenario scenario = dmra::generate_scenario(cfg, /*seed=*/42);
//   const dmra::DmraResult r = dmra::solve_dmra(scenario, {.rho = 100.0});
//   const dmra::RunMetrics m = dmra::evaluate(scenario, r.allocation);
//
// See examples/quickstart.cpp for a complete walk-through.
#pragma once

#include "core/decentralized.hpp"
#include "core/dmra_allocator.hpp"
#include "core/incremental.hpp"
#include "core/preference.hpp"
#include "core/solver.hpp"

#include "baselines/dcsp.hpp"
#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "baselines/nonco.hpp"
#include "baselines/random_alloc.hpp"

#include "mec/allocation.hpp"
#include "mec/allocator.hpp"
#include "mec/ids.hpp"
#include "mec/pricing.hpp"
#include "mec/resources.hpp"
#include "mec/scenario.hpp"
#include "mec/scenario_io.hpp"

#include "matching/deferred_acceptance.hpp"
#include "matching/stability.hpp"

#include "market/adaptive_pricing.hpp"

#include "mobility/handover.hpp"
#include "mobility/models.hpp"

#include "net/bus.hpp"
#include "net/fault_plan.hpp"

#include "obs/chrome_trace.hpp"
#include "obs/events.hpp"
#include "obs/exposition.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/round_csv.hpp"
#include "obs/shard.hpp"

#include "radio/channel.hpp"
#include "radio/ofdma.hpp"
#include "radio/pathloss.hpp"
#include "radio/units.hpp"

#include "sim/churn.hpp"
#include "sim/experiment.hpp"
#include "sim/faults.hpp"
#include "sim/feasibility.hpp"
#include "sim/metrics.hpp"
#include "sim/online.hpp"
#include "sim/qos.hpp"
#include "sim/render.hpp"

#include "topology/placement.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
