// Chrome trace-event JSON exporter (the "JSON Array Format" both
// chrome://tracing and Perfetto load): rounds render as duration slices
// on one track per instrumentation source, individual protocol events as
// instants on per-kind tracks, and the RoundRow aggregates additionally
// as counter series so Perfetto plots them over time.
//
// Timestamps are logical, not wall-clock: slot s occupies
// [s·1e6, (s+1)·1e6) "microseconds" and events within a slot are laid out
// by record order. A seeded run therefore exports byte-identical JSON.
#pragma once

#include <string>

namespace dmra::obs {

class TraceRecorder;

std::string export_chrome_trace(const TraceRecorder& recorder);

}  // namespace dmra::obs
