// Typed per-round trace events emitted by the matching runtime.
//
// The decentralized protocol, the direct solver, the incremental
// re-allocator, and the online simulator all narrate their progress as a
// stream of these events plus one RoundRow per proposal round. The
// stream is purely *logical*: no wall-clock timestamps, so a seeded run
// produces a byte-identical trace every time and exports can be
// golden-tested (docs/OBSERVABILITY.md). Wall-clock measurements live in
// the MetricsRegistry (obs/metrics.hpp) instead, outside the golden
// surface.
#pragma once

#include <cstdint>
#include <string_view>

namespace dmra::obs {

/// What happened. One enumerator per protocol-level occurrence the
/// tracer narrates; RoundRow aggregates them per round.
enum class EventKind : std::uint8_t {
  kProposal,      ///< UE proposed to a BS (value = reported f_u)
  kDecision,      ///< BS decided a proposal (flag = accept, reason, key)
  kTrimEviction,  ///< radio-budget trim evicted a selected winner
  kBroadcast,     ///< BS broadcast its resource levels (value = audience)
  kPhase,         ///< named lifecycle marker (label, value = detail)
  kTermination,   ///< run ended (value = rounds, flag = converged)
  kFault,         ///< injected fault fired (label = class, bs/ue, value = round)
  kRepair,        ///< recovery action taken (label = action, bs/ue, value = detail)
  kTimeline,      ///< serving-timeline event (label = kind, ue/bs, value = index)
};
inline constexpr std::size_t kNumEventKinds = 9;

/// Why a proposal was (not) admitted in the BS acceptance step.
enum class DecisionReason : std::uint8_t {
  kAccepted,      ///< won its service's tiebreak and survived the trim
  kLostTiebreak,  ///< feasible, but another proposer had a better key
  kInfeasible,    ///< BS could not honour the demand (CRUs or RRBs)
  kTrimmed,       ///< won its service, evicted by the radio-budget trim
};

std::string_view to_string(EventKind kind);
std::string_view to_string(DecisionReason reason);

/// The BS-side lexicographic preference of Alg. 1 (smaller wins): see
/// core/preference.cpp. Rejections carry the *loser's* key so slow
/// convergence can be attributed to a specific tiebreak level.
struct TiebreakKey {
  bool cross_sp = false;
  std::uint32_t f_u = 0;        ///< covering-BS count the UE reported
  std::uint32_t footprint = 0;  ///< n(u,i) + c_j^u
  std::uint32_t ue = 0;
};

/// Sentinel for "field not meaningful for this event kind".
inline constexpr std::uint32_t kNoId = 0xffffffffu;

struct TraceEvent {
  EventKind kind = EventKind::kPhase;
  DecisionReason reason = DecisionReason::kAccepted;
  bool flag = false;             ///< kDecision: accept; kTermination: converged
  std::uint32_t ue = kNoId;      ///< UeId::value
  std::uint32_t bs = kNoId;      ///< BsId::value
  std::uint32_t service = kNoId; ///< ServiceId::value
  std::uint64_t value = 0;       ///< kind-specific scalar (see EventKind)
  TiebreakKey key{};             ///< kDecision reject / kTrimEviction
  /// kPhase only. Must point at storage outliving the recorder (string
  /// literals at the instrumentation sites).
  std::string_view label;

  // Stamped by TraceRecorder::record(); producers leave these alone.
  std::uint64_t round = 0;  ///< producer round/epoch (set_round)
  std::uint64_t slot = 0;   ///< logical timeline slot (= rows emitted so far)
  std::uint64_t seq = 0;    ///< order within the slot
};

/// One proposal round (or online epoch) of aggregate metrics — the rows
/// of the per-round CSV exporter and the slices of the Chrome trace.
struct RoundRow {
  /// Instrumentation site, e.g. "core/solver", "core/decentralized",
  /// "sim/online". Same storage rule as TraceEvent::label.
  std::string_view source;
  std::uint64_t round = 0;
  std::uint64_t proposals = 0;
  std::uint64_t accepts = 0;
  std::uint64_t rejects = 0;
  std::uint64_t trim_evictions = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t messages = 0;       ///< bus messages sent during the round
  std::uint64_t unmatched_ues = 0;  ///< still seeking (not matched, not at cloud)
  double cumulative_profit = 0.0;   ///< Eq. 11 profit of the partial allocation
  std::uint64_t cru_headroom = 0;   ///< remaining CRUs summed over BSs/services
  std::uint64_t rrb_headroom = 0;   ///< remaining RRBs summed over BSs
};

}  // namespace dmra::obs
