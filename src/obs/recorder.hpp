// The round-level trace recorder and its thread-local installation.
//
// Instrumentation sites across core/ and sim/ do
//
//   obs::TraceRecorder* const rec = obs::recorder();
//   ...
//   if (rec) rec->record({.kind = obs::EventKind::kProposal, ...});
//
// With no recorder installed (the default), every hook site is a single
// thread-local pointer load and branch — no allocation, no locking, no
// event construction. bench/perf_report asserts this stays true by
// checking events_recorded_total() does not move across an untraced run.
//
// The recorder is installed per thread (like the audit observer in
// mec/audit.hpp): parallel workers see no recorder unless one is
// installed on their own thread. Fan-out workloads stay traceable via
// obs/shard.hpp — per-task shard recorders follow tasks onto workers and
// merge back in task order, so traced exports are identical for every
// --jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/stats.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace dmra::obs {

/// Per-kind event counts since the last take_tally() — how producers fold
/// the decision/trim events recorded inside shared code (bs_select) into
/// their own RoundRow without re-deriving them.
struct EventTally {
  std::uint64_t proposals = 0;
  std::uint64_t accepts = 0;
  std::uint64_t rejects = 0;
  std::uint64_t trim_evictions = 0;
  std::uint64_t broadcasts = 0;
};

class TraceRecorder {
 public:
  /// Producer round/epoch stamp for subsequent record() calls.
  void set_round(std::uint64_t round) { round_ = round; }
  std::uint64_t round() const { return round_; }

  /// Append an event. The recorder stamps round/slot/seq; everything else
  /// is the producer's.
  void record(TraceEvent event);

  /// Counts of events recorded since the previous take_tally() (or
  /// construction). Taking resets the tally.
  EventTally take_tally();

  /// Close the current logical timeline slot with its aggregate row.
  /// Events recorded since the previous finish_round() belong to this
  /// slot; the Chrome exporter renders one slice per row.
  void finish_round(RoundRow row);

  /// Replay another recorder's whole timeline onto the end of this one:
  /// events keep their producer `round` stamp but are re-stamped with this
  /// recorder's slot/seq continuation, rows are appended in order, and the
  /// shard's metrics fold into this registry (counters add, gauges
  /// last-write, timers accumulate). This is the shard-merge primitive of
  /// obs/shard.hpp: absorbing per-task shards in task order reproduces the
  /// exact byte stream a serial run would have recorded. The shard's
  /// events were already counted by events_recorded_total() when first
  /// recorded, so absorbing does not count them again. Absorbing leaves
  /// the producer-facing tally untouched.
  void absorb(const TraceRecorder& shard);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<RoundRow>& rows() const { return rows_; }

  /// Exporters (obs/chrome_trace.hpp, obs/round_csv.hpp).
  std::string to_chrome_trace_json() const;
  std::string to_round_csv() const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<RoundRow> rows_;
  MetricsRegistry metrics_;
  std::uint64_t round_ = 0;
  std::uint64_t seq_in_slot_ = 0;
  EventTally tally_;
};

/// The calling thread's recorder, or nullptr (tracing disabled).
TraceRecorder* recorder();

/// Install `rec` (nullptr uninstalls) for the CALLING THREAD; returns the
/// previous recorder.
TraceRecorder* set_recorder(TraceRecorder* rec);

/// RAII installation for a scope (tests, bench ObsSession).
class ScopedTraceRecorder {
 public:
  explicit ScopedTraceRecorder(TraceRecorder* rec) : previous_(set_recorder(rec)) {}
  ~ScopedTraceRecorder() { set_recorder(previous_); }
  ScopedTraceRecorder(const ScopedTraceRecorder&) = delete;
  ScopedTraceRecorder& operator=(const ScopedTraceRecorder&) = delete;

 private:
  TraceRecorder* previous_;
};

/// Process-wide count of record() calls (relaxed atomic). The disabled
/// path never records, so this counter standing still across a run is the
/// no-op guarantee perf_report asserts.
std::uint64_t events_recorded_total();

/// Fold BusStats into the registry as bus.* counters — the registry is
/// the one reporting surface for protocol traffic (generalizes the old
/// to_string-only reporting).
void publish_bus_stats(const BusStats& stats, MetricsRegistry& registry);

}  // namespace dmra::obs
