// Always-on flight recorder: the serving-grade post-mortem channel.
//
// The TraceRecorder (obs/recorder.hpp) is batch observability — you arm
// it up front and it keeps *everything*, which is exactly wrong for a
// long-lived allocator service. The FlightRecorder is its operational
// counterpart: a fixed-capacity ring of the most recent low-rate
// TraceEvents (faults, repairs, phases, timeline entries, terminations)
// plus a ring of recent RoundRows, cheap enough to stay installed for
// every run — record() into a warm ring is a bounds check and a few
// stores, no allocation, so the zero-steady-state-allocation budget of
// tests/core/alloc_test.cpp holds with the recorder live (faulted
// variant included).
//
// When something goes wrong — a BS crash, an auditor violation, an SLO
// breach, or an explicit --dump-on predicate — the runtime calls
// trigger(): the first trigger wins and the ring contents are copied
// into a pre-allocated snapshot (the "black box" freeze; still no
// allocation), while the live rings keep rolling so the dump can also
// say how much happened after the trigger. postmortem_json() renders the
// dmra-postmortem/1 artifact: the frozen last-N events, the recent round
// aggregates, the metrics-registry snapshot (windowed rollups included),
// and the armed fault-plan context (docs/OBSERVABILITY.md).
//
// Determinism: events are stamped with a global monotone sequence and a
// per-agent sequence (slot), both pure functions of the run. Fan-out
// workloads shard per task exactly like trace recorders (obs/shard.hpp)
// and merge back in task order via absorb(), so a dump produced through
// traced_parallel_map is byte-identical for every --jobs value. The SLO
// trigger is the one wall-clock-driven path; its dump is marked
// deterministic=false.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace dmra::obs {

inline constexpr std::string_view kPostmortemSchema = "dmra-postmortem/1";

class FlightRecorder {
 public:
  struct Config {
    std::size_t event_capacity = 1024;  ///< last-N event ring size
    std::size_t round_capacity = 256;   ///< recent RoundRow ring size
    /// Fixed-window metrics rollup length in logical rounds/events
    /// (MetricsRegistry::begin_windows); 0 leaves windowing off — the
    /// default, and the only configuration on the zero-allocation path.
    std::uint64_t window_len = 0;
  };

  // Default args can't brace-init a nested class mid-definition (the
  // enclosing class is still incomplete there); delegate instead.
  FlightRecorder() : FlightRecorder(Config{}) {}
  explicit FlightRecorder(Config config);

  const Config& config() const { return config_; }

  /// Producer round/epoch stamp for subsequent record() calls. Also the
  /// windowing tick (windows are keyed by this logical index, never wall
  /// clock) and the --dump-on predicate evaluation point.
  void set_round(std::uint64_t round);
  std::uint64_t round() const { return round_; }

  /// Size the per-agent sequence counters (slot stamps) for a run over
  /// `num_ues` UEs and `num_bss` BSs. Called once at run start — growing
  /// keeps existing counts, so a serving session spanning several runs
  /// keeps one coherent per-agent numbering. Never shrinks.
  void reserve_agents(std::size_t num_ues, std::size_t num_bss);

  /// Append an event to the ring (overwriting the oldest when full).
  /// Stamps round (set_round), seq (global monotone), and slot (the
  /// acting agent's own sequence: BS if set, else UE, else 0).
  /// Allocation-free once constructed/reserved.
  void record(TraceEvent event);

  /// Append a round aggregate to the round ring (overwriting the oldest).
  void finish_round(RoundRow row);

  /// First-wins trigger: freeze the ring contents into the pre-allocated
  /// snapshot and remember why. Later calls only count. `reason` must
  /// point at static storage (string literals at the trigger sites);
  /// `deterministic` is false only for wall-clock-driven triggers (SLO
  /// breach). Allocation-free.
  void trigger(std::string_view reason, std::uint64_t round,
               std::uint32_t bs = kNoId, std::uint32_t ue = kNoId,
               bool deterministic = true);

  /// Arm the explicit --dump-on predicate: set_round(r) with r >= round
  /// fires trigger("dump-on-round").
  void arm_dump_on_round(std::uint64_t round);
  bool dump_on_armed() const { return dump_on_armed_; }
  std::uint64_t dump_on_round() const { return dump_on_round_; }

  /// The armed FaultPlan context (the --faults spec text) echoed into the
  /// dump so a post-mortem names what was injected.
  void set_fault_context(std::string context) { fault_context_ = std::move(context); }

  bool triggered() const { return triggered_; }
  std::string_view trigger_reason() const { return trigger_reason_; }
  std::uint64_t triggers() const { return triggers_; }

  std::uint64_t events_seen() const { return events_seen_; }
  std::uint64_t events_retained() const;
  std::uint64_t events_dropped() const { return events_seen_ - events_retained(); }
  std::uint64_t rounds_seen() const { return rounds_seen_; }
  std::uint64_t rounds_retained() const;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Events currently in the ring, oldest first (copies out; not the
  /// steady-state path).
  std::vector<TraceEvent> ring_events() const;
  std::vector<RoundRow> ring_rounds() const;

  /// Merge a per-task shard (obs/shard.hpp) onto the end of this
  /// recorder, in task order: ring events append with their seq/slot
  /// stamps offset by this recorder's own counts (the continuation a
  /// single recorder observing the tasks in order would have stamped),
  /// counters add, and the first trigger in task order wins, adopting the
  /// shard's frozen snapshot. Dumps are therefore byte-identical for
  /// every --jobs value.
  void absorb(const FlightRecorder& shard);

  /// The dmra-postmortem/1 artifact (trailing newline included): trigger
  /// context, the frozen last-N events + recent rounds (the live rings
  /// when never triggered), the registry snapshot with windowed rollups,
  /// and the fault context. Deterministic byte-for-byte per seed unless
  /// the trigger itself was wall-clock-driven.
  std::string postmortem_json() const;

 private:
  std::size_t agent_slot(const TraceEvent& event);
  void snapshot_rings();

  Config config_;
  std::vector<TraceEvent> events_;  ///< ring storage, pre-sized
  std::vector<RoundRow> rounds_;    ///< ring storage, pre-sized
  std::uint64_t events_seen_ = 0;
  std::uint64_t rounds_seen_ = 0;

  std::vector<std::uint64_t> ue_seq_;
  std::vector<std::uint64_t> bs_seq_;

  MetricsRegistry metrics_;
  std::uint64_t round_ = 0;

  // Trigger state + the pre-allocated freeze buffers.
  bool triggered_ = false;
  std::string_view trigger_reason_;
  std::uint64_t trigger_round_ = 0;
  std::uint32_t trigger_bs_ = kNoId;
  std::uint32_t trigger_ue_ = kNoId;
  bool trigger_deterministic_ = true;
  std::uint64_t trigger_events_seen_ = 0;
  std::uint64_t triggers_ = 0;
  std::vector<TraceEvent> frozen_events_;
  std::vector<RoundRow> frozen_rounds_;
  std::size_t frozen_event_count_ = 0;
  std::size_t frozen_round_count_ = 0;

  bool dump_on_armed_ = false;
  bool dump_on_fired_ = false;
  std::uint64_t dump_on_round_ = 0;

  std::string fault_context_;
};

/// The calling thread's flight recorder, or nullptr (none installed).
/// Same thread-local discipline as obs::recorder(): a disabled hook site
/// is one pointer load and a branch.
FlightRecorder* flight();

/// Install `rec` (nullptr uninstalls) for the CALLING THREAD; returns the
/// previous recorder.
FlightRecorder* set_flight(FlightRecorder* rec);

/// RAII installation for a scope (tests, bench ObsSession).
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder* rec) : previous_(set_flight(rec)) {}
  ~ScopedFlightRecorder() { set_flight(previous_); }
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* previous_;
};

/// The stderr notice ObsSession prints when tracing and --jobs are both
/// in play: tracing composes with parallel fan-out via per-task recorder
/// shards and does NOT force --jobs=1 (obs/shard.hpp). Centralized here
/// so the wording is testable (tests/obs/flight_test.cpp).
std::string trace_jobs_notice();

}  // namespace dmra::obs
