#include "obs/flight.hpp"

#include <algorithm>

#include "obs/manifest.hpp"

namespace dmra::obs {

namespace {

thread_local FlightRecorder* g_flight = nullptr;

}  // namespace

FlightRecorder* flight() { return g_flight; }

FlightRecorder* set_flight(FlightRecorder* rec) {
  FlightRecorder* previous = g_flight;
  g_flight = rec;
  return previous;
}

std::string trace_jobs_notice() {
  return "obs: --trace composes with --jobs: the recorder shards per task and "
         "merges in task order, so trace output is byte-identical for every "
         "--jobs value (--trace no longer forces --jobs=1)";
}

FlightRecorder::FlightRecorder(Config config) : config_(config) {
  if (config_.event_capacity == 0) config_.event_capacity = 1;
  if (config_.round_capacity == 0) config_.round_capacity = 1;
  events_.resize(config_.event_capacity);
  rounds_.resize(config_.round_capacity);
  frozen_events_.resize(config_.event_capacity);
  frozen_rounds_.resize(config_.round_capacity);
  if (config_.window_len != 0) metrics_.begin_windows(config_.window_len);
}

void FlightRecorder::set_round(std::uint64_t round) {
  round_ = round;
  if (metrics_.windows_armed()) metrics_.window_tick(round);
  if (dump_on_armed_ && !dump_on_fired_ && round >= dump_on_round_) {
    dump_on_fired_ = true;
    trigger("dump-on-round", round);
  }
}

void FlightRecorder::reserve_agents(std::size_t num_ues, std::size_t num_bss) {
  if (num_ues > ue_seq_.size()) ue_seq_.resize(num_ues, 0);
  if (num_bss > bs_seq_.size()) bs_seq_.resize(num_bss, 0);
}

std::size_t FlightRecorder::agent_slot(const TraceEvent& event) {
  if (event.bs != kNoId && event.bs < bs_seq_.size()) return bs_seq_[event.bs]++;
  if (event.ue != kNoId && event.ue < ue_seq_.size()) return ue_seq_[event.ue]++;
  return 0;
}

void FlightRecorder::record(TraceEvent event) {
  event.round = round_;
  event.slot = agent_slot(event);
  event.seq = events_seen_;
  events_[events_seen_ % events_.size()] = event;
  events_seen_++;
}

void FlightRecorder::finish_round(RoundRow row) {
  rounds_[rounds_seen_ % rounds_.size()] = row;
  rounds_seen_++;
}

std::uint64_t FlightRecorder::events_retained() const {
  return std::min<std::uint64_t>(events_seen_, events_.size());
}

std::uint64_t FlightRecorder::rounds_retained() const {
  return std::min<std::uint64_t>(rounds_seen_, rounds_.size());
}

void FlightRecorder::snapshot_rings() {
  const std::uint64_t ev = events_retained();
  const std::uint64_t first_ev = events_seen_ - ev;
  for (std::uint64_t i = 0; i < ev; ++i)
    frozen_events_[i] = events_[(first_ev + i) % events_.size()];
  frozen_event_count_ = static_cast<std::size_t>(ev);
  const std::uint64_t rd = rounds_retained();
  const std::uint64_t first_rd = rounds_seen_ - rd;
  for (std::uint64_t i = 0; i < rd; ++i)
    frozen_rounds_[i] = rounds_[(first_rd + i) % rounds_.size()];
  frozen_round_count_ = static_cast<std::size_t>(rd);
}

void FlightRecorder::trigger(std::string_view reason, std::uint64_t round,
                             std::uint32_t bs, std::uint32_t ue, bool deterministic) {
  triggers_++;
  if (triggered_) return;
  triggered_ = true;
  trigger_reason_ = reason;
  trigger_round_ = round;
  trigger_bs_ = bs;
  trigger_ue_ = ue;
  trigger_deterministic_ = deterministic;
  trigger_events_seen_ = events_seen_;
  snapshot_rings();
}

void FlightRecorder::arm_dump_on_round(std::uint64_t round) {
  dump_on_armed_ = true;
  dump_on_round_ = round;
}

std::vector<TraceEvent> FlightRecorder::ring_events() const {
  const std::uint64_t ev = events_retained();
  const std::uint64_t first = events_seen_ - ev;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(ev));
  for (std::uint64_t i = 0; i < ev; ++i)
    out.push_back(events_[(first + i) % events_.size()]);
  return out;
}

std::vector<RoundRow> FlightRecorder::ring_rounds() const {
  const std::uint64_t rd = rounds_retained();
  const std::uint64_t first = rounds_seen_ - rd;
  std::vector<RoundRow> out;
  out.reserve(static_cast<std::size_t>(rd));
  for (std::uint64_t i = 0; i < rd; ++i)
    out.push_back(rounds_[(first + i) % rounds_.size()]);
  return out;
}

void FlightRecorder::absorb(const FlightRecorder& shard) {
  // Stamp offsets: what a single recorder observing the tasks in order
  // would have counted before this shard's first event.
  const std::uint64_t seq_off = events_seen_;
  const std::uint64_t rounds_off = rounds_seen_;
  // Grow per-agent counters first so the offset lookups below never go
  // out of range; new entries start at 0 (this recorder never saw them).
  reserve_agents(shard.ue_seq_.size(), shard.bs_seq_.size());

  const auto offset_slot = [&](TraceEvent& e) {
    if (e.bs != kNoId && e.bs < shard.bs_seq_.size()) e.slot += bs_seq_[e.bs];
    else if (e.ue != kNoId && e.ue < shard.ue_seq_.size()) e.slot += ue_seq_[e.ue];
  };

  // Re-stamp the shard's retained events at their combined-stream
  // positions; the rolling ring is compositional, so writing each at
  // (seq + seq_off) % cap reproduces exactly what the serial recorder's
  // ring would hold.
  for (const TraceEvent& shard_event : shard.ring_events()) {
    TraceEvent e = shard_event;
    e.seq += seq_off;
    offset_slot(e);
    events_[e.seq % events_.size()] = e;
  }
  events_seen_ = seq_off + shard.events_seen_;

  const std::uint64_t shard_rd = shard.rounds_retained();
  const std::uint64_t shard_first_rd = shard.rounds_seen_ - shard_rd;
  for (std::uint64_t i = 0; i < shard_rd; ++i) {
    const std::uint64_t pos = rounds_off + shard_first_rd + i;
    rounds_[pos % rounds_.size()] = shard.rounds_[(shard_first_rd + i) % shard.rounds_.size()];
  }
  rounds_seen_ = rounds_off + shard.rounds_seen_;

  // First trigger in task order wins: adopt the shard's frozen snapshot
  // with the same stamp offsets.
  if (shard.triggered_ && !triggered_) {
    triggered_ = true;
    trigger_reason_ = shard.trigger_reason_;
    trigger_round_ = shard.trigger_round_;
    trigger_bs_ = shard.trigger_bs_;
    trigger_ue_ = shard.trigger_ue_;
    trigger_deterministic_ = shard.trigger_deterministic_;
    trigger_events_seen_ = seq_off + shard.trigger_events_seen_;
    frozen_event_count_ = shard.frozen_event_count_;
    for (std::size_t i = 0; i < shard.frozen_event_count_; ++i) {
      TraceEvent e = shard.frozen_events_[i];
      e.seq += seq_off;
      offset_slot(e);
      frozen_events_[i] = e;
    }
    frozen_round_count_ = shard.frozen_round_count_;
    for (std::size_t i = 0; i < shard.frozen_round_count_; ++i)
      frozen_rounds_[i] = shard.frozen_rounds_[i];
  }
  triggers_ += shard.triggers_;

  // Now fold the per-agent counters: the combined stream saw both.
  for (std::size_t i = 0; i < shard.ue_seq_.size(); ++i) ue_seq_[i] += shard.ue_seq_[i];
  for (std::size_t i = 0; i < shard.bs_seq_.size(); ++i) bs_seq_[i] += shard.bs_seq_[i];

  metrics_.merge_from(shard.metrics_);
  if (round_ < shard.round_) round_ = shard.round_;
  if (fault_context_.empty()) fault_context_ = shard.fault_context_;
}

namespace {

JsonObject event_json(const TraceEvent& e) {
  JsonObject out;
  out["kind"] = std::string(to_string(e.kind));
  out["round"] = e.round;
  out["seq"] = e.seq;
  out["agent_seq"] = e.slot;
  if (e.ue != kNoId) out["ue"] = e.ue;
  if (e.bs != kNoId) out["bs"] = e.bs;
  if (e.service != kNoId) out["service"] = e.service;
  out["value"] = e.value;
  if (!e.label.empty()) out["label"] = std::string(e.label);
  if (e.kind == EventKind::kDecision) {
    out["accept"] = e.flag;
    out["reason"] = std::string(to_string(e.reason));
  }
  if (e.kind == EventKind::kTermination) out["converged"] = e.flag;
  return out;
}

JsonObject round_json(const RoundRow& r) {
  JsonObject out;
  out["source"] = std::string(r.source);
  out["round"] = r.round;
  out["proposals"] = r.proposals;
  out["accepts"] = r.accepts;
  out["rejects"] = r.rejects;
  out["trim_evictions"] = r.trim_evictions;
  out["broadcasts"] = r.broadcasts;
  out["messages"] = r.messages;
  out["unmatched_ues"] = r.unmatched_ues;
  out["cumulative_profit"] = r.cumulative_profit;
  out["cru_headroom"] = r.cru_headroom;
  out["rrb_headroom"] = r.rrb_headroom;
  return out;
}

JsonObject window_json(const MetricsWindow& w) {
  JsonObject counters;
  for (const auto& [name, delta] : w.counter_deltas) counters[name] = delta;
  JsonObject gauge_last;
  for (const auto& [name, value] : w.gauge_last) gauge_last[name] = value;
  JsonObject gauge_max;
  for (const auto& [name, value] : w.gauge_max) gauge_max[name] = value;
  JsonObject out;
  out["first_tick"] = w.first_tick;
  out["last_tick"] = w.last_tick;
  out["counter_deltas"] = std::move(counters);
  out["gauge_last"] = std::move(gauge_last);
  out["gauge_max"] = std::move(gauge_max);
  return out;
}

}  // namespace

std::string FlightRecorder::postmortem_json() const {
  JsonObject doc;
  doc["schema"] = std::string(kPostmortemSchema);
  doc["git"] = std::string(git_describe());
  doc["build"] = build_flavor_json();

  if (triggered_) {
    JsonObject trig;
    trig["reason"] = std::string(trigger_reason_);
    trig["round"] = trigger_round_;
    if (trigger_bs_ != kNoId) trig["bs"] = trigger_bs_;
    if (trigger_ue_ != kNoId) trig["ue"] = trigger_ue_;
    trig["deterministic"] = trigger_deterministic_;
    trig["count"] = triggers_;
    doc["trigger"] = std::move(trig);
    doc["events_after_trigger"] = events_seen_ - trigger_events_seen_;
  } else {
    doc["trigger"] = nullptr;
    doc["events_after_trigger"] = std::uint64_t{0};
  }
  doc["fault_context"] = fault_context_;

  JsonObject stats;
  stats["events_seen"] = events_seen_;
  stats["events_retained"] = events_retained();
  stats["events_dropped"] = events_dropped();
  stats["rounds_seen"] = rounds_seen_;
  stats["rounds_retained"] = rounds_retained();
  stats["event_capacity"] = std::uint64_t{config_.event_capacity};
  stats["round_capacity"] = std::uint64_t{config_.round_capacity};
  stats["triggers"] = triggers_;
  doc["flight"] = std::move(stats);

  // The frozen black box when triggered, the live rings otherwise.
  JsonArray events;
  JsonArray rounds;
  if (triggered_) {
    for (std::size_t i = 0; i < frozen_event_count_; ++i)
      events.push_back(event_json(frozen_events_[i]));
    for (std::size_t i = 0; i < frozen_round_count_; ++i)
      rounds.push_back(round_json(frozen_rounds_[i]));
  } else {
    for (const TraceEvent& e : ring_events()) events.push_back(event_json(e));
    for (const RoundRow& r : ring_rounds()) rounds.push_back(round_json(r));
  }
  doc["events"] = std::move(events);
  doc["rounds"] = std::move(rounds);

  doc["metrics"] = metrics_.deterministic_json();
  JsonArray windows;
  for (const MetricsWindow& w : metrics_.collect_windows()) windows.push_back(window_json(w));
  doc["windows"] = std::move(windows);

  return JsonValue(std::move(doc)).dump(2) + "\n";
}

}  // namespace dmra::obs
