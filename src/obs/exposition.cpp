#include "obs/exposition.hpp"

#include <charconv>
#include <cstdint>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

namespace dmra::obs {

namespace {

/// Split "shard.rounds{shard=\"2\"}" into its metric base and the label
/// set *inner* text (between the braces, "" when unlabeled).
std::pair<std::string_view, std::string_view> split_labels(std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view inner = name.substr(brace + 1);
  if (!inner.empty() && inner.back() == '}') inner.remove_suffix(1);
  return {name.substr(0, brace), inner};
}

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; map everything
/// else to '_' and prefix the dmra namespace.
std::string sanitize(std::string_view base) {
  std::string out = "dmra_";
  out.reserve(out.size() + base.size());
  for (const char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_double(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

/// Compose the rendered label block from the pass-through inner text and
/// an optional extra label ("" = none): {} is never emitted.
void append_labels(std::string& out, std::string_view inner, std::string_view extra) {
  if (inner.empty() && extra.empty()) return;
  out.push_back('{');
  out.append(inner);
  if (!inner.empty() && !extra.empty()) out.push_back(',');
  out.append(extra);
  out.push_back('}');
}

/// One family: every (labels, render-value-fn) series under one base.
template <typename Value>
using Family = std::map<std::string, std::vector<std::pair<std::string, Value>>>;

template <typename Value>
void group(Family<Value>& families, std::string_view name, Value value,
           std::string_view suffix = {}) {
  const auto [base, inner] = split_labels(name);
  std::string key = sanitize(base);
  key.append(suffix);
  families[std::move(key)].emplace_back(std::string(inner), value);
}

}  // namespace

std::string to_prometheus_text(const MetricsRegistry& registry) {
  const JsonObject snapshot = registry.deterministic_json();
  std::string out;

  Family<std::uint64_t> counters;
  for (const auto& [name, value] : snapshot.at("counters").as_object())
    group(counters, name, static_cast<std::uint64_t>(value.as_number()));
  for (const auto& [family, series] : counters) {
    out += "# TYPE " + family + " counter\n";
    for (const auto& [inner, value] : series) {
      out += family;
      append_labels(out, inner, {});
      out.push_back(' ');
      append_u64(out, value);
      out.push_back('\n');
    }
  }

  Family<double> gauges;
  for (const auto& [name, value] : snapshot.at("gauges").as_object())
    group(gauges, name, value.as_number());
  for (const auto& [family, series] : gauges) {
    out += "# TYPE " + family + " gauge\n";
    for (const auto& [inner, value] : series) {
      out += family;
      append_labels(out, inner, {});
      out.push_back(' ');
      append_double(out, value);
      out.push_back('\n');
    }
  }

  // Windowed rollups: every series window-labeled, grouped per family so
  // each gets exactly one TYPE header. All window series are gauges —
  // a counter *delta* is not monotonic.
  const std::vector<MetricsWindow> windows = registry.collect_windows();
  Family<double> window_series;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    std::string window_label = "window=\"";
    append_u64(window_label, i);
    window_label.push_back('"');
    const auto labeled = [&](std::string_view name, std::string_view suffix,
                             double value) {
      const auto [base, inner] = split_labels(name);
      std::string key = sanitize(base);
      key.append(suffix);
      std::string full_inner(inner);
      if (!full_inner.empty()) full_inner.push_back(',');
      full_inner += window_label;
      window_series[std::move(key)].emplace_back(std::move(full_inner), value);
    };
    const MetricsWindow& w = windows[i];
    window_series["dmra_window_first_tick"].emplace_back(window_label,
                                                         static_cast<double>(w.first_tick));
    window_series["dmra_window_last_tick"].emplace_back(window_label,
                                                        static_cast<double>(w.last_tick));
    for (const auto& [name, delta] : w.counter_deltas)
      labeled(name, "_delta", static_cast<double>(delta));
    for (const auto& [name, value] : w.gauge_last) labeled(name, "_last", value);
    for (const auto& [name, value] : w.gauge_max) labeled(name, "_max", value);
  }
  for (const auto& [family, series] : window_series) {
    out += "# TYPE " + family + " gauge\n";
    for (const auto& [inner, value] : series) {
      out += family;
      append_labels(out, inner, {});
      out.push_back(' ');
      append_double(out, value);
      out.push_back('\n');
    }
  }

  return out;
}

}  // namespace dmra::obs
