#include "obs/latency.hpp"

#include <bit>
#include <chrono>
#include <sstream>

#include "util/require.hpp"

namespace dmra::obs {

namespace {

// 16 exact buckets for [0, 16) plus 16 sub-buckets for each octave
// [2^e, 2^(e+1)), e in [4, 63].
constexpr std::size_t kNumBuckets = 16 + 60 * 16;

}  // namespace

std::uint64_t monotonic_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

std::size_t LatencyHistogram::bucket_of(std::uint64_t ns) {
  if (ns < kSub) return static_cast<std::size_t>(ns);
  const int e = std::bit_width(ns) - 1;  // ns >= 16 → e >= 4
  const std::size_t sub =
      static_cast<std::size_t>((ns >> (e - 4)) - kSub);  // in [0, 16)
  const std::size_t b = kSub + static_cast<std::size_t>(e - 4) * kSub + sub;
  return b < kNumBuckets ? b : kNumBuckets - 1;
}

std::uint64_t LatencyHistogram::bucket_lo(std::size_t b) {
  if (b < kSub) return b;
  const std::size_t e = (b - kSub) / kSub + 4;
  const std::size_t sub = (b - kSub) % kSub;
  return static_cast<std::uint64_t>(kSub + sub) << (e - 4);
}

std::uint64_t LatencyHistogram::bucket_hi(std::size_t b) {
  if (b < kSub) return b + 1;
  const std::size_t e = (b - kSub) / kSub + 4;
  const std::size_t sub = (b - kSub) % kSub;
  return static_cast<std::uint64_t>(kSub + sub + 1) << (e - 4);
}

void LatencyHistogram::record(std::uint64_t ns) {
  ++buckets_[bucket_of(ns)];
  ++count_;
  if (ns > max_ns_) max_ns_ = ns;
}

double LatencyHistogram::percentile_ns(double q) const {
  DMRA_REQUIRE(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  // Rank of the q-quantile among `count_` samples (nearest-rank, 1-based).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // Bucket midpoint; the top bucket is clamped to the observed max.
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      const double mid = lo + (hi - lo) / 2.0;
      return mid > static_cast<double>(max_ns_) ? static_cast<double>(max_ns_) : mid;
    }
  }
  return static_cast<double>(max_ns_);
}

std::uint64_t LatencyHistogram::count_above_ns(std::uint64_t ns) const {
  if (count_ == 0) return 0;
  // First bucket whose whole range exceeds ns: everything at or past it
  // definitely measured above the threshold.
  const std::size_t threshold = bucket_of(ns) + 1;
  std::uint64_t above = 0;
  for (std::size_t b = threshold; b < buckets_.size(); ++b) above += buckets_[b];
  return above;
}

void LatencyHistogram::merge_from(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < buckets_.size(); ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
}

std::string LatencyHistogram::to_csv() const {
  std::ostringstream out;
  out << "bucket_lo_ns,bucket_hi_ns,count\n";
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    out << bucket_lo(b) << ',' << bucket_hi(b) << ',' << buckets_[b] << '\n';
  }
  return out.str();
}

}  // namespace dmra::obs
