#include "obs/round_csv.hpp"

#include <charconv>
#include <sstream>

namespace dmra::obs {

namespace {

/// Shortest round-trip representation (std::to_chars): deterministic and
/// lossless, unlike iostream's locale/precision-dependent formatting.
std::string fmt_double(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("nan");
}

}  // namespace

std::string_view round_csv_header() {
  return "source,round,proposals,accepts,rejects,trim_evictions,broadcasts,"
         "messages,unmatched_ues,cumulative_profit,cru_headroom,rrb_headroom";
}

std::string export_round_csv(const std::vector<RoundRow>& rows) {
  std::ostringstream os;
  os << round_csv_header() << '\n';
  for (const RoundRow& r : rows) {
    os << r.source << ',' << r.round << ',' << r.proposals << ',' << r.accepts << ','
       << r.rejects << ',' << r.trim_evictions << ',' << r.broadcasts << ','
       << r.messages << ',' << r.unmatched_ues << ',' << fmt_double(r.cumulative_profit)
       << ',' << r.cru_headroom << ',' << r.rrb_headroom << '\n';
  }
  return os.str();
}

}  // namespace dmra::obs
