// Prometheus-style text exposition for MetricsRegistry snapshots.
//
// One function: render the registry's counters, gauges, and windowed
// rollups (obs/metrics.hpp) as the Prometheus text format v0.0.4 —
// `# TYPE` headers, `dmra_`-prefixed sanitized metric names, and label
// sets carried through from `{...}`-suffixed metric names (the
// per-shard labels run_sharded_dmra publishes, e.g.
// `shard.rounds{shard="2"}` → `dmra_shard_rounds{shard="2"}`).
//
// Windowed rollups render as window-labeled series: each closed window i
// contributes `<name>_delta{window="i"}` for every counter that moved
// and `<name>_last`/`<name>_max{window="i"}` for every gauge touched.
// Timers are wall-clock and deliberately excluded, so the exposition of
// a seeded run is byte-identical every time — bench `--metrics-out`
// files are golden-testable (docs/OBSERVABILITY.md).
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace dmra::obs {

/// The full registry as Prometheus text (trailing newline included).
/// Deterministic: families sort by name, windows by index.
std::string to_prometheus_text(const MetricsRegistry& registry);

}  // namespace dmra::obs
