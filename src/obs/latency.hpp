// Per-decision latency measurement for the serving driver (sim/churn).
//
// Wall-clock reads are confined to src/obs by the determinism rules
// (tools/dmra_lint.py, docs/OBSERVABILITY.md): result-affecting code must
// be a pure function of the seed. monotonic_now_ns() is the one sanctioned
// clock read; callers feed elapsed times into a LatencyHistogram, which —
// like MetricsRegistry timers — stays OUT of every deterministic surface
// (trace JSON, round CSV, event logs, golden fingerprints). Latency
// numbers appear only in human-readable summaries, the perf-report
// serving_run[] table (warn-only in tools/bench_diff.py), and the
// histogram CSV artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dmra::obs {

/// Monotonic clock read in nanoseconds since an arbitrary epoch. The only
/// wall-clock entry point non-obs code may use (via this header).
std::uint64_t monotonic_now_ns();

/// Log-bucketed latency histogram (HdrHistogram-lite): values below 16 ns
/// are exact; above, each power-of-two range splits into 16 linear
/// sub-buckets, bounding the relative quantile error at ~6%. Fixed-size
/// storage, no allocation after construction — safe to carry across a
/// multi-thousand-event serving run.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(std::uint64_t ns);

  std::uint64_t count() const { return count_; }
  std::uint64_t max_ns() const { return max_ns_; }
  /// Approximate q-quantile in ns, q in [0, 1]. 0 when empty.
  double percentile_ns(double q) const;

  /// Recorded values whose bucket lies entirely above `ns` — the SLO
  /// burn-rate numerator (sim/churn). Approximate with the same ~6%
  /// bucket-resolution bound as percentile_ns; 0 when empty.
  std::uint64_t count_above_ns(std::uint64_t ns) const;

  /// Fold another histogram into this one (per-seed fan-out merge).
  void merge_from(const LatencyHistogram& other);

  /// "bucket_lo_ns,bucket_hi_ns,count" rows (occupied buckets only) with
  /// a header line — the CI latency-artifact format (docs/SERVING.md).
  std::string to_csv() const;

 private:
  static constexpr std::size_t kSub = 16;  // linear sub-buckets per octave
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t max_ns_ = 0;

  static std::size_t bucket_of(std::uint64_t ns);
  static std::uint64_t bucket_lo(std::size_t b);
  static std::uint64_t bucket_hi(std::size_t b);
};

}  // namespace dmra::obs
