// Run-provenance manifests: one JSON document per bench/perf_report
// invocation that records *everything needed to reproduce and interpret
// the run* — the CLI flags as parsed, the generator configuration, the
// seed list, the fault spec, the worker count, the git revision and
// build flavor the binary was compiled from, the final metrics-registry
// snapshot, and the export files the run produced (trace JSON, round
// CSV, bench JSON/CSV), cross-linked by path.
//
// Schema "dmra-manifest/1"; tools/check_trace.py validates it and
// cross-checks the output links, and tools/bench_diff.py reads a
// manifest next to each BENCH_core.json to annotate perf comparisons
// with their provenance (docs/PROVENANCE.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace dmra::obs {

inline constexpr std::string_view kManifestSchema = "dmra-manifest/1";

/// The revision the binary was built from: `git describe --always
/// --dirty` captured at CMake configure time, or "unknown" outside a git
/// checkout.
std::string_view git_describe();

/// Compile-time build flavor: {"type": "Release", "sanitizers":
/// "address;undefined" or "", "audit": bool}. Sanitizer builds measure a
/// different program — bench_diff warns when flavors differ.
JsonObject build_flavor_json();

/// Everything a manifest records. Fields left empty simply serialize
/// empty — a manifest is best-effort provenance, not a contract on the
/// caller.
struct ManifestInput {
  std::string program;                            ///< argv[0] of the run
  std::map<std::string, std::string> flags;       ///< effective CLI flags
  JsonObject scenario_config;                     ///< workload::scenario_config_json
  std::vector<std::uint64_t> seeds;
  std::uint64_t jobs = 0;                         ///< 0 = hardware concurrency
  std::string fault_spec;                         ///< --faults text, "" = fault-free
  /// (kind, path) of every file the run wrote: "trace", "round-csv",
  /// "bench-json", "series-csv", ... — the cross-links check_trace.py
  /// verifies.
  std::vector<std::pair<std::string, std::string>> outputs;
  /// Deterministic metrics snapshot (counters + gauges, no wall-clock),
  /// nullptr when the run recorded none.
  const MetricsRegistry* metrics = nullptr;
};

/// The manifest as a JSON object (schema, git, build flavor stamped in).
JsonObject manifest_json(const ManifestInput& input);

/// Pretty-printed manifest document, trailing newline included.
std::string manifest_to_json(const ManifestInput& input);

}  // namespace dmra::obs
