#include "obs/chrome_trace.hpp"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/recorder.hpp"
#include "util/json.hpp"

namespace dmra::obs {

namespace {

// One logical round/epoch per "second" of trace time, in microseconds.
constexpr std::uint64_t kSlotTicks = 1'000'000;
constexpr int kPid = 1;

// Fixed track (tid) layout. Round tracks for each source come first so
// Perfetto sorts them to the top; per-kind instant tracks follow.
constexpr int kFirstRoundTrack = 1;
constexpr int kProposalTrack = 100;
constexpr int kDecisionTrack = 101;
constexpr int kTrimTrack = 102;
constexpr int kBroadcastTrack = 103;
constexpr int kLifecycleTrack = 104;
constexpr int kFaultTrack = 105;
constexpr int kTimelineTrack = 106;

int instant_track(EventKind kind) {
  switch (kind) {
    case EventKind::kProposal: return kProposalTrack;
    case EventKind::kDecision: return kDecisionTrack;
    case EventKind::kTrimEviction: return kTrimTrack;
    case EventKind::kBroadcast: return kBroadcastTrack;
    case EventKind::kPhase:
    case EventKind::kTermination: return kLifecycleTrack;
    case EventKind::kFault:
    case EventKind::kRepair: return kFaultTrack;
    case EventKind::kTimeline: return kTimelineTrack;
  }
  return kLifecycleTrack;
}

JsonObject metadata_event(const char* name, int tid, std::string value) {
  JsonObject args;
  args["name"] = std::move(value);
  JsonObject m;
  m["name"] = name;
  m["ph"] = "M";
  m["pid"] = kPid;
  m["tid"] = tid;
  m["args"] = std::move(args);
  return m;
}

JsonObject key_json(const TiebreakKey& key) {
  JsonObject k;
  k["cross_sp"] = key.cross_sp;
  k["f_u"] = key.f_u;
  k["footprint"] = key.footprint;
  k["ue"] = key.ue;
  return k;
}

JsonObject counter_event(const char* name, std::string_view source, std::uint64_t ts,
                         JsonValue value) {
  JsonObject args;
  args[std::string(source)] = std::move(value);
  JsonObject c;
  c["name"] = name;
  c["ph"] = "C";
  c["pid"] = kPid;
  c["tid"] = 0;
  c["ts"] = ts;
  c["args"] = std::move(args);
  return c;
}

}  // namespace

std::string export_chrome_trace(const TraceRecorder& recorder) {
  JsonArray trace_events;
  trace_events.push_back(metadata_event("process_name", 0, "dmra"));
  trace_events.push_back(metadata_event("thread_name", kProposalTrack, "ue proposals"));
  trace_events.push_back(metadata_event("thread_name", kDecisionTrack, "bs decisions"));
  trace_events.push_back(metadata_event("thread_name", kTrimTrack, "radio-trim evictions"));
  trace_events.push_back(metadata_event("thread_name", kBroadcastTrack,
                                        "resource broadcasts"));
  trace_events.push_back(metadata_event("thread_name", kLifecycleTrack, "lifecycle"));
  // The faults and event-timeline tracks are declared lazily: emitting
  // them unconditionally would change the byte-identical export of every
  // fault-free / non-serving run (the golden surface the zero-fault
  // contract is tested against).
  for (const TraceEvent& e : recorder.events()) {
    if (e.kind == EventKind::kFault || e.kind == EventKind::kRepair) {
      trace_events.push_back(
          metadata_event("thread_name", kFaultTrack, "faults & recovery"));
      break;
    }
  }
  for (const TraceEvent& e : recorder.events()) {
    if (e.kind == EventKind::kTimeline) {
      trace_events.push_back(
          metadata_event("thread_name", kTimelineTrack, "event timeline"));
      break;
    }
  }

  // Round tracks: one per distinct RoundRow source, in first-appearance
  // order (deterministic — rows are appended in execution order).
  std::map<std::string_view, int> round_track;
  for (const RoundRow& row : recorder.rows()) {
    if (round_track.contains(row.source)) continue;
    const int tid = kFirstRoundTrack + static_cast<int>(round_track.size());
    round_track.emplace(row.source, tid);
    trace_events.push_back(
        metadata_event("thread_name", tid, "rounds: " + std::string(row.source)));
  }

  // Rounds as slices + their aggregates as counter series.
  for (std::size_t i = 0; i < recorder.rows().size(); ++i) {
    const RoundRow& row = recorder.rows()[i];
    const std::uint64_t ts = i * kSlotTicks;
    JsonObject args;
    args["round"] = row.round;
    args["proposals"] = row.proposals;
    args["accepts"] = row.accepts;
    args["rejects"] = row.rejects;
    args["trim_evictions"] = row.trim_evictions;
    args["broadcasts"] = row.broadcasts;
    args["messages"] = row.messages;
    args["unmatched_ues"] = row.unmatched_ues;
    args["cumulative_profit"] = row.cumulative_profit;
    args["cru_headroom"] = row.cru_headroom;
    args["rrb_headroom"] = row.rrb_headroom;
    JsonObject slice;
    slice["name"] = std::string(row.source);
    slice["ph"] = "X";
    slice["pid"] = kPid;
    slice["tid"] = round_track.at(row.source);
    slice["ts"] = ts;
    slice["dur"] = kSlotTicks;
    slice["args"] = std::move(args);
    trace_events.push_back(std::move(slice));

    trace_events.push_back(counter_event("unmatched_ues", row.source, ts,
                                         JsonValue(row.unmatched_ues)));
    trace_events.push_back(counter_event("cumulative_profit", row.source, ts,
                                         JsonValue(row.cumulative_profit)));
    trace_events.push_back(counter_event("cru_headroom", row.source, ts,
                                         JsonValue(row.cru_headroom)));
    trace_events.push_back(counter_event("rrb_headroom", row.source, ts,
                                         JsonValue(row.rrb_headroom)));
    trace_events.push_back(counter_event("messages", row.source, ts,
                                         JsonValue(row.messages)));
  }

  // Individual events as instants, laid out by record order within their
  // slot (clamped so they never spill into the next slice).
  for (const TraceEvent& e : recorder.events()) {
    const std::uint64_t ts =
        e.slot * kSlotTicks + (e.seq < kSlotTicks ? e.seq : kSlotTicks - 1);
    JsonObject args;
    args["round"] = e.round;
    if (e.ue != kNoId) args["ue"] = e.ue;
    if (e.bs != kNoId) args["bs"] = e.bs;
    if (e.service != kNoId) args["service"] = e.service;
    std::string name;
    switch (e.kind) {
      case EventKind::kProposal:
        args["f_u"] = e.value;
        name = to_string(e.kind);
        break;
      case EventKind::kDecision:
        args["accept"] = e.flag;
        args["reason"] = std::string(to_string(e.reason));
        if (!e.flag) args["losing_key"] = key_json(e.key);
        name = e.flag ? "accept" : "reject";
        break;
      case EventKind::kTrimEviction:
        args["n_rrbs"] = e.value;
        args["losing_key"] = key_json(e.key);
        name = to_string(e.kind);
        break;
      case EventKind::kBroadcast:
        args["audience"] = e.value;
        name = to_string(e.kind);
        break;
      case EventKind::kPhase:
        args["value"] = e.value;
        name = std::string(e.label.empty() ? to_string(e.kind) : e.label);
        break;
      case EventKind::kTermination:
        args["rounds"] = e.value;
        args["converged"] = e.flag;
        name = to_string(e.kind);
        break;
      case EventKind::kFault:
      case EventKind::kRepair:
      case EventKind::kTimeline:
        args["value"] = e.value;
        name = std::string(e.label.empty() ? to_string(e.kind) : e.label);
        break;
    }
    JsonObject instant;
    instant["name"] = std::move(name);
    instant["ph"] = "i";
    instant["s"] = "t";
    instant["pid"] = kPid;
    instant["tid"] = instant_track(e.kind);
    instant["ts"] = ts;
    instant["args"] = std::move(args);
    trace_events.push_back(std::move(instant));
  }

  JsonObject other;
  other["schema"] = "dmra-trace/1";
  other["metrics"] = recorder.metrics().deterministic_json();

  JsonObject root;
  root["traceEvents"] = std::move(trace_events);
  root["displayTimeUnit"] = "ms";
  root["otherData"] = std::move(other);
  return JsonValue(std::move(root)).dump(1) + "\n";
}

}  // namespace dmra::obs
