#include "obs/metrics.hpp"

namespace dmra::obs {

ScopedTimer::ScopedTimer(MetricsRegistry* registry, std::string name)
    : registry_(registry), name_(std::move(name)),
      start_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() {
  if (registry_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  registry_->record_timer(
      name_, static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
  if (window_open_) {
    window_gauge_last_[std::string(name)] = value;
    const auto [mit, fresh] = window_gauge_max_.emplace(std::string(name), value);
    if (!fresh && value > mit->second) mit->second = value;
  }
}

void MetricsRegistry::begin_windows(std::uint64_t window_len) {
  window_len_ = window_len;
}

void MetricsRegistry::open_window(std::uint64_t logical_index) {
  window_open_ = true;
  window_ordinal_ = logical_index / window_len_;
  window_first_tick_ = logical_index;
  window_last_tick_ = logical_index;
  window_snapshot_ = counters_;
  window_gauge_last_.clear();
  window_gauge_max_.clear();
}

MetricsWindow MetricsRegistry::current_window() const {
  MetricsWindow w;
  w.first_tick = window_first_tick_;
  w.last_tick = window_last_tick_;
  for (const auto& [name, value] : counters_) {
    const auto it = window_snapshot_.find(name);
    const std::uint64_t before = it == window_snapshot_.end() ? 0 : it->second;
    if (value != before) w.counter_deltas.emplace(name, value - before);
  }
  w.gauge_last.insert(window_gauge_last_.begin(), window_gauge_last_.end());
  w.gauge_max.insert(window_gauge_max_.begin(), window_gauge_max_.end());
  return w;
}

void MetricsRegistry::window_tick(std::uint64_t logical_index) {
  if (window_len_ == 0) return;
  if (!window_open_) {
    open_window(logical_index);
    return;
  }
  const std::uint64_t ordinal = logical_index / window_len_;
  if (ordinal == window_ordinal_) {
    window_last_tick_ = logical_index;
    return;
  }
  windows_.push_back(current_window());
  open_window(logical_index);
}

void MetricsRegistry::flush_windows() {
  if (!window_open_) return;
  windows_.push_back(current_window());
  window_open_ = false;
}

std::vector<MetricsWindow> MetricsRegistry::collect_windows() const {
  std::vector<MetricsWindow> out = windows_;
  if (window_open_) out.push_back(current_window());
  return out;
}

void MetricsRegistry::record_timer(std::string_view name, std::uint64_t elapsed_ns) {
  auto it = timers_.find(name);
  if (it == timers_.end()) it = timers_.emplace(std::string(name), TimerStat{}).first;
  TimerStat& t = it->second;
  t.count++;
  t.total_ns += elapsed_ns;
  if (elapsed_ns > t.max_ns) t.max_ns = elapsed_ns;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) add_counter(name, value);
  for (const auto& [name, value] : other.gauges_) set_gauge(name, value);
  for (const auto& [name, stat] : other.timers_) {
    auto it = timers_.find(name);
    if (it == timers_.end()) it = timers_.emplace(name, TimerStat{}).first;
    it->second.count += stat.count;
    it->second.total_ns += stat.total_ns;
    if (stat.max_ns > it->second.max_ns) it->second.max_ns = stat.max_ns;
  }
  // Shard windows append after this registry's own (task order: the
  // caller folds shards in ascending task index).
  const auto theirs = other.collect_windows();
  windows_.insert(windows_.end(), theirs.begin(), theirs.end());
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

JsonObject MetricsRegistry::deterministic_json() const {
  JsonObject counters;
  for (const auto& [name, value] : counters_) counters[name] = value;
  JsonObject gauges;
  for (const auto& [name, value] : gauges_) gauges[name] = value;
  JsonObject out;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  return out;
}

Table MetricsRegistry::to_table() const {
  Table table({"metric", "kind", "value"});
  for (const auto& [name, value] : counters_)
    table.add_row({name, "counter", std::to_string(value)});
  for (const auto& [name, value] : gauges_)
    table.add_row({name, "gauge", fmt(value, 3)});
  for (const auto& [name, t] : timers_)
    table.add_row({name, "timer",
                   fmt(static_cast<double>(t.total_ns) / 1e6, 3) + " ms / " +
                       std::to_string(t.count) + " calls (max " +
                       fmt(static_cast<double>(t.max_ns) / 1e6, 3) + " ms)"});
  return table;
}

}  // namespace dmra::obs
