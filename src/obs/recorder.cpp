#include "obs/recorder.hpp"

#include <atomic>

#include "obs/chrome_trace.hpp"
#include "obs/round_csv.hpp"

namespace dmra::obs {

namespace {

thread_local TraceRecorder* g_recorder = nullptr;
std::atomic<std::uint64_t> g_events_recorded{0};

}  // namespace

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kProposal: return "propose";
    case EventKind::kDecision: return "decision";
    case EventKind::kTrimEviction: return "trim-eviction";
    case EventKind::kBroadcast: return "broadcast";
    case EventKind::kPhase: return "phase";
    case EventKind::kTermination: return "termination";
    case EventKind::kFault: return "fault";
    case EventKind::kRepair: return "repair";
    case EventKind::kTimeline: return "timeline";
  }
  return "?";
}

std::string_view to_string(DecisionReason reason) {
  switch (reason) {
    case DecisionReason::kAccepted: return "accepted";
    case DecisionReason::kLostTiebreak: return "lost-tiebreak";
    case DecisionReason::kInfeasible: return "infeasible";
    case DecisionReason::kTrimmed: return "trimmed";
  }
  return "?";
}

void TraceRecorder::record(TraceEvent event) {
  event.round = round_;
  event.slot = rows_.size();
  event.seq = seq_in_slot_++;
  switch (event.kind) {
    case EventKind::kProposal: tally_.proposals++; break;
    case EventKind::kDecision: (event.flag ? tally_.accepts : tally_.rejects)++; break;
    case EventKind::kTrimEviction: tally_.trim_evictions++; break;
    case EventKind::kBroadcast: tally_.broadcasts++; break;
    case EventKind::kPhase:
    case EventKind::kTermination:
    case EventKind::kFault:
    case EventKind::kRepair:
    case EventKind::kTimeline: break;
  }
  events_.push_back(event);
  g_events_recorded.fetch_add(1, std::memory_order_relaxed);
}

EventTally TraceRecorder::take_tally() {
  const EventTally out = tally_;
  tally_ = EventTally{};
  return out;
}

void TraceRecorder::finish_round(RoundRow row) {
  rows_.push_back(row);
  seq_in_slot_ = 0;
}

void TraceRecorder::absorb(const TraceRecorder& shard) {
  events_.reserve(events_.size() + shard.events_.size());
  rows_.reserve(rows_.size() + shard.rows_.size());
  const auto replay = [this](TraceEvent event) {
    // Like record(), minus the round restamp (the shard's producer set
    // it), the tally, and the global counter (already counted once).
    event.slot = rows_.size();
    event.seq = seq_in_slot_++;
    events_.push_back(event);
  };
  // An event's slot is the number of rows emitted before it, so the
  // shard's interleaving of events and round boundaries reconstructs
  // exactly: events with slot s precede the finish of row s.
  std::size_t ei = 0;
  for (std::size_t s = 0; s < shard.rows_.size(); ++s) {
    for (; ei < shard.events_.size() && shard.events_[ei].slot == s; ++ei)
      replay(shard.events_[ei]);
    finish_round(shard.rows_[s]);
  }
  for (; ei < shard.events_.size(); ++ei) replay(shard.events_[ei]);
  metrics_.merge_from(shard.metrics_);
}

std::string TraceRecorder::to_chrome_trace_json() const {
  return export_chrome_trace(*this);
}

std::string TraceRecorder::to_round_csv() const { return export_round_csv(rows_); }

TraceRecorder* recorder() { return g_recorder; }

TraceRecorder* set_recorder(TraceRecorder* rec) {
  TraceRecorder* previous = g_recorder;
  g_recorder = rec;
  return previous;
}

std::uint64_t events_recorded_total() {
  return g_events_recorded.load(std::memory_order_relaxed);
}

void publish_bus_stats(const BusStats& stats, MetricsRegistry& registry) {
  registry.add_counter("bus.rounds", stats.rounds);
  registry.add_counter("bus.messages_sent", stats.messages_sent);
  registry.add_counter("bus.messages_delivered", stats.messages_delivered);
  registry.add_counter("bus.messages_dropped", stats.messages_dropped);
  // Duplication/delay counters exist only when those faults actually
  // fired: unconditional zeros would change the deterministic metrics
  // JSON of every pre-existing fault-free trace (a golden surface).
  if (stats.messages_duplicated != 0)
    registry.add_counter("bus.messages_duplicated", stats.messages_duplicated);
  if (stats.messages_delayed != 0)
    registry.add_counter("bus.messages_delayed", stats.messages_delayed);
}

}  // namespace dmra::obs
