// Per-round metric time-series CSV exporter: one line per RoundRow, in
// execution order, shortest-round-trip double formatting — deterministic
// per seed, ready for gnuplot/pandas.
#pragma once

#include <string>
#include <vector>

#include "obs/events.hpp"

namespace dmra::obs {

/// Header line of the export, without trailing newline.
std::string_view round_csv_header();

std::string export_round_csv(const std::vector<RoundRow>& rows);

}  // namespace dmra::obs
