// Counters, gauges, and scoped wall-clock timers for the observability
// layer (obs/recorder.hpp owns one registry per recording session).
//
// Counters and gauges are deterministic per seed and are embedded in the
// Chrome trace export; timers measure real time and are deliberately kept
// OUT of the golden-testable surface — they render only in the
// human-readable summary table.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/table.hpp"

namespace dmra::obs {

/// Accumulated wall time of one named scope.
struct TimerStat {
  std::uint64_t count = 0;     ///< completed scopes
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

/// One closed fixed-window rollup (begin_windows/window_tick): what the
/// registry's counters and gauges did over a span of logical ticks
/// (rounds or event indices — never wall clock, so a seeded run yields
/// byte-identical series). Counter deltas keep only the counters that
/// moved; gauges record the last value set and the in-window maximum.
struct MetricsWindow {
  std::uint64_t first_tick = 0;  ///< first logical index observed
  std::uint64_t last_tick = 0;   ///< last logical index observed
  std::map<std::string, std::uint64_t> counter_deltas;
  std::map<std::string, double> gauge_last;
  std::map<std::string, double> gauge_max;
};

class MetricsRegistry;

/// RAII wall-clock scope feeding a named TimerStat on destruction.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;  // nullptr = disabled scope, records nothing
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// Named counters (monotonic uint64), gauges (last-set double), and
/// timers. Names are created on first use; std::map keeps every export
/// deterministically ordered.
class MetricsRegistry {
 public:
  void add_counter(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  void record_timer(std::string_view name, std::uint64_t elapsed_ns);

  /// Timed scope: `auto t = registry.scoped_timer("experiment.sweep");`
  ScopedTimer scoped_timer(std::string name) { return {this, std::move(name)}; }

  /// Fold another registry into this one: counters add, gauges take the
  /// other's (last-write) value, timers accumulate count/total and keep
  /// the larger max. Deterministic given a deterministic merge order —
  /// the shard merge (obs/shard.hpp) folds shards in task order.
  void merge_from(const MetricsRegistry& other);

  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  const std::map<std::string, TimerStat, std::less<>>& timers() const { return timers_; }

  bool empty() const { return counters_.empty() && gauges_.empty() && timers_.empty(); }

  /// Arm fixed-window rollups: every window_tick() with a logical index
  /// in a new length-`window_len` span closes the open window (counter
  /// deltas vs the span's start, gauge last/max) and opens the next.
  /// Off by default — unarmed, window_tick() is a single branch and the
  /// registry stays on the zero-allocation path. `window_len` = 0 is a
  /// no-op. Ticks that regress (a new run restarting its round count)
  /// also close the window: window ordinals change, they never merge.
  void begin_windows(std::uint64_t window_len);
  bool windows_armed() const { return window_len_ != 0; }
  std::uint64_t window_len() const { return window_len_; }
  void window_tick(std::uint64_t logical_index);
  /// Close the trailing partial window, if one is open.
  void flush_windows();
  const std::vector<MetricsWindow>& windows() const { return windows_; }
  /// Closed windows plus a virtual close of the open one — what a reader
  /// at this instant should see. Does not mutate (absorb-safe).
  std::vector<MetricsWindow> collect_windows() const;

  /// Deterministic (counters + gauges only; timers excluded on purpose).
  JsonObject deterministic_json() const;

  /// Everything, for human eyes: "name | kind | value" rows.
  Table to_table() const;

 private:
  MetricsWindow current_window() const;
  void open_window(std::uint64_t logical_index);

  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, TimerStat, std::less<>> timers_;

  // Windowing state: armed by begin_windows; the snapshot holds counter
  // values at the open of the current window.
  std::uint64_t window_len_ = 0;
  bool window_open_ = false;
  std::uint64_t window_ordinal_ = 0;
  std::uint64_t window_first_tick_ = 0;
  std::uint64_t window_last_tick_ = 0;
  std::map<std::string, std::uint64_t, std::less<>> window_snapshot_;
  std::map<std::string, double> window_gauge_last_;
  std::map<std::string, double> window_gauge_max_;
  std::vector<MetricsWindow> windows_;
};

}  // namespace dmra::obs
