// Counters, gauges, and scoped wall-clock timers for the observability
// layer (obs/recorder.hpp owns one registry per recording session).
//
// Counters and gauges are deterministic per seed and are embedded in the
// Chrome trace export; timers measure real time and are deliberately kept
// OUT of the golden-testable surface — they render only in the
// human-readable summary table.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "util/json.hpp"
#include "util/table.hpp"

namespace dmra::obs {

/// Accumulated wall time of one named scope.
struct TimerStat {
  std::uint64_t count = 0;     ///< completed scopes
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

class MetricsRegistry;

/// RAII wall-clock scope feeding a named TimerStat on destruction.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;  // nullptr = disabled scope, records nothing
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// Named counters (monotonic uint64), gauges (last-set double), and
/// timers. Names are created on first use; std::map keeps every export
/// deterministically ordered.
class MetricsRegistry {
 public:
  void add_counter(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  void record_timer(std::string_view name, std::uint64_t elapsed_ns);

  /// Timed scope: `auto t = registry.scoped_timer("experiment.sweep");`
  ScopedTimer scoped_timer(std::string name) { return {this, std::move(name)}; }

  /// Fold another registry into this one: counters add, gauges take the
  /// other's (last-write) value, timers accumulate count/total and keep
  /// the larger max. Deterministic given a deterministic merge order —
  /// the shard merge (obs/shard.hpp) folds shards in task order.
  void merge_from(const MetricsRegistry& other);

  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  const std::map<std::string, TimerStat, std::less<>>& timers() const { return timers_; }

  bool empty() const { return counters_.empty() && gauges_.empty() && timers_.empty(); }

  /// Deterministic (counters + gauges only; timers excluded on purpose).
  JsonObject deterministic_json() const;

  /// Everything, for human eyes: "name | kind | value" rows.
  Table to_table() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, TimerStat, std::less<>> timers_;
};

}  // namespace dmra::obs
