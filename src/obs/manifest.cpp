#include "obs/manifest.hpp"

#include <utility>

namespace dmra::obs {

// CMake injects the provenance macros (src/obs/CMakeLists.txt); the
// fallbacks keep non-CMake builds (clangd, quick compiles) working.
#ifndef DMRA_GIT_DESCRIBE
#define DMRA_GIT_DESCRIBE "unknown"
#endif
#ifndef DMRA_BUILD_TYPE
#define DMRA_BUILD_TYPE "unknown"
#endif
#ifndef DMRA_SANITIZERS
#define DMRA_SANITIZERS ""
#endif

std::string_view git_describe() { return DMRA_GIT_DESCRIBE; }

JsonObject build_flavor_json() {
  JsonObject build;
  build["type"] = DMRA_BUILD_TYPE;
  build["sanitizers"] = DMRA_SANITIZERS;
#ifdef DMRA_AUDIT_ENABLED
  build["audit"] = true;
#else
  build["audit"] = false;
#endif
  return build;
}

JsonObject manifest_json(const ManifestInput& input) {
  JsonObject o;
  o["schema"] = std::string(kManifestSchema);
  o["program"] = input.program;
  o["git"] = std::string(git_describe());
  o["build"] = build_flavor_json();

  JsonObject flags;
  for (const auto& [name, value] : input.flags) flags[name] = value;
  o["flags"] = std::move(flags);

  o["scenario_config"] = input.scenario_config;

  JsonArray seeds;
  seeds.reserve(input.seeds.size());
  for (const std::uint64_t s : input.seeds) seeds.emplace_back(s);
  o["seeds"] = std::move(seeds);

  o["jobs"] = input.jobs;
  o["fault_spec"] = input.fault_spec;

  JsonArray outputs;
  outputs.reserve(input.outputs.size());
  for (const auto& [kind, path] : input.outputs) {
    JsonObject entry;
    entry["kind"] = kind;
    entry["path"] = path;
    // emplace_back constructs the JsonValue in place: the push_back form
    // moves through a variant temporary that gcc 12 (RelWithDebInfo)
    // flags with a spurious -Wmaybe-uninitialized.
    outputs.emplace_back(std::move(entry));
  }
  o["outputs"] = std::move(outputs);

  o["metrics"] = input.metrics != nullptr ? input.metrics->deterministic_json()
                                          : JsonObject{};
  return o;
}

std::string manifest_to_json(const ManifestInput& input) {
  return JsonValue(manifest_json(input)).dump(2) + "\n";
}

}  // namespace dmra::obs
