// Parallel-safe tracing: per-task recorder shards for fan-out workloads.
//
// The TraceRecorder hook is thread-local (obs/recorder.hpp), so a traced
// parallel_map would silently lose every event produced on a worker
// thread. TraceShards closes that hole: the coordinating thread creates
// one shard recorder per task, util/thread_pool's TaskHooks install the
// task's shard on whichever thread ends up executing it, and after the
// fan-in the shards are merged into the coordinating recorder in
// ascending task order — the deterministic sort key. Each shard's events
// carry their producer (round, seq) stamps and are re-stamped onto the
// target's slot/seq continuation by TraceRecorder::absorb(), so the
// merged stream is byte-for-byte the stream a serial run would have
// recorded: traced exports are invariant under --jobs
// (tests/obs/shard_test.cpp golden-tests jobs ∈ {1, 2, 8}).
//
// Thread-safety: shard i is touched only by the one thread running task
// i (tasks never migrate mid-flight), and the pool's future barrier
// orders every shard write before the merge. No locks, no atomics.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "obs/flight.hpp"
#include "obs/recorder.hpp"
#include "util/thread_pool.hpp"

namespace dmra::obs {

class TraceShards {
 public:
  /// One shard recorder per task, created up front on the coordinating
  /// thread so workers never allocate shards concurrently. When the
  /// coordinating thread also has a FlightRecorder installed
  /// (obs/flight.hpp), a flight shard is created per task from the
  /// parent's Config (the --dump-on arming carried over) and installed
  /// alongside the trace shard.
  explicit TraceShards(std::size_t num_tasks);

  /// Hooks for parallel_map: before(i) installs shard i on the executing
  /// thread (saving that thread's previous recorder — on the inline
  /// jobs<=1 path this is the coordinating recorder itself), after(i)
  /// restores it. Trace shards are installed only when the coordinating
  /// thread had a trace recorder at construction — a flight-only run
  /// must keep recorder() == nullptr inside tasks so rec-gated
  /// instrumentation stays off. The returned hooks reference *this; keep
  /// the shard set alive across the parallel_map call.
  TaskHooks hooks();

  /// Merge every shard into `target` in ascending task order. Call once,
  /// after the fan-in; the shards are left drained of meaning (absorbed).
  void merge_into(TraceRecorder& target);

  /// Same, for the flight shards. No-op when no flight recorder was
  /// installed at construction.
  void merge_flight_into(FlightRecorder& target);

  std::size_t size() const { return shards_.size(); }
  const TraceRecorder& shard(std::size_t task) const { return *shards_[task]; }
  const FlightRecorder* flight_shard(std::size_t task) const {
    return task < flight_shards_.size() ? flight_shards_[task].get() : nullptr;
  }

 private:
  // unique_ptr keeps recorder addresses stable across the vector.
  std::vector<std::unique_ptr<TraceRecorder>> shards_;
  std::vector<TraceRecorder*> previous_;
  bool install_trace_ = false;
  std::vector<std::unique_ptr<FlightRecorder>> flight_shards_;  // empty = flight off
  std::vector<FlightRecorder*> previous_flight_;
};

/// parallel_map that keeps the calling thread's trace coherent: with no
/// recorder installed this is exactly parallel_map (same zero cost);
/// with one installed, every task records into its own shard and the
/// shards merge back in task order. Drop-in replacement for the per-seed
/// replication loops in sim/experiment and the ablation benches.
template <typename Fn>
auto traced_parallel_map(std::size_t jobs, std::size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  TraceRecorder* const rec = recorder();
  FlightRecorder* const fr = flight();
  if (rec == nullptr && fr == nullptr) return parallel_map(jobs, n, std::forward<Fn>(fn));
  TraceShards shards(n);
  auto results = parallel_map(jobs, n, std::forward<Fn>(fn), shards.hooks());
  if (rec != nullptr) shards.merge_into(*rec);
  if (fr != nullptr) shards.merge_flight_into(*fr);
  return results;
}

}  // namespace dmra::obs
