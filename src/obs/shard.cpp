#include "obs/shard.hpp"

namespace dmra::obs {

TraceShards::TraceShards(std::size_t num_tasks) {
  shards_.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i)
    shards_.push_back(std::make_unique<TraceRecorder>());
  previous_.assign(num_tasks, nullptr);
}

TaskHooks TraceShards::hooks() {
  TaskHooks hooks;
  // Each slot of previous_ is written by before(i) and read by after(i)
  // on the same thread (the one executing task i), so distinct tasks
  // never touch the same slot.
  hooks.before = [this](std::size_t task) {
    previous_[task] = set_recorder(shards_[task].get());
  };
  hooks.after = [this](std::size_t task) { set_recorder(previous_[task]); };
  return hooks;
}

void TraceShards::merge_into(TraceRecorder& target) {
  for (const auto& shard : shards_) target.absorb(*shard);
}

}  // namespace dmra::obs
