#include "obs/shard.hpp"

namespace dmra::obs {

TraceShards::TraceShards(std::size_t num_tasks) {
  shards_.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i)
    shards_.push_back(std::make_unique<TraceRecorder>());
  previous_.assign(num_tasks, nullptr);
  install_trace_ = recorder() != nullptr;
  if (const FlightRecorder* parent = flight(); parent != nullptr) {
    flight_shards_.reserve(num_tasks);
    for (std::size_t i = 0; i < num_tasks; ++i) {
      auto shard = std::make_unique<FlightRecorder>(parent->config());
      if (parent->dump_on_armed()) shard->arm_dump_on_round(parent->dump_on_round());
      flight_shards_.push_back(std::move(shard));
    }
    previous_flight_.assign(num_tasks, nullptr);
  }
}

TaskHooks TraceShards::hooks() {
  TaskHooks hooks;
  // Each slot of previous_ is written by before(i) and read by after(i)
  // on the same thread (the one executing task i), so distinct tasks
  // never touch the same slot.
  hooks.before = [this](std::size_t task) {
    if (install_trace_) previous_[task] = set_recorder(shards_[task].get());
    if (!flight_shards_.empty())
      previous_flight_[task] = set_flight(flight_shards_[task].get());
  };
  hooks.after = [this](std::size_t task) {
    if (install_trace_) set_recorder(previous_[task]);
    if (!flight_shards_.empty()) set_flight(previous_flight_[task]);
  };
  return hooks;
}

void TraceShards::merge_into(TraceRecorder& target) {
  for (const auto& shard : shards_) target.absorb(*shard);
}

void TraceShards::merge_flight_into(FlightRecorder& target) {
  for (const auto& shard : flight_shards_) target.absorb(*shard);
}

}  // namespace dmra::obs
