#include "geometry/geometry.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dmra {

double distance_sq(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double distance_m(const Point& a, const Point& b) { return std::sqrt(distance_sq(a, b)); }

bool Rect::contains(const Point& p) const {
  return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
}

std::vector<Point> sample_uniform(const Rect& area, std::size_t count, Rng& rng) {
  DMRA_REQUIRE(area.width() >= 0 && area.height() >= 0);
  std::vector<Point> pts;
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    pts.push_back({rng.uniform_real(area.x0, area.x1), rng.uniform_real(area.y0, area.y1)});
  return pts;
}

std::vector<Point> grid_points(const Rect& area, std::size_t rows, std::size_t cols,
                               double spacing_m) {
  DMRA_REQUIRE(rows > 0 && cols > 0 && spacing_m > 0);
  const double grid_w = static_cast<double>(cols - 1) * spacing_m;
  const double grid_h = static_cast<double>(rows - 1) * spacing_m;
  const Point c = area.center();
  const double ox = c.x - grid_w / 2.0;
  const double oy = c.y - grid_h / 2.0;
  std::vector<Point> pts;
  pts.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t cc = 0; cc < cols; ++cc)
      pts.push_back({ox + static_cast<double>(cc) * spacing_m,
                     oy + static_cast<double>(r) * spacing_m});
  return pts;
}

}  // namespace dmra
