// 2-D geometry primitives used for the deployment area.
// All coordinates and distances are in meters.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace dmra {

/// A point in the deployment plane, meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Euclidean distance in meters.
double distance_m(const Point& a, const Point& b);

/// Squared distance (avoids the sqrt in hot loops).
double distance_sq(const Point& a, const Point& b);

/// Axis-aligned rectangle [x0, x1] × [y0, y1], meters.
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  double width() const { return x1 - x0; }
  double height() const { return y1 - y0; }
  bool contains(const Point& p) const;
  Point center() const { return {(x0 + x1) / 2.0, (y0 + y1) / 2.0}; }
};

/// `count` points uniformly distributed in `area`.
std::vector<Point> sample_uniform(const Rect& area, std::size_t count, Rng& rng);

/// rows × cols grid with the given spacing, centered inside `area`.
/// The first point is the bottom-left grid site; order is row-major.
std::vector<Point> grid_points(const Rect& area, std::size_t rows, std::size_t cols,
                               double spacing_m);

}  // namespace dmra
