#include "baselines/exact.hpp"

#include <algorithm>

#include "mec/audit.hpp"
#include "mec/resources.hpp"
#include "util/require.hpp"

namespace dmra {

namespace {

struct SearchCtx {
  const Scenario& scenario;
  ResourceState state;
  Allocation current;
  Allocation best;
  double current_profit = 0.0;
  double best_profit = -1.0;
  /// upper_bound[u] = best possible profit from UEs u..end, capacities
  /// ignored; admissible bound for pruning.
  std::vector<double> suffix_bound;
  std::size_t incumbents = 0;  ///< audit round counter (improvements found)
};

void search(SearchCtx& ctx, std::size_t ui) {
  if (ui == ctx.scenario.num_ues()) {
    if (ctx.current_profit > ctx.best_profit) {
      ctx.best_profit = ctx.current_profit;
      ctx.best = ctx.current;
      // Auditing every search node would blow up the exponential walk;
      // incumbent improvements are rare and exercise the commit/release
      // pairing along the whole path from the root.
      if (DMRA_AUDIT_ACTIVE())
        audit::report_state_round("baselines/exact", ctx.incumbents++, ctx.scenario,
                                  ctx.current, ctx.state);
    }
    return;
  }
  if (ctx.current_profit + ctx.suffix_bound[ui] <= ctx.best_profit) return;  // prune

  const UeId u{static_cast<std::uint32_t>(ui)};
  // Try candidates best-profit-first so the incumbent improves quickly.
  std::vector<BsId> cands(ctx.scenario.candidates(u).begin(),
                          ctx.scenario.candidates(u).end());
  std::sort(cands.begin(), cands.end(), [&](BsId a, BsId b) {
    return ctx.scenario.pair_profit(u, a) > ctx.scenario.pair_profit(u, b);
  });
  for (BsId i : cands) {
    if (!ctx.state.can_serve(u, i)) continue;
    const double p = ctx.scenario.pair_profit(u, i);
    ctx.state.commit(u, i);
    ctx.current.assign(u, i);
    ctx.current_profit += p;
    search(ctx, ui + 1);
    ctx.current_profit -= p;
    ctx.current.assign_cloud(u);
    ctx.state.release(u, i);
  }
  // The cloud branch (u unserved) is always available.
  search(ctx, ui + 1);
}

}  // namespace

Allocation ExactAllocator::allocate(const Scenario& scenario) const {
  DMRA_REQUIRE_MSG(scenario.num_ues() <= max_ues_,
                   "exact solver limited to small instances; raise max_ues knowingly");

  SearchCtx ctx{scenario, ResourceState(scenario), Allocation(scenario.num_ues()),
                Allocation(scenario.num_ues()), /*current_profit=*/0.0,
                /*best_profit=*/-1.0, /*suffix_bound=*/{}};
  ctx.suffix_bound.assign(scenario.num_ues() + 1, 0.0);
  for (std::size_t ui = scenario.num_ues(); ui-- > 0;) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    double best_pair = 0.0;
    for (BsId i : scenario.candidates(u))
      best_pair = std::max(best_pair, scenario.pair_profit(u, i));
    ctx.suffix_bound[ui] = ctx.suffix_bound[ui + 1] + best_pair;
  }

  search(ctx, 0);
  return ctx.best_profit >= 0.0 ? ctx.best : Allocation(scenario.num_ues());
}

}  // namespace dmra
