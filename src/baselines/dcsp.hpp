// DCSP — Decentralized Collaboration Service Placement (Yu et al.,
// GLOBECOM 2018), as described in the DMRA paper's §VI-B:
//
//   "Each time, UE proposes to BS with the lowest resource occupation,
//    and BS proposes to UE with the smallest number of BSs that can cover
//    it. If more than one UE satisfy the condition, BS chooses the UE
//    which consumes the least amount of radio resources. The iteration is
//    repeated until no UE sends service requests any more."
//
// Resource occupation of BS i for a UE requesting service j is the used
// fraction of (CRUs of j + RRBs); unlike DMRA, neither price nor SP
// ownership enters any decision.
#pragma once

#include "mec/allocator.hpp"

namespace dmra {

class DcspAllocator final : public Allocator {
 public:
  std::string name() const override { return "DCSP"; }
  Allocation allocate(const Scenario& scenario) const override;
};

}  // namespace dmra
