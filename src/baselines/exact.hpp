// Exact TPM solver by branch and bound — tractable only for small
// instances (≲ 15 UEs), used by tests to measure the optimality gap of
// DMRA and the baselines against the true optimum of Eq. 11.
#pragma once

#include <cstddef>

#include "mec/allocator.hpp"

namespace dmra {

class ExactAllocator final : public Allocator {
 public:
  /// Refuses instances with more than `max_ues` UEs (search is
  /// exponential in |U|).
  explicit ExactAllocator(std::size_t max_ues = 15) : max_ues_(max_ues) {}
  std::string name() const override { return "Exact"; }
  Allocation allocate(const Scenario& scenario) const override;

 private:
  std::size_t max_ues_;
};

}  // namespace dmra
