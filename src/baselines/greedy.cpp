#include "baselines/greedy.hpp"

#include <algorithm>
#include <tuple>

#include "mec/audit.hpp"
#include "mec/resources.hpp"

namespace dmra {

Allocation GreedyProfitAllocator::allocate(const Scenario& scenario) const {
  struct Pair {
    UeId u;
    BsId i;
    double profit;
  };
  std::vector<Pair> pairs;
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    for (BsId i : scenario.candidates(u)) pairs.push_back({u, i, scenario.pair_profit(u, i)});
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    return std::make_tuple(-a.profit, a.u.value, a.i.value) <
           std::make_tuple(-b.profit, b.u.value, b.i.value);
  });

  ResourceState state(scenario);
  Allocation alloc(scenario.num_ues());
  std::vector<bool> assigned(scenario.num_ues(), false);
  for (const Pair& p : pairs) {
    if (assigned[p.u.idx()] || !state.can_serve(p.u, p.i)) continue;
    state.commit(p.u, p.i);
    alloc.assign(p.u, p.i);
    assigned[p.u.idx()] = true;
  }
  if (DMRA_AUDIT_ACTIVE())
    audit::report_state_round("baselines/greedy", 0, scenario, alloc, state);
  return alloc;
}

}  // namespace dmra
