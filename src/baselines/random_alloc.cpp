#include "baselines/random_alloc.hpp"

#include "mec/audit.hpp"
#include "mec/resources.hpp"
#include "util/rng.hpp"

namespace dmra {

Allocation RandomAllocator::allocate(const Scenario& scenario) const {
  Rng rng("random-alloc", seed_);
  ResourceState state(scenario);
  Allocation alloc(scenario.num_ues());

  std::vector<UeId> order;
  order.reserve(scenario.num_ues());
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui)
    order.push_back(UeId{static_cast<std::uint32_t>(ui)});
  rng.shuffle(order);

  for (UeId u : order) {
    std::vector<BsId> feasible;
    for (BsId i : scenario.candidates(u))
      if (state.can_serve(u, i)) feasible.push_back(i);
    if (feasible.empty()) continue;  // → cloud
    const BsId pick = feasible[rng.index(feasible.size())];
    state.commit(u, pick);
    alloc.assign(u, pick);
  }
  if (DMRA_AUDIT_ACTIVE())
    audit::report_state_round("baselines/random", 0, scenario, alloc, state);
  return alloc;
}

}  // namespace dmra
