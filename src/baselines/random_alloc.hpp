// Random feasible allocator — the sanity floor every serious scheme must
// beat. UEs are visited in a seeded random order; each takes a uniformly
// random candidate BS that can still serve it.
#pragma once

#include <cstdint>

#include "mec/allocator.hpp"

namespace dmra {

class RandomAllocator final : public Allocator {
 public:
  explicit RandomAllocator(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "Random"; }
  Allocation allocate(const Scenario& scenario) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace dmra
