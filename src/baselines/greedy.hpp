// Centralized greedy profit-margin allocator — not from the paper; an
// extra comparator that a global controller with full knowledge would
// run. Sorts every feasible (UE, BS) pair by the SP profit it would
// realize and commits pairs greedily. Useful as a near-upper bound for
// what the decentralized schemes leave on the table.
#pragma once

#include "mec/allocator.hpp"

namespace dmra {

class GreedyProfitAllocator final : public Allocator {
 public:
  std::string name() const override { return "Greedy"; }
  Allocation allocate(const Scenario& scenario) const override;
};

}  // namespace dmra
