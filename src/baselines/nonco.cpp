#include "baselines/nonco.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "mec/audit.hpp"
#include "mec/resources.hpp"

namespace dmra {

namespace {

/// Max-SINR candidate of u among `cands`; ties toward the smaller id.
std::optional<BsId> best_sinr(const Scenario& scenario, UeId u,
                              const std::vector<BsId>& cands) {
  if (cands.empty()) return std::nullopt;
  BsId best = cands.front();
  for (BsId i : cands)
    if (scenario.link(u, i).sinr > scenario.link(u, best).sinr) best = i;
  return best;
}

/// BS admission: least-RRB-hungry first, then id; admit while feasible.
/// Returns the UEs it rejected.
std::vector<UeId> admit(const Scenario& scenario, ResourceState& state, Allocation& alloc,
                        BsId bs, std::vector<UeId> ues) {
  std::sort(ues.begin(), ues.end(), [&](UeId a, UeId b) {
    return std::make_tuple(scenario.link(a, bs).n_rrbs, a.value) <
           std::make_tuple(scenario.link(b, bs).n_rrbs, b.value);
  });
  std::vector<UeId> rejected;
  for (UeId u : ues) {
    if (!state.can_serve(u, bs)) {
      rejected.push_back(u);
      continue;
    }
    state.commit(u, bs);
    alloc.assign(u, bs);
  }
  return rejected;
}

}  // namespace

Allocation NonCoAllocator::allocate(const Scenario& scenario) const {
  ResourceState state(scenario);
  Allocation alloc(scenario.num_ues());

  const std::size_t nu = scenario.num_ues();
  std::vector<std::vector<BsId>> b_u(nu);
  for (std::size_t ui = 0; ui < nu; ++ui) {
    const auto cands = scenario.candidates(UeId{static_cast<std::uint32_t>(ui)});
    b_u[ui].assign(cands.begin(), cands.end());
  }

  std::vector<UeId> pending;
  for (std::size_t ui = 0; ui < nu; ++ui) pending.push_back(UeId{static_cast<std::uint32_t>(ui)});

  // One round in one-shot mode; until exhaustion in iterative mode.
  for (std::size_t round = 0; round < nu + 1 && !pending.empty(); ++round) {
    std::map<BsId, std::vector<UeId>> proposals;
    for (UeId u : pending) {
      const auto choice = best_sinr(scenario, u, b_u[u.idx()]);
      if (choice) proposals[*choice].push_back(u);
      // No candidate left → remote cloud (stays unassigned).
    }
    pending.clear();

    for (auto& [bs, ues] : proposals) {
      for (UeId u : admit(scenario, state, alloc, bs, std::move(ues))) {
        if (mode_ == Mode::kOneShot) continue;  // rejected → cloud, no retry
        std::erase(b_u[u.idx()], bs);
        pending.push_back(u);
      }
    }
    std::sort(pending.begin(), pending.end());
    if (DMRA_AUDIT_ACTIVE())
      audit::report_state_round("baselines/nonco", round, scenario, alloc, state);
  }
  return alloc;
}

}  // namespace dmra
