#include "baselines/dcsp.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "mec/audit.hpp"
#include "mec/resources.hpp"

namespace dmra {

Allocation DcspAllocator::allocate(const Scenario& scenario) const {
  ResourceState state(scenario);
  Allocation alloc(scenario.num_ues());

  const std::size_t nu = scenario.num_ues();
  std::vector<std::vector<BsId>> b_u(nu);
  std::vector<bool> done(nu, false);  // matched or sent to cloud
  for (std::size_t ui = 0; ui < nu; ++ui) {
    const auto cands = scenario.candidates(UeId{static_cast<std::uint32_t>(ui)});
    b_u[ui].assign(cands.begin(), cands.end());
    if (b_u[ui].empty()) done[ui] = true;
  }

  auto occupancy = [&](UeId u, BsId i) {
    const ServiceId j = scenario.ue(u).service;
    const BaseStation& b = scenario.bs(i);
    const double cap = static_cast<double>(b.cru_capacity[j.idx()] + b.num_rrbs);
    const double rem =
        static_cast<double>(state.remaining_crus(i, j) + state.remaining_rrbs(i));
    return 1.0 - rem / cap;
  };

  for (std::size_t round = 0; round < nu + 1; ++round) {
    // UE proposals: lowest-occupancy feasible candidate.
    std::map<BsId, std::vector<UeId>> proposals;
    std::size_t sent = 0;
    for (std::size_t ui = 0; ui < nu; ++ui) {
      if (done[ui]) continue;
      const UeId u{static_cast<std::uint32_t>(ui)};
      std::optional<BsId> choice;
      while (!b_u[ui].empty() && !choice) {
        std::size_t best = 0;
        double best_occ = occupancy(u, b_u[ui][0]);
        for (std::size_t n = 1; n < b_u[ui].size(); ++n) {
          const double occ = occupancy(u, b_u[ui][n]);
          if (occ < best_occ || (occ == best_occ && b_u[ui][n] < b_u[ui][best])) {
            best = n;
            best_occ = occ;
          }
        }
        if (state.can_serve(u, b_u[ui][best])) {
          choice = b_u[ui][best];
        } else {
          b_u[ui].erase(b_u[ui].begin() + static_cast<std::ptrdiff_t>(best));
        }
      }
      if (!choice) {
        done[ui] = true;  // candidates exhausted → remote cloud
        continue;
      }
      proposals[*choice].push_back(u);
      ++sent;
    }
    if (sent == 0) break;

    // BS acceptance: fewest covering BSs first, then least radio, then id;
    // accept greedily while resources remain.
    for (auto& [bs, ues] : proposals) {
      std::sort(ues.begin(), ues.end(), [&](UeId a, UeId b) {
        const auto ka = std::make_tuple(scenario.coverage_count(a),
                                        scenario.link(a, bs).n_rrbs, a.value);
        const auto kb = std::make_tuple(scenario.coverage_count(b),
                                        scenario.link(b, bs).n_rrbs, b.value);
        return ka < kb;
      });
      for (UeId u : ues) {
        if (!state.can_serve(u, bs)) {
          std::erase(b_u[u.idx()], bs);  // rejected → move down the list
          continue;
        }
        state.commit(u, bs);
        alloc.assign(u, bs);
        done[u.idx()] = true;
      }
    }
    if (DMRA_AUDIT_ACTIVE())
      audit::report_state_round("baselines/dcsp", round, scenario, alloc, state);
  }
  return alloc;
}

}  // namespace dmra
