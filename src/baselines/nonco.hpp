// NonCo — the non-collaborative baseline of the DMRA paper's §VI-B:
//
//   "With NonCo, each UE proposes to BS with the maximum SINR in the
//    uplink channel. Each BS prefers to be associated with the UE
//    consuming the least number of RRBs. The collaboration of BSs is not
//    taken into consideration."
//
// No prices, no SP ownership, no load awareness: pure radio greed.
//
// The paper describes no iteration for NonCo (unlike DCSP), so the
// default is a single proposal round: a UE rejected by its max-SINR BS
// goes to the cloud. `Mode::kIterative` implements the alternative
// reading — rejected UEs retry their next-best-SINR candidate until
// their options run out — used by bench abl4 to show how much of DMRA's
// advantage survives against a collaborative max-SINR scheme.
#pragma once

#include "mec/allocator.hpp"

namespace dmra {

class NonCoAllocator final : public Allocator {
 public:
  enum class Mode {
    kOneShot,    ///< single proposal round (default; paper-literal)
    kIterative,  ///< rejected UEs fall through their SINR-ordered list
  };

  explicit NonCoAllocator(Mode mode = Mode::kOneShot) : mode_(mode) {}

  std::string name() const override {
    return mode_ == Mode::kOneShot ? "NonCo" : "NonCo-iter";
  }
  Allocation allocate(const Scenario& scenario) const override;

 private:
  Mode mode_;
};

}  // namespace dmra
