#include "core/solver.hpp"

#include <algorithm>

#include "mec/audit.hpp"
#include "mec/resources.hpp"
#include "obs/recorder.hpp"
#include "util/log.hpp"
#include "util/require.hpp"

namespace dmra {

namespace {

/// Traced runs only: total remaining CRU/RRB capacity across the ledger,
/// reported per round as headroom gauges in the round CSV.
void sum_headroom(const Scenario& scenario, const ResourceState& state,
                  std::uint64_t& crus, std::uint64_t& rrbs) {
  crus = 0;
  rrbs = 0;
  for (const BaseStation& b : scenario.bss()) {
    for (std::size_t j = 0; j < scenario.num_services(); ++j)
      crus += state.remaining_crus(b.id, ServiceId{static_cast<std::uint32_t>(j)});
    rrbs += state.remaining_rrbs(b.id);
  }
}

/// ResourceView over the authoritative global ledger.
class GlobalView final : public ResourceView {
 public:
  explicit GlobalView(const ResourceState& state) : state_(&state) {}
  std::uint32_t remaining_crus(BsId i, ServiceId j) const override {
    return state_->remaining_crus(i, j);
  }
  std::uint32_t remaining_rrbs(BsId i) const override { return state_->remaining_rrbs(i); }

 private:
  const ResourceState* state_;
};

}  // namespace

DmraResult solve_dmra_partial(const Scenario& scenario, const DmraConfig& config,
                              ResourceState& state, Allocation& allocation,
                              std::vector<bool>& matched) {
  DMRA_REQUIRE(config.rho >= 0.0);
  DMRA_REQUIRE(allocation.num_ues() == scenario.num_ues());
  DMRA_REQUIRE(matched.size() == scenario.num_ues());

  const GlobalView view(state);
  DmraResult result;
  result.allocation = Allocation(0);  // filled at the end

  // Tracing: a single pointer test when disabled. traced_profit seeds from
  // the carried-over allocation so incremental re-solves report the true
  // cumulative figure, not just this call's delta.
  obs::TraceRecorder* const rec = obs::recorder();
  double traced_profit = 0.0;
  if (rec != nullptr) {
    rec->take_tally();  // drop any tally left by a previous producer
    traced_profit = total_profit(scenario, allocation);
  }

  const std::size_t nu = scenario.num_ues();
  std::vector<std::vector<BsId>> b_u(nu);
  std::vector<bool> at_cloud(nu, false);
  for (std::size_t ui = 0; ui < nu; ++ui) {
    if (matched[ui]) continue;
    const auto cands = scenario.candidates(UeId{static_cast<std::uint32_t>(ui)});
    b_u[ui].assign(cands.begin(), cands.end());
    if (b_u[ui].empty()) at_cloud[ui] = true;
  }

  const std::size_t round_limit = config.max_rounds > 0 ? config.max_rounds : nu + 1;

  // Per-BS proposal buckets and the BS-local resource scratch, hoisted out
  // of the round loop. Scanning the buckets in index order reproduces the
  // former std::map<BsId, ...> iteration order exactly, without a map-node
  // allocation per proposal per round; bucket capacity persists across
  // rounds. Part of the hotpath allocation budget (docs/STATIC_ANALYSIS.md).
  const std::size_t nb = scenario.num_bss();
  std::vector<std::vector<ProposalInfo>> proposals(nb);
  BsLocalResources local;
  local.crus.resize(scenario.num_services());

  bool converged = false;
  for (std::size_t round = 0; round < round_limit; ++round) {
    if (rec != nullptr) rec->set_round(round);
    // --- UE proposal phase: everything is evaluated against the state at
    // the start of the round, exactly like the broadcast view a
    // decentralized UE would hold.
    // dmra::hotpath begin(solver-propose)
    for (std::vector<ProposalInfo>& bucket : proposals) bucket.clear();
    std::size_t sent_this_round = 0;
    for (std::size_t ui = 0; ui < nu; ++ui) {
      if (matched[ui] || at_cloud[ui]) continue;
      const UeId u{static_cast<std::uint32_t>(ui)};
      const auto choice = choose_proposal(scenario, view, u, b_u[ui], config.rho);
      if (!choice) {
        at_cloud[ui] = true;  // Alg. 1: B_u exhausted → remote cloud
        continue;
      }
      const std::uint32_t f_u = live_coverage_count(scenario, view, u);
      proposals[choice->idx()].push_back(ProposalInfo{u, f_u});
      ++sent_this_round;
      if (rec != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kProposal;
        e.ue = u.value;
        e.bs = choice->value;
        e.service = scenario.ue(u).service.value;
        e.value = f_u;
        rec->record(e);
      }
    }
    // dmra::hotpath end(solver-propose)
    if (sent_this_round == 0) {
      converged = true;
      break;
    }
    result.proposals_sent += sent_this_round;
    ++result.rounds;

    // --- BS acceptance phase: each BS decides from its own local
    // resources only, then commits.
    // dmra::hotpath begin(solver-accept)
    std::size_t accepted_this_round = 0;
    for (std::size_t bi = 0; bi < nb; ++bi) {
      const std::vector<ProposalInfo>& props = proposals[bi];
      if (props.empty()) continue;
      const BsId bs{static_cast<std::uint32_t>(bi)};
      for (std::size_t j = 0; j < scenario.num_services(); ++j)
        local.crus[j] = state.remaining_crus(bs, ServiceId{static_cast<std::uint32_t>(j)});
      local.rrbs = state.remaining_rrbs(bs);

      const std::vector<UeId> accepted = bs_select(scenario, bs, props, local, config);
      for (UeId u : accepted) {
        state.commit(u, bs);
        allocation.assign(u, bs);
        matched[u.idx()] = true;
        ++accepted_this_round;
        if (rec != nullptr) traced_profit += scenario.pair_profit(u, bs);
      }
      if (config.drop_rejected) {
        for (const ProposalInfo& p : props) {
          if (std::binary_search(accepted.begin(), accepted.end(), p.ue)) continue;
          auto& list = b_u[p.ue.idx()];
          std::erase(list, bs);
        }
      }
    }
    // dmra::hotpath end(solver-accept)
    result.rejections += sent_this_round - accepted_this_round;
    if (DMRA_AUDIT_ACTIVE())
      audit::report_state_round("core/solver", result.rounds - 1, scenario, allocation,
                                state);
    if (rec != nullptr) {
      const obs::EventTally tally = rec->take_tally();
      obs::RoundRow row;
      row.source = "core/solver";
      row.round = result.rounds - 1;
      row.proposals = tally.proposals;
      row.accepts = tally.accepts;
      row.rejects = tally.rejects;
      row.trim_evictions = tally.trim_evictions;
      row.broadcasts = tally.broadcasts;
      row.messages = 0;  // direct solver: no bus
      std::size_t seeking = 0;
      for (std::size_t ui = 0; ui < nu; ++ui)
        if (!matched[ui] && !at_cloud[ui]) ++seeking;
      row.unmatched_ues = seeking;
      row.cumulative_profit = traced_profit;
      sum_headroom(scenario, state, row.cru_headroom, row.rrb_headroom);
      rec->finish_round(row);
    }
    DMRA_DEBUG("dmra round " << result.rounds << ": " << sent_this_round << " proposals, "
                             << accepted_this_round << " accepted");
  }

  if (rec != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kTermination;
    e.flag = converged;
    e.value = result.rounds;
    e.label = "core/solver";
    rec->record(e);
  }

  result.allocation = allocation;
  return result;
}

DmraResult solve_dmra(const Scenario& scenario, const DmraConfig& config) {
  ResourceState state(scenario);
  Allocation allocation(scenario.num_ues());
  std::vector<bool> matched(scenario.num_ues(), false);
  return solve_dmra_partial(scenario, config, state, allocation, matched);
}

}  // namespace dmra
