#include "core/solver.hpp"

#include <algorithm>
#include <map>

#include "mec/audit.hpp"
#include "mec/resources.hpp"
#include "util/log.hpp"
#include "util/require.hpp"

namespace dmra {

namespace {

/// ResourceView over the authoritative global ledger.
class GlobalView final : public ResourceView {
 public:
  explicit GlobalView(const ResourceState& state) : state_(&state) {}
  std::uint32_t remaining_crus(BsId i, ServiceId j) const override {
    return state_->remaining_crus(i, j);
  }
  std::uint32_t remaining_rrbs(BsId i) const override { return state_->remaining_rrbs(i); }

 private:
  const ResourceState* state_;
};

}  // namespace

DmraResult solve_dmra_partial(const Scenario& scenario, const DmraConfig& config,
                              ResourceState& state, Allocation& allocation,
                              std::vector<bool>& matched) {
  DMRA_REQUIRE(config.rho >= 0.0);
  DMRA_REQUIRE(allocation.num_ues() == scenario.num_ues());
  DMRA_REQUIRE(matched.size() == scenario.num_ues());

  const GlobalView view(state);
  DmraResult result;
  result.allocation = Allocation(0);  // filled at the end

  const std::size_t nu = scenario.num_ues();
  std::vector<std::vector<BsId>> b_u(nu);
  std::vector<bool> at_cloud(nu, false);
  for (std::size_t ui = 0; ui < nu; ++ui) {
    if (matched[ui]) continue;
    const auto cands = scenario.candidates(UeId{static_cast<std::uint32_t>(ui)});
    b_u[ui].assign(cands.begin(), cands.end());
    if (b_u[ui].empty()) at_cloud[ui] = true;
  }

  const std::size_t round_limit = config.max_rounds > 0 ? config.max_rounds : nu + 1;

  for (std::size_t round = 0; round < round_limit; ++round) {
    // --- UE proposal phase: everything is evaluated against the state at
    // the start of the round, exactly like the broadcast view a
    // decentralized UE would hold.
    std::map<BsId, std::vector<ProposalInfo>> proposals;
    std::size_t sent_this_round = 0;
    for (std::size_t ui = 0; ui < nu; ++ui) {
      if (matched[ui] || at_cloud[ui]) continue;
      const UeId u{static_cast<std::uint32_t>(ui)};
      const auto choice = choose_proposal(scenario, view, u, b_u[ui], config.rho);
      if (!choice) {
        at_cloud[ui] = true;  // Alg. 1: B_u exhausted → remote cloud
        continue;
      }
      proposals[*choice].push_back(
          ProposalInfo{u, live_coverage_count(scenario, view, u)});
      ++sent_this_round;
    }
    if (sent_this_round == 0) break;
    result.proposals_sent += sent_this_round;
    ++result.rounds;

    // --- BS acceptance phase: each BS decides from its own local
    // resources only, then commits.
    std::size_t accepted_this_round = 0;
    for (auto& [bs, props] : proposals) {
      BsLocalResources local;
      local.crus.resize(scenario.num_services());
      for (std::size_t j = 0; j < scenario.num_services(); ++j)
        local.crus[j] = state.remaining_crus(bs, ServiceId{static_cast<std::uint32_t>(j)});
      local.rrbs = state.remaining_rrbs(bs);

      const std::vector<UeId> accepted = bs_select(scenario, bs, props, local, config);
      for (UeId u : accepted) {
        state.commit(u, bs);
        allocation.assign(u, bs);
        matched[u.idx()] = true;
        ++accepted_this_round;
      }
      if (config.drop_rejected) {
        for (const ProposalInfo& p : props) {
          if (std::binary_search(accepted.begin(), accepted.end(), p.ue)) continue;
          auto& list = b_u[p.ue.idx()];
          std::erase(list, bs);
        }
      }
    }
    result.rejections += sent_this_round - accepted_this_round;
    if (DMRA_AUDIT_ACTIVE())
      audit::report_state_round("core/solver", result.rounds - 1, scenario, allocation,
                                state);
    DMRA_DEBUG("dmra round " << result.rounds << ": " << sent_this_round << " proposals, "
                             << accepted_this_round << " accepted");
  }

  result.allocation = allocation;
  return result;
}

DmraResult solve_dmra(const Scenario& scenario, const DmraConfig& config) {
  ResourceState state(scenario);
  Allocation allocation(scenario.num_ues());
  std::vector<bool> matched(scenario.num_ues(), false);
  return solve_dmra_partial(scenario, config, state, allocation, matched);
}

}  // namespace dmra
