#include "core/solver.hpp"

#include <algorithm>
#include <span>

#include "mec/audit.hpp"
#include "mec/resources.hpp"
#include "obs/recorder.hpp"
#include "util/log.hpp"
#include "util/require.hpp"

namespace dmra {

namespace {

/// Traced runs only: total remaining CRU/RRB capacity across the ledger,
/// reported per round as headroom gauges in the round CSV.
void sum_headroom(const Scenario& scenario, const ResourceState& state,
                  std::uint64_t& crus, std::uint64_t& rrbs) {
  crus = 0;
  rrbs = 0;
  for (const BaseStation& b : scenario.bss()) {
    for (std::size_t j = 0; j < scenario.num_services(); ++j)
      crus += state.remaining_crus(b.id, ServiceId{static_cast<std::uint32_t>(j)});
    rrbs += state.remaining_rrbs(b.id);
  }
}

}  // namespace

DmraResult solve_dmra_partial(const Scenario& scenario, const DmraConfig& config,
                              ResourceState& state, Allocation& allocation,
                              std::vector<bool>& matched) {
  DMRA_REQUIRE(config.rho >= 0.0);
  DMRA_REQUIRE(allocation.num_ues() == scenario.num_ues());
  DMRA_REQUIRE(matched.size() == scenario.num_ues());

  DmraResult result;
  result.allocation = Allocation(0);  // filled at the end

  // Tracing: a single pointer test when disabled. traced_profit seeds from
  // the carried-over allocation so incremental re-solves report the true
  // cumulative figure, not just this call's delta.
  obs::TraceRecorder* const rec = obs::recorder();
  double traced_profit = 0.0;
  if (rec != nullptr) {
    rec->take_tally();  // drop any tally left by a previous producer
    traced_profit = total_profit(scenario, allocation);
  }

  // The proposal pass reads the ledger directly (no virtual ResourceView
  // hop): remaining CRUs of the proposer's service plus remaining RRBs,
  // per candidate slot.
  const std::size_t nu = scenario.num_ues();
  LiveCandidates b_u;
  b_u.build(scenario);
  std::vector<bool> at_cloud(nu, false);
  for (std::size_t ui = 0; ui < nu; ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    if (!matched[ui] && b_u.empty(u)) at_cloud[ui] = true;
  }

  const std::size_t round_limit = config.max_rounds > 0 ? config.max_rounds : nu + 1;

  // Per-round scratch, hoisted out of the round loop so every buffer
  // settles at its high-water capacity: the flat proposal log (UE order),
  // its counting-sort grouping by BS — scanning groups in BS index order
  // reproduces the former std::map<BsId, ...> iteration order exactly —
  // and the bs_select workspace.
  const std::size_t nb = scenario.num_bss();
  const std::size_t ns = scenario.num_services();
  std::vector<std::uint32_t> prop_bs;      // proposal m went to this BS
  std::vector<ProposalInfo> prop_info;     // …carrying this (ue, f_u)
  std::vector<ProposalInfo> grouped;       // proposals regrouped by BS
  std::vector<std::uint32_t> group_count;  // per-BS counts, then cursors
  std::vector<std::size_t> group_begin;    // per-BS group offsets (nb + 1)
  prop_bs.reserve(nu);
  prop_info.reserve(nu);
  grouped.reserve(nu);
  group_count.reserve(nb);
  group_begin.reserve(nb + 1);
  BsLocalResources local;
  local.crus.resize(ns);
  BsSelectWorkspace ws;
  ws.reserve(ns, nu);

  bool converged = false;
  for (std::size_t round = 0; round < round_limit; ++round) {
    if (rec != nullptr) rec->set_round(round);
    // --- UE proposal phase: everything is evaluated against the state at
    // the start of the round, exactly like the broadcast view a
    // decentralized UE would hold.
    // dmra::hotpath begin(solver-propose)
    prop_bs.clear();
    prop_info.clear();
    std::size_t sent_this_round = 0;
    for (std::size_t ui = 0; ui < nu; ++ui) {
      if (matched[ui] || at_cloud[ui]) continue;
      const UeId u{static_cast<std::uint32_t>(ui)};
      const ServiceId j = scenario.ue(u).service;
      const auto view = [&state, j](std::size_t, BsId i) {
        return std::pair<std::uint32_t, std::uint32_t>{state.remaining_crus(i, j),
                                                       state.remaining_rrbs(i)};
      };
      const auto choice = choose_proposal_soa(scenario, b_u, u, config.rho, view);
      if (!choice) {
        at_cloud[ui] = true;  // Alg. 1: B_u exhausted → remote cloud
        continue;
      }
      const std::uint32_t f_u = live_coverage_count_soa(scenario, u, view);
      prop_bs.push_back(choice->value);
      prop_info.push_back(ProposalInfo{u, f_u});
      ++sent_this_round;
      if (rec != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kProposal;
        e.ue = u.value;
        e.bs = choice->value;
        e.service = scenario.ue(u).service.value;
        e.value = f_u;
        rec->record(e);
      }
    }
    // dmra::hotpath end(solver-propose)
    if (sent_this_round == 0) {
      converged = true;
      break;
    }
    result.proposals_sent += sent_this_round;
    ++result.rounds;

    // --- BS acceptance phase: each BS decides from its own local
    // resources only, then commits.
    // dmra::hotpath begin(solver-accept)
    // Stable counting sort of the proposal log by BS: groups in BS index
    // order, within-group in UE (send) order — the append order the
    // per-BS bucket vectors used to produce.
    group_count.assign(nb, 0);
    for (const std::uint32_t b : prop_bs) ++group_count[b];
    group_begin.assign(nb + 1, 0);
    for (std::size_t bi = 0; bi < nb; ++bi)
      group_begin[bi + 1] = group_begin[bi] + group_count[bi];
    if (grouped.size() < prop_info.size()) grouped.resize(prop_info.size());
    for (std::size_t bi = 0; bi < nb; ++bi)
      group_count[bi] = static_cast<std::uint32_t>(group_begin[bi]);
    for (std::size_t m = 0; m < prop_info.size(); ++m)
      grouped[group_count[prop_bs[m]]++] = prop_info[m];

    std::size_t accepted_this_round = 0;
    for (std::size_t bi = 0; bi < nb; ++bi) {
      const std::span<const ProposalInfo> props{grouped.data() + group_begin[bi],
                                                group_begin[bi + 1] - group_begin[bi]};
      if (props.empty()) continue;
      const BsId bs{static_cast<std::uint32_t>(bi)};
      for (std::size_t j = 0; j < ns; ++j)
        local.crus[j] = state.remaining_crus(bs, ServiceId{static_cast<std::uint32_t>(j)});
      local.rrbs = state.remaining_rrbs(bs);

      const auto& accepted = bs_select(scenario, bs, props, local, ws, config);
      for (UeId u : accepted) {
        state.commit(u, bs);
        allocation.assign(u, bs);
        matched[u.idx()] = true;
        ++accepted_this_round;
        if (rec != nullptr) traced_profit += scenario.pair_profit(u, bs);
      }
      if (config.drop_rejected) {
        for (const ProposalInfo& p : props) {
          if (std::binary_search(accepted.begin(), accepted.end(), p.ue)) continue;
          b_u.erase_bs(scenario, p.ue, bs);
        }
      }
    }
    // dmra::hotpath end(solver-accept)
    result.rejections += sent_this_round - accepted_this_round;
    if (DMRA_AUDIT_ACTIVE())
      audit::report_state_round("core/solver", result.rounds - 1, scenario, allocation,
                                state);
    if (rec != nullptr) {
      const obs::EventTally tally = rec->take_tally();
      obs::RoundRow row;
      row.source = "core/solver";
      row.round = result.rounds - 1;
      row.proposals = tally.proposals;
      row.accepts = tally.accepts;
      row.rejects = tally.rejects;
      row.trim_evictions = tally.trim_evictions;
      row.broadcasts = tally.broadcasts;
      row.messages = 0;  // direct solver: no bus
      std::size_t seeking = 0;
      for (std::size_t ui = 0; ui < nu; ++ui)
        if (!matched[ui] && !at_cloud[ui]) ++seeking;
      row.unmatched_ues = seeking;
      row.cumulative_profit = traced_profit;
      sum_headroom(scenario, state, row.cru_headroom, row.rrb_headroom);
      rec->finish_round(row);
    }
    DMRA_DEBUG("dmra round " << result.rounds << ": " << sent_this_round << " proposals, "
                             << accepted_this_round << " accepted");
  }

  if (rec != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kTermination;
    e.flag = converged;
    e.value = result.rounds;
    e.label = "core/solver";
    rec->record(e);
  }

  result.allocation = allocation;
  return result;
}

DmraResult solve_dmra(const Scenario& scenario, const DmraConfig& config) {
  ResourceState state(scenario);
  Allocation allocation(scenario.num_ues());
  std::vector<bool> matched(scenario.num_ues(), false);
  return solve_dmra_partial(scenario, config, state, allocation, matched);
}

}  // namespace dmra
