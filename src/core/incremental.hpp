// Incremental DMRA re-allocation — the paper's "continuously adjust the
// resource allocation scheme" (§V/§VII) made operational.
//
// Full re-runs treat every step as a fresh problem and churn the
// association (bench abl7). Incremental re-allocation instead:
//   1. keeps every previous assignment that is still valid in the new
//      scenario (UE still covered, BS still able to carry it),
//   2. optionally releases kept UEs whose current BS has become much
//      worse than their best alternative (price gap > hysteresis margin),
//   3. runs the DMRA matching only over the displaced/new UEs against the
//      remaining capacity.
// Result: the same matching logic, a fraction of the handovers.
#pragma once

#include "core/solver.hpp"
#include "mec/allocation.hpp"

namespace dmra {

/// Tuning for the keep/release/re-match split.
struct IncrementalConfig {
  /// Matching parameters for the partial re-run (step 3). The same config
  /// shape the full solver and the decentralized runtime take, so sweeps
  /// can share one DmraConfig across all three entry points.
  DmraConfig dmra;
  /// A kept UE is released for re-matching only if its current price
  /// exceeds its best candidate's price by more than this margin (per
  /// CRU). infinity-like large values mean "never switch voluntarily";
  /// 0 re-evaluates everyone whose BS is no longer their best.
  double hysteresis_margin = 1e18;
};

/// Outcome of one incremental step, with the churn budget itemized:
/// kept + released + invalidated + (new UEs) partitions the population.
struct IncrementalResult {
  Allocation allocation{0};    ///< the full new allocation (every UE)
  std::size_t kept = 0;        ///< assignments carried over unchanged
  std::size_t released = 0;    ///< kept-capable but released by hysteresis
  std::size_t invalidated = 0; ///< previous assignments no longer feasible
  /// The partial DMRA run over displaced UEs (solve_dmra_partial):
  /// rematch.rounds / proposals_sent / rejections measure only the
  /// incremental work, which is the point of the comparison in abl7.
  DmraResult rematch;
};

/// Re-allocate `scenario` starting from `previous` (same UE ids; typically
/// the same population at new positions). Deterministic for a fixed
/// (scenario, previous, config) triple. `previous` may come from any
/// allocator — the validity check in step 1 only asks whether the old
/// assignment is feasible in the new scenario, not how it was produced.
/// The same solve_dmra_partial building block also backs the
/// fault-recovery repair pass in core/decentralized.cpp.
IncrementalResult solve_incremental_dmra(const Scenario& scenario,
                                         const Allocation& previous,
                                         const IncrementalConfig& config = {});

}  // namespace dmra
