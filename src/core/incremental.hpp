// Incremental DMRA re-allocation — the paper's "continuously adjust the
// resource allocation scheme" (§V/§VII) made operational.
//
// Full re-runs treat every step as a fresh problem and churn the
// association (bench abl7). Incremental re-allocation instead:
//   1. keeps every previous assignment that is still valid in the new
//      scenario (UE still covered, BS still able to carry it),
//   2. optionally releases kept UEs whose current BS has become much
//      worse than their best alternative (price gap > hysteresis margin),
//   3. runs the DMRA matching only over the displaced/new UEs against the
//      remaining capacity.
// Result: the same matching logic, a fraction of the handovers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/solver.hpp"
#include "mec/allocation.hpp"
#include "mec/resources.hpp"

namespace dmra {

/// Tuning for the keep/release/re-match split.
struct IncrementalConfig {
  /// Matching parameters for the partial re-run (step 3). The same config
  /// shape the full solver and the decentralized runtime take, so sweeps
  /// can share one DmraConfig across all three entry points.
  DmraConfig dmra;
  /// A kept UE is released for re-matching only if its current price
  /// exceeds its best candidate's price by more than this margin (per
  /// CRU). infinity-like large values mean "never switch voluntarily";
  /// 0 re-evaluates everyone whose BS is no longer their best.
  double hysteresis_margin = 1e18;
};

/// Outcome of one incremental step, with the churn budget itemized:
/// kept + released + invalidated + (new UEs) partitions the population.
struct IncrementalResult {
  Allocation allocation{0};    ///< the full new allocation (every UE)
  std::size_t kept = 0;        ///< assignments carried over unchanged
  std::size_t released = 0;    ///< kept-capable but released by hysteresis
  std::size_t invalidated = 0; ///< previous assignments no longer feasible
  /// The partial DMRA run over displaced UEs (solve_dmra_partial):
  /// rematch.rounds / proposals_sent / rejections measure only the
  /// incremental work, which is the point of the comparison in abl7.
  DmraResult rematch;
};

/// Re-allocate `scenario` starting from `previous` (same UE ids; typically
/// the same population at new positions). Deterministic for a fixed
/// (scenario, previous, config) triple. `previous` may come from any
/// allocator — the validity check in step 1 only asks whether the old
/// assignment is feasible in the new scenario, not how it was produced.
/// The same solve_dmra_partial building block also backs the
/// fault-recovery repair pass in core/decentralized.cpp.
IncrementalResult solve_incremental_dmra(const Scenario& scenario,
                                         const Allocation& previous,
                                         const IncrementalConfig& config = {});

/// A persistent allocator process over one (immutable) scenario: the
/// explicit remove/re-admit surface the serving driver (sim/churn.hpp)
/// feeds one event at a time, instead of batch rebuilds.
///
/// The scenario is treated as a *slot universe*: every UE id is a slot
/// that may be admitted (active, holding resources or cloud-forwarded)
/// or removed (inactive, holding nothing). An inactive slot is
/// indistinguishable from a cloud slot in the Allocation (both are
/// cloud/-1 and contribute zero profit), so check_feasibility and the
/// InvariantAuditor apply unchanged; activity is tracked here.
///
/// admit() is Alg. 1 specialized to a single proposer: the UE proposes to
/// its arg-min preference candidate (Eq. 17 against the live ledger) and
/// an uncontended BS accepts any feasible proposal, so one proposal round
/// decides — provably the same outcome solve_dmra_partial computes for
/// one unmatched UE (pinned by tests/core/incremental_test.cpp), at
/// O(|candidates(u)|) per decision instead of O(|U|).
///
/// Fault surface (event-timeline injection, docs/RESILIENCE.md): crash
/// and degradation clamp the live ledger below nominal capacity via
/// ResourceState::clamp_remaining; recover_bs restores it with a
/// recount_remaining. While any clamp is active the ledger legitimately
/// disagrees with a from-scratch recount, so audit_round() mutes itself —
/// the same "repair under muted auditor" rule the decentralized runtime
/// follows — and reports again once capacity_nominal() returns true.
class IncrementalAllocator {
 public:
  explicit IncrementalAllocator(const Scenario& scenario, IncrementalConfig config = {});

  /// Admit inactive slot u. Returns the serving BS, or nullopt when no
  /// candidate can carry it (cloud-forwarded, still active).
  std::optional<BsId> admit(UeId u);

  /// Retry placement for an *active, cloud-forwarded* slot — the readmit
  /// sweep and crash-recovery drain of sim/churn: capacity may have freed
  /// or recovered since the slot was last decided. Same decision rule as
  /// admit(); returns the BS if it now fits, nullopt to stay at the cloud.
  std::optional<BsId> reattempt(UeId u);

  /// Remove active slot u, releasing its resources (departure).
  void remove(UeId u);

  bool active(UeId u) const { return active_[u.idx()]; }
  std::size_t num_active() const { return num_active_; }

  /// Crash BS i: remaining capacity clamps to zero and every UE it serves
  /// is evicted to the cloud (still active — the caller re-admits them).
  /// Evicted UE ids are appended to `orphans` in ascending order.
  /// Returns the eviction count.
  std::size_t crash_bs(BsId i, std::vector<UeId>& orphans);

  /// Recover BS i cold: nominal capacity minus current commitments
  /// (none right after a crash; partial after a degradation recovery).
  void recover_bs(BsId i);

  /// Scale BS i's *remaining* capacity by the given factors (floor),
  /// FaultPlan::CapacityDegradation semantics: admitted UEs keep service.
  void degrade_bs(BsId i, double cru_factor, double rrb_factor);

  /// True iff no crash/degradation clamp is in effect anywhere.
  bool capacity_nominal() const { return clamped_bss_ == 0; }

  /// Report the live ledger + allocation at the audit seam (round 0 =
  /// stateless: feasibility + ledger recount, no monotone-profit chain —
  /// departures lower profit by design). No-op while a clamp is active
  /// or when auditing is disabled.
  void audit_round(std::size_t round) const;

  const Allocation& allocation() const { return allocation_; }
  const ResourceState& state() const { return state_; }
  const Scenario& scenario() const { return *scenario_; }

  /// Eq. 11 profit of the current allocation, maintained incrementally
  /// (Σ pair_profit over served slots — cross-checked against
  /// total_profit() by tests).
  double live_profit() const { return live_profit_; }

 private:
  /// The shared single-proposer decision: arg-min Eq. 17 over serviceable
  /// candidates, commit on success, cloud otherwise.
  std::optional<BsId> place(UeId u);

  const Scenario* scenario_;
  IncrementalConfig config_;
  ResourceState state_;
  Allocation allocation_;
  std::vector<bool> active_;
  std::vector<bool> clamped_;  ///< per BS: capacity currently clamped
  std::size_t num_active_ = 0;
  std::size_t clamped_bss_ = 0;
  double live_profit_ = 0.0;
};

}  // namespace dmra
