// Incremental DMRA re-allocation — the paper's "continuously adjust the
// resource allocation scheme" (§V/§VII) made operational.
//
// Full re-runs treat every step as a fresh problem and churn the
// association (bench abl7). Incremental re-allocation instead:
//   1. keeps every previous assignment that is still valid in the new
//      scenario (UE still covered, BS still able to carry it),
//   2. optionally releases kept UEs whose current BS has become much
//      worse than their best alternative (price gap > hysteresis margin),
//   3. runs the DMRA matching only over the displaced/new UEs against the
//      remaining capacity.
// Result: the same matching logic, a fraction of the handovers.
#pragma once

#include "core/solver.hpp"
#include "mec/allocation.hpp"

namespace dmra {

struct IncrementalConfig {
  DmraConfig dmra;
  /// A kept UE is released for re-matching only if its current price
  /// exceeds its best candidate's price by more than this margin (per
  /// CRU). infinity-like large values mean "never switch voluntarily";
  /// 0 re-evaluates everyone whose BS is no longer their best.
  double hysteresis_margin = 1e18;
};

struct IncrementalResult {
  Allocation allocation{0};
  std::size_t kept = 0;        ///< assignments carried over unchanged
  std::size_t released = 0;    ///< kept-capable but released by hysteresis
  std::size_t invalidated = 0; ///< previous assignments no longer feasible
  DmraResult rematch;          ///< the partial DMRA run over displaced UEs
};

/// Re-allocate `scenario` starting from `previous` (same UE ids; typically
/// the same population at new positions). Deterministic.
IncrementalResult solve_incremental_dmra(const Scenario& scenario,
                                         const Allocation& previous,
                                         const IncrementalConfig& config = {});

}  // namespace dmra
