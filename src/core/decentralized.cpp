#include "core/decentralized.hpp"

#include <algorithm>
#include <variant>

#include "mec/audit.hpp"
#include "net/bus.hpp"
#include "obs/recorder.hpp"
#include "util/require.hpp"

namespace dmra {

namespace {

// ---- Resource snapshots ----------------------------------------------------

/// Append-only store of the resource levels BSs have broadcast. A
/// broadcast publishes ONE snapshot and fans out a {BsId, index} message
/// to every covered UE, so the per-round messaging cost is O(audience)
/// trivially-copyable envelopes instead of O(audience) heap-allocated
/// CRU vectors. Indices are monotonically increasing, so they double as
/// the epoch stamp: a UE slot holding a larger index is strictly newer.
class SnapshotArena {
 public:
  explicit SnapshotArena(std::size_t num_services) : stride_(num_services) {}

  std::uint32_t publish(const BsLocalResources& r) {
    crus_.insert(crus_.end(), r.crus.begin(), r.crus.end());
    rrbs_.push_back(r.rrbs);
    return static_cast<std::uint32_t>(rrbs_.size() - 1);
  }

  std::uint32_t crus(std::uint32_t snapshot, std::size_t service) const {
    return crus_[snapshot * stride_ + service];
  }
  std::uint32_t rrbs(std::uint32_t snapshot) const { return rrbs_[snapshot]; }

 private:
  std::size_t stride_;
  std::vector<std::uint32_t> crus_;  // stride_ words per snapshot
  std::vector<std::uint32_t> rrbs_;
};

// ---- Message types -------------------------------------------------------

/// UE → its SP: "propose on my behalf to BS `target`".
struct MsgOffloadRequest {
  UeId ue;
  BsId target;
  std::uint32_t f_u;
};

/// SP → BS: relayed proposal.
struct MsgPropose {
  UeId ue;
  std::uint32_t f_u;
};

/// BS → SP → UE: outcome of a proposal.
struct MsgDecision {
  UeId ue;
  BsId bs;
  bool accept;
};

/// BS → covered UEs: remaining resources after this round, as an index
/// into the snapshot arena the BS published at send time.
struct MsgResourceUpdate {
  BsId bs;
  std::uint32_t snapshot;
};

using Payload = std::variant<MsgOffloadRequest, MsgPropose, MsgDecision, MsgResourceUpdate>;
using Bus = MessageBus<Payload>;

// ---- Agents ---------------------------------------------------------------

/// ResourceView over whatever the BSs last broadcast to this UE, stored
/// as one snapshot index per candidate BS (flat array parallel to the
/// UE's sorted candidate list — no per-UE hash map). For a candidate
/// never heard from (possible only on a lossy network — the reliable
/// bootstrap covers everyone), the UE falls back to the BS's static
/// capacity: an optimistic prior it is allowed to hold, and the safe
/// one — a pessimistic prior would make choose_proposal erase a live
/// candidate permanently.
class BroadcastView final : public ResourceView {
 public:
  void attach(const Scenario& scenario, UeId ue, const SnapshotArena& arena) {
    scenario_ = &scenario;
    arena_ = &arena;
    cands_ = scenario.candidates(ue);
    slots_.assign(cands_.size(), kUnknown);
  }

  std::uint32_t remaining_crus(BsId i, ServiceId j) const override {
    DMRA_REQUIRE(scenario_ != nullptr);
    const std::uint32_t snapshot = slot(i);
    if (snapshot == kUnknown) return scenario_->bs(i).cru_capacity[j.idx()];
    return arena_->crus(snapshot, j.idx());
  }
  std::uint32_t remaining_rrbs(BsId i) const override {
    DMRA_REQUIRE(scenario_ != nullptr);
    const std::uint32_t snapshot = slot(i);
    if (snapshot == kUnknown) return scenario_->bs(i).num_rrbs;
    return arena_->rrbs(snapshot);
  }
  void update(BsId i, std::uint32_t snapshot) {
    const auto it = std::lower_bound(cands_.begin(), cands_.end(), i);
    // Broadcasts from covering-but-non-candidate BSs carry no information
    // this UE will ever query; the proposal logic only reads candidates.
    if (it == cands_.end() || *it != i) return;
    slots_[static_cast<std::size_t>(it - cands_.begin())] = snapshot;
  }

 private:
  static constexpr std::uint32_t kUnknown = 0xffffffffu;

  std::uint32_t slot(BsId i) const {
    const auto it = std::lower_bound(cands_.begin(), cands_.end(), i);
    if (it == cands_.end() || *it != i) return kUnknown;
    return slots_[static_cast<std::size_t>(it - cands_.begin())];
  }

  const Scenario* scenario_ = nullptr;
  const SnapshotArena* arena_ = nullptr;
  std::span<const BsId> cands_;
  std::vector<std::uint32_t> slots_;
};

struct UeAgent {
  UeId ue;
  AgentId address;
  AgentId sp_address;
  std::vector<BsId> b_u;
  BroadcastView view;
  bool matched = false;
  bool at_cloud = false;
};

struct SpAgent {
  SpId sp;
  AgentId address;
};

struct BsAgent {
  BsId bs;
  AgentId address;
  BsLocalResources resources;
  std::vector<AgentId> covered_ues;  // broadcast audience
  /// UEs this BS has already admitted — on a lossy network an accept can
  /// be lost and the UE re-proposes; re-ack without committing twice.
  std::vector<bool> admitted;
};

}  // namespace

DecentralizedResult run_decentralized_dmra(const Scenario& scenario,
                                           const DmraConfig& config,
                                           const NetworkConditions& net) {
  DMRA_REQUIRE(config.rho >= 0.0);
  const bool lossy = net.drop_probability > 0.0;

  Bus bus;
  if (lossy) bus.set_loss(net.drop_probability, net.seed);
  const std::size_t nu = scenario.num_ues();
  const std::size_t nb = scenario.num_bss();
  const std::size_t nk = scenario.num_sps();

  SnapshotArena arena(scenario.num_services());
  std::vector<UeAgent> ue_agents(nu);
  std::vector<SpAgent> sp_agents(nk);
  std::vector<BsAgent> bs_agents(nb);

  for (std::size_t k = 0; k < nk; ++k) {
    sp_agents[k].sp = SpId{static_cast<std::uint32_t>(k)};
    sp_agents[k].address = bus.register_agent();
  }
  for (std::size_t ui = 0; ui < nu; ++ui) {
    UeAgent& a = ue_agents[ui];
    a.ue = UeId{static_cast<std::uint32_t>(ui)};
    a.address = bus.register_agent();
    a.sp_address = sp_agents[scenario.ue(a.ue).sp.idx()].address;
    a.view.attach(scenario, a.ue, arena);
    const auto cands = scenario.candidates(a.ue);
    a.b_u.assign(cands.begin(), cands.end());
    if (a.b_u.empty()) a.at_cloud = true;
  }
  for (std::size_t bi = 0; bi < nb; ++bi) {
    BsAgent& a = bs_agents[bi];
    a.bs = BsId{static_cast<std::uint32_t>(bi)};
    a.address = bus.register_agent();
    const BaseStation& b = scenario.bs(a.bs);
    a.resources.crus = b.cru_capacity;
    a.resources.rrbs = b.num_rrbs;
    a.admitted.assign(nu, false);
    for (const UeAgent& u : ue_agents)
      if (scenario.link(u.ue, a.bs).in_coverage) a.covered_ues.push_back(u.address);
  }

  DecentralizedResult result;
  result.dmra.allocation = Allocation(nu);

  // Tracing: a single pointer test when disabled; everything else hides
  // behind it. traced_profit mirrors the BSs' cumulative admissions.
  obs::TraceRecorder* const rec = obs::recorder();
  double traced_profit = 0.0;
  if (rec != nullptr) {
    rec->take_tally();  // drop any tally left by a previous producer
    rec->set_round(0);
    obs::TraceEvent e;
    e.kind = obs::EventKind::kPhase;
    e.label = "core/decentralized:bootstrap";
    e.value = nb;
    rec->record(e);
  }

  // ---- Bootstrap: every BS broadcasts its initial resource levels so UEs
  // have a complete view of their candidates before the first proposal.
  for (BsAgent& b : bs_agents) {
    const std::uint32_t snapshot = arena.publish(b.resources);
    for (AgentId ue_addr : b.covered_ues)
      bus.send(b.address, ue_addr, MsgResourceUpdate{b.bs, snapshot});
    if (rec != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kBroadcast;
      e.bs = b.bs.value;
      e.value = b.covered_ues.size();
      rec->record(e);
    }
  }
  bus.deliver();

  // On a lossy network a round can lose every proposal it carried, so the
  // |U|+1 bound no longer holds exactly; give retries headroom.
  const std::size_t round_limit =
      config.max_rounds > 0 ? config.max_rounds : (lossy ? 2 * nu + 16 : nu + 1);

  bool converged = false;
  for (std::size_t round = 0; round < round_limit; ++round) {
    const std::uint64_t msgs_before = bus.stats().messages_sent;
    if (rec != nullptr) rec->set_round(round);
    // ---- UE phase: ingest broadcasts & decisions, then propose.
    std::size_t sent_this_round = 0;
    for (UeAgent& a : ue_agents) {
      for (auto& env : bus.take_inbox(a.address)) {
        if (auto* upd = std::get_if<MsgResourceUpdate>(&env.payload)) {
          a.view.update(upd->bs, upd->snapshot);
        } else if (auto* dec = std::get_if<MsgDecision>(&env.payload)) {
          if (dec->accept) {
            a.matched = true;
          } else if (config.drop_rejected) {
            std::erase(a.b_u, dec->bs);  // move down the list, GS-style
          }
        }
      }
      if (a.matched || a.at_cloud) continue;
      const auto choice = choose_proposal(scenario, a.view, a.ue, a.b_u, config.rho);
      if (!choice) {
        a.at_cloud = true;
        continue;
      }
      const auto f_u = live_coverage_count(scenario, a.view, a.ue);
      bus.send(a.address, a.sp_address, MsgOffloadRequest{a.ue, *choice, f_u});
      ++sent_this_round;
      if (rec != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kProposal;
        e.ue = a.ue.value;
        e.bs = choice->value;
        e.service = scenario.ue(a.ue).service.value;
        e.value = f_u;
        rec->record(e);
      }
    }
    bus.deliver();
    if (sent_this_round == 0) {
      converged = true;
      break;
    }
    result.dmra.proposals_sent += sent_this_round;
    ++result.dmra.rounds;

    // ---- SP relay phase (up): forward offload requests to the BSs.
    for (SpAgent& sp : sp_agents) {
      for (auto& env : bus.take_inbox(sp.address)) {
        const auto& req = std::get<MsgOffloadRequest>(env.payload);
        bus.send(sp.address, bs_agents[req.target.idx()].address,
                 MsgPropose{req.ue, req.f_u});
      }
    }
    bus.deliver();

    // ---- BS phase: select, commit locally, reply, broadcast.
    std::size_t accepted_this_round = 0;
    for (BsAgent& b : bs_agents) {
      std::vector<ProposalInfo> fresh;
      std::vector<UeId> reacks;
      for (auto& env : bus.take_inbox(b.address)) {
        const auto& p = std::get<MsgPropose>(env.payload);
        // A UE this BS already admitted can only re-propose because the
        // accept got lost: re-ack idempotently, never commit twice.
        if (b.admitted[p.ue.idx()]) {
          reacks.push_back(p.ue);
        } else {
          fresh.push_back(ProposalInfo{p.ue, p.f_u});
        }
      }
      if (fresh.empty() && reacks.empty() && !lossy) continue;

      std::vector<UeId> accepted;
      if (!fresh.empty()) accepted = bs_select(scenario, b.bs, fresh, b.resources, config);

      for (UeId u : accepted) {
        const UserEquipment& e = scenario.ue(u);
        const LinkStats& l = scenario.link(u, b.bs);
        DMRA_REQUIRE(b.resources.crus[e.service.idx()] >= e.cru_demand);
        DMRA_REQUIRE(b.resources.rrbs >= l.n_rrbs);
        b.resources.crus[e.service.idx()] -= e.cru_demand;
        b.resources.rrbs -= l.n_rrbs;
        result.dmra.allocation.assign(u, b.bs);
        b.admitted[u.idx()] = true;
        ++accepted_this_round;
        if (rec != nullptr) traced_profit += scenario.pair_profit(u, b.bs);
      }

      // Reply to every proposer through its SP.
      for (const ProposalInfo& p : fresh) {
        const bool ok =
            std::binary_search(accepted.begin(), accepted.end(), p.ue);
        const AgentId sp_addr = sp_agents[scenario.ue(p.ue).sp.idx()].address;
        bus.send(b.address, sp_addr, MsgDecision{p.ue, b.bs, ok});
      }
      for (UeId u : reacks) {
        const AgentId sp_addr = sp_agents[scenario.ue(u).sp.idx()].address;
        bus.send(b.address, sp_addr, MsgDecision{u, b.bs, true});
      }
      // Broadcast the new resource levels to everyone in coverage; on a
      // lossy network, rebroadcast every round so dropped updates heal.
      if (!fresh.empty() || !reacks.empty() || lossy) {
        const std::uint32_t snapshot = arena.publish(b.resources);
        for (AgentId ue_addr : b.covered_ues)
          bus.send(b.address, ue_addr, MsgResourceUpdate{b.bs, snapshot});
        if (rec != nullptr) {
          obs::TraceEvent e;
          e.kind = obs::EventKind::kBroadcast;
          e.bs = b.bs.value;
          e.value = b.covered_ues.size();
          rec->record(e);
        }
      }
    }
    bus.deliver();
    result.dmra.rejections += sent_this_round - accepted_this_round;

    // Cross-check every BS agent's local ledger against a from-scratch
    // recount of the partial allocation (the agents never see each other's
    // state, so on a reliable bus drift here means a protocol bug). On a
    // lossy bus a BS rightfully holds resources for accepts the UE never
    // received until rebroadcasts heal it, and a re-proposing UE can land
    // on a worse BS, so mid-run only partial feasibility is an invariant:
    // skip the ledger snapshot and the cross-round profit chain.
    if (DMRA_AUDIT_ACTIVE()) {
      audit::RoundContext ctx;
      ctx.scenario = &scenario;
      ctx.allocation = &result.dmra.allocation;
      if (!lossy) {
        ctx.ledger = audit::snapshot_ledger(
            scenario,
            [&](BsId i, ServiceId j) { return bs_agents[i.idx()].resources.crus[j.idx()]; },
            [&](BsId i) { return bs_agents[i.idx()].resources.rrbs; });
      }
      ctx.round = lossy ? 0 : result.dmra.rounds - 1;
      ctx.source = lossy ? "core/decentralized-lossy" : "core/decentralized";
      audit::observer()->on_round(ctx);
    }

    // ---- SP relay phase (down): forward decisions to the UEs.
    for (SpAgent& sp : sp_agents) {
      for (auto& env : bus.take_inbox(sp.address)) {
        const auto& dec = std::get<MsgDecision>(env.payload);
        bus.send(sp.address, ue_agents[dec.ue.idx()].address, dec);
      }
    }
    bus.deliver();

    if (rec != nullptr) {
      const obs::EventTally tally = rec->take_tally();
      obs::RoundRow row;
      row.source = "core/decentralized";
      row.round = result.dmra.rounds - 1;
      row.proposals = tally.proposals;
      row.accepts = tally.accepts;
      row.rejects = tally.rejects;
      row.trim_evictions = tally.trim_evictions;
      row.broadcasts = tally.broadcasts;
      row.messages = bus.stats().messages_sent - msgs_before;
      // "Unmatched" = admitted nowhere and not yet given up. The BS-side
      // allocation is authoritative; at_cloud flags lag one round (UEs
      // learn outcomes at the next ingest), which is exactly the view a
      // round-close observer of the protocol would have.
      std::size_t at_cloud_count = 0;
      for (const UeAgent& a : ue_agents)
        if (a.at_cloud) ++at_cloud_count;
      row.unmatched_ues = nu - result.dmra.allocation.num_served() - at_cloud_count;
      row.cumulative_profit = traced_profit;
      for (const BsAgent& b : bs_agents) {
        for (const std::uint32_t c : b.resources.crus) row.cru_headroom += c;
        row.rrb_headroom += b.resources.rrbs;
      }
      rec->finish_round(row);
    }
  }

  result.bus = bus.stats();
  if (rec != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kTermination;
    e.flag = converged;
    e.value = result.dmra.rounds;
    e.label = "core/decentralized";
    rec->record(e);
    obs::publish_bus_stats(result.bus, rec->metrics());
  }
  return result;
}

}  // namespace dmra
