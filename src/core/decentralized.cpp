#include "core/decentralized.hpp"

#include <algorithm>
#include <span>
#include <variant>

#include "core/runtime_detail.hpp"
#include "mec/audit.hpp"
#include "mec/resources.hpp"
#include "net/bus.hpp"
#include "obs/flight.hpp"
#include "obs/recorder.hpp"
#include "util/alloc_hook.hpp"
#include "util/require.hpp"

namespace dmra {

namespace {

using runtime_detail::Bus;
using runtime_detail::MsgDecision;
using runtime_detail::MsgOffloadRequest;
using runtime_detail::MsgPropose;
using runtime_detail::MsgResourceUpdate;
using runtime_detail::SnapshotRing;
using runtime_detail::stable_sort_by_ue;

// ---- Agents ---------------------------------------------------------------

// A UE's view of its candidates' remaining resources lives in two flat
// run-level arrays (one CRU word — the UE's own service — and one RRB
// word per candidate slot, indexed by Scenario::candidate_offset). They
// are prefilled with the BSs' static capacities — the optimistic prior a
// UE is allowed to hold for a candidate it has not heard from (possible
// only on a lossy network; the reliable bootstrap covers everyone), and
// the safe one: a pessimistic prior would make choose_proposal erase a
// live candidate permanently. Broadcast ingest overwrites the slot with
// the ring values in arrival order, which is exactly the last-write-wins
// the old lazily-dereferenced per-UE snapshot view computed.

struct UeAgent {
  UeId ue;
  AgentId address;
  AgentId sp_address;
  bool matched = false;
  bool at_cloud = false;

  // Fault-mode bookkeeping, all inert unless a FaultPlan injects faults.
  BsId last_target{};            ///< BS of the most recent proposal
  bool awaiting = false;         ///< proposal outstanding, no decision heard
  std::uint32_t unanswered = 0;  ///< consecutive silent round trips to last_target
  BsId serving_bs{};             ///< BS whose accept matched us (crash suspicion)
  bool has_serving = false;
  std::uint32_t serving_silence = 0;  ///< rounds without hearing serving_bs
  bool heard_serving = false;         ///< scratch: heard from serving_bs this round
  bool needs_repair = false;  ///< orphaned by a BS crash, not yet re-placed
};

struct SpAgent {
  SpId sp;
  AgentId address;
};

struct BsAgent {
  BsId bs;
  AgentId address;
  BsLocalResources resources;
  std::vector<AgentId> covered_ues;  // broadcast audience
  /// UEs this BS has already admitted — on a lossy network an accept can
  /// be lost and the UE re-proposes; re-ack without committing twice.
  std::vector<bool> admitted;
  /// Cleared by a scheduled FaultPlan crash: a dead BS swallows its inbox,
  /// sends nothing, and its resource state is meaningless until recovery.
  bool alive = true;
};

}  // namespace

DecentralizedResult run_decentralized_dmra(const Scenario& scenario,
                                           const DmraConfig& config,
                                           const NetworkConditions& net) {
  DMRA_REQUIRE(config.rho >= 0.0);
  const bool lossy = net.drop_probability > 0.0;
  const FaultPlan* const plan = net.faults;
  const bool faulty = plan != nullptr && plan->any();
  if (faulty) {
    plan->validate(scenario.num_bss());
    DMRA_REQUIRE_MSG(net.drop_probability == 0.0,
                     "NetworkConditions::drop_probability and a FaultPlan are mutually "
                     "exclusive — put the loss rate in FaultPlan::link instead");
  }
  // "unreliable" gates every defensive behaviour shared by the legacy
  // lossy path and the fault-plan path (re-acks, rebroadcasts, relaxed
  // audits). "faulty" alone gates the recovery machinery.
  const bool unreliable = lossy || faulty;
  // Under link faults a UE's proposal can reach a BS in several
  // generations at once (the fresh send, a duplicate copy, and delayed
  // originals from up to max_delay_rounds earlier rounds); every
  // proposal-sized pool is reserved with this headroom so faulted rounds
  // stay allocation-free. Without faults the bound is one per UE.
  const std::size_t generations =
      faulty && plan->link.any()
          ? 2 + (plan->link.delay_probability > 0.0
                     ? static_cast<std::size_t>(plan->link.max_delay_rounds)
                     : 0)
          : 1;

  Bus bus;
  if (lossy) bus.set_loss(net.drop_probability, net.seed);
  if (faulty && plan->link.any()) bus.set_faults(plan->link, net.seed);
  const std::size_t nu = scenario.num_ues();
  const std::size_t nb = scenario.num_bss();
  const std::size_t nk = scenario.num_sps();

  // Ring capacity: a snapshot only has to survive from publish until the
  // broadcasts referencing it are ingested — at most a couple of protocol
  // rounds plus whatever delay faults can add, during which every live BS
  // publishes at most once per round. 8 rounds of slack is far beyond
  // that window; an eviction would trip the ring's stamp check.
  const std::size_t ring_cap = std::max<std::size_t>(
      1, nb * (8 + (faulty ? static_cast<std::size_t>(plan->link.max_delay_rounds) : 0)));
  SnapshotRing arena(scenario.num_services(), ring_cap);
  LiveCandidates b_u;
  b_u.build(scenario);
  std::vector<std::uint32_t> view_crus(scenario.num_candidate_slots());
  std::vector<std::uint32_t> view_rrbs(scenario.num_candidate_slots());
  std::vector<UeAgent> ue_agents(nu);
  std::vector<SpAgent> sp_agents(nk);
  std::vector<BsAgent> bs_agents(nb);

  for (std::size_t k = 0; k < nk; ++k) {
    sp_agents[k].sp = SpId{static_cast<std::uint32_t>(k)};
    sp_agents[k].address = bus.register_agent();
  }
  for (std::size_t ui = 0; ui < nu; ++ui) {
    UeAgent& a = ue_agents[ui];
    a.ue = UeId{static_cast<std::uint32_t>(ui)};
    a.address = bus.register_agent();
    a.sp_address = sp_agents[scenario.ue(a.ue).sp.idx()].address;
    const auto cands = scenario.candidates(a.ue);
    const std::size_t off = scenario.candidate_offset(a.ue);
    const std::size_t svc = scenario.ue(a.ue).service.idx();
    for (std::size_t c = 0; c < cands.size(); ++c) {
      const BaseStation& bsc = scenario.bs(cands[c]);
      view_crus[off + c] = bsc.cru_capacity[svc];
      view_rrbs[off + c] = bsc.num_rrbs;
    }
    if (b_u.empty(a.ue)) a.at_cloud = true;
  }
  for (std::size_t bi = 0; bi < nb; ++bi) {
    BsAgent& a = bs_agents[bi];
    a.bs = BsId{static_cast<std::uint32_t>(bi)};
    a.address = bus.register_agent();
    const BaseStation& b = scenario.bs(a.bs);
    a.resources.crus = b.cru_capacity;
    a.resources.rrbs = b.num_rrbs;
    a.admitted.assign(nu, false);
    for (const UeAgent& u : ue_agents)
      if (scenario.link(u.ue, a.bs).in_coverage) a.covered_ues.push_back(u.address);
  }

  // Warm the bus pools to the per-deliver high-water mark: the BS phase is
  // the widest (one decision per proposer — times the fault generation
  // headroom the SP relays can forward in one round — plus a broadcast
  // per covered UE), so after this the steady-state round loop never
  // grows a bus buffer. reserve() runs after set_faults() above, so it
  // also sizes the delay parking queue from the armed fault rates.
  std::size_t sum_covered = 0;
  for (const BsAgent& b : bs_agents) sum_covered += b.covered_ues.size();
  bus.reserve(2 * nu * generations + sum_covered);

  DecentralizedResult result;
  result.dmra.allocation = Allocation(nu);

  // Tracing: a single pointer test when disabled; everything else hides
  // behind it. traced_profit mirrors the BSs' cumulative admissions.
  obs::TraceRecorder* const rec = obs::recorder();
  double traced_profit = 0.0;
  if (rec != nullptr) {
    rec->take_tally();  // drop any tally left by a previous producer
    rec->set_round(0);
    obs::TraceEvent e;
    e.kind = obs::EventKind::kPhase;
    e.label = "core/decentralized:bootstrap";
    e.value = nb;
    rec->record(e);
  }
  // Flight recorder (obs/flight.hpp): always-on post-mortem channel.
  // Unlike the trace recorder it sees only the low-rate narrative —
  // faults, repairs, phases, termination — never per-proposal events, so
  // its steady-state cost is a handful of ring stores per round.
  obs::FlightRecorder* const fr = obs::flight();
  if (fr != nullptr) {
    fr->reserve_agents(nu, nb);
    fr->set_round(0);
    obs::TraceEvent e;
    e.kind = obs::EventKind::kPhase;
    e.label = "core/decentralized:bootstrap";
    e.value = nb;
    fr->record(e);
  }
  const auto record_fault = [&](obs::EventKind kind, std::string_view label,
                                std::uint32_t ue, std::uint32_t bs, std::uint64_t value) {
    if (rec == nullptr && fr == nullptr) return;
    obs::TraceEvent e;
    e.kind = kind;
    e.label = label;
    e.ue = ue;
    e.bs = bs;
    e.value = value;
    if (rec != nullptr) rec->record(e);
    if (fr != nullptr) fr->record(e);
  };

  // ---- Bootstrap: every BS broadcasts its initial resource levels so UEs
  // have a complete view of their candidates before the first proposal.
  for (BsAgent& b : bs_agents) {
    const std::uint32_t snapshot = arena.publish(b.resources);
    for (AgentId ue_addr : b.covered_ues)
      bus.send(b.address, ue_addr, MsgResourceUpdate{b.bs, snapshot});
    if (rec != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kBroadcast;
      e.bs = b.bs.value;
      e.value = b.covered_ues.size();
      rec->record(e);
    }
  }
  bus.deliver();

  // On a lossy network a round can lose every proposal it carried, so the
  // |U|+1 bound no longer holds exactly; give retries headroom. A fault
  // plan additionally needs the run to outlive its schedule (a crash at
  // round r must fire even if matching would have converged at r-1) plus
  // headroom for the recovery machinery to settle.
  const std::size_t round_limit =
      config.max_rounds > 0
          ? config.max_rounds
          : (faulty ? 2 * nu + 64 + plan->schedule_horizon()
                    : (lossy ? 2 * nu + 16 : nu + 1));

  // Under faults a quiet round (no proposals) is not proof of convergence:
  // a delayed message may still be in flight, a scheduled crash may be
  // about to orphan someone, or a suspicion countdown may be about to
  // release a silently-orphaned UE. Require enough consecutive quiet
  // rounds to outlast every countdown, an empty bus, and a spent schedule.
  const std::size_t quiet_grace =
      faulty ? std::max<std::size_t>(
                   net.recovery.suspect_after + 2,
                   plan->link.delay_probability > 0.0
                       ? static_cast<std::size_t>(plan->link.max_delay_rounds) + 1
                       : 0)
             : 0;
  const auto schedule_ahead = [&](std::size_t round) {
    for (const BsOutage& o : plan->outages) {
      if (o.crash_round > round) return true;
      if (o.recover_round != kNeverRecovers && o.recover_round > round) return true;
    }
    for (const CapacityDegradation& d : plan->degradations)
      if (d.round > round) return true;
    return false;
  };
  std::size_t quiet_rounds = 0;

  // BS-phase scratch, hoisted out of the round loop and reserved to the
  // worst case (one proposal per UE per generation — see `generations`
  // above), so per round the cost is a clear() that keeps capacity, not a
  // fresh heap allocation per BS.
  std::vector<ProposalInfo> fresh;
  std::vector<UeId> reacks;
  std::vector<ProposalInfo> sort_scratch;
  fresh.reserve(nu * generations);
  reacks.reserve(nu * generations);
  sort_scratch.reserve(nu * generations);
  BsSelectWorkspace ws;
  ws.reserve(scenario.num_services(), nu * generations);
  const std::vector<UeId> empty_accepts;

  // Heap-allocation accounting: one count() sample per round when a probe
  // is installed (perf_report, the zero-allocation test), one dead branch
  // otherwise. The first rounds warm the lazily-grown pools (trace sinks,
  // libstdc++ internals); rounds past the settle window are asserted
  // allocation-free.
  constexpr std::uint64_t kAllocSettleRounds = 2;
  const bool measuring = alloc_hook::active();
  result.alloc.measured = measuring;
  result.alloc.settle_rounds = kAllocSettleRounds;
  std::uint64_t alloc_mark = measuring ? alloc_hook::count() : 0;
  const auto sample_round = [&](std::size_t round) {
    if (!measuring) return;
    const std::uint64_t now = alloc_hook::count();
    const std::uint64_t delta = now - alloc_mark;
    alloc_mark = now;
    result.alloc.total_allocations += delta;
    if (round >= kAllocSettleRounds) result.alloc.steady_state_allocations += delta;
  };

  bool converged = false;
  for (std::size_t round = 0; round < round_limit; ++round) {
    const std::uint64_t msgs_before = bus.stats().messages_sent;
    if (rec != nullptr) rec->set_round(round);
    if (fr != nullptr) fr->set_round(round);

    // ---- Fault schedule: apply this round's crashes / recoveries /
    // degradations before anyone acts. The injector is an out-of-band
    // scheduler, not an agent: it may touch BS state and the authoritative
    // allocation, but UEs only ever learn of a fault through the protocol
    // (silence, lost decisions) — that is what is under test.
    if (faulty) {
      for (const BsOutage& o : plan->outages) {
        if (o.crash_round == round && bs_agents[o.bs.idx()].alive) {
          BsAgent& cb = bs_agents[o.bs.idx()];
          cb.alive = false;
          std::fill(cb.admitted.begin(), cb.admitted.end(), false);
          ++result.recovery.bs_crashes;
          record_fault(obs::EventKind::kFault, "bs-crash", obs::kNoId, o.bs.value, round);
          if (fr != nullptr) fr->trigger("bs-crash", round, o.bs.value);
          for (std::size_t ui = 0; ui < nu; ++ui) {
            const UeId u{static_cast<std::uint32_t>(ui)};
            const auto serving = result.dmra.allocation.bs_of(u);
            if (!serving || *serving != o.bs) continue;
            if (rec != nullptr) traced_profit -= scenario.pair_profit(u, o.bs);
            result.dmra.allocation.assign_cloud(u);
            ue_agents[ui].needs_repair = true;
            ++result.recovery.orphaned_ues;
          }
        }
        if (o.recover_round == round && !bs_agents[o.bs.idx()].alive) {
          BsAgent& rb = bs_agents[o.bs.idx()];
          rb.alive = true;
          const BaseStation& b = scenario.bs(o.bs);
          rb.resources.crus = b.cru_capacity;  // reboot with nominal capacity
          rb.resources.rrbs = b.num_rrbs;
          ++result.recovery.bs_recoveries;
          record_fault(obs::EventKind::kRepair, "bs-recover", obs::kNoId, o.bs.value,
                       round);
        }
      }
      for (const CapacityDegradation& d : plan->degradations) {
        if (d.round != round || !bs_agents[d.bs.idx()].alive) continue;
        BsLocalResources& r = bs_agents[d.bs.idx()].resources;
        for (std::uint32_t& c : r.crus)
          c = static_cast<std::uint32_t>(static_cast<double>(c) * d.cru_factor);
        r.rrbs = static_cast<std::uint32_t>(static_cast<double>(r.rrbs) * d.rrb_factor);
        ++result.recovery.capacity_degradations;
        record_fault(obs::EventKind::kFault, "bs-degrade", obs::kNoId, d.bs.value, round);
      }
    }

    // ---- UE phase: ingest broadcasts & decisions, then propose.
    std::size_t sent_this_round = 0;
    // dmra::hotpath begin(ue-propose)
    for (UeAgent& a : ue_agents) {
      a.heard_serving = false;
      const std::span<const BsId> cands = scenario.candidates(a.ue);
      const std::size_t off = scenario.candidate_offset(a.ue);
      const std::size_t svc = scenario.ue(a.ue).service.idx();
      for (auto& env : bus.take_inbox(a.address)) {
        if (auto* upd = std::get_if<MsgResourceUpdate>(&env.payload)) {
          // Broadcasts from covering-but-non-candidate BSs carry no
          // information this UE will ever query; the proposal logic only
          // reads candidate slots.
          const auto it = std::lower_bound(cands.begin(), cands.end(), upd->bs);
          if (it != cands.end() && *it == upd->bs) {
            const std::size_t slot = off + static_cast<std::size_t>(it - cands.begin());
            view_crus[slot] = arena.crus(upd->snapshot, svc);
            view_rrbs[slot] = arena.rrbs(upd->snapshot);
          }
          if (faulty && a.has_serving && upd->bs == a.serving_bs) a.heard_serving = true;
        } else if (auto* dec = std::get_if<MsgDecision>(&env.payload)) {
          if (faulty) {
            if (a.awaiting && dec->bs == a.last_target) {
              a.awaiting = false;
              a.unanswered = 0;
            }
            if (a.has_serving && dec->bs == a.serving_bs) a.heard_serving = true;
          }
          if (dec->accept) {
            a.matched = true;
            if (faulty) {
              a.serving_bs = dec->bs;
              a.has_serving = true;
              a.serving_silence = 0;
              a.heard_serving = true;
            }
          } else if (config.drop_rejected) {
            b_u.erase_bs(scenario, a.ue, dec->bs);  // move down the list, GS-style
          }
        }
      }
      // Crash suspicion: under faults every live BS rebroadcasts every
      // round, so sustained silence from the serving BS means it is down.
      // A false alarm (broadcasts dropped several rounds in a row) only
      // costs quality: the UE re-proposes and the live BS re-acks.
      if (faulty && a.matched && a.has_serving) {
        if (a.heard_serving) {
          a.serving_silence = 0;
        } else if (++a.serving_silence > net.recovery.suspect_after) {
          a.matched = false;
          a.has_serving = false;
          a.serving_silence = 0;
          ++result.recovery.suspected_serving_bs;
          record_fault(obs::EventKind::kRepair, "suspect-serving-bs", a.ue.value,
                       a.serving_bs.value, round);
        }
      }
      if (a.matched || a.at_cloud) continue;
      // Bounded re-propose: an unanswered proposal is retried, but only
      // max_reproposals times against the same silent BS before the UE
      // presumes it dead and moves down its list. This is what turns a
      // black-holed BS from a livelock into a mere preference downgrade.
      if (faulty && a.awaiting) {
        ++a.unanswered;
        ++result.recovery.reproposals;
        if (a.unanswered >= net.recovery.max_reproposals) {
          b_u.erase_bs(scenario, a.ue, a.last_target);
          a.awaiting = false;
          a.unanswered = 0;
          ++result.recovery.presumed_dead;
          record_fault(obs::EventKind::kRepair, "presume-bs-dead", a.ue.value,
                       a.last_target.value, round);
        }
      }
      const auto view = [&view_crus, &view_rrbs](std::size_t slot, BsId) {
        return std::pair<std::uint32_t, std::uint32_t>{view_crus[slot], view_rrbs[slot]};
      };
      const auto choice = choose_proposal_soa(scenario, b_u, a.ue, config.rho, view);
      if (!choice) {
        a.at_cloud = true;
        continue;
      }
      const auto f_u = live_coverage_count_soa(scenario, a.ue, view);
      bus.send(a.address, a.sp_address, MsgOffloadRequest{a.ue, *choice, f_u});
      ++sent_this_round;
      if (faulty) {
        if (a.last_target != *choice) a.unanswered = 0;
        a.last_target = *choice;
        a.awaiting = true;
      }
      if (rec != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kProposal;
        e.ue = a.ue.value;
        e.bs = choice->value;
        e.service = scenario.ue(a.ue).service.value;
        e.value = f_u;
        rec->record(e);
      }
    }
    // dmra::hotpath end(ue-propose)
    bus.deliver();
    if (sent_this_round == 0) {
      if (!faulty) {
        converged = true;
        sample_round(round);
        break;
      }
      ++quiet_rounds;
      if (quiet_rounds > quiet_grace && bus.in_flight() == 0 && !schedule_ahead(round)) {
        converged = true;
        sample_round(round);
        break;
      }
    } else {
      quiet_rounds = 0;
    }
    result.dmra.proposals_sent += sent_this_round;
    ++result.dmra.rounds;

    // ---- SP relay phase (up): forward offload requests to the BSs. On a
    // phase-aligned bus only requests can be here, but delay faults land
    // messages at ANY deliver(), so a relay must route whatever shows up:
    // a late decision goes down immediately instead of throwing.
    // dmra::hotpath begin(sp-relay-up)
    for (SpAgent& sp : sp_agents) {
      for (auto& env : bus.take_inbox(sp.address)) {
        if (const auto* req = std::get_if<MsgOffloadRequest>(&env.payload)) {
          bus.send(sp.address, bs_agents[req->target.idx()].address,
                   MsgPropose{req->ue, req->f_u});
        } else {
          const auto& dec = std::get<MsgDecision>(env.payload);
          bus.send(sp.address, ue_agents[dec.ue.idx()].address, dec);
        }
      }
    }
    // dmra::hotpath end(sp-relay-up)
    bus.deliver();

    // ---- BS phase: select, commit locally, reply, broadcast.
    std::size_t accepted_this_round = 0;
    // dmra::hotpath begin(bs-accept)
    for (BsAgent& b : bs_agents) {
      // A crashed BS is a black hole: proposals die in its inbox and no
      // decision or broadcast ever leaves. UEs must discover this through
      // the protocol (bounded re-propose, serving-BS suspicion).
      if (faulty && !b.alive) {
        bus.take_inbox(b.address);
        continue;
      }
      fresh.clear();
      reacks.clear();
      for (auto& env : bus.take_inbox(b.address)) {
        const auto& p = std::get<MsgPropose>(env.payload);
        // A UE this BS already admitted can only re-propose because the
        // accept got lost: re-ack idempotently, never commit twice.
        if (b.admitted[p.ue.idx()]) {
          reacks.push_back(p.ue);
        } else {
          fresh.push_back(ProposalInfo{p.ue, p.f_u});
        }
      }
      // Duplication/delay can land two generations of the same UE's
      // proposal in one inbox; admit (and answer) each UE at most once.
      if (faulty && fresh.size() > 1) {
        stable_sort_by_ue(fresh, sort_scratch);
        fresh.erase(std::unique(fresh.begin(), fresh.end(),
                                [](const ProposalInfo& x, const ProposalInfo& y) {
                                  return x.ue == y.ue;
                                }),
                    fresh.end());
      }
      if (fresh.empty() && reacks.empty() && !unreliable) continue;

      const std::vector<UeId>& accepted =
          fresh.empty() ? empty_accepts
                        : bs_select(scenario, b.bs, fresh, b.resources, ws, config);

      for (UeId u : accepted) {
        const UserEquipment& e = scenario.ue(u);
        const LinkStats& l = scenario.link(u, b.bs);
        DMRA_REQUIRE(b.resources.crus[e.service.idx()] >= e.cru_demand);
        DMRA_REQUIRE(b.resources.rrbs >= l.n_rrbs);
        b.resources.crus[e.service.idx()] -= e.cru_demand;
        b.resources.rrbs -= l.n_rrbs;
        result.dmra.allocation.assign(u, b.bs);
        b.admitted[u.idx()] = true;
        ++accepted_this_round;
        if (rec != nullptr) traced_profit += scenario.pair_profit(u, b.bs);
        // Recovery accounting (run-level bookkeeping, not agent knowledge:
        // the BS cannot tell an orphan from a first-time proposer, which
        // is the point — re-admission needs no special message).
        if (faulty && ue_agents[u.idx()].needs_repair) {
          ue_agents[u.idx()].needs_repair = false;
          ++result.recovery.repaired_in_protocol;
          result.recovery.recovered_profit += scenario.pair_profit(u, b.bs);
          record_fault(obs::EventKind::kRepair, "re-match", u.value, b.bs.value, round);
        }
      }

      // Reply to every proposer through its SP.
      for (const ProposalInfo& p : fresh) {
        const bool ok =
            std::binary_search(accepted.begin(), accepted.end(), p.ue);
        const AgentId sp_addr = sp_agents[scenario.ue(p.ue).sp.idx()].address;
        bus.send(b.address, sp_addr, MsgDecision{p.ue, b.bs, ok});
      }
      for (UeId u : reacks) {
        const AgentId sp_addr = sp_agents[scenario.ue(u).sp.idx()].address;
        bus.send(b.address, sp_addr, MsgDecision{u, b.bs, true});
      }
      // Broadcast the new resource levels to everyone in coverage; on an
      // unreliable network, rebroadcast every round so dropped updates
      // heal and matched UEs keep hearing their serving BS.
      if (!fresh.empty() || !reacks.empty() || unreliable) {
        const std::uint32_t snapshot = arena.publish(b.resources);
        for (AgentId ue_addr : b.covered_ues)
          bus.send(b.address, ue_addr, MsgResourceUpdate{b.bs, snapshot});
        if (rec != nullptr) {
          obs::TraceEvent e;
          e.kind = obs::EventKind::kBroadcast;
          e.bs = b.bs.value;
          e.value = b.covered_ues.size();
          rec->record(e);
        }
      }
    }
    // dmra::hotpath end(bs-accept)
    bus.deliver();
    // Delayed proposals can make a round accept more than it sent; clamp
    // instead of letting the size_t difference wrap.
    result.dmra.rejections +=
        sent_this_round >= accepted_this_round ? sent_this_round - accepted_this_round
                                               : 0;

    // Cross-check every BS agent's local ledger against a from-scratch
    // recount of the partial allocation (the agents never see each other's
    // state, so on a reliable bus drift here means a protocol bug). On an
    // unreliable bus a BS rightfully holds resources for accepts the UE
    // never received until rebroadcasts heal it, and a re-proposing UE can
    // land on a worse BS, so mid-run only partial feasibility is an
    // invariant: skip the ledger snapshot and the cross-round profit chain.
    if (DMRA_AUDIT_ACTIVE()) {
      audit::RoundContext ctx;
      ctx.scenario = &scenario;
      ctx.allocation = &result.dmra.allocation;
      if (!unreliable) {
        ctx.ledger = audit::snapshot_ledger(
            scenario,
            [&](BsId i, ServiceId j) { return bs_agents[i.idx()].resources.crus[j.idx()]; },
            [&](BsId i) { return bs_agents[i.idx()].resources.rrbs; });
      }
      ctx.round = unreliable ? 0 : result.dmra.rounds - 1;
      ctx.source = faulty ? "core/decentralized-faulty"
                          : (lossy ? "core/decentralized-lossy" : "core/decentralized");
      audit::observer()->on_round(ctx);
    }

    // ---- SP relay phase (down): forward decisions to the UEs (and, like
    // the up phase, route any delay-displaced request onward to its BS,
    // which drains its inbox again next round).
    // dmra::hotpath begin(sp-relay-down)
    for (SpAgent& sp : sp_agents) {
      for (auto& env : bus.take_inbox(sp.address)) {
        if (const auto* dec = std::get_if<MsgDecision>(&env.payload)) {
          bus.send(sp.address, ue_agents[dec->ue.idx()].address, *dec);
        } else {
          const auto& req = std::get<MsgOffloadRequest>(env.payload);
          bus.send(sp.address, bs_agents[req.target.idx()].address,
                   MsgPropose{req.ue, req.f_u});
        }
      }
    }
    // dmra::hotpath end(sp-relay-down)
    bus.deliver();

    if (rec != nullptr) {
      const obs::EventTally tally = rec->take_tally();
      obs::RoundRow row;
      row.source = "core/decentralized";
      row.round = result.dmra.rounds - 1;
      row.proposals = tally.proposals;
      row.accepts = tally.accepts;
      row.rejects = tally.rejects;
      row.trim_evictions = tally.trim_evictions;
      row.broadcasts = tally.broadcasts;
      row.messages = bus.stats().messages_sent - msgs_before;
      // "Unmatched" = admitted nowhere and not yet given up. The BS-side
      // allocation is authoritative; at_cloud flags lag one round (UEs
      // learn outcomes at the next ingest), which is exactly the view a
      // round-close observer of the protocol would have.
      std::size_t at_cloud_count = 0;
      for (const UeAgent& a : ue_agents)
        if (a.at_cloud) ++at_cloud_count;
      row.unmatched_ues = nu - result.dmra.allocation.num_served() - at_cloud_count;
      row.cumulative_profit = traced_profit;
      for (const BsAgent& b : bs_agents) {
        for (const std::uint32_t c : b.resources.crus) row.cru_headroom += c;
        row.rrb_headroom += b.resources.rrbs;
      }
      rec->finish_round(row);
    }
    if (fr != nullptr) {
      // Cheap aggregate only — no O(nu)/O(nb) scans: the flight round
      // ring must stay within the <2% always-on budget.
      obs::RoundRow row;
      row.source = "core/decentralized";
      row.round = result.dmra.rounds - 1;
      row.proposals = sent_this_round;
      row.accepts = accepted_this_round;
      row.rejects = sent_this_round >= accepted_this_round
                        ? sent_this_round - accepted_this_round
                        : 0;
      row.messages = bus.stats().messages_sent - msgs_before;
      fr->finish_round(row);
    }
    sample_round(round);
  }

  // ---- Final repair pass: orphans the live protocol could not re-place
  // (typically because their candidate list drained while their BSs were
  // down) get one centralized re-match against whatever capacity the
  // surviving BSs still believe they have. Whoever still cannot be placed
  // stays at the cloud — that is the graceful-degradation floor, never a
  // crash or an infeasible allocation.
  if (faulty && net.recovery.final_repair) {
    std::vector<bool> matched(nu, true);
    std::size_t orphan_count = 0;
    for (std::size_t ui = 0; ui < nu; ++ui) {
      const UeAgent& a = ue_agents[ui];
      if (a.needs_repair && result.dmra.allocation.is_cloud(a.ue)) {
        matched[ui] = false;
        ++orphan_count;
      }
    }
    if (orphan_count > 0) {
      ResourceState state(scenario);
      for (std::size_t ui = 0; ui < nu; ++ui) {
        const UeId u{static_cast<std::uint32_t>(ui)};
        if (const auto bs = result.dmra.allocation.bs_of(u)) state.commit(u, *bs);
      }
      // Clamp the global view down to each BS's own ledger: a crashed BS
      // offers nothing, and a degraded (or leak-carrying) BS offers only
      // what it believes it has. The repair pass must never promise
      // capacity the agent would refuse.
      const std::vector<std::uint32_t> none(scenario.num_services(), 0);
      for (const BsAgent& b : bs_agents) {
        if (b.alive)
          state.clamp_remaining(b.bs, b.resources.crus, b.resources.rrbs);
        else
          state.clamp_remaining(b.bs, none, 0);
      }
      DmraResult repair;
      {
        // The repair state is clamped below nominal-minus-allocation, so
        // the solver's own ledger reports would trip the auditor's
        // recount; the partial allocation is re-audited manually below.
        audit::ScopedAuditObserver mute(nullptr);
        repair = solve_dmra_partial(scenario, config, state,
                                    result.dmra.allocation, matched);
      }
      result.recovery.repair_rounds = repair.rounds;
      for (std::size_t ui = 0; ui < nu; ++ui) {
        UeAgent& a = ue_agents[ui];
        if (!a.needs_repair || result.dmra.allocation.is_cloud(a.ue)) continue;
        a.needs_repair = false;
        const auto bs = result.dmra.allocation.bs_of(a.ue);
        ++result.recovery.repaired_by_rematch;
        result.recovery.recovered_profit += scenario.pair_profit(a.ue, *bs);
        record_fault(obs::EventKind::kRepair, "repair-rematch", a.ue.value, bs->value,
                     repair.rounds);
      }
      if (rec != nullptr || fr != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kPhase;
        e.label = "core/decentralized:repair";
        e.value = orphan_count;
        if (rec != nullptr) rec->record(e);
        if (fr != nullptr) fr->record(e);
      }
      if (DMRA_AUDIT_ACTIVE()) {
        audit::RoundContext ctx;  // feasibility-only: no ledger survives repair
        ctx.scenario = &scenario;
        ctx.allocation = &result.dmra.allocation;
        ctx.round = 0;
        ctx.source = "core/decentralized-repair";
        audit::observer()->on_round(ctx);
      }
    }
  }
  if (faulty) {
    for (const UeAgent& a : ue_agents)
      if (a.needs_repair) ++result.recovery.cloud_fallbacks;
  }

  result.bus = bus.stats();
  const auto publish_run = [&](obs::MetricsRegistry& m) {
    obs::publish_bus_stats(result.bus, m);
    if (faulty) {
      // Fault metrics exist only on faulty runs: unconditional zeros would
      // change the deterministic metrics JSON of fault-free traces.
      const FaultRecoveryStats& r = result.recovery;
      m.add_counter("fault.bs_crashes", r.bs_crashes);
      m.add_counter("fault.bs_recoveries", r.bs_recoveries);
      m.add_counter("fault.capacity_degradations", r.capacity_degradations);
      m.add_counter("fault.orphaned_ues", r.orphaned_ues);
      m.add_counter("fault.reproposals", r.reproposals);
      m.add_counter("fault.presumed_dead", r.presumed_dead);
      m.add_counter("fault.suspected_serving_bs", r.suspected_serving_bs);
      m.add_counter("fault.repaired_in_protocol", r.repaired_in_protocol);
      m.add_counter("fault.repaired_by_rematch", r.repaired_by_rematch);
      m.add_counter("fault.cloud_fallbacks", r.cloud_fallbacks);
      m.add_counter("fault.repair_rounds", r.repair_rounds);
      m.set_gauge("fault.recovered_profit", r.recovered_profit);
    }
  };
  if (rec != nullptr || fr != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kTermination;
    e.flag = converged;
    e.value = result.dmra.rounds;
    e.label = "core/decentralized";
    if (rec != nullptr) {
      rec->record(e);
      publish_run(rec->metrics());
    }
    if (fr != nullptr) {
      fr->record(e);
      publish_run(fr->metrics());
    }
  }
  return result;
}

}  // namespace dmra
