// The direct (in-memory) DMRA solver — Alg. 1 executed round by round
// against the global resource state.
//
// This is the fast path used by benchmarks and large sweeps. The
// decentralized runtime (core/decentralized.hpp) executes the same
// decision logic over an explicit message bus and is proven equivalent
// by tests; use it when you care about the protocol, use this when you
// care about the result.
#pragma once

#include "core/preference.hpp"
#include "mec/allocation.hpp"
#include "mec/scenario.hpp"

namespace dmra {

/// Outcome of a DMRA run plus convergence diagnostics.
struct DmraResult {
  Allocation allocation{0};
  std::size_t rounds = 0;          ///< matching iterations executed
  std::size_t proposals_sent = 0;  ///< total UE→BS proposals
  std::size_t rejections = 0;      ///< proposals not accepted in their round
};

/// Run DMRA on a scenario. Deterministic; terminates in at most |U|
/// rounds (each round with proposals matches at least one UE).
DmraResult solve_dmra(const Scenario& scenario, const DmraConfig& config = {});

// Forward declaration; defined in mec/resources.hpp.
class ResourceState;

/// Run the DMRA matching over a *subset* of UEs against an existing
/// resource state: UEs with matched[u] == true never propose; everyone
/// else is matched into whatever `state` has left. On return, `state`,
/// `allocation`, and `matched` reflect the new assignments. This is the
/// building block for incremental re-allocation (core/incremental.hpp).
DmraResult solve_dmra_partial(const Scenario& scenario, const DmraConfig& config,
                              ResourceState& state, Allocation& allocation,
                              std::vector<bool>& matched);

}  // namespace dmra
