#include "core/preference.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "obs/recorder.hpp"
#include "util/require.hpp"

namespace dmra {

double ue_preference_value(const Scenario& scenario, const ResourceView& view, UeId u,
                           BsId i, double rho) {
  DMRA_REQUIRE(rho >= 0.0);
  const ServiceId j = scenario.ue(u).service;
  const double remaining = static_cast<double>(view.remaining_crus(i, j)) +
                           static_cast<double>(view.remaining_rrbs(i));
  const double price = scenario.price(u, i);
  if (remaining <= 0.0)
    return rho > 0.0 ? std::numeric_limits<double>::infinity() : price;
  return price + rho / remaining;
}

bool view_can_serve(const Scenario& scenario, const ResourceView& view, UeId u, BsId i) {
  const UserEquipment& e = scenario.ue(u);
  const LinkStats& l = scenario.link(u, i);
  if (!l.in_coverage || l.n_rrbs == 0) return false;
  return view.remaining_crus(i, e.service) >= e.cru_demand &&
         view.remaining_rrbs(i) >= l.n_rrbs;
}

std::uint32_t live_coverage_count(const Scenario& scenario, const ResourceView& view,
                                  UeId u) {
  std::uint32_t n = 0;
  for (BsId i : scenario.candidates(u))
    if (view_can_serve(scenario, view, u, i)) ++n;
  return n;
}

std::optional<BsId> choose_proposal(const Scenario& scenario, const ResourceView& view,
                                    UeId u, std::vector<BsId>& b_u, double rho) {
  while (!b_u.empty()) {
    // argmin v(u,i); ties toward the smaller BsId for determinism.
    std::size_t best = 0;
    double best_v = ue_preference_value(scenario, view, u, b_u[0], rho);
    for (std::size_t n = 1; n < b_u.size(); ++n) {
      const double v = ue_preference_value(scenario, view, u, b_u[n], rho);
      if (v < best_v || (v == best_v && b_u[n] < b_u[best])) {
        best = n;
        best_v = v;
      }
    }
    const BsId i = b_u[best];
    if (view_can_serve(scenario, view, u, i)) return i;
    // Resources only shrink, so an unserviceable BS stays unserviceable:
    // remove it permanently (Alg. 1 line 10).
    b_u.erase(b_u.begin() + static_cast<std::ptrdiff_t>(best));
  }
  return std::nullopt;
}

namespace {

/// Lexicographic BS-side preference: same-SP first, then fewest covering
/// BSs, then smallest resource footprint, then smallest id. Smaller is
/// more preferred.
struct BsPrefKey {
  bool cross_sp;
  std::uint32_t f_u;
  std::uint32_t footprint;
  std::uint32_t ue;

  friend bool operator<(const BsPrefKey& a, const BsPrefKey& b) {
    return std::tie(a.cross_sp, a.f_u, a.footprint, a.ue) <
           std::tie(b.cross_sp, b.f_u, b.footprint, b.ue);
  }
};

BsPrefKey pref_key(const Scenario& scenario, BsId i, const ProposalInfo& p,
                   const DmraConfig& config) {
  const UserEquipment& e = scenario.ue(p.ue);
  const std::uint32_t footprint = scenario.link(p.ue, i).n_rrbs + e.cru_demand;
  return BsPrefKey{config.prefer_same_sp ? !scenario.same_sp(p.ue, i) : false,
                   config.use_coverage_count ? p.f_u : 0,
                   config.use_footprint ? footprint : 0, p.ue.value};
}

/// A proposal with its preference key and RRB demand computed exactly
/// once — the min/sort below only compare precomputed keys instead of
/// re-deriving them (link lookup + SP check) inside every comparator call.
struct KeyedProposal {
  BsPrefKey key;
  UeId ue;
  std::uint32_t n_rrbs;
};

}  // namespace

namespace {

obs::TiebreakKey to_obs_key(const BsPrefKey& k) {
  return obs::TiebreakKey{k.cross_sp, k.f_u, k.footprint, k.ue};
}

/// Emits one kDecision event for `p` at BS `i`. Losing decisions carry the
/// tiebreak key so a trace viewer can show *why* the proposal lost.
void record_decision(obs::TraceRecorder& rec, const Scenario& scenario, BsId i,
                     const KeyedProposal& p, bool accepted, obs::DecisionReason reason) {
  obs::TraceEvent e;
  e.kind = obs::EventKind::kDecision;
  e.reason = reason;
  e.flag = accepted;
  e.ue = p.ue.value;
  e.bs = i.value;
  e.service = scenario.ue(p.ue).service.value;
  if (!accepted) e.key = to_obs_key(p.key);
  rec.record(e);
}

}  // namespace

std::vector<UeId> bs_select(const Scenario& scenario, BsId i,
                            const std::vector<ProposalInfo>& proposals,
                            const BsLocalResources& local, const DmraConfig& config) {
  DMRA_REQUIRE(local.crus.size() == scenario.num_services());
  // Tracing: one pointer test when disabled; all event work is behind it.
  obs::TraceRecorder* const rec = obs::recorder();

  // dmra::hotpath begin(bs-select)
  // Group by requested service (Alg. 1 line 13), buckets in ServiceId
  // order — the same iteration order the previous std::map grouping gave.
  std::vector<std::vector<KeyedProposal>> by_service(scenario.num_services());
  for (const ProposalInfo& p : proposals) {
    const LinkStats& l = scenario.link(p.ue, i);
    DMRA_REQUIRE_MSG(l.in_coverage, "proposal from uncovered UE");
    by_service[scenario.ue(p.ue).service.idx()].push_back(
        KeyedProposal{pref_key(scenario, i, p, config), p.ue, l.n_rrbs});
  }

  // Per service: one winner (lines 14–21). Same-SP UEs form the preferred
  // pool; the BsPrefKey ordering already puts every same-SP proposer ahead
  // of every cross-SP one, so a straight min implements the pool split.
  std::vector<KeyedProposal> winners;
  for (std::size_t j = 0; j < by_service.size(); ++j) {
    const std::vector<KeyedProposal>& cands = by_service[j];
    const auto feasible = [&](const KeyedProposal& p) {
      return local.crus[j] >= scenario.ue(p.ue).cru_demand && local.rrbs >= p.n_rrbs;
    };
    // Pick the best proposal the BS can still honour (CRU view at round
    // start) in one pass — no feasible-subset copy.
    const KeyedProposal* best = nullptr;
    for (const KeyedProposal& p : cands) {
      if (!feasible(p)) {
        if (rec != nullptr)
          record_decision(*rec, scenario, i, p, false, obs::DecisionReason::kInfeasible);
        continue;
      }
      if (best == nullptr || p.key < best->key) best = &p;
    }
    if (rec != nullptr && best != nullptr) {
      // Second pass, traced runs only: every feasible non-winner lost the
      // lexicographic tiebreak to `best`; record the losing key.
      for (const KeyedProposal& p : cands) {
        if (&p == best || !feasible(p)) continue;
        record_decision(*rec, scenario, i, p, false, obs::DecisionReason::kLostTiebreak);
      }
    }
    if (best != nullptr) winners.push_back(*best);
  }

  // Radio trim (lines 22–25): if the winners' aggregate RRB demand
  // overshoots the budget, drop the least-preferred winners until it fits.
  std::uint64_t total_rrbs = 0;
  for (const KeyedProposal& p : winners) total_rrbs += p.n_rrbs;
  if (total_rrbs > local.rrbs) {
    std::sort(winners.begin(), winners.end(),
              [](const KeyedProposal& a, const KeyedProposal& b) { return a.key < b.key; });
    while (!winners.empty() && total_rrbs > local.rrbs) {
      const KeyedProposal& victim = winners.back();
      if (rec != nullptr) {
        obs::TraceEvent t;
        t.kind = obs::EventKind::kTrimEviction;
        t.ue = victim.ue.value;
        t.bs = i.value;
        t.service = scenario.ue(victim.ue).service.value;
        t.value = victim.n_rrbs;
        t.key = to_obs_key(victim.key);
        rec->record(t);
        record_decision(*rec, scenario, i, victim, false, obs::DecisionReason::kTrimmed);
      }
      total_rrbs -= victim.n_rrbs;
      winners.pop_back();
    }
  }
  if (rec != nullptr)
    for (const KeyedProposal& p : winners)
      record_decision(*rec, scenario, i, p, true, obs::DecisionReason::kAccepted);

  std::vector<UeId> accepted;
  accepted.reserve(winners.size());
  for (const KeyedProposal& p : winners) accepted.push_back(p.ue);
  std::sort(accepted.begin(), accepted.end());
  return accepted;
  // dmra::hotpath end(bs-select)
}

}  // namespace dmra
