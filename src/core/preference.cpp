#include "core/preference.hpp"

#include <algorithm>
#include <limits>

#include "obs/recorder.hpp"
#include "util/require.hpp"

namespace dmra {

double ue_preference_value(const Scenario& scenario, const ResourceView& view, UeId u,
                           BsId i, double rho) {
  DMRA_REQUIRE(rho >= 0.0);
  const ServiceId j = scenario.ue(u).service;
  const double remaining = static_cast<double>(view.remaining_crus(i, j)) +
                           static_cast<double>(view.remaining_rrbs(i));
  const double price = scenario.price(u, i);
  if (remaining <= 0.0)
    return rho > 0.0 ? std::numeric_limits<double>::infinity() : price;
  return price + rho / remaining;
}

bool view_can_serve(const Scenario& scenario, const ResourceView& view, UeId u, BsId i) {
  const UserEquipment& e = scenario.ue(u);
  const LinkStats& l = scenario.link(u, i);
  if (!l.in_coverage || l.n_rrbs == 0) return false;
  return view.remaining_crus(i, e.service) >= e.cru_demand &&
         view.remaining_rrbs(i) >= l.n_rrbs;
}

std::uint32_t live_coverage_count(const Scenario& scenario, const ResourceView& view,
                                  UeId u) {
  std::uint32_t n = 0;
  for (BsId i : scenario.candidates(u))
    if (view_can_serve(scenario, view, u, i)) ++n;
  return n;
}

std::optional<BsId> choose_proposal(const Scenario& scenario, const ResourceView& view,
                                    UeId u, std::vector<BsId>& b_u, double rho) {
  while (!b_u.empty()) {
    // argmin v(u,i); ties toward the smaller BsId for determinism.
    std::size_t best = 0;
    double best_v = ue_preference_value(scenario, view, u, b_u[0], rho);
    for (std::size_t n = 1; n < b_u.size(); ++n) {
      const double v = ue_preference_value(scenario, view, u, b_u[n], rho);
      if (v < best_v || (v == best_v && b_u[n] < b_u[best])) {
        best = n;
        best_v = v;
      }
    }
    const BsId i = b_u[best];
    if (view_can_serve(scenario, view, u, i)) return i;
    // Resources only shrink, so an unserviceable BS stays unserviceable:
    // remove it permanently (Alg. 1 line 10).
    b_u.erase(b_u.begin() + static_cast<std::ptrdiff_t>(best));
  }
  return std::nullopt;
}

void LiveCandidates::build(const Scenario& scenario) {
  const std::size_t nu = scenario.num_ues();
  const std::size_t total = scenario.num_candidate_slots();
  offsets_.assign(nu, 0);
  len_.assign(nu, 0);
  slots_.assign(total, 0);
  for (std::size_t ui = 0; ui < nu; ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const std::size_t base = scenario.candidate_offset(u);
    const std::size_t row = scenario.candidates(u).size();
    offsets_[ui] = base;
    len_[ui] = row;
    for (std::size_t k = 0; k < row; ++k)
      slots_[base + k] = static_cast<std::uint32_t>(k);
  }
}

namespace {

BsPrefKey pref_key(const Scenario& scenario, BsId i, const ProposalInfo& p,
                   std::uint32_t n_rrbs, const DmraConfig& config) {
  const UserEquipment& e = scenario.ue(p.ue);
  const std::uint32_t footprint = n_rrbs + e.cru_demand;
  return BsPrefKey{config.prefer_same_sp ? !scenario.same_sp(p.ue, i) : false,
                   config.use_coverage_count ? p.f_u : 0,
                   config.use_footprint ? footprint : 0, p.ue.value};
}

obs::TiebreakKey to_obs_key(const BsPrefKey& k) {
  return obs::TiebreakKey{k.cross_sp, k.f_u, k.footprint, k.ue};
}

/// Emits one kDecision event for proposer `ue` at BS `i`. Losing decisions
/// carry the tiebreak key so a trace viewer can show *why* it lost.
void record_decision(obs::TraceRecorder& rec, const Scenario& scenario, BsId i, UeId ue,
                     const BsPrefKey& key, bool accepted, obs::DecisionReason reason) {
  obs::TraceEvent e;
  e.kind = obs::EventKind::kDecision;
  e.reason = reason;
  e.flag = accepted;
  e.ue = ue.value;
  e.bs = i.value;
  e.service = scenario.ue(ue).service.value;
  if (!accepted) e.key = to_obs_key(key);
  rec.record(e);
}

}  // namespace

void BsSelectWorkspace::reserve(std::size_t num_services, std::size_t max_proposals) {
  counts_.reserve(num_services);
  offsets_.reserve(num_services + 1);
  keys_.reserve(max_proposals);
  ues_.reserve(max_proposals);
  rrbs_.reserve(max_proposals);
  demands_.reserve(max_proposals);
  winners_.reserve(num_services);
  accepted_.reserve(num_services);
}

const std::vector<UeId>& bs_select(const Scenario& scenario, BsId i,
                                   std::span<const ProposalInfo> proposals,
                                   const BsLocalResources& local, BsSelectWorkspace& ws,
                                   const DmraConfig& config) {
  DMRA_REQUIRE(local.crus.size() == scenario.num_services());
  // Tracing: one pointer test when disabled; all event work is behind it.
  obs::TraceRecorder* const rec = obs::recorder();

  // dmra::hotpath begin(bs-select)
  // Group by requested service (Alg. 1 line 13) with a stable counting
  // sort into the workspace's SoA rows: buckets in ServiceId order,
  // within-bucket in proposal order — the same iteration order the
  // per-service vector buckets (and before them std::map) gave.
  const std::size_t ns = scenario.num_services();
  const std::size_t np = proposals.size();
  ws.counts_.assign(ns, 0);
  for (const ProposalInfo& p : proposals) ++ws.counts_[scenario.ue(p.ue).service.idx()];
  ws.offsets_.assign(ns + 1, 0);
  for (std::size_t j = 0; j < ns; ++j) ws.offsets_[j + 1] = ws.offsets_[j] + ws.counts_[j];
  ws.keys_.resize(np);
  ws.ues_.resize(np);
  ws.rrbs_.resize(np);
  ws.demands_.resize(np);
  for (std::size_t j = 0; j < ns; ++j) ws.counts_[j] = ws.offsets_[j];  // cursors
  for (const ProposalInfo& p : proposals) {
    const UserEquipment& e = scenario.ue(p.ue);
    const LinkStats& l = scenario.link(p.ue, i);
    DMRA_REQUIRE_MSG(l.in_coverage, "proposal from uncovered UE");
    const std::uint32_t row = ws.counts_[e.service.idx()]++;
    ws.keys_[row] = pref_key(scenario, i, p, l.n_rrbs, config);
    ws.ues_[row] = p.ue;
    ws.rrbs_[row] = l.n_rrbs;
    ws.demands_[row] = e.cru_demand;
  }

  // Per service: one winner (lines 14–21). Same-SP UEs form the preferred
  // pool; the BsPrefKey ordering already puts every same-SP proposer ahead
  // of every cross-SP one, so a straight min implements the pool split.
  constexpr std::uint32_t kNoRow = std::numeric_limits<std::uint32_t>::max();
  ws.winners_.clear();
  for (std::size_t j = 0; j < ns; ++j) {
    const auto feasible = [&](std::uint32_t row) {
      return local.crus[j] >= ws.demands_[row] && local.rrbs >= ws.rrbs_[row];
    };
    // Pick the best proposal the BS can still honour (CRU view at round
    // start) in one pass — no feasible-subset copy.
    std::uint32_t best = kNoRow;
    for (std::uint32_t row = ws.offsets_[j]; row < ws.offsets_[j + 1]; ++row) {
      if (!feasible(row)) {
        if (rec != nullptr)
          record_decision(*rec, scenario, i, ws.ues_[row], ws.keys_[row], false,
                          obs::DecisionReason::kInfeasible);
        continue;
      }
      if (best == kNoRow || ws.keys_[row] < ws.keys_[best]) best = row;
    }
    if (rec != nullptr && best != kNoRow) {
      // Second pass, traced runs only: every feasible non-winner lost the
      // lexicographic tiebreak to `best`; record the losing key.
      for (std::uint32_t row = ws.offsets_[j]; row < ws.offsets_[j + 1]; ++row) {
        if (row == best || !feasible(row)) continue;
        record_decision(*rec, scenario, i, ws.ues_[row], ws.keys_[row], false,
                        obs::DecisionReason::kLostTiebreak);
      }
    }
    if (best != kNoRow) ws.winners_.push_back(best);
  }

  // Radio trim (lines 22–25): if the winners' aggregate RRB demand
  // overshoots the budget, drop the least-preferred winners until it fits.
  std::uint64_t total_rrbs = 0;
  for (const std::uint32_t row : ws.winners_) total_rrbs += ws.rrbs_[row];
  if (total_rrbs > local.rrbs) {
    std::sort(ws.winners_.begin(), ws.winners_.end(),
              [&](std::uint32_t a, std::uint32_t b) { return ws.keys_[a] < ws.keys_[b]; });
    while (!ws.winners_.empty() && total_rrbs > local.rrbs) {
      const std::uint32_t victim = ws.winners_.back();
      if (rec != nullptr) {
        obs::TraceEvent t;
        t.kind = obs::EventKind::kTrimEviction;
        t.ue = ws.ues_[victim].value;
        t.bs = i.value;
        t.service = scenario.ue(ws.ues_[victim]).service.value;
        t.value = ws.rrbs_[victim];
        t.key = to_obs_key(ws.keys_[victim]);
        rec->record(t);
        record_decision(*rec, scenario, i, ws.ues_[victim], ws.keys_[victim], false,
                        obs::DecisionReason::kTrimmed);
      }
      total_rrbs -= ws.rrbs_[victim];
      ws.winners_.pop_back();
    }
  }
  if (rec != nullptr)
    for (const std::uint32_t row : ws.winners_)
      record_decision(*rec, scenario, i, ws.ues_[row], ws.keys_[row], true,
                      obs::DecisionReason::kAccepted);

  ws.accepted_.clear();
  for (const std::uint32_t row : ws.winners_) ws.accepted_.push_back(ws.ues_[row]);
  std::sort(ws.accepted_.begin(), ws.accepted_.end());
  return ws.accepted_;
  // dmra::hotpath end(bs-select)
}

std::vector<UeId> bs_select(const Scenario& scenario, BsId i,
                            std::span<const ProposalInfo> proposals,
                            const BsLocalResources& local, const DmraConfig& config) {
  BsSelectWorkspace ws;
  return bs_select(scenario, i, proposals, local, ws, config);
}

}  // namespace dmra
