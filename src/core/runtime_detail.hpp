// Shared internals of the message-passing runtimes: the snapshot ring,
// the wire message types, and the allocation-free proposal sort. Used by
// the single-bus runtime (core/decentralized.cpp) and the region-sharded
// runtime (core/sharded.cpp); not part of the public core API.
#pragma once

#include <algorithm>
#include <cstdint>
#include <variant>
#include <vector>

#include "core/preference.hpp"
#include "mec/ids.hpp"
#include "net/bus.hpp"
#include "util/require.hpp"

namespace dmra::runtime_detail {

// ---- Resource snapshots ----------------------------------------------------

/// Bounded ring of the resource levels BSs have broadcast. A broadcast
/// publishes ONE snapshot and fans out a {BsId, index} message to every
/// covered UE, so the per-round messaging cost is O(audience)
/// trivially-copyable envelopes instead of O(audience) heap-allocated
/// CRU vectors. Indices are monotonically increasing, so they double as
/// the epoch stamp: a UE slot holding a larger index is strictly newer.
///
/// UEs copy the values they care about at ingest (see the view arrays in
/// run_decentralized_dmra), so a snapshot only has to outlive the bus
/// transit of the broadcasts that reference it — a handful of rounds even
/// under maximal delay faults. The ring is sized for that window once at
/// construction and publish() is thereafter allocation-free; every read
/// revalidates its stamp so an undersized ring is a loud contract
/// violation, never a silently stale view.
class SnapshotRing {
 public:
  SnapshotRing(std::size_t num_services, std::size_t capacity)
      : stride_(num_services),
        cap_(capacity),
        crus_(capacity * num_services, 0),
        rrbs_(capacity, 0),
        stamp_(capacity, kFree) {}

  std::uint32_t publish(const BsLocalResources& r) {
    // dmra::hotpath begin(snapshot-publish)
    const std::size_t idx = static_cast<std::size_t>(next_ % cap_);
    std::copy(r.crus.begin(), r.crus.end(), crus_.begin() + idx * stride_);
    rrbs_[idx] = r.rrbs;
    stamp_[idx] = next_;
    return static_cast<std::uint32_t>(next_++);
    // dmra::hotpath end(snapshot-publish)
  }

  std::uint32_t crus(std::uint32_t snapshot, std::size_t service) const {
    return crus_[index_of(snapshot) * stride_ + service];
  }
  std::uint32_t rrbs(std::uint32_t snapshot) const { return rrbs_[index_of(snapshot)]; }

 private:
  static constexpr std::uint64_t kFree = ~std::uint64_t{0};

  std::size_t index_of(std::uint32_t snapshot) const {
    const std::size_t idx = snapshot % cap_;
    DMRA_REQUIRE_MSG(stamp_[idx] == snapshot,
                     "snapshot evicted before ingest: ring sized below the "
                     "in-flight broadcast window");
    return idx;
  }

  std::size_t stride_;
  std::size_t cap_;
  std::uint64_t next_ = 0;
  std::vector<std::uint32_t> crus_;  // stride_ words per slot
  std::vector<std::uint32_t> rrbs_;
  std::vector<std::uint64_t> stamp_;  // snapshot id currently held per slot
};

// ---- Message types -------------------------------------------------------

/// UE → its SP: "propose on my behalf to BS `target`".
struct MsgOffloadRequest {
  UeId ue;
  BsId target;
  std::uint32_t f_u;
};

/// SP → BS: relayed proposal.
struct MsgPropose {
  UeId ue;
  std::uint32_t f_u;
};

/// BS → SP → UE: outcome of a proposal.
struct MsgDecision {
  UeId ue;
  BsId bs;
  bool accept;
};

/// BS → covered UEs: remaining resources after this round, as an index
/// into the snapshot arena the BS published at send time.
struct MsgResourceUpdate {
  BsId bs;
  std::uint32_t snapshot;
};

using Payload = std::variant<MsgOffloadRequest, MsgPropose, MsgDecision, MsgResourceUpdate>;
using Bus = MessageBus<Payload>;

/// Stable sort of proposals by UeId into caller-owned scratch — the
/// stable-sorted permutation is unique, so this is element-for-element
/// identical to std::stable_sort without its per-call temporary-buffer
/// heap allocation (which would break the faulted round loop's
/// zero-allocation budget; tests/core/alloc_test.cpp asserts it).
inline void stable_sort_by_ue(std::vector<ProposalInfo>& v,
                              std::vector<ProposalInfo>& scratch) {
  const std::size_t n = v.size();
  if (scratch.size() < n) scratch.resize(n);  // grow-only; reserved by caller
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t i = lo, j = mid, k = lo;
      // Left run wins ties: that is exactly the stability guarantee.
      while (i < mid && j < hi) scratch[k++] = v[j].ue < v[i].ue ? v[j++] : v[i++];
      while (i < mid) scratch[k++] = v[i++];
      while (j < hi) scratch[k++] = v[j++];
    }
    std::copy(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(n),
              v.begin());
  }
}

}  // namespace dmra::runtime_detail
