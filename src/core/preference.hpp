// DMRA preference functions and the shared selection logic of Alg. 1.
//
// Both the direct solver (core/solver.hpp) and the decentralized agent
// runtime (core/decentralized.hpp) call into these functions, so the two
// implementations cannot drift apart: the equivalence test between them
// is a test of the message protocol, not of duplicated decision code.
//
// All decisions are order-independent (ties broken by explicit ids), so
// the result does not depend on the order proposals happen to arrive in.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mec/ids.hpp"
#include "mec/scenario.hpp"

namespace dmra {

/// Tunables of DMRA itself (Alg. 1 / Eq. 17).
struct DmraConfig {
  /// ρ of Eq. 17: weight of remaining resources in the UE preference.
  /// ρ = 0 makes UEs purely price-driven.
  double rho = 100.0;
  /// Safety bound on iterations; 0 means "no explicit bound" (the
  /// algorithm provably terminates in ≤ |U| iterations anyway).
  std::size_t max_rounds = 0;

  // Ablation switches (bench/abl2_tiebreaks): each disables one design
  // choice of Alg. 1's BS-side preference. Leave at the defaults for the
  // paper's algorithm.
  /// BSs prefer same-SP proposers first (the multi-SP insight).
  bool prefer_same_sp = true;
  /// Tie-break by fewest covering BSs (serve the least-flexible UE first).
  bool use_coverage_count = true;
  /// Tie-break by smallest resource footprint n(u,i) + c_j^u.
  bool use_footprint = true;
  /// If true, a UE rejected by a BS removes that BS from B_u and moves on
  /// (classic one-shot deferred acceptance). Alg. 1's literal reading —
  /// and the default — is false: a rejected UE may re-propose once the
  /// next broadcast shows the BS still serviceable, and only an
  /// *unserviceable* BS leaves B_u (line 10). One-shot rejection burns
  /// candidate options under contention and measurably hurts every metric
  /// (see bench/abl2_tiebreaks).
  bool drop_rejected = false;
};

/// A UE-side view of remaining BS resources. The direct solver backs this
/// with the global ResourceState; a decentralized UE agent backs it with
/// whatever the BSs last broadcast to it.
class ResourceView {
 public:
  virtual ~ResourceView() = default;
  virtual std::uint32_t remaining_crus(BsId i, ServiceId j) const = 0;
  virtual std::uint32_t remaining_rrbs(BsId i) const = 0;
};

/// Eq. 17: v(u,i) = p(i,u) + ρ / (remaining CRUs of u's service at i +
/// remaining RRBs at i). Returns +inf when the denominator is zero
/// (an exhausted BS is never preferred).
double ue_preference_value(const Scenario& scenario, const ResourceView& view, UeId u,
                           BsId i, double rho);

/// Whether BS i can currently serve u according to `view` (service CRUs
/// and RRBs both sufficient; u's link must be a scenario candidate link).
bool view_can_serve(const Scenario& scenario, const ResourceView& view, UeId u, BsId i);

/// Live f_u: candidate BSs of u that can still serve it under `view`.
std::uint32_t live_coverage_count(const Scenario& scenario, const ResourceView& view, UeId u);

/// UE proposal step (Alg. 1 lines 4–10): pick argmin v(u,i) over the
/// shrinking candidate list `b_u`, erasing BSs that can no longer serve u.
/// Returns the chosen BS or nullopt (b_u exhausted → remote cloud).
/// Ties in v are broken toward the smaller BsId.
std::optional<BsId> choose_proposal(const Scenario& scenario, const ResourceView& view,
                                    UeId u, std::vector<BsId>& b_u, double rho);

/// One UE's proposal as seen by a BS: the UE id plus the f_u the UE
/// reported (a BS cannot compute f_u itself — it only knows its own load).
struct ProposalInfo {
  UeId ue;
  std::uint32_t f_u = 0;
};

/// A BS's knowledge of its own remaining resources.
struct BsLocalResources {
  std::vector<std::uint32_t> crus;  ///< per service
  std::uint32_t rrbs = 0;
};

/// BS acceptance step (Alg. 1 lines 11–25): per requested service pick one
/// winner (same-SP pool first, then min f_u, then min footprint
/// n(u,i)+c_j^u, then min UeId), then trim the winner set to the RRB
/// budget by dropping the BS's least-preferred winners. Returns accepted
/// UEs sorted by id. The input order of `proposals` does not matter.
/// `config`'s ablation switches control which tie-breaks participate.
/// Takes `proposals` by const reference: both callers sit on the per-round
/// hot path and reuse their proposal buffers across rounds.
std::vector<UeId> bs_select(const Scenario& scenario, BsId i,
                            const std::vector<ProposalInfo>& proposals,
                            const BsLocalResources& local,
                            const DmraConfig& config = {});

}  // namespace dmra
