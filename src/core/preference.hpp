// DMRA preference functions and the shared selection logic of Alg. 1.
//
// Both the direct solver (core/solver.hpp) and the decentralized agent
// runtime (core/decentralized.hpp) call into these functions, so the two
// implementations cannot drift apart: the equivalence test between them
// is a test of the message protocol, not of duplicated decision code.
//
// All decisions are order-independent (ties broken by explicit ids), so
// the result does not depend on the order proposals happen to arrive in.
//
// Hot-path shape (ROADMAP item 2): the per-round passes run over
// structure-of-arrays rows. A UE's shrinking candidate list B_u lives in
// LiveCandidates as slot indices into the scenario's CSR candidate rows,
// so preference evaluation reads the precomputed candidate_prices() /
// candidate_rrbs() arrays contiguously; bs_select runs its service
// grouping and winner selection inside a caller-owned BsSelectWorkspace.
// Neither allocates once the workspace high-water marks are reached.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <tuple>
#include <vector>

#include "mec/ids.hpp"
#include "mec/scenario.hpp"
#include "util/require.hpp"

namespace dmra {

/// Tunables of DMRA itself (Alg. 1 / Eq. 17).
struct DmraConfig {
  /// ρ of Eq. 17: weight of remaining resources in the UE preference.
  /// ρ = 0 makes UEs purely price-driven.
  double rho = 100.0;
  /// Safety bound on iterations; 0 means "no explicit bound" (the
  /// algorithm provably terminates in ≤ |U| iterations anyway).
  std::size_t max_rounds = 0;

  // Ablation switches (bench/abl2_tiebreaks): each disables one design
  // choice of Alg. 1's BS-side preference. Leave at the defaults for the
  // paper's algorithm.
  /// BSs prefer same-SP proposers first (the multi-SP insight).
  bool prefer_same_sp = true;
  /// Tie-break by fewest covering BSs (serve the least-flexible UE first).
  bool use_coverage_count = true;
  /// Tie-break by smallest resource footprint n(u,i) + c_j^u.
  bool use_footprint = true;
  /// If true, a UE rejected by a BS removes that BS from B_u and moves on
  /// (classic one-shot deferred acceptance). Alg. 1's literal reading —
  /// and the default — is false: a rejected UE may re-propose once the
  /// next broadcast shows the BS still serviceable, and only an
  /// *unserviceable* BS leaves B_u (line 10). One-shot rejection burns
  /// candidate options under contention and measurably hurts every metric
  /// (see bench/abl2_tiebreaks).
  bool drop_rejected = false;
};

/// A UE-side view of remaining BS resources. The direct solver backs this
/// with the global ResourceState; a decentralized UE agent backs it with
/// whatever the BSs last broadcast to it.
class ResourceView {
 public:
  virtual ~ResourceView() = default;
  virtual std::uint32_t remaining_crus(BsId i, ServiceId j) const = 0;
  virtual std::uint32_t remaining_rrbs(BsId i) const = 0;
};

/// Eq. 17: v(u,i) = p(i,u) + ρ / (remaining CRUs of u's service at i +
/// remaining RRBs at i). Returns +inf when the denominator is zero
/// (an exhausted BS is never preferred).
double ue_preference_value(const Scenario& scenario, const ResourceView& view, UeId u,
                           BsId i, double rho);

/// Whether BS i can currently serve u according to `view` (service CRUs
/// and RRBs both sufficient; u's link must be a scenario candidate link).
bool view_can_serve(const Scenario& scenario, const ResourceView& view, UeId u, BsId i);

/// Live f_u: candidate BSs of u that can still serve it under `view`.
std::uint32_t live_coverage_count(const Scenario& scenario, const ResourceView& view, UeId u);

/// UE proposal step (Alg. 1 lines 4–10): pick argmin v(u,i) over the
/// shrinking candidate list `b_u`, erasing BSs that can no longer serve u.
/// Returns the chosen BS or nullopt (b_u exhausted → remote cloud).
/// Ties in v are broken toward the smaller BsId.
std::optional<BsId> choose_proposal(const Scenario& scenario, const ResourceView& view,
                                    UeId u, std::vector<BsId>& b_u, double rho);

/// The per-UE shrinking candidate lists (every B_u of Alg. 1) packed into
/// one flat pool of slot indices into the scenario's CSR candidate rows.
/// Rows never grow, so the pool is sized once by build(); erasing a BS is
/// an order-preserving left shift inside the row. Slot indices are local
/// to the row: scenario.candidates(u)[slot], candidate_prices(u)[slot],
/// and candidate_rrbs(u)[slot] are one row's parallel SoA arrays.
class LiveCandidates {
 public:
  /// Size the pool to the scenario and reset every row to the full
  /// candidate list (slots 0..row-1, ascending BsId).
  void build(const Scenario& scenario);

  std::span<const std::uint32_t> live(UeId u) const {
    return {slots_.data() + offsets_[u.idx()], len_[u.idx()]};
  }
  bool empty(UeId u) const { return len_[u.idx()] == 0; }

  /// Remove the row entry at live-position `pos` (order-preserving).
  void erase_at(UeId u, std::size_t pos) {
    // dmra::hotpath begin(live-candidates)
    const std::size_t base = offsets_[u.idx()];
    std::size_t& len = len_[u.idx()];
    DMRA_REQUIRE(pos < len);
    for (std::size_t k = pos + 1; k < len; ++k) slots_[base + k - 1] = slots_[base + k];
    --len;
    // dmra::hotpath end(live-candidates)
  }

  /// Remove BS `i` from u's row if present (the decentralized runtime's
  /// drop-rejected / presumed-dead paths). Order-preserving.
  void erase_bs(const Scenario& scenario, UeId u, BsId i) {
    const std::span<const BsId> cands = scenario.candidates(u);
    const std::span<const std::uint32_t> row = live(u);
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (cands[row[k]] == i) {
        erase_at(u, k);
        return;
      }
    }
  }

 private:
  std::vector<std::uint32_t> slots_;  ///< flat rows of local slot indices
  std::vector<std::size_t> offsets_;  ///< per-UE row base (full row capacity)
  std::vector<std::size_t> len_;      ///< per-UE live length
};

/// SoA form of choose_proposal: argmin v(u,i) over u's live row, erasing
/// slots whose BS can no longer serve u. `view` is any callable
/// `(std::size_t global_slot, BsId i) -> std::pair<std::uint32_t,
/// std::uint32_t>` returning (remaining CRUs of u's service at i,
/// remaining RRBs at i) — the solver closes over ResourceState, the
/// decentralized runtime over its per-slot broadcast arrays. Bit-for-bit
/// the same arithmetic, iteration order, and tie-breaks as
/// choose_proposal over an equivalent ResourceView.
template <typename ViewFn>
std::optional<BsId> choose_proposal_soa(const Scenario& scenario, LiveCandidates& lc,
                                        UeId u, double rho, ViewFn&& view) {
  DMRA_REQUIRE(rho >= 0.0);
  // dmra::hotpath begin(choose-proposal)
  const std::span<const BsId> cands = scenario.candidates(u);
  const std::span<const double> prices = scenario.candidate_prices(u);
  const std::span<const std::uint32_t> rrb_demand = scenario.candidate_rrbs(u);
  const std::size_t base = scenario.candidate_offset(u);
  const std::uint32_t cru_demand = scenario.ue(u).cru_demand;
  const auto value_of = [&](std::uint32_t slot, std::uint32_t crus, std::uint32_t rrbs) {
    const double remaining = static_cast<double>(crus) + static_cast<double>(rrbs);
    const double price = prices[slot];
    if (remaining <= 0.0)
      return rho > 0.0 ? std::numeric_limits<double>::infinity() : price;
    return price + rho / remaining;
  };
  while (!lc.empty(u)) {
    const std::span<const std::uint32_t> row = lc.live(u);
    // argmin v(u,i); ties toward the smaller BsId for determinism (rows
    // stay ascending in BsId, so the first minimum wins ties).
    std::size_t best = 0;
    auto [best_crus, best_rrbs] = view(base + row[0], cands[row[0]]);
    double best_v = value_of(row[0], best_crus, best_rrbs);
    for (std::size_t n = 1; n < row.size(); ++n) {
      const auto [crus, rrbs] = view(base + row[n], cands[row[n]]);
      const double v = value_of(row[n], crus, rrbs);
      if (v < best_v || (v == best_v && cands[row[n]] < cands[row[best]])) {
        best = n;
        best_v = v;
        best_crus = crus;
        best_rrbs = rrbs;
      }
    }
    const std::uint32_t slot = row[best];
    if (rrb_demand[slot] != 0 && best_crus >= cru_demand && best_rrbs >= rrb_demand[slot])
      return cands[slot];
    // Resources only shrink, so an unserviceable BS stays unserviceable:
    // remove it permanently (Alg. 1 line 10).
    lc.erase_at(u, best);
  }
  return std::nullopt;
  // dmra::hotpath end(choose-proposal)
}

/// SoA form of live_coverage_count: serviceable BSs among u's *full*
/// candidate row (not the shrinking live row — a BS dropped from B_u
/// still counts while the view says it could serve u). Same `view`
/// callable as choose_proposal_soa.
template <typename ViewFn>
std::uint32_t live_coverage_count_soa(const Scenario& scenario, UeId u, ViewFn&& view) {
  // dmra::hotpath begin(coverage-count)
  const std::span<const BsId> cands = scenario.candidates(u);
  const std::span<const std::uint32_t> rrb_demand = scenario.candidate_rrbs(u);
  const std::size_t base = scenario.candidate_offset(u);
  const std::uint32_t cru_demand = scenario.ue(u).cru_demand;
  std::uint32_t n = 0;
  for (std::size_t k = 0; k < cands.size(); ++k) {
    if (rrb_demand[k] == 0) continue;
    const auto [crus, rrbs] = view(base + k, cands[k]);
    if (crus >= cru_demand && rrbs >= rrb_demand[k]) ++n;
  }
  return n;
  // dmra::hotpath end(coverage-count)
}

/// One UE's proposal as seen by a BS: the UE id plus the f_u the UE
/// reported (a BS cannot compute f_u itself — it only knows its own load).
struct ProposalInfo {
  UeId ue;
  std::uint32_t f_u = 0;
};

/// A BS's knowledge of its own remaining resources.
struct BsLocalResources {
  std::vector<std::uint32_t> crus;  ///< per service
  std::uint32_t rrbs = 0;
};

/// Lexicographic BS-side preference: same-SP first, then fewest covering
/// BSs, then smallest resource footprint, then smallest id. Smaller is
/// more preferred.
struct BsPrefKey {
  bool cross_sp;
  std::uint32_t f_u;
  std::uint32_t footprint;
  std::uint32_t ue;

  friend bool operator<(const BsPrefKey& a, const BsPrefKey& b) {
    return std::tie(a.cross_sp, a.f_u, a.footprint, a.ue) <
           std::tie(b.cross_sp, b.f_u, b.footprint, b.ue);
  }
};

/// Caller-owned scratch for bs_select: the counting-sort service grouping,
/// the per-proposal SoA key/feasibility rows, the winner list, and the
/// accepted return buffer. Reuse one instance across rounds — every buffer
/// keeps its capacity, so steady-state calls perform no heap allocation.
class BsSelectWorkspace {
 public:
  /// Optionally warm the buffers (num_services buckets, up to
  /// max_proposals rows) so even the first call does not grow them.
  void reserve(std::size_t num_services, std::size_t max_proposals);

 private:
  friend const std::vector<UeId>& bs_select(const Scenario&, BsId,
                                            std::span<const ProposalInfo>,
                                            const BsLocalResources&, BsSelectWorkspace&,
                                            const DmraConfig&);
  std::vector<std::uint32_t> counts_;    ///< per-service counts, then cursors
  std::vector<std::uint32_t> offsets_;   ///< per-service group begin
  std::vector<BsPrefKey> keys_;          ///< grouped rows: preference key
  std::vector<UeId> ues_;                ///<   …proposer
  std::vector<std::uint32_t> rrbs_;      ///<   …n(u,i) RRB demand
  std::vector<std::uint32_t> demands_;   ///<   …c_j^u CRU demand
  std::vector<std::uint32_t> winners_;   ///< row indices of service winners
  std::vector<UeId> accepted_;           ///< the sorted return buffer
};

/// BS acceptance step (Alg. 1 lines 11–25): per requested service pick one
/// winner (same-SP pool first, then min f_u, then min footprint
/// n(u,i)+c_j^u, then min UeId), then trim the winner set to the RRB
/// budget by dropping the BS's least-preferred winners. Returns accepted
/// UEs sorted by id — a reference into `ws`, valid until the next call on
/// the same workspace. The input order of `proposals` does not matter.
/// `config`'s ablation switches control which tie-breaks participate.
const std::vector<UeId>& bs_select(const Scenario& scenario, BsId i,
                                   std::span<const ProposalInfo> proposals,
                                   const BsLocalResources& local, BsSelectWorkspace& ws,
                                   const DmraConfig& config = {});

/// Convenience overload with a per-call workspace (tests, benches, cold
/// paths). Same decisions; pays the workspace allocations each call.
std::vector<UeId> bs_select(const Scenario& scenario, BsId i,
                            std::span<const ProposalInfo> proposals,
                            const BsLocalResources& local,
                            const DmraConfig& config = {});

/// Braced-list convenience (tests): spans cannot bind initializer lists.
inline std::vector<UeId> bs_select(const Scenario& scenario, BsId i,
                                   std::initializer_list<ProposalInfo> proposals,
                                   const BsLocalResources& local,
                                   const DmraConfig& config = {}) {
  return bs_select(scenario, i,
                   std::span<const ProposalInfo>(proposals.begin(), proposals.size()),
                   local, config);
}

}  // namespace dmra
