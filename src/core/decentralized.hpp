// The decentralized DMRA runtime: Alg. 1 executed by message-passing
// agents, the way the paper's system would actually run.
//
// Roles (paper Fig. 1):
//  * UE agents hold only their own demand, their candidate list, and the
//    resource levels their covering BSs last broadcast; they pick proposals
//    from that local view (Eq. 17) and route them through their SP.
//  * SP agents are the mandatory middle layer: they relay offload requests
//    up to BSs and decisions back down to UEs (a UE never talks to a BS
//    directly — §III-A).
//  * BS agents know only their own remaining CRUs/RRBs; each round they
//    apply the Alg. 1 acceptance rule to the proposals in their inbox,
//    reply accept/reject, and broadcast their new resource levels to the
//    UEs they cover.
//
// The decision logic is the shared code in core/preference.hpp and every
// decision is order-independent, so this runtime provably computes the
// same allocation as the direct solver — tests/core/decentralized_test.cpp
// asserts exact equality across seeds.
//
// Fault tolerance: attach a FaultPlan (net/fault_plan.hpp) through
// NetworkConditions::faults and the runtime survives message loss,
// duplication, delay, BS crashes, and capacity degradation — safe (always
// a feasible allocation, no double-commit) and live (terminates), with
// protocol-level recovery plus a final repair pass. docs/RESILIENCE.md
// documents the full model; with no plan (or a fault-free one) the run is
// byte-identical to the unhardened runtime (golden-tested).
#pragma once

#include <cstdint>

#include "core/preference.hpp"
#include "core/solver.hpp"
#include "net/fault_plan.hpp"
#include "net/stats.hpp"

namespace dmra {

/// Bounds on the protocol-level recovery machinery. Only consulted when a
/// FaultPlan with FaultPlan::any() is attached; otherwise inert.
struct RecoveryConfig {
  /// A UE re-proposes to the same BS at most this many consecutive times
  /// without hearing a decision before it presumes the BS dead and erases
  /// it from its candidate list (bounded re-propose).
  std::size_t max_reproposals = 3;
  /// A matched UE that hears nothing from its serving BS (no broadcast,
  /// no decision) for more than this many consecutive rounds suspects a
  /// crash and re-enters the matching. Under faults BSs rebroadcast every
  /// round, so silence is a strong crash signal; a false suspicion of a
  /// live BS is healed by its idempotent re-ack.
  std::size_t suspect_after = 3;
  /// Run the post-protocol repair pass: orphans of crashed BSs that the
  /// live protocol could not re-place are re-matched once against the
  /// surviving capacity (solve_dmra_partial); whoever still cannot be
  /// placed stays at the cloud — the graceful-degradation floor.
  bool final_repair = true;
};

/// What the fault machinery injected and what the recovery machinery won
/// back. All zeros when no fault plan was attached.
struct FaultRecoveryStats {
  std::uint64_t bs_crashes = 0;            ///< scheduled crashes applied
  std::uint64_t bs_recoveries = 0;         ///< scheduled recoveries applied
  std::uint64_t capacity_degradations = 0; ///< scheduled degradations applied
  std::uint64_t orphaned_ues = 0;          ///< admissions voided by crashes
  std::uint64_t reproposals = 0;           ///< proposals re-sent after a silent round trip
  std::uint64_t presumed_dead = 0;         ///< (UE, BS) candidate links given up on
  std::uint64_t suspected_serving_bs = 0;  ///< matched UEs that re-entered on silence
  std::uint64_t repaired_in_protocol = 0;  ///< orphans re-admitted by the live protocol
  std::uint64_t repaired_by_rematch = 0;   ///< orphans re-placed by the final repair pass
  std::uint64_t cloud_fallbacks = 0;       ///< orphans left at the cloud (degradation floor)
  std::uint64_t repair_rounds = 0;         ///< matching rounds the repair pass ran
  double recovered_profit = 0.0;           ///< Eq. 5 profit of re-placed orphans
};

/// Heap-allocation accounting for the protocol's round loop, sampled from
/// util/alloc_hook.hpp. Only meaningful when the running binary installed
/// a counting probe (perf_report and the zero-allocation test link the
/// dmra_alloc_count overrides); otherwise measured stays false and the
/// sampling costs one branch per round. Deterministic: counts operator
/// new calls on this thread, not bytes or malloc internals.
struct AllocCounters {
  bool measured = false;             ///< a counting probe was installed
  std::uint64_t settle_rounds = 0;   ///< warmup rounds excluded from steady state
  std::uint64_t steady_state_allocations = 0;  ///< allocations in rounds >= settle_rounds
  std::uint64_t total_allocations = 0;         ///< allocations across the whole round loop
};

/// DmraResult plus the communication cost of reaching it.
struct DecentralizedResult {
  DmraResult dmra;  ///< allocation + convergence diagnostics
  BusStats bus;     ///< message-bus traffic, incl. fault-injected drops/dups/delays
  /// Fault and recovery accounting; all zeros without a fault plan.
  FaultRecoveryStats recovery;
  /// Round-loop heap-allocation accounting (see AllocCounters).
  AllocCounters alloc;
};

/// Optional network impairment for the protocol run. With loss enabled
/// the protocol stays safe (no double-commit, always a feasible
/// allocation) and live (terminates), at the cost of allocation quality:
/// BSs re-ack duplicate proposals idempotently, rebroadcast their
/// resource levels every round, and UEs fall back to the static BS
/// capacities for candidates they have not heard from yet.
struct NetworkConditions {
  /// Probability that any single message is lost, in [0, 1). 0 = the
  /// reliable bus (bit-identical to the direct solver). Mutually
  /// exclusive with `faults` — a plan carries its own loss model in
  /// FaultPlan::link.
  double drop_probability = 0.0;
  /// Seed for the bus's fault streams (drop/duplicate/delay draws).
  std::uint64_t seed = 0;
  /// Optional fault schedule (not owned; must outlive the run). nullptr —
  /// or a plan with FaultPlan::any() == false — leaves the runtime on its
  /// fault-free path, byte-identical to not having the field at all.
  const FaultPlan* faults = nullptr;
  /// Recovery bounds; only consulted when `faults` injects something.
  RecoveryConfig recovery = {};
};

/// Run the message-passing DMRA protocol to completion. Deterministic for
/// a fixed (scenario, config, net) triple, including under faults.
DecentralizedResult run_decentralized_dmra(const Scenario& scenario,
                                           const DmraConfig& config = {},
                                           const NetworkConditions& net = {});

// ---- Region-sharded runtime ------------------------------------------------

/// How to shard a run_sharded_dmra call. The partition itself is derived
/// from the scenario (mec/scenario.hpp: partition_regions).
struct ShardConfig {
  /// Number of spatial regions / worker shards. Clamped to
  /// [1, max(1, |B|)] by the partition; 1 reproduces the single-bus
  /// allocation exactly.
  std::size_t num_shards = 1;
  /// Worker threads for the shard fan-out: 0 = hardware concurrency,
  /// 1 = run shards inline on the calling thread. The result is
  /// byte-identical for every value (obs::traced_parallel_map contract).
  std::size_t jobs = 1;
};

/// What the shard pass and the reconcile pass did. The boundary counters
/// are semantic outputs: tools/bench_diff.py fails a perf diff that moves
/// them (they change only when the partition or the protocol changes).
struct ShardStats {
  std::size_t num_shards = 0;        ///< regions actually used (post-clamp)
  std::size_t jobs = 0;              ///< resolved worker count
  std::size_t interior_ues = 0;      ///< UEs matched inside one shard
  std::size_t boundary_ues = 0;      ///< UEs whose candidates straddle a cut
  std::size_t cloud_only_ues = 0;    ///< UEs with no candidates at all
  std::size_t boundary_ues_reconciled = 0;  ///< boundary UEs the reconcile pass placed
  std::size_t reconcile_rounds = 0;  ///< matching rounds of the reconcile pass
  std::size_t max_shard_rounds = 0;  ///< deepest shard's protocol rounds
  std::vector<std::size_t> rounds_per_shard;  ///< indexed by region
};

/// DmraResult plus the aggregated communication cost and shard accounting.
struct ShardedResult {
  DmraResult dmra;   ///< merged allocation + summed convergence diagnostics
  BusStats bus;      ///< field-wise sum over the per-shard buses
  ShardStats shard;  ///< partition + reconcile accounting
};

/// Run DMRA as parallel region-local protocols over per-shard message
/// buses, then reconcile boundary UEs deterministically.
///
/// The arena is partitioned into `shard.num_shards` vertical strips
/// (partition_regions); each region gets its own MessageBus carrying only
/// that region's UE and BS agents (every SP registers a relay on every
/// bus — SPs are operators, not places). Interior UEs — candidates all in
/// one region — run the standard reliable protocol against their region's
/// bus, in parallel across shards with zero shared mutable state.
/// Boundary UEs sit out the shard pass and are matched afterwards by a
/// deterministic single-threaded solve_dmra_partial against the residual
/// post-shard resources, so every shard count yields a feasible
/// allocation and num_shards == 1 is bit-identical to the single-bus
/// oracle (tests/core/sharded_test.cpp). For num_shards > 1 the profit
/// may differ from the oracle only through boundary UEs being matched
/// after interior ones — a bounded, measured gap (docs/PERFORMANCE.md).
///
/// Deterministic for a fixed (scenario, config, num_shards) triple and
/// every jobs value. Fault injection is not supported on the sharded
/// path (the single-bus runtime is the fault-tolerance story); there is
/// deliberately no NetworkConditions parameter.
ShardedResult run_sharded_dmra(const Scenario& scenario, const DmraConfig& config = {},
                               const ShardConfig& shard = {});

}  // namespace dmra
