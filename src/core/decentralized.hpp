// The decentralized DMRA runtime: Alg. 1 executed by message-passing
// agents, the way the paper's system would actually run.
//
// Roles (paper Fig. 1):
//  * UE agents hold only their own demand, their candidate list, and the
//    resource levels their covering BSs last broadcast; they pick proposals
//    from that local view (Eq. 17) and route them through their SP.
//  * SP agents are the mandatory middle layer: they relay offload requests
//    up to BSs and decisions back down to UEs (a UE never talks to a BS
//    directly — §III-A).
//  * BS agents know only their own remaining CRUs/RRBs; each round they
//    apply the Alg. 1 acceptance rule to the proposals in their inbox,
//    reply accept/reject, and broadcast their new resource levels to the
//    UEs they cover.
//
// The decision logic is the shared code in core/preference.hpp and every
// decision is order-independent, so this runtime provably computes the
// same allocation as the direct solver — tests/core/decentralized_test.cpp
// asserts exact equality across seeds.
#pragma once

#include "core/preference.hpp"
#include "core/solver.hpp"
#include "net/stats.hpp"

namespace dmra {

/// DmraResult plus the communication cost of reaching it.
struct DecentralizedResult {
  DmraResult dmra;
  BusStats bus;
};

/// Optional network impairment for the protocol run. With loss enabled
/// the protocol stays safe (no double-commit, always a feasible
/// allocation) and live (terminates), at the cost of allocation quality:
/// BSs re-ack duplicate proposals idempotently, rebroadcast their
/// resource levels every round, and UEs fall back to the static BS
/// capacities for candidates they have not heard from yet.
struct NetworkConditions {
  /// Probability that any single message is lost, in [0, 1). 0 = the
  /// reliable bus (bit-identical to the direct solver).
  double drop_probability = 0.0;
  std::uint64_t seed = 0;
};

/// Run the message-passing DMRA protocol to completion.
DecentralizedResult run_decentralized_dmra(const Scenario& scenario,
                                           const DmraConfig& config = {},
                                           const NetworkConditions& net = {});

}  // namespace dmra
