// Region-sharded decentralized DMRA (ROADMAP item 1): the arena is cut
// into vertical strips, each strip runs the reliable single-bus protocol
// over its own MessageBus in a worker shard, and boundary UEs — whose
// candidate sets straddle a cut — are matched afterwards in one
// deterministic reconcile pass against the residual resources.
//
// Parallel-safety inventory (everything a shard touches concurrently):
//  * Scenario, RegionPartition — immutable, shared read-only.
//  * view_crus / view_rrbs — flat per-candidate-slot arrays; a slot
//    belongs to exactly one UE and an interior UE to exactly one shard,
//    so writes are disjoint by construction.
//  * LiveCandidates — per-UE rows in a flat pool; same disjointness.
//  * Everything else (bus, agents, snapshot ring, workspaces, outcome
//    buffers) is shard-local.
// No locks, no atomics; the parallel_map barrier publishes all writes.
//
// Determinism: shard outcomes are merged in region order and the
// reconcile pass is single-threaded, so the result is identical for
// every `jobs` value; tracing goes through obs::TraceShards, which makes
// the merged trace byte-identical too (same contract as sim/experiment).

#include "core/decentralized.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "core/runtime_detail.hpp"
#include "mec/audit.hpp"
#include "mec/resources.hpp"
#include "obs/recorder.hpp"
#include "obs/shard.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace dmra {

namespace {

using runtime_detail::Bus;
using runtime_detail::MsgDecision;
using runtime_detail::MsgOffloadRequest;
using runtime_detail::MsgPropose;
using runtime_detail::MsgResourceUpdate;
using runtime_detail::SnapshotRing;

struct ShardUe {
  UeId ue;
  AgentId address;
  AgentId sp_address;
  bool matched = false;
  bool at_cloud = false;
};

struct ShardBs {
  BsId bs;
  AgentId address;
  BsLocalResources resources;
  std::vector<AgentId> covered_ues;  // broadcast audience, member UEs only
};

/// Everything one shard hands back to the coordinating thread.
struct ShardOutcome {
  std::vector<std::pair<UeId, BsId>> assigned;
  BusStats bus;
  std::size_t rounds = 0;
  std::size_t proposals = 0;
  std::size_t rejections = 0;
};

/// The reliable single-bus protocol restricted to one region's members.
/// Structurally a copy of run_decentralized_dmra's fault-free path: same
/// phases, same messages, same decision code (choose_proposal_soa /
/// bs_select) — which is why num_shards == 1 reproduces the oracle's
/// allocation exactly. The fault/recovery machinery is deliberately
/// absent (see run_sharded_dmra's doc comment).
ShardOutcome run_shard(const Scenario& scenario, const DmraConfig& config,
                       const RegionPartition& part, std::size_t region,
                       std::vector<std::uint32_t>& view_crus,
                       std::vector<std::uint32_t>& view_rrbs, LiveCandidates& b_u) {
  ShardOutcome out;
  const std::span<const UeId> member_ues = part.ues_in(region);
  const std::span<const BsId> member_bss = part.bss_in(region);
  if (member_ues.empty()) return out;  // nothing can match; skip the bus entirely

  Bus bus;
  const std::size_t nk = scenario.num_sps();

  // Registration order (SPs, member UEs ascending, member BSs ascending)
  // mirrors the oracle so the (recipient, seq) delivery order — and with
  // it every inbox iteration — lines up at num_shards == 1.
  std::vector<AgentId> sp_addr(nk);
  for (std::size_t k = 0; k < nk; ++k) sp_addr[k] = bus.register_agent();

  // Local member index per UE (kNotLocal elsewhere): the SP relay routes
  // decisions by UeId, and audience building needs the member's address.
  constexpr std::uint32_t kNotLocal = 0xFFFFFFFFu;
  std::vector<std::uint32_t> ue_local(scenario.num_ues(), kNotLocal);
  std::vector<ShardUe> ue_agents;
  ue_agents.reserve(member_ues.size());
  for (const UeId u : member_ues) {
    ShardUe a;
    a.ue = u;
    a.address = bus.register_agent();
    a.sp_address = sp_addr[scenario.ue(u).sp.idx()];
    ue_local[u.idx()] = static_cast<std::uint32_t>(ue_agents.size());
    // Prefill this member's view slots with the static capacities — the
    // optimistic prior the oracle grants a UE before the bootstrap wave.
    const auto cands = scenario.candidates(u);
    const std::size_t off = scenario.candidate_offset(u);
    const std::size_t svc = scenario.ue(u).service.idx();
    for (std::size_t c = 0; c < cands.size(); ++c) {
      const BaseStation& bsc = scenario.bs(cands[c]);
      view_crus[off + c] = bsc.cru_capacity[svc];
      view_rrbs[off + c] = bsc.num_rrbs;
    }
    ue_agents.push_back(a);
  }

  // Local index of each member BS (kNotLocal for the rest of the arena);
  // the SP relay uses it to route proposals, and an interior UE proposing
  // outside its region would be a partition bug, not a routing miss.
  std::vector<std::uint32_t> bs_local(scenario.num_bss(), kNotLocal);
  std::vector<ShardBs> bs_agents(member_bss.size());
  for (std::size_t bi = 0; bi < member_bss.size(); ++bi) {
    ShardBs& a = bs_agents[bi];
    a.bs = member_bss[bi];
    a.address = bus.register_agent();
    const BaseStation& b = scenario.bs(a.bs);
    a.resources.crus = b.cru_capacity;
    a.resources.rrbs = b.num_rrbs;
    bs_local[a.bs.idx()] = static_cast<std::uint32_t>(bi);
  }
  // Broadcast audiences from the candidate sets (a UE only ever reads
  // candidate slots, so covering-but-non-candidate broadcasts would be
  // dead traffic): count, reserve, fill — UE-ascending per BS.
  for (const UeId u : member_ues)
    for (const BsId i : scenario.candidates(u)) {
      DMRA_REQUIRE_MSG(bs_local[i.idx()] != kNotLocal,
                       "interior UE with a candidate outside its region");
      bs_agents[bs_local[i.idx()]].covered_ues.push_back(
          ue_agents[ue_local[u.idx()]].address);
    }

  std::size_t sum_covered = 0;
  for (const ShardBs& b : bs_agents) sum_covered += b.covered_ues.size();
  bus.reserve(2 * member_ues.size() + sum_covered);

  SnapshotRing arena(scenario.num_services(),
                     std::max<std::size_t>(1, bs_agents.size() * 8));

  obs::TraceRecorder* const rec = obs::recorder();
  double traced_profit = 0.0;
  if (rec != nullptr) {
    rec->take_tally();
    rec->set_round(0);
    obs::TraceEvent e;
    e.kind = obs::EventKind::kPhase;
    e.label = "core/sharded:bootstrap";
    e.value = bs_agents.size();
    rec->record(e);
  }

  // ---- Bootstrap: every member BS broadcasts its initial levels.
  for (ShardBs& b : bs_agents) {
    const std::uint32_t snapshot = arena.publish(b.resources);
    for (AgentId ue_addr : b.covered_ues)
      bus.send(b.address, ue_addr, MsgResourceUpdate{b.bs, snapshot});
    if (rec != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kBroadcast;
      e.bs = b.bs.value;
      e.value = b.covered_ues.size();
      rec->record(e);
    }
  }
  bus.deliver();

  const std::size_t round_limit =
      config.max_rounds > 0 ? config.max_rounds : member_ues.size() + 1;

  std::vector<ProposalInfo> fresh;
  fresh.reserve(member_ues.size());
  BsSelectWorkspace ws;
  ws.reserve(scenario.num_services(), member_ues.size());

  for (std::size_t round = 0; round < round_limit; ++round) {
    const std::uint64_t msgs_before = bus.stats().messages_sent;
    if (rec != nullptr) rec->set_round(round);

    // ---- UE phase: ingest broadcasts & decisions, then propose.
    std::size_t sent_this_round = 0;
    for (ShardUe& a : ue_agents) {
      const std::span<const BsId> cands = scenario.candidates(a.ue);
      const std::size_t off = scenario.candidate_offset(a.ue);
      const std::size_t svc = scenario.ue(a.ue).service.idx();
      for (auto& env : bus.take_inbox(a.address)) {
        if (auto* upd = std::get_if<MsgResourceUpdate>(&env.payload)) {
          const auto it = std::lower_bound(cands.begin(), cands.end(), upd->bs);
          if (it != cands.end() && *it == upd->bs) {
            const std::size_t slot = off + static_cast<std::size_t>(it - cands.begin());
            view_crus[slot] = arena.crus(upd->snapshot, svc);
            view_rrbs[slot] = arena.rrbs(upd->snapshot);
          }
        } else if (auto* dec = std::get_if<MsgDecision>(&env.payload)) {
          if (dec->accept) {
            a.matched = true;
          } else if (config.drop_rejected) {
            b_u.erase_bs(scenario, a.ue, dec->bs);
          }
        }
      }
      if (a.matched || a.at_cloud) continue;
      const auto view = [&view_crus, &view_rrbs](std::size_t slot, BsId) {
        return std::pair<std::uint32_t, std::uint32_t>{view_crus[slot], view_rrbs[slot]};
      };
      const auto choice = choose_proposal_soa(scenario, b_u, a.ue, config.rho, view);
      if (!choice) {
        a.at_cloud = true;
        continue;
      }
      const auto f_u = live_coverage_count_soa(scenario, a.ue, view);
      bus.send(a.address, a.sp_address, MsgOffloadRequest{a.ue, *choice, f_u});
      ++sent_this_round;
      if (rec != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kProposal;
        e.ue = a.ue.value;
        e.bs = choice->value;
        e.service = scenario.ue(a.ue).service.value;
        e.value = f_u;
        rec->record(e);
      }
    }
    bus.deliver();
    if (sent_this_round == 0) break;  // reliable bus: quiet means converged
    out.proposals += sent_this_round;
    ++out.rounds;

    // ---- SP relay phase (up): forward offload requests to the BSs.
    for (std::size_t k = 0; k < nk; ++k) {
      for (auto& env : bus.take_inbox(sp_addr[k])) {
        const auto& req = std::get<MsgOffloadRequest>(env.payload);
        bus.send(sp_addr[k], bs_agents[bs_local[req.target.idx()]].address,
                 MsgPropose{req.ue, req.f_u});
      }
    }
    bus.deliver();

    // ---- BS phase: select, commit locally, reply, broadcast.
    std::size_t accepted_this_round = 0;
    for (ShardBs& b : bs_agents) {
      fresh.clear();
      for (auto& env : bus.take_inbox(b.address)) {
        const auto& p = std::get<MsgPropose>(env.payload);
        fresh.push_back(ProposalInfo{p.ue, p.f_u});
      }
      if (fresh.empty()) continue;

      const std::vector<UeId>& accepted =
          bs_select(scenario, b.bs, fresh, b.resources, ws, config);
      for (UeId u : accepted) {
        const UserEquipment& e = scenario.ue(u);
        const LinkStats& l = scenario.link(u, b.bs);
        DMRA_REQUIRE(b.resources.crus[e.service.idx()] >= e.cru_demand);
        DMRA_REQUIRE(b.resources.rrbs >= l.n_rrbs);
        b.resources.crus[e.service.idx()] -= e.cru_demand;
        b.resources.rrbs -= l.n_rrbs;
        out.assigned.emplace_back(u, b.bs);
        ++accepted_this_round;
        if (rec != nullptr) traced_profit += scenario.pair_profit(u, b.bs);
      }
      for (const ProposalInfo& p : fresh) {
        const bool ok = std::binary_search(accepted.begin(), accepted.end(), p.ue);
        bus.send(b.address, sp_addr[scenario.ue(p.ue).sp.idx()],
                 MsgDecision{p.ue, b.bs, ok});
      }
      const std::uint32_t snapshot = arena.publish(b.resources);
      for (AgentId ue_addr : b.covered_ues)
        bus.send(b.address, ue_addr, MsgResourceUpdate{b.bs, snapshot});
      if (rec != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kBroadcast;
        e.bs = b.bs.value;
        e.value = b.covered_ues.size();
        rec->record(e);
      }
    }
    bus.deliver();
    out.rejections += sent_this_round >= accepted_this_round
                          ? sent_this_round - accepted_this_round
                          : 0;

    // ---- SP relay phase (down): forward decisions to the UEs.
    for (std::size_t k = 0; k < nk; ++k) {
      for (auto& env : bus.take_inbox(sp_addr[k])) {
        const auto& dec = std::get<MsgDecision>(env.payload);
        bus.send(sp_addr[k], ue_agents[ue_local[dec.ue.idx()]].address, dec);
      }
    }
    bus.deliver();

    if (rec != nullptr) {
      const obs::EventTally tally = rec->take_tally();
      obs::RoundRow row;
      row.source = "core/sharded";
      row.round = out.rounds - 1;
      row.proposals = tally.proposals;
      row.accepts = tally.accepts;
      row.rejects = tally.rejects;
      row.trim_evictions = tally.trim_evictions;
      row.broadcasts = tally.broadcasts;
      row.messages = bus.stats().messages_sent - msgs_before;
      std::size_t settled = 0;
      for (const ShardUe& a : ue_agents)
        if (a.matched || a.at_cloud) ++settled;
      row.unmatched_ues = ue_agents.size() - settled;
      row.cumulative_profit = traced_profit;
      for (const ShardBs& b : bs_agents) {
        for (const std::uint32_t c : b.resources.crus) row.cru_headroom += c;
        row.rrb_headroom += b.resources.rrbs;
      }
      rec->finish_round(row);
    }
  }

  out.bus = bus.stats();
  return out;
}

}  // namespace

ShardedResult run_sharded_dmra(const Scenario& scenario, const DmraConfig& config,
                               const ShardConfig& shard) {
  DMRA_REQUIRE(config.rho >= 0.0);
  const std::size_t nu = scenario.num_ues();
  const RegionPartition part = partition_regions(scenario, shard.num_shards);
  const std::size_t nr = part.num_regions;
  const std::size_t jobs =
      shard.jobs == 0 ? ThreadPool::hardware_concurrency() : shard.jobs;

  ShardedResult result;
  result.dmra.allocation = Allocation(nu);
  result.shard.num_shards = nr;
  result.shard.jobs = jobs;
  result.shard.interior_ues = part.region_ues.size();
  result.shard.boundary_ues = part.boundary_ues.size();
  result.shard.cloud_only_ues = part.cloud_ues.size();

  // Shared-by-disjoint-writes state (see the file comment).
  std::vector<std::uint32_t> view_crus(scenario.num_candidate_slots());
  std::vector<std::uint32_t> view_rrbs(scenario.num_candidate_slots());
  LiveCandidates b_u;
  b_u.build(scenario);

  std::vector<ShardOutcome> outcomes = obs::traced_parallel_map(
      jobs, nr, [&](std::size_t region) {
        return run_shard(scenario, config, part, region, view_crus, view_rrbs, b_u);
      });

  // ---- Merge in region order (deterministic for every jobs value).
  result.shard.rounds_per_shard.reserve(nr);
  for (const ShardOutcome& o : outcomes) {
    for (const auto& [u, bs] : o.assigned) result.dmra.allocation.assign(u, bs);
    result.dmra.proposals_sent += o.proposals;
    result.dmra.rejections += o.rejections;
    result.shard.rounds_per_shard.push_back(o.rounds);
    result.shard.max_shard_rounds = std::max(result.shard.max_shard_rounds, o.rounds);
    result.bus.rounds += o.bus.rounds;
    result.bus.messages_sent += o.bus.messages_sent;
    result.bus.messages_delivered += o.bus.messages_delivered;
    result.bus.messages_dropped += o.bus.messages_dropped;
    result.bus.messages_duplicated += o.bus.messages_duplicated;
    result.bus.messages_delayed += o.bus.messages_delayed;
  }
  result.dmra.rounds = result.shard.max_shard_rounds;

  // ---- Reconcile: boundary UEs are matched against whatever the shards
  // left, by the same Alg. 1 decision code running single-threaded. The
  // pass is deterministic (fixed UE order, fixed residual state), so the
  // whole run is reproducible for any shard count.
  if (!part.boundary_ues.empty()) {
    std::vector<bool> matched(nu, true);
    for (const UeId u : part.boundary_ues) matched[u.idx()] = false;
    ResourceState state(scenario);
    for (std::size_t ui = 0; ui < nu; ++ui) {
      const UeId u{static_cast<std::uint32_t>(ui)};
      if (const auto bs = result.dmra.allocation.bs_of(u)) state.commit(u, *bs);
    }
    DmraResult reconcile;
    {
      // Same muting the repair pass uses: the partial solver's ledger
      // reports are relative to a mid-run state the auditor cannot
      // recount; the merged allocation is re-audited manually below.
      audit::ScopedAuditObserver mute(nullptr);
      reconcile =
          solve_dmra_partial(scenario, config, state, result.dmra.allocation, matched);
    }
    result.shard.reconcile_rounds = reconcile.rounds;
    result.dmra.proposals_sent += reconcile.proposals_sent;
    result.dmra.rejections += reconcile.rejections;
    for (const UeId u : part.boundary_ues)
      if (!result.dmra.allocation.is_cloud(u)) ++result.shard.boundary_ues_reconciled;
  }

  if (DMRA_AUDIT_ACTIVE()) {
    audit::RoundContext ctx;  // feasibility-only: no single ledger spans shards
    ctx.scenario = &scenario;
    ctx.allocation = &result.dmra.allocation;
    ctx.round = 0;
    ctx.source = "core/sharded";
    audit::observer()->on_round(ctx);
  }

  obs::TraceRecorder* const rec = obs::recorder();
  if (rec != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kPhase;
    e.label = "core/sharded:reconcile";
    e.value = part.boundary_ues.size();
    rec->record(e);
    obs::TraceEvent t;
    t.kind = obs::EventKind::kTermination;
    t.flag = true;
    t.value = result.dmra.rounds;
    t.label = "core/sharded";
    rec->record(t);
    obs::publish_bus_stats(result.bus, rec->metrics());
    obs::MetricsRegistry& m = rec->metrics();
    m.add_counter("shard.num_shards", result.shard.num_shards);
    m.add_counter("shard.interior_ues", result.shard.interior_ues);
    m.add_counter("shard.boundary_ues", result.shard.boundary_ues);
    m.add_counter("shard.cloud_only_ues", result.shard.cloud_only_ues);
    m.add_counter("shard.boundary_ues_reconciled", result.shard.boundary_ues_reconciled);
    m.add_counter("shard.reconcile_rounds", result.shard.reconcile_rounds);
    m.add_counter("shard.max_shard_rounds", result.shard.max_shard_rounds);
  }
  if (obs::FlightRecorder* const fr = obs::flight(); fr != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kPhase;
    e.label = "core/sharded:reconcile";
    e.value = part.boundary_ues.size();
    fr->record(e);
    obs::TraceEvent t;
    t.kind = obs::EventKind::kTermination;
    t.flag = true;
    t.value = result.dmra.rounds;
    t.label = "core/sharded";
    fr->record(t);
    obs::publish_bus_stats(result.bus, fr->metrics());
    obs::MetricsRegistry& m = fr->metrics();
    m.add_counter("shard.num_shards", result.shard.num_shards);
    m.add_counter("shard.boundary_ues_reconciled", result.shard.boundary_ues_reconciled);
    m.add_counter("shard.reconcile_rounds", result.shard.reconcile_rounds);
    // Per-region series, labeled for the Prometheus exposition
    // (obs/exposition.hpp): the flight registry is a new surface with no
    // goldens, so the labeled names live here and not in the trace
    // registry above.
    std::string name;
    for (std::size_t r = 0; r < result.shard.rounds_per_shard.size(); ++r) {
      name = "shard.rounds{shard=\"" + std::to_string(r) + "\"}";
      m.add_counter(name, result.shard.rounds_per_shard[r]);
    }
  }
  return result;
}

}  // namespace dmra
