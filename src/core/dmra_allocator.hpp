// Allocator adapters for DMRA so experiments can treat it uniformly with
// the baselines.
#pragma once

#include "core/decentralized.hpp"
#include "core/solver.hpp"
#include "mec/allocator.hpp"

namespace dmra {

/// DMRA via the direct solver (the fast path used by benches).
class DmraAllocator final : public Allocator {
 public:
  explicit DmraAllocator(DmraConfig config = {}) : config_(config) {}
  std::string name() const override { return "DMRA"; }
  Allocation allocate(const Scenario& scenario) const override {
    return solve_dmra(scenario, config_).allocation;
  }
  const DmraConfig& config() const { return config_; }

 private:
  DmraConfig config_;
};

/// DMRA via the message-passing runtime — same allocation, with the full
/// protocol cost; used by equivalence tests and the decentralized example.
class DecentralizedDmraAllocator final : public Allocator {
 public:
  explicit DecentralizedDmraAllocator(DmraConfig config = {}) : config_(config) {}
  std::string name() const override { return "DMRA-decentralized"; }
  Allocation allocate(const Scenario& scenario) const override {
    return run_decentralized_dmra(scenario, config_).dmra.allocation;
  }

 private:
  DmraConfig config_;
};

}  // namespace dmra
