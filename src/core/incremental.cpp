#include "core/incremental.hpp"

#include <algorithm>

#include "mec/audit.hpp"
#include "mec/resources.hpp"
#include "obs/flight.hpp"
#include "obs/recorder.hpp"
#include "util/require.hpp"

namespace dmra {

IncrementalResult solve_incremental_dmra(const Scenario& scenario,
                                         const Allocation& previous,
                                         const IncrementalConfig& config) {
  DMRA_REQUIRE(previous.num_ues() == scenario.num_ues());
  DMRA_REQUIRE(config.hysteresis_margin >= 0.0);

  IncrementalResult result;
  ResourceState state(scenario);
  Allocation allocation(scenario.num_ues());
  std::vector<bool> matched(scenario.num_ues(), false);

  // Phase 1: carry over what still works. Commit in UE-id order so a BS
  // that can no longer hold *all* its previous UEs keeps a deterministic
  // prefix of them.
  // dmra::hotpath begin(carry-over)
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto bs = previous.bs_of(u);
    if (!bs) continue;
    if (!state.can_serve(u, *bs)) {
      ++result.invalidated;
      continue;
    }
    state.commit(u, *bs);
    allocation.assign(u, *bs);
    matched[ui] = true;
  }
  // dmra::hotpath end(carry-over)

  // Phase 2: hysteresis — release kept UEs whose current deal has drifted
  // far from their best alternative. (Release before re-matching so the
  // freed capacity is visible to the rematch round.)
  // dmra::hotpath begin(hysteresis)
  if (config.hysteresis_margin < 1e17) {
    for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
      if (!matched[ui]) continue;
      const UeId u{static_cast<std::uint32_t>(ui)};
      const BsId current = *allocation.bs_of(u);
      const double current_price = scenario.price(u, current);
      double best_price = current_price;
      // Candidate prices are precomputed per slot at scenario build; the
      // carried BS may have left the candidate set, so it is priced above.
      for (const double p : scenario.candidate_prices(u))
        best_price = std::min(best_price, p);
      if (current_price - best_price > config.hysteresis_margin) {
        state.release(u, current);
        allocation.assign_cloud(u);
        matched[ui] = false;
        ++result.released;
      }
    }
  }
  // dmra::hotpath end(hysteresis)
  result.kept = allocation.num_served();
  // Audit the carry-over + hysteresis state before the rematch: catches a
  // kept assignment that is no longer feasible or an unpaired release.
  if (DMRA_AUDIT_ACTIVE())
    audit::report_state_round("core/incremental", 0, scenario, allocation, state);

  obs::TraceRecorder* const rec = obs::recorder();
  obs::FlightRecorder* const fr = obs::flight();
  if (rec != nullptr || fr != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kPhase;
    e.label = "core/incremental:carry-over";
    e.value = result.kept;
    const auto publish = [&](obs::MetricsRegistry& m) {
      m.add_counter("incremental.kept", result.kept);
      m.add_counter("incremental.released", result.released);
      m.add_counter("incremental.invalidated", result.invalidated);
    };
    if (rec != nullptr) {
      publish(rec->metrics());
      rec->record(e);
    }
    if (fr != nullptr) {
      publish(fr->metrics());
      fr->record(e);
    }
  }

  // Phase 3: match everyone displaced or never-assigned.
  result.rematch = solve_dmra_partial(scenario, config.dmra, state, allocation, matched);
  result.allocation = allocation;
  return result;
}

IncrementalAllocator::IncrementalAllocator(const Scenario& scenario,
                                           IncrementalConfig config)
    : scenario_(&scenario),
      config_(config),
      state_(scenario),
      allocation_(scenario.num_ues()),
      active_(scenario.num_ues(), false),
      clamped_(scenario.num_bss(), false) {}

std::optional<BsId> IncrementalAllocator::admit(UeId u) {
  DMRA_REQUIRE_MSG(!active_[u.idx()], "admit on an already-active slot");
  active_[u.idx()] = true;
  ++num_active_;
  return place(u);
}

std::optional<BsId> IncrementalAllocator::reattempt(UeId u) {
  DMRA_REQUIRE_MSG(active_[u.idx()], "reattempt on an inactive slot");
  DMRA_REQUIRE_MSG(allocation_.is_cloud(u), "reattempt on a served slot");
  return place(u);
}

std::optional<BsId> IncrementalAllocator::place(UeId u) {
  // Alg. 1 with a single proposer: arg-min Eq. 17 preference over the
  // serviceable candidates; an uncontended BS accepts any feasible
  // proposal, so the first proposal round decides.
  // dmra::hotpath begin(admit-one)
  const UserEquipment& e = scenario_->ue(u);
  const std::span<const BsId> cands = scenario_->candidates(u);
  const std::span<const double> prices = scenario_->candidate_prices(u);
  const std::span<const std::uint32_t> rrbs = scenario_->candidate_rrbs(u);
  std::optional<BsId> best;
  double best_v = 0.0;
  std::uint32_t live_fu = 0;
  for (std::size_t k = 0; k < cands.size(); ++k) {
    const BsId i = cands[k];
    const std::uint32_t rem_cru = state_.remaining_crus(i, e.service);
    const std::uint32_t rem_rrb = state_.remaining_rrbs(i);
    if (rem_cru < e.cru_demand || rem_rrb < rrbs[k]) continue;
    ++live_fu;
    const double v = prices[k] + config_.dmra.rho /
                                     static_cast<double>(rem_cru + rem_rrb);
    // Ties break toward the smaller BsId — candidates are ascending, so
    // strict < keeps the earlier (smaller) one.
    if (!best || v < best_v) {
      best = i;
      best_v = v;
    }
  }
  // dmra::hotpath end(admit-one)

  obs::TraceRecorder* const rec = obs::recorder();
  if (!best) {
    // B_u exhausted (or empty): remote cloud, Alg. 1 line 10.
    allocation_.assign_cloud(u);
    return std::nullopt;
  }
  state_.commit(u, *best);
  allocation_.assign(u, *best);
  live_profit_ += scenario_->pair_profit(u, *best);
  if (rec != nullptr) {
    obs::TraceEvent p;
    p.kind = obs::EventKind::kProposal;
    p.ue = u.value;
    p.bs = best->value;
    p.service = e.service.value;
    p.value = live_fu;
    rec->record(p);
    obs::TraceEvent d;
    d.kind = obs::EventKind::kDecision;
    d.flag = true;
    d.ue = u.value;
    d.bs = best->value;
    d.service = e.service.value;
    rec->record(d);
  }
  return best;
}

void IncrementalAllocator::remove(UeId u) {
  DMRA_REQUIRE_MSG(active_[u.idx()], "remove on an inactive slot");
  active_[u.idx()] = false;
  --num_active_;
  const auto bs = allocation_.bs_of(u);
  if (!bs) return;  // was cloud-forwarded; nothing held
  live_profit_ -= scenario_->pair_profit(u, *bs);
  // A crashed/degraded BS's ledger is clamped, not committed: releasing
  // into the clamp would manufacture capacity. Recount on recovery
  // instead (recover_bs).
  if (!clamped_[bs->idx()]) state_.release(u, *bs);
  allocation_.assign_cloud(u);
}

std::size_t IncrementalAllocator::crash_bs(BsId i, std::vector<UeId>& orphans) {
  std::size_t evicted = 0;
  for (std::size_t ui = 0; ui < allocation_.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto bs = allocation_.bs_of(u);
    if (!bs || *bs != i) continue;
    live_profit_ -= scenario_->pair_profit(u, i);
    allocation_.assign_cloud(u);
    orphans.push_back(u);
    ++evicted;
  }
  const std::vector<std::uint32_t> zero_crus(scenario_->num_services(), 0);
  state_.clamp_remaining(i, zero_crus, 0);
  if (!clamped_[i.idx()]) {
    clamped_[i.idx()] = true;
    ++clamped_bss_;
  }
  // The crash is the canonical flight-recorder trigger: freeze the ring
  // here, where the lifecycle op happens, so every caller (sim/churn's
  // replay included) gets the post-mortem without its own hook.
  if (obs::FlightRecorder* const fr = obs::flight(); fr != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kFault;
    e.label = "bs-crash";
    e.bs = i.value;
    e.value = evicted;
    fr->record(e);
    fr->trigger("bs-crash", fr->round(), i.value);
  }
  return evicted;
}

void IncrementalAllocator::recover_bs(BsId i) {
  state_.recount_remaining(i, allocation_);
  if (clamped_[i.idx()]) {
    clamped_[i.idx()] = false;
    --clamped_bss_;
  }
  if (obs::FlightRecorder* const fr = obs::flight(); fr != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kRepair;
    e.label = "bs-recover";
    e.bs = i.value;
    fr->record(e);
  }
}

void IncrementalAllocator::degrade_bs(BsId i, double cru_factor, double rrb_factor) {
  DMRA_REQUIRE(cru_factor >= 0.0 && cru_factor <= 1.0);
  DMRA_REQUIRE(rrb_factor >= 0.0 && rrb_factor <= 1.0);
  const std::size_t ns = scenario_->num_services();
  std::vector<std::uint32_t> caps(ns);
  for (std::size_t j = 0; j < ns; ++j) {
    const auto rem = state_.remaining_crus(i, ServiceId{static_cast<std::uint32_t>(j)});
    caps[j] = static_cast<std::uint32_t>(static_cast<double>(rem) * cru_factor);
  }
  const auto rrb_cap = static_cast<std::uint32_t>(
      static_cast<double>(state_.remaining_rrbs(i)) * rrb_factor);
  state_.clamp_remaining(i, caps, rrb_cap);
  if (!clamped_[i.idx()]) {
    clamped_[i.idx()] = true;
    ++clamped_bss_;
  }
  if (obs::FlightRecorder* const fr = obs::flight(); fr != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kFault;
    e.label = "bs-degrade";
    e.bs = i.value;
    fr->record(e);
  }
}

void IncrementalAllocator::audit_round(std::size_t round) const {
  if (!DMRA_AUDIT_ACTIVE()) return;
  if (!capacity_nominal()) return;  // clamped ledger ≠ recount, by design
  audit::report_state_round("core/incremental", round, *scenario_, allocation_, state_);
}

}  // namespace dmra
