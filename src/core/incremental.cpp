#include "core/incremental.hpp"

#include <algorithm>

#include "mec/audit.hpp"
#include "mec/resources.hpp"
#include "obs/recorder.hpp"
#include "util/require.hpp"

namespace dmra {

IncrementalResult solve_incremental_dmra(const Scenario& scenario,
                                         const Allocation& previous,
                                         const IncrementalConfig& config) {
  DMRA_REQUIRE(previous.num_ues() == scenario.num_ues());
  DMRA_REQUIRE(config.hysteresis_margin >= 0.0);

  IncrementalResult result;
  ResourceState state(scenario);
  Allocation allocation(scenario.num_ues());
  std::vector<bool> matched(scenario.num_ues(), false);

  // Phase 1: carry over what still works. Commit in UE-id order so a BS
  // that can no longer hold *all* its previous UEs keeps a deterministic
  // prefix of them.
  // dmra::hotpath begin(carry-over)
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto bs = previous.bs_of(u);
    if (!bs) continue;
    if (!state.can_serve(u, *bs)) {
      ++result.invalidated;
      continue;
    }
    state.commit(u, *bs);
    allocation.assign(u, *bs);
    matched[ui] = true;
  }
  // dmra::hotpath end(carry-over)

  // Phase 2: hysteresis — release kept UEs whose current deal has drifted
  // far from their best alternative. (Release before re-matching so the
  // freed capacity is visible to the rematch round.)
  // dmra::hotpath begin(hysteresis)
  if (config.hysteresis_margin < 1e17) {
    for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
      if (!matched[ui]) continue;
      const UeId u{static_cast<std::uint32_t>(ui)};
      const BsId current = *allocation.bs_of(u);
      const double current_price = scenario.price(u, current);
      double best_price = current_price;
      // Candidate prices are precomputed per slot at scenario build; the
      // carried BS may have left the candidate set, so it is priced above.
      for (const double p : scenario.candidate_prices(u))
        best_price = std::min(best_price, p);
      if (current_price - best_price > config.hysteresis_margin) {
        state.release(u, current);
        allocation.assign_cloud(u);
        matched[ui] = false;
        ++result.released;
      }
    }
  }
  // dmra::hotpath end(hysteresis)
  result.kept = allocation.num_served();
  // Audit the carry-over + hysteresis state before the rematch: catches a
  // kept assignment that is no longer feasible or an unpaired release.
  if (DMRA_AUDIT_ACTIVE())
    audit::report_state_round("core/incremental", 0, scenario, allocation, state);

  if (obs::TraceRecorder* const rec = obs::recorder(); rec != nullptr) {
    obs::MetricsRegistry& m = rec->metrics();
    m.add_counter("incremental.kept", result.kept);
    m.add_counter("incremental.released", result.released);
    m.add_counter("incremental.invalidated", result.invalidated);
    obs::TraceEvent e;
    e.kind = obs::EventKind::kPhase;
    e.label = "core/incremental:carry-over";
    e.value = result.kept;
    rec->record(e);
  }

  // Phase 3: match everyone displaced or never-assigned.
  result.rematch = solve_dmra_partial(scenario, config.dmra, state, allocation, matched);
  result.allocation = allocation;
  return result;
}

}  // namespace dmra
