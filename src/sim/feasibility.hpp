// From-scratch validation of an allocation against the TPM constraints
// (paper Eq. 12–16). Independent of any allocator's internal ledger, so
// it catches allocator bugs rather than inheriting them.
#pragma once

#include <string>
#include <vector>

#include "mec/allocation.hpp"
#include "mec/scenario.hpp"

namespace dmra {

struct FeasibilityReport {
  bool ok = true;
  /// One human-readable line per violated constraint instance.
  std::vector<std::string> violations;
};

/// Checks, for every BS and UE:
///  * Eq. 12 — per-(BS, service) CRU demand within capacity;
///  * Eq. 13 — serving BS hosts the requested service;
///  * Eq. 14 — per-BS RRB demand within budget;
///  * Eq. 15 — structural (an Allocation can't double-assign, asserted anyway);
///  * Eq. 16 — every realized pair is strictly profitable for the SP;
///  * coverage — the serving BS covers the UE (implicit in the model).
FeasibilityReport check_feasibility(const Scenario& scenario, const Allocation& alloc);

}  // namespace dmra
