// From-scratch validation of an allocation against the TPM constraints
// (paper Eq. 12–16). Independent of any allocator's internal ledger, so
// it catches allocator bugs rather than inheriting them.
//
// Reports are exhaustive and deterministic: every violated constraint
// instance is listed, sorted by BS id then UE id (BS-level aggregate
// lines sort after that BS's per-UE lines), so two audits of the same
// allocation diff cleanly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "mec/allocation.hpp"
#include "mec/scenario.hpp"

namespace dmra {

struct FeasibilityReport {
  bool ok = true;
  /// One human-readable line per violated constraint instance, sorted by
  /// (BS id, UE id); lines about a BS as a whole follow its per-UE lines.
  std::vector<std::string> violations;

  /// Merge another report into this one (used by the invariant auditor to
  /// combine constraint and ledger checks). Keeps both line sets' order.
  void merge(FeasibilityReport other);
};

/// "feasible" or one violation line per output line.
std::ostream& operator<<(std::ostream& os, const FeasibilityReport& report);

/// Checks, for every BS and UE:
///  * Eq. 12 — per-(BS, service) CRU demand within capacity;
///  * Eq. 13 — serving BS hosts the requested service;
///  * Eq. 14 — per-BS RRB demand within budget;
///  * Eq. 15 — structural (an Allocation can't double-assign, asserted anyway);
///  * Eq. 16 — every realized pair is strictly profitable for the SP;
///  * coverage — the serving BS covers the UE (implicit in the model).
FeasibilityReport check_feasibility(const Scenario& scenario, const Allocation& alloc);

/// Cross-check an allocator-internal resource ledger against a
/// from-scratch recount of `alloc`. `crus` is flattened
/// [bs * num_services + service] and `rrbs` is per-BS, the same layout as
/// ResourceState / audit::LedgerSnapshot. Catches ledger drift in both
/// directions: a ledger below the recount means a double commit (e.g. the
/// same RRBs deducted twice); above means a leak / unpaired release.
FeasibilityReport check_ledger_consistency(const Scenario& scenario,
                                           const Allocation& alloc,
                                           std::span<const std::uint32_t> crus,
                                           std::span<const std::uint32_t> rrbs);

}  // namespace dmra
