// ASCII rendering of deployments and allocations — a quick, dependency-
// free way to *see* a scenario: where the BSs sit, how the population
// clusters, and which cells run hot after an allocation.
#pragma once

#include <string>

#include "mec/allocation.hpp"
#include "mec/scenario.hpp"

namespace dmra {

struct RenderOptions {
  std::size_t cols = 60;  ///< character grid width
  std::size_t rows = 24;  ///< character grid height
  bool legend = true;     ///< append a legend below the map
};

/// Deployment map: UE density as ' '.:+*#@' shades, BSs overlaid as the
/// owning SP's letter (SP 0 → 'A', SP 1 → 'B', ...).
std::string render_deployment(const Scenario& scenario, const RenderOptions& options = {});

/// Utilization map: each BS drawn as its RRB utilization bucket under
/// `alloc` (digits '0'..'9' for 0–100%, with '9' ≈ full); non-BS cells
/// show the density of *cloud-forwarded* UEs, making stranded hotspots
/// visible.
std::string render_utilization(const Scenario& scenario, const Allocation& alloc,
                               const RenderOptions& options = {});

}  // namespace dmra
