#include "sim/experiment.hpp"

#include <numeric>
#include <optional>
#include <sstream>

#include "obs/recorder.hpp"
#include "obs/shard.hpp"
#include "sim/feasibility.hpp"
#include "util/log.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace dmra {

std::vector<std::uint64_t> default_seeds(std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  std::iota(seeds.begin(), seeds.end(), std::uint64_t{1});
  return seeds;
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  DMRA_REQUIRE_MSG(!spec.xs.empty(), "experiment needs at least one sweep point");
  DMRA_REQUIRE_MSG(static_cast<bool>(spec.make_config), "make_config is required");
  DMRA_REQUIRE_MSG(static_cast<bool>(spec.make_allocators), "make_allocators is required");
  DMRA_REQUIRE_MSG(!spec.seeds.empty(), "experiment needs at least one seed");

  const auto metric = spec.metric ? spec.metric
                                  : [](const RunMetrics& m) { return m.total_profit; };

  ExperimentResult result;
  result.title = spec.title;
  result.x_label = spec.x_label;
  result.metric_label = spec.metric_label;
  result.xs = spec.xs;

  // Tracing note: the recorder is thread-local, so the per-seed fan-out
  // below goes through traced_parallel_map — each replication records
  // into its own shard and the shards merge back here in seed order, so
  // a traced run exports byte-identical files for every spec.jobs value.
  obs::TraceRecorder* const rec = obs::recorder();

  for (std::size_t xi = 0; xi < spec.xs.size(); ++xi) {
    const double x = spec.xs[xi];
    std::optional<obs::ScopedTimer> sweep_timer;
    if (rec != nullptr) {
      sweep_timer.emplace(&rec->metrics(), std::string("experiment.sweep_point"));
      rec->metrics().add_counter("experiment.sweep_points");
      obs::TraceEvent e;
      e.kind = obs::EventKind::kPhase;
      e.label = "sim/experiment:sweep-point";
      e.value = xi;
      rec->record(e);
    }
    // Fan the per-seed replications across workers. Every task gets its
    // own scenario and allocator set (created here, on the coordinating
    // thread — make_allocators need not be thread-safe), so seeds share
    // no mutable state; the reduction happens below in seed order, which
    // makes the result byte-identical to the serial loop for any jobs.
    std::vector<std::vector<AllocatorPtr>> per_seed_algos;
    per_seed_algos.reserve(spec.seeds.size());
    for (std::size_t si = 0; si < spec.seeds.size(); ++si) {
      per_seed_algos.push_back(spec.make_allocators(x));
      DMRA_REQUIRE_MSG(!per_seed_algos.back().empty(),
                       "make_allocators returned no algorithms");
      DMRA_REQUIRE_MSG(per_seed_algos.back().size() == per_seed_algos.front().size(),
                       "make_allocators must return the same roster on every call");
    }
    if (result.algo_names.empty()) {
      for (const auto& a : per_seed_algos.front()) result.algo_names.push_back(a->name());
    } else {
      DMRA_REQUIRE_MSG(result.algo_names.size() == per_seed_algos.front().size(),
                       "algorithm set must be identical at every sweep point");
    }
    const ScenarioConfig config = spec.make_config(x);

    const auto per_seed =
        obs::traced_parallel_map(spec.jobs, spec.seeds.size(), [&](std::size_t si) {
          const Scenario scenario = generate_scenario(config, spec.seeds[si]);
          const std::vector<AllocatorPtr>& algos = per_seed_algos[si];
          std::vector<double> values(algos.size());
          for (std::size_t ai = 0; ai < algos.size(); ++ai) {
            const Allocation alloc = algos[ai]->allocate(scenario);
            if (spec.check_feasible) {
              const FeasibilityReport report = check_feasibility(scenario, alloc);
              DMRA_REQUIRE_MSG(report.ok,
                               algos[ai]->name() + " produced an infeasible " +
                                   "allocation: " +
                                   (report.violations.empty()
                                        ? std::string("?")
                                        : report.violations.front()));
            }
            values[ai] = metric(evaluate(scenario, alloc));
          }
          return values;
        });

    std::vector<RunningStats> stats(result.algo_names.size());
    for (const std::vector<double>& values : per_seed)
      for (std::size_t ai = 0; ai < stats.size(); ++ai) stats[ai].add(values[ai]);

    std::vector<Summary> row;
    row.reserve(stats.size());
    for (const RunningStats& s : stats) {
      Summary sum;
      sum.count = s.count();
      sum.mean = s.mean();
      sum.stddev = s.stddev();
      sum.stderr_mean = s.stderr_mean();
      sum.min = s.min();
      sum.max = s.max();
      row.push_back(sum);
    }
    result.cells.push_back(std::move(row));
    if (rec != nullptr)
      rec->metrics().add_counter("experiment.replications",
                                 spec.seeds.size() * result.algo_names.size());
    DMRA_INFO("experiment '" << spec.title << "': finished x=" << x);
  }
  return result;
}

Table ExperimentResult::to_significance_table() const {
  DMRA_REQUIRE_MSG(algo_names.size() >= 2, "need a challenger to compare against");
  Table table({x_label, "comparison", "mean diff", "t", "df", "significant (95%)"});
  for (std::size_t xi = 0; xi < xs.size(); ++xi) {
    const Summary& lead = cells[xi][0];
    for (std::size_t ai = 1; ai < cells[xi].size(); ++ai) {
      const Summary& other = cells[xi][ai];
      const WelchResult w =
          welch_t_test(lead.mean, lead.stddev * lead.stddev, lead.count, other.mean,
                       other.stddev * other.stddev, other.count);
      table.add_row({fmt(xs[xi], 0), algo_names[0] + " vs " + algo_names[ai],
                     fmt(lead.mean - other.mean), fmt(w.t), fmt(w.df, 1),
                     w.significant_95 ? "yes" : "no"});
    }
  }
  return table;
}

std::string ExperimentResult::to_dat() const {
  std::ostringstream os;
  os << "# " << title << '\n' << "# " << x_label;
  for (const std::string& name : algo_names) os << ' ' << name << " ci95";
  os << '\n';
  for (std::size_t xi = 0; xi < xs.size(); ++xi) {
    os << xs[xi];
    for (const Summary& s : cells[xi]) os << ' ' << s.mean << ' ' << 1.96 * s.stderr_mean;
    os << '\n';
  }
  return os.str();
}

std::string ExperimentResult::to_gnuplot(const std::string& data_filename) const {
  std::ostringstream os;
  os << "set title \"" << title << "\"\n"
     << "set xlabel \"" << x_label << "\"\n"
     << "set ylabel \"" << metric_label << "\"\n"
     << "set key left top\nset grid\nset style data linespoints\n"
     << "plot ";
  for (std::size_t ai = 0; ai < algo_names.size(); ++ai) {
    if (ai) os << ", \\\n     ";
    const std::size_t mean_col = 2 + 2 * ai;
    os << '"' << data_filename << "\" using 1:" << mean_col << ':' << mean_col + 1
       << " with yerrorlines title \"" << algo_names[ai] << '"';
  }
  os << '\n';
  return os.str();
}

Table ExperimentResult::to_table() const {
  std::vector<std::string> header{x_label};
  for (const std::string& name : algo_names) header.push_back(name);
  Table table(std::move(header));
  for (std::size_t xi = 0; xi < xs.size(); ++xi) {
    std::vector<std::string> row{fmt(xs[xi], xs[xi] == static_cast<long long>(xs[xi]) ? 0 : 2)};
    for (const Summary& s : cells[xi]) row.push_back(fmt_pm(s.mean, 1.96 * s.stderr_mean));
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace dmra
