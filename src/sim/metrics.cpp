#include "sim/metrics.hpp"

#include "radio/units.hpp"
#include "util/require.hpp"

namespace dmra {

RunMetrics evaluate(const Scenario& scenario, const Allocation& alloc) {
  DMRA_REQUIRE(alloc.num_ues() == scenario.num_ues());
  RunMetrics m;

  const ProfitBreakdown profit = compute_profit(scenario, alloc);
  m.total_profit = profit.total;
  m.per_sp_profit = profit.per_sp;
  m.forwarded_traffic_mbps = forwarded_traffic_bps(scenario, alloc) / kBitsPerMbit;
  m.served = alloc.num_served();
  m.cloud = alloc.num_cloud();
  m.served_ratio =
      scenario.num_ues() ? static_cast<double>(m.served) / static_cast<double>(scenario.num_ues())
                         : 0.0;
  m.same_sp_ratio = same_sp_ratio(scenario, alloc);

  std::vector<std::uint64_t> cru_used(scenario.num_bss(), 0);
  std::vector<std::uint64_t> rrb_used(scenario.num_bss(), 0);
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto bs = alloc.bs_of(u);
    if (!bs) continue;
    cru_used[bs->idx()] += scenario.ue(u).cru_demand;
    rrb_used[bs->idx()] += scenario.link(u, *bs).n_rrbs;
  }
  double cru_util_sum = 0.0;
  double rrb_util_sum = 0.0;
  for (std::size_t bi = 0; bi < scenario.num_bss(); ++bi) {
    const BaseStation& b = scenario.bs(BsId{static_cast<std::uint32_t>(bi)});
    std::uint64_t cap = 0;
    for (std::uint32_t c : b.cru_capacity) cap += c;
    cru_util_sum += cap ? static_cast<double>(cru_used[bi]) / static_cast<double>(cap) : 0.0;
    rrb_util_sum +=
        b.num_rrbs ? static_cast<double>(rrb_used[bi]) / static_cast<double>(b.num_rrbs) : 0.0;
  }
  m.mean_cru_utilization =
      scenario.num_bss() ? cru_util_sum / static_cast<double>(scenario.num_bss()) : 0.0;
  m.mean_rrb_utilization =
      scenario.num_bss() ? rrb_util_sum / static_cast<double>(scenario.num_bss()) : 0.0;
  return m;
}

}  // namespace dmra
