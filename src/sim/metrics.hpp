// Everything the paper's evaluation section measures, extracted from one
// (Scenario, Allocation) pair.
#pragma once

#include <vector>

#include "mec/allocation.hpp"
#include "mec/scenario.hpp"

namespace dmra {

struct RunMetrics {
  double total_profit = 0.0;           ///< Eq. 11 — Figs. 2–6's y-axis
  std::vector<double> per_sp_profit;   ///< W_k per SP
  double forwarded_traffic_mbps = 0.0; ///< Fig. 7's y-axis
  std::size_t served = 0;              ///< UEs served at the MEC layer
  std::size_t cloud = 0;               ///< UEs forwarded to the cloud
  double served_ratio = 0.0;
  double same_sp_ratio = 0.0;          ///< of served UEs, share on own-SP BSs
  double mean_cru_utilization = 0.0;   ///< used CRUs / hosted-capacity, over BSs
  double mean_rrb_utilization = 0.0;   ///< used RRBs / budget, over BSs
};

RunMetrics evaluate(const Scenario& scenario, const Allocation& alloc);

}  // namespace dmra
