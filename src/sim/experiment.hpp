// Multi-seed sweep runner — the harness behind every figure bench.
//
// An experiment is a sweep over x (UE count, ρ, …): at each x it builds a
// scenario per seed, runs every allocator, validates feasibility, and
// aggregates a chosen metric into mean ± 95% CI. The result renders as a
// paper-style table (one row per x, one column per algorithm).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mec/allocator.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace dmra {

struct ExperimentSpec {
  std::string title;
  std::string x_label = "x";
  std::vector<double> xs;

  /// Scenario for a sweep point (seed supplied separately by the runner).
  std::function<ScenarioConfig(double x)> make_config;

  /// Allocators to compare at a sweep point (fresh instances per x so an
  /// algorithm parameter — e.g. ρ — can itself be the sweep variable).
  std::function<std::vector<AllocatorPtr>(double x)> make_allocators;

  /// Metric to aggregate; defaults to total SP profit (Eq. 11).
  std::function<double(const RunMetrics&)> metric;
  std::string metric_label = "total profit";

  std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  /// Re-validate every allocation against Eq. 12–16; a violation throws.
  /// Leave on: it turns every bench run into a system test.
  bool check_feasible = true;

  /// Worker threads for the per-seed replications of each sweep point.
  /// 0 = hardware concurrency; 1 = serial. Results — including traced
  /// exports when a recorder is installed (obs/shard.hpp) — are
  /// byte-identical for every value: each seed is an independent task
  /// whose metric values (and trace shard) are reduced on the collecting
  /// thread in seed order.
  std::size_t jobs = 0;
};

struct ExperimentResult {
  std::string title;
  std::string x_label;
  std::string metric_label;
  std::vector<std::string> algo_names;
  std::vector<double> xs;
  /// cells[xi][ai] — aggregated metric of algorithm ai at sweep point xi.
  std::vector<std::vector<Summary>> cells;

  /// "x | algo1 | algo2 ..." with mean ± 95% CI entries.
  Table to_table() const;

  /// Pairwise Welch t-tests of the first algorithm against every other,
  /// one row per (x, challenger): mean difference, t statistic, and
  /// whether the gap is significant at 95%. Requires ≥ 2 algorithms and
  /// ≥ 2 seeds.
  Table to_significance_table() const;

  /// Plain columnar data ("x mean1 ci1 mean2 ci2 ..."), gnuplot-ready.
  std::string to_dat() const;

  /// A gnuplot script plotting to_dat() output from `data_filename` with
  /// error bars, one series per algorithm, titled like the paper figure.
  std::string to_gnuplot(const std::string& data_filename) const;
};

/// Run the sweep. Throws ContractViolation on spec misuse or (when
/// check_feasible) on an infeasible allocation.
ExperimentResult run_experiment(const ExperimentSpec& spec);

/// Convenience: seeds {1..n}.
std::vector<std::uint64_t> default_seeds(std::size_t n);

}  // namespace dmra
