// Online (epochized) simulation: batches of tasks arrive, hold edge
// resources for a few epochs, and depart — the "continuously adjust the
// allocation" operation the paper's §V motivates for DMRA.
//
// Each epoch the simulator:
//   1. releases the resources of departing tasks,
//   2. draws a fresh arrival batch (seeded per epoch),
//   3. builds the residual scenario (same deployment, current remaining
//      capacities) and runs the configured allocator on it,
//   4. commits the winners and records the epoch's metrics.
//
// Any Allocator works, so online DMRA can be compared with online
// baselines under identical arrival processes (bench abl6_online).
#pragma once

#include <cstdint>
#include <vector>

#include "mec/allocator.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace dmra {

struct OnlineConfig {
  /// Deployment and per-arrival distributions. `scenario.num_ues` is the
  /// arrival batch size per epoch.
  ScenarioConfig scenario;
  std::size_t epochs = 14;
  /// Task lifetime in epochs, drawn uniformly per task (inclusive).
  std::size_t lifetime_min_epochs = 3;
  std::size_t lifetime_max_epochs = 5;
  std::uint64_t seed = 1;
};

struct EpochStats {
  std::size_t epoch = 0;
  std::size_t arrivals = 0;
  std::size_t served = 0;
  std::size_t cloud = 0;
  double profit = 0.0;
  double forwarded_mbps = 0.0;
  std::size_t active_tasks = 0;      ///< tasks holding edge resources after the epoch
  double mean_rrb_utilization = 0.0; ///< across BSs, after the epoch
};

struct OnlineResult {
  std::vector<EpochStats> epochs;
  double cumulative_profit = 0.0;
  std::size_t total_served = 0;
  std::size_t total_cloud = 0;

  /// One row per epoch, the columns of EpochStats.
  Table to_table() const;
};

/// Epoch-stepped simulator. Deterministic in (config, allocator).
class OnlineSimulator {
 public:
  /// `allocator` must outlive the simulator.
  OnlineSimulator(OnlineConfig config, const Allocator& allocator);

  /// Execute one epoch; returns its stats. Callable past config.epochs
  /// (the epoch counter just keeps running).
  EpochStats step();

  /// Run `config.epochs` epochs from the current position.
  OnlineResult run();

  /// Remaining CRUs of service j at BS i right now.
  std::uint32_t remaining_crus(BsId i, ServiceId j) const;
  /// Remaining RRBs at BS i right now.
  std::uint32_t remaining_rrbs(BsId i) const;
  std::size_t active_tasks() const { return active_.size(); }
  std::size_t current_epoch() const { return epoch_; }

 private:
  struct ActiveTask {
    std::size_t expires_at;
    BsId bs;
    ServiceId service;
    std::uint32_t crus;
    std::uint32_t rrbs;
  };

  OnlineConfig config_;
  const Allocator* allocator_;
  Scenario base_;  ///< the fixed deployment (epoch scenarios reuse it)
  std::vector<std::vector<std::uint32_t>> crus_;  ///< live per-(BS, service)
  std::vector<std::uint32_t> rrbs_;               ///< live per-BS
  std::vector<ActiveTask> active_;
  std::size_t epoch_ = 0;
  double traced_profit_ = 0.0;  ///< cumulative profit, maintained only when traced
  Rng lifetime_rng_;

  Scenario residual_scenario(std::uint64_t epoch_seed) const;
  void release_departures();
};

}  // namespace dmra
