#include "sim/qos.hpp"

#include "util/require.hpp"
#include "util/stats.hpp"

namespace dmra {

double edge_latency_ms(const LatencyModel& model, double distance_m) {
  DMRA_REQUIRE(distance_m >= 0.0);
  return model.edge_base_ms + model.per_km_ms * distance_m / 1000.0;
}

double cloud_latency_ms(const LatencyModel& model) {
  return model.edge_base_ms + model.cloud_rtt_ms;
}

double jain_index(std::span<const double> xs) {
  DMRA_REQUIRE(!xs.empty());
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    DMRA_REQUIRE_MSG(x >= 0.0, "Jain index needs non-negative values");
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // all zero → perfectly equal
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

QosMetrics evaluate_qos(const Scenario& scenario, const Allocation& alloc,
                        const LatencyModel& model) {
  DMRA_REQUIRE(alloc.num_ues() == scenario.num_ues());
  QosMetrics q;
  q.per_ue_latency_ms.reserve(scenario.num_ues());

  RunningStats all;
  RunningStats edge;
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    double latency;
    if (const auto bs = alloc.bs_of(u)) {
      latency = edge_latency_ms(model, scenario.link(u, *bs).distance_m);
      edge.add(latency);
    } else {
      latency = cloud_latency_ms(model);
    }
    all.add(latency);
    q.per_ue_latency_ms.push_back(latency);
  }
  q.mean_latency_ms = all.mean();
  q.mean_edge_latency_ms = edge.empty() ? 0.0 : edge.mean();
  q.p95_latency_ms = percentile(q.per_ue_latency_ms, 0.95);

  const ProfitBreakdown profit = compute_profit(scenario, alloc);
  // Profit can in principle be negative only if Eq. 16 were violated;
  // Scenario validation guarantees it is not, so Jain is well-defined.
  q.jain_sp_profit = jain_index(profit.per_sp);
  q.jain_ue_latency = jain_index(q.per_ue_latency_ms);
  return q;
}

}  // namespace dmra
