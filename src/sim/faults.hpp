// Compact fault-scenario builder for experiments.
//
// FaultPlan (net/fault_plan.hpp) is the precise, per-BS schedule the
// runtime consumes; writing one by hand for every sweep cell is noise.
// This module provides the experiment-facing layer:
//  * FaultSpec        — a flat knob set matching the --faults CLI flag,
//  * parse_fault_spec — "loss=0.1,crashes=2,seed=7" → FaultSpec,
//  * make_fault_plan  — FaultSpec × deployment size → concrete FaultPlan
//                       (seeded choice of which BSs crash/degrade),
//  * FaultyDmraAllocator — an Allocator running decentralized DMRA under
//                       the spec, so any existing bench roster can swap
//                       it in without learning the fault API.
//
// docs/RESILIENCE.md documents the spec grammar and semantics.
#pragma once

#include <optional>
#include <string>

#include "core/decentralized.hpp"
#include "mec/allocator.hpp"
#include "net/fault_plan.hpp"

namespace dmra {

/// Flat description of a fault scenario, shaped for a CLI flag: counts
/// and rates instead of per-BS schedules. Which BSs fail is drawn from a
/// seeded "fault-plan" RNG stream in make_fault_plan, so the same spec +
/// seed always breaks the same cells.
struct FaultSpec {
  double loss = 0.0;                  ///< per-message drop probability, [0, 1)
  double duplicate = 0.0;             ///< per-message duplication probability
  double delay = 0.0;                 ///< per-message delay probability
  std::size_t max_delay_rounds = 2;   ///< delay draw upper bound (inclusive)
  std::size_t crashes = 0;            ///< how many BSs crash
  std::size_t crash_round = 1;        ///< first crash fires here; rest staggered +1
  std::size_t down_rounds = 0;        ///< outage length; 0 = never recovers
  std::size_t degradations = 0;       ///< how many BSs degrade
  double degrade_factor = 0.5;        ///< CRU and RRB scale factor, [0, 1]
  std::size_t degrade_round = 1;      ///< all degradations fire here
  std::uint64_t seed = 0;             ///< RNG seed (bus streams + BS choice)

  /// True iff the spec injects anything at all.
  bool any() const {
    return loss > 0.0 || duplicate > 0.0 || delay > 0.0 || crashes > 0 ||
           degradations > 0;
  }
};

/// Parse a comma-separated key=value spec, e.g.
///   "loss=0.1,dup=0.02,delay=0.05,delay-max=3,crashes=2,crash-round=4,
///    down-rounds=8,degrade=1,degrade-factor=0.5,degrade-round=6,seed=7"
/// Keys: loss, dup, delay, delay-max, crashes, crash-round, down-rounds,
/// degrade, degrade-factor, degrade-round, seed. Unknown keys or
/// malformed values throw std::invalid_argument with a message naming the
/// offending token. The empty string parses to a no-fault spec.
FaultSpec parse_fault_spec(const std::string& text);

/// Instantiate the spec against a deployment of `num_bss` base stations:
/// a seeded shuffle picks which BSs crash (staggered one round apart,
/// starting at crash_round) and which degrade (all at degrade_round, both
/// factors = degrade_factor). Counts are clamped to the BSs available;
/// crash and degradation targets never overlap. Deterministic per
/// (spec, num_bss).
FaultPlan make_fault_plan(const FaultSpec& spec, std::size_t num_bss);

/// Decentralized DMRA run under a FaultSpec, packaged as an Allocator so
/// bench rosters can swap it in for DmraAllocator. Each allocate() call
/// instantiates the plan for that scenario's deployment and runs the
/// hardened protocol. Stateless and const, so one instance is safe to
/// share across parallel replication workers; callers that need the
/// fault/recovery accounting should call run() instead.
class FaultyDmraAllocator final : public Allocator {
 public:
  explicit FaultyDmraAllocator(FaultSpec spec, DmraConfig config = {},
                               RecoveryConfig recovery = {})
      : spec_(spec), config_(config), recovery_(recovery) {}

  std::string name() const override { return "DMRA+faults"; }
  Allocation allocate(const Scenario& scenario) const override {
    return run(scenario).dmra.allocation;
  }

  /// The full protocol outcome (bus traffic + recovery stats).
  DecentralizedResult run(const Scenario& scenario) const;

 private:
  FaultSpec spec_;
  DmraConfig config_;
  RecoveryConfig recovery_;
};

}  // namespace dmra
