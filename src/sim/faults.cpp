#include "sim/faults.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace dmra {

namespace {

double parse_double(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("--faults: bad value for " + key + ": '" + value + "'");
  }
  if (used != value.size())
    throw std::invalid_argument("--faults: bad value for " + key + ": '" + value + "'");
  return out;
}

std::uint64_t parse_uint(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  unsigned long long out = 0;
  try {
    out = std::stoull(value, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("--faults: bad value for " + key + ": '" + value + "'");
  }
  if (used != value.size())
    throw std::invalid_argument("--faults: bad value for " + key + ": '" + value + "'");
  return static_cast<std::uint64_t>(out);
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("--faults: expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "loss") {
      spec.loss = parse_double(key, value);
    } else if (key == "dup") {
      spec.duplicate = parse_double(key, value);
    } else if (key == "delay") {
      spec.delay = parse_double(key, value);
    } else if (key == "delay-max") {
      spec.max_delay_rounds = static_cast<std::size_t>(parse_uint(key, value));
    } else if (key == "crashes") {
      spec.crashes = static_cast<std::size_t>(parse_uint(key, value));
    } else if (key == "crash-round") {
      spec.crash_round = static_cast<std::size_t>(parse_uint(key, value));
    } else if (key == "down-rounds") {
      spec.down_rounds = static_cast<std::size_t>(parse_uint(key, value));
    } else if (key == "degrade") {
      spec.degradations = static_cast<std::size_t>(parse_uint(key, value));
    } else if (key == "degrade-factor") {
      spec.degrade_factor = parse_double(key, value);
    } else if (key == "degrade-round") {
      spec.degrade_round = static_cast<std::size_t>(parse_uint(key, value));
    } else if (key == "seed") {
      spec.seed = parse_uint(key, value);
    } else {
      throw std::invalid_argument("--faults: unknown key '" + key +
                                  "' (keys: loss dup delay delay-max crashes "
                                  "crash-round down-rounds degrade degrade-factor "
                                  "degrade-round seed)");
    }
  }
  return spec;
}

FaultPlan make_fault_plan(const FaultSpec& spec, std::size_t num_bss) {
  FaultPlan plan;
  plan.link.drop_probability = spec.loss;
  plan.link.duplicate_probability = spec.duplicate;
  plan.link.delay_probability = spec.delay;
  plan.link.max_delay_rounds = spec.max_delay_rounds;

  // Seeded choice of victims; its own named stream so the pick never
  // interferes with the bus's per-message draws for the same seed.
  Rng rng("fault-plan", spec.seed);
  std::vector<BsId> ids(num_bss);
  for (std::size_t i = 0; i < num_bss; ++i) ids[i] = BsId{static_cast<std::uint32_t>(i)};
  rng.shuffle(ids);

  const std::size_t crashes = std::min(spec.crashes, num_bss);
  for (std::size_t k = 0; k < crashes; ++k) {
    BsOutage o;
    o.bs = ids[k];
    o.crash_round = spec.crash_round + k;  // staggered: one crash per round
    o.recover_round =
        spec.down_rounds == 0 ? kNeverRecovers : o.crash_round + spec.down_rounds;
    plan.outages.push_back(o);
  }
  const std::size_t degradations = std::min(spec.degradations, num_bss - crashes);
  for (std::size_t k = 0; k < degradations; ++k) {
    CapacityDegradation d;
    d.bs = ids[crashes + k];
    d.round = spec.degrade_round;
    d.cru_factor = spec.degrade_factor;
    d.rrb_factor = spec.degrade_factor;
    plan.degradations.push_back(d);
  }
  return plan;
}

DecentralizedResult FaultyDmraAllocator::run(const Scenario& scenario) const {
  const FaultPlan plan = make_fault_plan(spec_, scenario.num_bss());
  NetworkConditions net;
  net.seed = spec_.seed;
  net.faults = &plan;
  net.recovery = recovery_;
  return run_decentralized_dmra(scenario, config_, net);
}

}  // namespace dmra
