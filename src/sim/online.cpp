#include "sim/online.hpp"

#include <algorithm>

#include "mec/audit.hpp"
#include "obs/recorder.hpp"
#include "sim/metrics.hpp"
#include "util/require.hpp"

namespace dmra {

OnlineSimulator::OnlineSimulator(OnlineConfig config, const Allocator& allocator)
    : config_(std::move(config)),
      allocator_(&allocator),
      base_(generate_scenario(config_.scenario, config_.seed)),
      lifetime_rng_("online-lifetime", config_.seed) {
  DMRA_REQUIRE(config_.lifetime_min_epochs >= 1);
  DMRA_REQUIRE(config_.lifetime_min_epochs <= config_.lifetime_max_epochs);
  for (const BaseStation& b : base_.bss()) {
    crus_.push_back(b.cru_capacity);
    rrbs_.push_back(b.num_rrbs);
  }
}

std::uint32_t OnlineSimulator::remaining_crus(BsId i, ServiceId j) const {
  return crus_[i.idx()][j.idx()];
}

std::uint32_t OnlineSimulator::remaining_rrbs(BsId i) const { return rrbs_[i.idx()]; }

void OnlineSimulator::release_departures() {
  auto expired = [&](const ActiveTask& t) { return t.expires_at <= epoch_; };
  for (const ActiveTask& t : active_) {
    if (!expired(t)) continue;
    crus_[t.bs.idx()][t.service.idx()] += t.crus;
    rrbs_[t.bs.idx()] += t.rrbs;
  }
  active_.erase(std::remove_if(active_.begin(), active_.end(), expired), active_.end());
}

Scenario OnlineSimulator::residual_scenario(std::uint64_t epoch_seed) const {
  // Fresh arrivals for this epoch...
  const Scenario arrivals = generate_scenario(config_.scenario, epoch_seed);
  // ...against the deployment with its *current* remaining capacities.
  ScenarioData data;
  data.num_services = base_.num_services();
  data.sps.assign(base_.sps().begin(), base_.sps().end());
  data.bss.assign(base_.bss().begin(), base_.bss().end());
  for (std::size_t i = 0; i < data.bss.size(); ++i) {
    data.bss[i].cru_capacity = crus_[i];
    data.bss[i].num_rrbs = rrbs_[i];
  }
  data.ues.assign(arrivals.ues().begin(), arrivals.ues().end());
  data.channel = base_.channel();
  data.ofdma = base_.ofdma();
  data.pricing = base_.pricing();
  data.coverage_radius_m = base_.coverage_radius_m();
  return Scenario(std::move(data));
}

EpochStats OnlineSimulator::step() {
  release_departures();

  // Epoch seeds derive from the run seed via a named stream so arrival
  // batches are independent across epochs but reproducible.
  const std::uint64_t epoch_seed =
      Rng("online-epoch", config_.seed ^ (epoch_ * 0x9e3779b97f4a7c15ULL))();
  const Scenario scenario = residual_scenario(epoch_seed);
  const Allocation alloc = allocator_->allocate(scenario);
  const RunMetrics metrics = evaluate(scenario, alloc);

  for (const UserEquipment& ue : scenario.ues()) {
    const auto bs = alloc.bs_of(ue.id);
    if (!bs) continue;
    const std::uint32_t n = scenario.link(ue.id, *bs).n_rrbs;
    DMRA_REQUIRE(crus_[bs->idx()][ue.service.idx()] >= ue.cru_demand);
    DMRA_REQUIRE(rrbs_[bs->idx()] >= n);
    crus_[bs->idx()][ue.service.idx()] -= ue.cru_demand;
    rrbs_[bs->idx()] -= n;
    const auto lifetime = static_cast<std::size_t>(lifetime_rng_.uniform_int(
        static_cast<std::int64_t>(config_.lifetime_min_epochs),
        static_cast<std::int64_t>(config_.lifetime_max_epochs)));
    active_.push_back({epoch_ + lifetime, *bs, ue.service, ue.cru_demand, n});
  }

  if (DMRA_AUDIT_ACTIVE()) {
    // Ledger-consistency: the live ledger must equal the epoch scenario's
    // residual capacities minus this epoch's commits. Round is always 0 —
    // each epoch is its own run (epoch profits are not monotone).
    audit::RoundContext ctx;
    ctx.scenario = &scenario;
    ctx.allocation = &alloc;
    ctx.ledger = audit::snapshot_ledger(
        scenario, [&](BsId i, ServiceId j) { return crus_[i.idx()][j.idx()]; },
        [&](BsId i) { return rrbs_[i.idx()]; });
    ctx.round = 0;
    ctx.source = "sim/online";
    audit::observer()->on_round(ctx);

    // Conservation: base capacity minus the resources held by live tasks
    // must equal the ledger — drift means a departure was released twice
    // or never released.
    for (std::size_t i = 0; i < rrbs_.size(); ++i) {
      const BaseStation& b = base_.bs(BsId{static_cast<std::uint32_t>(i)});
      std::uint64_t held_rrbs = 0;
      std::vector<std::uint64_t> held_crus(base_.num_services(), 0);
      for (const ActiveTask& t : active_) {
        if (t.bs.idx() != i) continue;
        held_rrbs += t.rrbs;
        held_crus[t.service.idx()] += t.crus;
      }
      DMRA_REQUIRE_MSG(rrbs_[i] + held_rrbs == b.num_rrbs,
                       "online RRB ledger out of conservation with active tasks");
      for (std::size_t j = 0; j < base_.num_services(); ++j)
        DMRA_REQUIRE_MSG(crus_[i][j] + held_crus[j] == b.cru_capacity[j],
                         "online CRU ledger out of conservation with active tasks");
    }
  }

  EpochStats stats;
  stats.epoch = epoch_;
  stats.arrivals = scenario.num_ues();
  stats.served = metrics.served;
  stats.cloud = metrics.cloud;
  stats.profit = metrics.total_profit;
  stats.forwarded_mbps = metrics.forwarded_traffic_mbps;
  stats.active_tasks = active_.size();
  double util = 0.0;
  for (std::size_t i = 0; i < rrbs_.size(); ++i) {
    const BaseStation& b = base_.bs(BsId{static_cast<std::uint32_t>(i)});
    util += b.num_rrbs ? 1.0 - static_cast<double>(rrbs_[i]) / b.num_rrbs : 0.0;
  }
  stats.mean_rrb_utilization =
      rrbs_.empty() ? 0.0 : util / static_cast<double>(rrbs_.size());

  if (obs::TraceRecorder* const rec = obs::recorder(); rec != nullptr) {
    // The inner allocator (if instrumented) already folded its events into
    // its own per-round rows; drop whatever tally remains so the epoch row
    // reports epoch-level facts only.
    rec->take_tally();
    rec->set_round(epoch_);
    traced_profit_ += stats.profit;
    obs::RoundRow row;
    row.source = "sim/online";
    row.round = epoch_;
    row.proposals = stats.arrivals;
    row.accepts = stats.served;
    row.rejects = stats.cloud;
    row.unmatched_ues = stats.arrivals - stats.served - stats.cloud;
    row.cumulative_profit = traced_profit_;
    for (const std::vector<std::uint32_t>& per_service : crus_)
      for (const std::uint32_t c : per_service) row.cru_headroom += c;
    for (const std::uint32_t r : rrbs_) row.rrb_headroom += r;
    rec->finish_round(row);
    obs::MetricsRegistry& m = rec->metrics();
    m.add_counter("online.epochs");
    m.add_counter("online.arrivals", stats.arrivals);
    m.add_counter("online.served", stats.served);
    m.add_counter("online.cloud", stats.cloud);
    m.set_gauge("online.active_tasks", static_cast<double>(active_.size()));
  }

  ++epoch_;
  return stats;
}

OnlineResult OnlineSimulator::run() {
  OnlineResult result;
  for (std::size_t e = 0; e < config_.epochs; ++e) {
    const EpochStats stats = step();
    result.cumulative_profit += stats.profit;
    result.total_served += stats.served;
    result.total_cloud += stats.cloud;
    result.epochs.push_back(stats);
  }
  return result;
}

Table OnlineResult::to_table() const {
  Table table({"epoch", "arrivals", "served", "cloud", "profit", "fwd (Mbps)",
               "active", "RRB util"});
  for (const EpochStats& e : epochs) {
    table.add_row({std::to_string(e.epoch), std::to_string(e.arrivals),
                   std::to_string(e.served), std::to_string(e.cloud), fmt(e.profit),
                   fmt(e.forwarded_mbps), std::to_string(e.active_tasks),
                   fmt(e.mean_rrb_utilization)});
  }
  return table;
}

}  // namespace dmra
