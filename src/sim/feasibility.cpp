#include "sim/feasibility.hpp"

#include <sstream>

#include "util/require.hpp"

namespace dmra {

FeasibilityReport check_feasibility(const Scenario& scenario, const Allocation& alloc) {
  DMRA_REQUIRE(alloc.num_ues() == scenario.num_ues());
  FeasibilityReport report;
  auto violate = [&](const std::string& line) {
    report.ok = false;
    report.violations.push_back(line);
  };

  // Tally demand per (BS, service) and per BS.
  std::vector<std::uint64_t> cru_used(scenario.num_bss() * scenario.num_services(), 0);
  std::vector<std::uint64_t> rrb_used(scenario.num_bss(), 0);

  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto assigned = alloc.bs_of(u);
    if (!assigned) continue;
    const BsId i = *assigned;
    const UserEquipment& e = scenario.ue(u);
    const BaseStation& b = scenario.bs(i);
    const LinkStats& l = scenario.link(u, i);
    std::ostringstream tag;
    tag << "ue " << u.value << " @ bs " << i.value << ": ";

    if (!l.in_coverage) violate(tag.str() + "out of coverage");
    if (!b.hosts(e.service))
      violate(tag.str() + "BS does not host the requested service (Eq. 13)");
    if (l.n_rrbs == 0) violate(tag.str() + "link cannot carry the demanded rate");
    if (scenario.pricing().m_k <= scenario.price(u, i) + scenario.pricing().m_k_o)
      violate(tag.str() + "pair is unprofitable for the SP (Eq. 16)");

    cru_used[i.idx() * scenario.num_services() + e.service.idx()] += e.cru_demand;
    rrb_used[i.idx()] += l.n_rrbs;
  }

  for (std::size_t bi = 0; bi < scenario.num_bss(); ++bi) {
    const BsId i{static_cast<std::uint32_t>(bi)};
    const BaseStation& b = scenario.bs(i);
    for (std::size_t j = 0; j < scenario.num_services(); ++j) {
      const std::uint64_t used = cru_used[bi * scenario.num_services() + j];
      if (used > b.cru_capacity[j]) {
        std::ostringstream os;
        os << "bs " << bi << " service " << j << ": CRU demand " << used
           << " exceeds capacity " << b.cru_capacity[j] << " (Eq. 12)";
        violate(os.str());
      }
    }
    if (rrb_used[bi] > b.num_rrbs) {
      std::ostringstream os;
      os << "bs " << bi << ": RRB demand " << rrb_used[bi] << " exceeds budget "
         << b.num_rrbs << " (Eq. 14)";
      violate(os.str());
    }
  }
  return report;
}

}  // namespace dmra
