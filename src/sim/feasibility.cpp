#include "sim/feasibility.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace dmra {

namespace {

/// A violation pending ordering: BS-level lines carry ue == kBsLevel so a
/// stable sort by (bs, ue) puts them after that BS's per-UE lines.
struct PendingViolation {
  std::uint64_t bs = 0;
  std::uint64_t ue = 0;
  std::string line;
};

constexpr std::uint64_t kBsLevel = std::numeric_limits<std::uint64_t>::max();

class ViolationCollector {
 public:
  void add(std::uint64_t bs, std::uint64_t ue, std::string line) {
    pending_.push_back({bs, ue, std::move(line)});
  }

  /// Sorted, deterministic report: by BS id, then UE id, then insertion
  /// order (stable) for multiple violations of the same pair.
  FeasibilityReport finish() {
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const PendingViolation& a, const PendingViolation& b) {
                       if (a.bs != b.bs) return a.bs < b.bs;
                       return a.ue < b.ue;
                     });
    FeasibilityReport report;
    report.ok = pending_.empty();
    report.violations.reserve(pending_.size());
    for (PendingViolation& v : pending_) report.violations.push_back(std::move(v.line));
    return report;
  }

 private:
  std::vector<PendingViolation> pending_;
};

std::string pair_tag(UeId u, BsId i) {
  std::ostringstream tag;
  tag << "bs " << i.value << " ue " << u.value << ": ";
  return tag.str();
}

}  // namespace

void FeasibilityReport::merge(FeasibilityReport other) {
  ok = ok && other.ok;
  violations.insert(violations.end(), std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
}

std::ostream& operator<<(std::ostream& os, const FeasibilityReport& report) {
  if (report.ok) return os << "feasible";
  for (std::size_t n = 0; n < report.violations.size(); ++n) {
    if (n > 0) os << '\n';
    os << report.violations[n];
  }
  return os;
}

FeasibilityReport check_feasibility(const Scenario& scenario, const Allocation& alloc) {
  DMRA_REQUIRE(alloc.num_ues() == scenario.num_ues());
  ViolationCollector collector;

  // Tally demand per (BS, service) and per BS.
  std::vector<std::uint64_t> cru_used(scenario.num_bss() * scenario.num_services(), 0);
  std::vector<std::uint64_t> rrb_used(scenario.num_bss(), 0);

  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto assigned = alloc.bs_of(u);
    if (!assigned) continue;
    const BsId i = *assigned;
    const UserEquipment& e = scenario.ue(u);
    const BaseStation& b = scenario.bs(i);
    const LinkStats& l = scenario.link(u, i);
    const std::string tag = pair_tag(u, i);

    if (!l.in_coverage) collector.add(i.value, u.value, tag + "out of coverage");
    if (!b.hosts(e.service))
      collector.add(i.value, u.value, tag + "BS does not host the requested service (Eq. 13)");
    if (l.n_rrbs == 0)
      collector.add(i.value, u.value, tag + "link cannot carry the demanded rate");
    if (scenario.pricing().m_k <= scenario.price(u, i) + scenario.pricing().m_k_o)
      collector.add(i.value, u.value, tag + "pair is unprofitable for the SP (Eq. 16)");

    cru_used[i.idx() * scenario.num_services() + e.service.idx()] += e.cru_demand;
    rrb_used[i.idx()] += l.n_rrbs;
  }

  for (std::size_t bi = 0; bi < scenario.num_bss(); ++bi) {
    const BsId i{static_cast<std::uint32_t>(bi)};
    const BaseStation& b = scenario.bs(i);
    for (std::size_t j = 0; j < scenario.num_services(); ++j) {
      const std::uint64_t used = cru_used[bi * scenario.num_services() + j];
      if (used > b.cru_capacity[j]) {
        std::ostringstream os;
        os << "bs " << bi << " service " << j << ": CRU demand " << used
           << " exceeds capacity " << b.cru_capacity[j] << " (Eq. 12)";
        collector.add(i.value, kBsLevel, os.str());
      }
    }
    if (rrb_used[bi] > b.num_rrbs) {
      std::ostringstream os;
      os << "bs " << bi << ": RRB demand " << rrb_used[bi] << " exceeds budget "
         << b.num_rrbs << " (Eq. 14)";
      collector.add(i.value, kBsLevel, os.str());
    }
  }
  return collector.finish();
}

FeasibilityReport check_ledger_consistency(const Scenario& scenario,
                                           const Allocation& alloc,
                                           std::span<const std::uint32_t> crus,
                                           std::span<const std::uint32_t> rrbs) {
  DMRA_REQUIRE(alloc.num_ues() == scenario.num_ues());
  DMRA_REQUIRE(crus.size() == scenario.num_bss() * scenario.num_services());
  DMRA_REQUIRE(rrbs.size() == scenario.num_bss());
  ViolationCollector collector;

  const std::size_t ns = scenario.num_services();
  std::vector<std::uint64_t> cru_used(scenario.num_bss() * ns, 0);
  std::vector<std::uint64_t> rrb_used(scenario.num_bss(), 0);
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto assigned = alloc.bs_of(u);
    if (!assigned) continue;
    const UserEquipment& e = scenario.ue(u);
    cru_used[assigned->idx() * ns + e.service.idx()] += e.cru_demand;
    rrb_used[assigned->idx()] += scenario.link(u, *assigned).n_rrbs;
  }

  for (std::size_t bi = 0; bi < scenario.num_bss(); ++bi) {
    const BsId i{static_cast<std::uint32_t>(bi)};
    const BaseStation& b = scenario.bs(i);
    for (std::size_t j = 0; j < ns; ++j) {
      // Signed: a drifted ledger can claim more remaining than capacity.
      const std::int64_t expected =
          static_cast<std::int64_t>(b.cru_capacity[j]) -
          static_cast<std::int64_t>(cru_used[bi * ns + j]);
      const auto reported = static_cast<std::int64_t>(crus[bi * ns + j]);
      if (reported != expected) {
        std::ostringstream os;
        os << "bs " << bi << " service " << j << ": ledger reports " << reported
           << " CRUs remaining, recount expects " << expected
           << (reported < expected ? " (double commit)" : " (leak / unpaired release)");
        collector.add(i.value, kBsLevel, os.str());
      }
    }
    const std::int64_t expected_rrbs = static_cast<std::int64_t>(b.num_rrbs) -
                                       static_cast<std::int64_t>(rrb_used[bi]);
    const auto reported_rrbs = static_cast<std::int64_t>(rrbs[bi]);
    if (reported_rrbs != expected_rrbs) {
      std::ostringstream os;
      os << "bs " << bi << ": ledger reports " << reported_rrbs
         << " RRBs remaining, recount expects " << expected_rrbs
         << (reported_rrbs < expected_rrbs ? " (double-counted RRBs)"
                                           : " (leak / unpaired release)");
      collector.add(i.value, kBsLevel, os.str());
    }
  }
  return collector.finish();
}

}  // namespace dmra
