// QoS-side evaluation: latency proxy and fairness indices.
//
// The paper's motivation is QoS/QoE — edge serving beats the cloud on
// latency, and distance "determines the transmission delay and user
// experience" (§V) — but its evaluation only plots profit. This module
// adds the QoS view: a simple, documented latency proxy per task and
// Jain fairness indices over SPs and UEs, so allocation schemes can be
// compared on what users feel, not just on what operators earn.
#pragma once

#include <span>

#include "mec/allocation.hpp"
#include "mec/scenario.hpp"

namespace dmra {

/// Latency proxy parameters. Not a physical model: `per_km_ms` stands in
/// for the multi-hop backhaul/retransmission cost that grows with UE–BS
/// distance (physical propagation alone would be negligible), and
/// `cloud_rtt_ms` is the WAN detour every forwarded task pays.
struct LatencyModel {
  double edge_base_ms = 2.0;    ///< MEC processing + radio access floor
  double per_km_ms = 5.0;       ///< distance-dependent access cost
  double cloud_rtt_ms = 60.0;   ///< extra round trip for cloud-forwarded tasks
};

/// Latency proxy of one served task at distance `distance_m`.
double edge_latency_ms(const LatencyModel& model, double distance_m);

/// Latency proxy of a cloud-forwarded task.
double cloud_latency_ms(const LatencyModel& model);

/// Jain's fairness index: (Σx)² / (n·Σx²). 1 when all equal, 1/n when a
/// single element holds everything. Requires non-empty, non-negative
/// input with a positive sum; returns 1.0 for an all-zero vector.
double jain_index(std::span<const double> xs);

struct QosMetrics {
  double mean_latency_ms = 0.0;       ///< over every UE (cloud included)
  double mean_edge_latency_ms = 0.0;  ///< over served UEs only
  double p95_latency_ms = 0.0;        ///< over every UE
  double jain_sp_profit = 0.0;        ///< fairness of W_k across SPs
  double jain_ue_latency = 0.0;       ///< fairness of latency across UEs
  std::vector<double> per_ue_latency_ms;
};

QosMetrics evaluate_qos(const Scenario& scenario, const Allocation& alloc,
                        const LatencyModel& model = {});

}  // namespace dmra
