// Allocator-as-a-service: the long-horizon, event-driven serving driver
// (ROADMAP item 3, docs/SERVING.md).
//
// Production MEC is not a batch problem: UEs arrive, dwell, move, and
// leave while the allocator keeps serving. This module turns the paper's
// "continuously adjust" remark (§V) into that regime — a deterministic
// seeded event timeline of
//   * Poisson arrivals        (exponential inter-arrival times),
//   * dwell-time departures   (exponential dwell per UE),
//   * mobility re-associations (random-waypoint moves, src/mobility),
// applied one event at a time through a persistent IncrementalAllocator
// (core/incremental.hpp) with the InvariantAuditor live at the audit
// seam, measuring what a service operator cares about: per-decision
// p50/p99/p999 latency, re-allocation churn, steady-state profit against
// a periodic from-scratch re-solve, and recovery time after injected
// faults (sim/faults plans interpreted on the event timeline).
//
// Determinism contract (docs/SERVING.md): the event timeline, every
// allocation decision, and the event log are pure functions of
// (ChurnConfig, seed) — byte-identical across reruns and across --jobs
// values. Wall-clock latency lives only in the LatencyHistogram
// (obs/latency.hpp) and the metrics timers, outside every deterministic
// surface.
//
// Scenario immutability is squared with a dynamic population via a *slot
// universe*: the whole timeline is generated first, every (logical UE,
// position epoch) becomes one scenario slot with precomputed links, and
// replay activates/deactivates slots through the allocator. A mobility
// event retires the UE's old slot and admits its new one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/incremental.hpp"
#include "mec/scenario.hpp"
#include "mobility/models.hpp"
#include "obs/latency.hpp"
#include "sim/faults.hpp"
#include "workload/generator.hpp"

namespace dmra {

/// Sentinel slot id for "no slot" (e.g. ChurnEvent::prev_slot outside
/// kMove events).
inline constexpr std::uint32_t kNoChurnSlot = 0xffffffffu;

enum class ChurnEventKind : std::uint8_t {
  kArrival,    ///< logical UE enters; its slot is admitted
  kDeparture,  ///< logical UE leaves; its slot is removed
  kMove,       ///< waypoint re-association: prev_slot retires, slot admits
};

std::string_view to_string(ChurnEventKind kind);

/// One timeline entry. `slot` is the universe slot the event acts on;
/// kMove additionally names the slot it vacates.
struct ChurnEvent {
  ChurnEventKind kind = ChurnEventKind::kArrival;
  std::uint32_t ue = 0;                    ///< logical UE id (stable across moves)
  std::uint32_t slot = 0;                  ///< universe slot acted on
  std::uint32_t prev_slot = kNoChurnSlot;  ///< kMove: the slot vacated
  double time_s = 0.0;                     ///< simulation time of the event
};

struct ChurnConfig {
  /// Deployment template (SPs, BSs, channel, pricing). num_ues is
  /// ignored — the population comes from the event timeline.
  ScenarioConfig deployment;

  double arrival_rate_hz = 5.0;  ///< Poisson arrival rate λ (UEs per second)
  double mean_dwell_s = 100.0;   ///< exponential dwell; <= 0 → immediate departure
  /// Mean time between waypoint re-association events per active UE;
  /// 0 disables mobility (static dwellers).
  double mean_move_interval_s = 0.0;
  /// UEs admitted as arrivals at t = 0 (these count toward the horizon).
  /// steady_state_target() is the natural choice for steady-state runs.
  std::size_t prefill = 0;

  std::size_t horizon_events = 1000;  ///< stop after this many applied events

  /// Every this-many events, run a muted from-scratch solve_dmra_partial
  /// over the active population and record the live-vs-scratch profit
  /// gap. 0 disables the baseline.
  std::size_t resolve_every = 0;
  /// Every this-many events, retry placement for every active
  /// cloud-forwarded UE with candidates (capacity may have freed).
  /// 0 disables the sweep.
  std::size_t readmit_every = 64;
  /// Crash orphans get one re-placement attempt each, drained this many
  /// per event (the recovery backlog; docs/SERVING.md).
  std::size_t recovery_batch = 4;

  /// partition_regions() region count for coverage-class accounting
  /// (interior / boundary / cloud-only slots, cross-region moves).
  std::size_t regions = 4;

  std::uint64_t seed = 1;
  IncrementalConfig incremental;

  /// Per-decision latency objective in ns (p99 over each SLO window);
  /// 0 disables SLO tracking. Wall-clock-driven: the report it feeds
  /// (ChurnSloReport) lives OUTSIDE every deterministic surface, and an
  /// SLO-breach flight-recorder dump is marked deterministic=false.
  std::uint64_t slo_p99_ns = 0;
  /// Applied events per SLO evaluation window.
  std::size_t slo_window_events = 256;

  /// Fault plan injected on the event timeline: FaultPlan rounds are
  /// interpreted as event indices (docs/RESILIENCE.md). Link faults
  /// (loss/dup/delay) are bus-level and do not apply to the direct
  /// serving path — only crashes and degradations fire here.
  std::optional<FaultSpec> faults;

  /// Waypoint process for kMove events; the area is overridden with the
  /// deployment's area at timeline build.
  RandomWaypointConfig waypoint;

  /// λ × mean dwell, rounded — the expected steady-state population.
  std::size_t steady_state_target() const;
};

/// The pre-generated deterministic timeline: the slot universe (one
/// scenario slot per logical-UE position epoch) and the event sequence
/// replayed over it. Pure function of the config (including seed).
struct ChurnTimeline {
  Scenario universe;
  std::vector<ChurnEvent> events;
  std::size_t num_logical_ues = 0;
};

ChurnTimeline build_churn_timeline(const ChurnConfig& config);

/// Deterministic serving outcomes (all pure functions of the config).
struct ChurnStats {
  std::size_t events = 0;  ///< applied events (≤ horizon; the stream may drain)
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  std::size_t moves = 0;

  std::size_t admitted_to_bs = 0;     ///< admissions decided onto a BS
  std::size_t admitted_to_cloud = 0;  ///< admissions decided cloud
  /// Settled (BS-served) UEs whose assignment moved: mobility
  /// re-associations landing elsewhere plus crash evictions. The churn
  /// numerator (docs/SERVING.md).
  std::size_t reassociations = 0;
  std::size_t cross_region_moves = 0;  ///< kMove crossing a partition class
  std::size_t readmitted = 0;          ///< cloud dwellers later placed on a BS

  std::size_t crashes = 0;
  std::size_t recoveries = 0;
  std::size_t degradations = 0;
  std::size_t orphaned_ues = 0;  ///< UEs evicted by crashes
  /// Longest / summed recovery episodes, in events: from a crash until
  /// every orphan of the backlog got its re-placement attempt.
  std::size_t recovery_events_max = 0;
  std::size_t recovery_events_total = 0;

  std::size_t resolves = 0;     ///< periodic from-scratch baselines run
  double resolve_gap_max = 0.0;   ///< max (scratch − live)/scratch, clamped ≥ 0
  double resolve_gap_last = 0.0;  ///< gap at the last baseline

  double final_profit = 0.0;  ///< live Eq. 11 profit after the last event
  std::size_t final_active = 0;
  std::size_t final_served = 0;
  std::size_t final_cloud = 0;  ///< active but cloud-forwarded at the end
  std::size_t peak_active = 0;

  std::size_t universe_slots = 0;
  std::size_t boundary_slots = 0;    ///< partition class kBoundary
  std::size_t cloud_only_slots = 0;  ///< partition class kCloudOnly

  /// Re-allocation churn rate: settled-assignment moves per applied event.
  double churn_rate() const {
    return events == 0 ? 0.0
                       : static_cast<double>(reassociations) / static_cast<double>(events);
  }
};

/// SLO accounting over the serving run (ChurnConfig::slo_p99_ns).
/// Entirely wall-clock-derived: NEVER folded into ChurnStats, the event
/// log, or any CSV that is golden-tested — same rule as the latency
/// histogram it is computed from.
struct ChurnSloReport {
  std::uint64_t objective_p99_ns = 0;  ///< 0 = SLO tracking disabled
  std::size_t windows = 0;             ///< evaluation windows completed
  std::size_t breached_windows = 0;    ///< windows whose p99 exceeded the objective
  double worst_window_p99_ns = 0.0;
  /// Error-budget burn rate over the whole run: fraction of decisions
  /// above the objective divided by the 1% budget a p99 objective
  /// implies (> 1 = burning faster than the budget allows).
  double burn_rate = 0.0;
};

struct ChurnResult {
  ChurnStats stats;
  ChurnSloReport slo;
  /// Per-event decision latency (wall clock — excluded from every
  /// deterministic surface, warn-only in tools/bench_diff.py).
  obs::LatencyHistogram latency;
  /// One line per applied event (plus fault/readmit/resolve/final lines):
  /// the deterministic byte surface same-seed runs must reproduce
  /// exactly (docs/SERVING.md grammar).
  std::string event_log;
  Allocation final_allocation{0};
};

/// Replay the config's timeline through a persistent IncrementalAllocator.
/// Deterministic per config except for ChurnResult::latency.
ChurnResult run_churn(const ChurnConfig& config);

/// Convenience: run_churn over an already-built timeline (lets callers
/// reuse one universe across probes; run_churn builds then delegates).
ChurnResult run_churn(const ChurnTimeline& timeline, const ChurnConfig& config);

}  // namespace dmra
