#include "sim/render.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/require.hpp"

namespace dmra {

namespace {

struct Frame {
  double x0, y0, x1, y1;
  std::size_t cols, rows;

  std::size_t col_of(double x) const {
    const double t = (x - x0) / std::max(x1 - x0, 1e-9);
    return std::min(cols - 1, static_cast<std::size_t>(std::max(0.0, t) *
                                                       static_cast<double>(cols)));
  }
  std::size_t row_of(double y) const {
    const double t = (y - y0) / std::max(y1 - y0, 1e-9);
    // Row 0 is the top of the printout = the maximum y.
    const std::size_t r = std::min(
        rows - 1,
        static_cast<std::size_t>(std::max(0.0, t) * static_cast<double>(rows)));
    return rows - 1 - r;
  }
};

Frame fit_frame(const Scenario& scenario, const RenderOptions& options) {
  DMRA_REQUIRE(options.cols >= 8 && options.rows >= 4);
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;
  bool first = true;
  auto grow = [&](const Point& p) {
    if (first) {
      x0 = x1 = p.x;
      y0 = y1 = p.y;
      first = false;
      return;
    }
    x0 = std::min(x0, p.x);
    x1 = std::max(x1, p.x);
    y0 = std::min(y0, p.y);
    y1 = std::max(y1, p.y);
  };
  for (const BaseStation& b : scenario.bss()) grow(b.position);
  for (const UserEquipment& u : scenario.ues()) grow(u.position);
  return Frame{x0, y0, x1, y1, options.cols, options.rows};
}

char density_glyph(std::size_t count, std::size_t max_count) {
  static constexpr char kShades[] = {' ', '.', ':', '+', '*', '#', '@'};
  if (count == 0 || max_count == 0) return ' ';
  const double t = static_cast<double>(count) / static_cast<double>(max_count);
  const auto idx =
      1 + static_cast<std::size_t>(t * 5.999) % 6;  // 1..6, never back to ' '
  return kShades[std::min<std::size_t>(idx, 6)];
}

std::string draw(const Frame& frame, const std::vector<std::string>& grid) {
  std::ostringstream os;
  os << '+' << std::string(frame.cols, '-') << "+\n";
  for (const std::string& row : grid) os << '|' << row << "|\n";
  os << '+' << std::string(frame.cols, '-') << "+\n";
  return os.str();
}

}  // namespace

std::string render_deployment(const Scenario& scenario, const RenderOptions& options) {
  const Frame frame = fit_frame(scenario, options);
  std::vector<std::vector<std::size_t>> counts(options.rows,
                                               std::vector<std::size_t>(options.cols, 0));
  for (const UserEquipment& u : scenario.ues())
    counts[frame.row_of(u.position.y)][frame.col_of(u.position.x)]++;
  std::size_t max_count = 0;
  for (const auto& row : counts)
    for (std::size_t c : row) max_count = std::max(max_count, c);

  std::vector<std::string> grid(options.rows, std::string(options.cols, ' '));
  for (std::size_t r = 0; r < options.rows; ++r)
    for (std::size_t c = 0; c < options.cols; ++c)
      grid[r][c] = density_glyph(counts[r][c], max_count);
  for (const BaseStation& b : scenario.bss()) {
    grid[frame.row_of(b.position.y)][frame.col_of(b.position.x)] =
        static_cast<char>('A' + (b.sp.value % 26));
  }

  std::string out = draw(frame, grid);
  if (options.legend) {
    out += "UE density: . : + * # @ (light to heavy); letters = BSs by owning SP "
           "(A = SP-0, ...)\n";
  }
  return out;
}

std::string render_utilization(const Scenario& scenario, const Allocation& alloc,
                               const RenderOptions& options) {
  DMRA_REQUIRE(alloc.num_ues() == scenario.num_ues());
  const Frame frame = fit_frame(scenario, options);

  // Per-BS RRB usage under the allocation.
  std::vector<std::uint64_t> rrb_used(scenario.num_bss(), 0);
  std::vector<std::vector<std::size_t>> cloud(options.rows,
                                              std::vector<std::size_t>(options.cols, 0));
  for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    if (const auto bs = alloc.bs_of(u)) {
      rrb_used[bs->idx()] += scenario.link(u, *bs).n_rrbs;
    } else {
      const Point& p = scenario.ue(u).position;
      cloud[frame.row_of(p.y)][frame.col_of(p.x)]++;
    }
  }
  std::size_t max_cloud = 0;
  for (const auto& row : cloud)
    for (std::size_t c : row) max_cloud = std::max(max_cloud, c);

  std::vector<std::string> grid(options.rows, std::string(options.cols, ' '));
  for (std::size_t r = 0; r < options.rows; ++r)
    for (std::size_t c = 0; c < options.cols; ++c)
      grid[r][c] = cloud[r][c] ? density_glyph(cloud[r][c], max_cloud) : ' ';
  for (const BaseStation& b : scenario.bss()) {
    const double util =
        b.num_rrbs ? static_cast<double>(rrb_used[b.id.idx()]) / b.num_rrbs : 0.0;
    const auto bucket = static_cast<char>('0' + std::min(9, static_cast<int>(util * 10.0)));
    grid[frame.row_of(b.position.y)][frame.col_of(b.position.x)] = bucket;
  }

  std::string out = draw(frame, grid);
  if (options.legend) {
    out += "digits = BS RRB utilization (0 = idle, 9 = full); shades = cloud-forwarded "
           "UE density\n";
  }
  return out;
}

}  // namespace dmra
