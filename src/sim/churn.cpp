#include "sim/churn.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <memory>
#include <queue>
#include <string>
#include <utility>

#include "core/solver.hpp"
#include "mec/audit.hpp"
#include "obs/flight.hpp"
#include "obs/recorder.hpp"
#include "util/require.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

// Shortest round-trip formatting (std::to_chars), the same idiom the round
// CSV exporter uses: the event log is a deterministic byte surface, so no
// locale- or precision-dependent formatting may touch it.
void append_num(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_num(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

/// Inverse-CDF exponential draw with the given mean; mean <= 0 yields 0
/// (the degenerate immediate-departure / back-to-back cases).
double exp_draw(Rng& rng, double mean) {
  if (mean <= 0.0) return 0.0;
  const double u = rng.uniform_real(0.0, 1.0);  // [0, 1) → 1-u in (0, 1]
  return -mean * std::log(1.0 - u);
}

/// Timeline-generation heap entry. Min-ordered by (time, seq): seq is the
/// push order, so simultaneous events (prefill, zero dwell) resolve
/// deterministically in scheduling order.
struct Pending {
  double time = 0.0;
  std::uint64_t seq = 0;
  ChurnEventKind kind = ChurnEventKind::kArrival;
  std::uint32_t ue = 0;
  bool chained = false;  ///< kArrival: schedules the next Poisson arrival
};

struct PendingAfter {
  bool operator()(const Pending& a, const Pending& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Per-logical-UE generation state while its dwell is in progress.
struct UeGen {
  bool alive = false;
  std::uint32_t slot = 0;
  double dwell_end = 0.0;
  double last_time = 0.0;  ///< simulation time of the model's position
  std::unique_ptr<MobilityModel> model;
  SpId sp{0};
  ServiceId service{0};
  std::uint32_t cru_demand = 0;
  double rate_demand_bps = 0.0;
};

}  // namespace

std::string_view to_string(ChurnEventKind kind) {
  switch (kind) {
    case ChurnEventKind::kArrival: return "arrival";
    case ChurnEventKind::kDeparture: return "departure";
    case ChurnEventKind::kMove: return "move";
  }
  return "?";
}

std::size_t ChurnConfig::steady_state_target() const {
  const double target = arrival_rate_hz * mean_dwell_s;
  if (!(target > 0.0)) return 0;
  return static_cast<std::size_t>(target + 0.5);
}

ChurnTimeline build_churn_timeline(const ChurnConfig& config) {
  DMRA_REQUIRE(config.arrival_rate_hz >= 0.0);

  // The deployment (SPs, BSs, channel, pricing) comes straight from the
  // workload generator with an empty population: the BS grid of a churn
  // run at seed s is the BS grid of every batch run at seed s.
  ScenarioConfig deployment = config.deployment;
  deployment.num_ues = 0;
  const Scenario base = generate_scenario(deployment, config.seed);

  // Independent named streams: adding draws to one process (say mobility)
  // must not move another's (arrivals).
  const Rng root("churn", config.seed);
  Rng arrival_rng = root.child("arrivals");
  Rng dwell_rng = root.child("dwell");
  Rng attr_rng = root.child("attrs");
  Rng move_rng = root.child("moves");
  const Rng waypoint_root = root.child("waypoints");

  RandomWaypointConfig waypoint = config.waypoint;
  waypoint.area = config.deployment.area();
  const double side = config.deployment.area_side_m;
  const double inter_arrival_mean =
      config.arrival_rate_hz > 0.0 ? 1.0 / config.arrival_rate_hz : 0.0;

  std::priority_queue<Pending, std::vector<Pending>, PendingAfter> heap;
  std::uint64_t seq = 0;
  std::uint32_t next_ue = 0;
  const auto push = [&](double time, ChurnEventKind kind, std::uint32_t ue,
                        bool chained = false) {
    heap.push(Pending{time, seq++, kind, ue, chained});
  };

  for (std::size_t k = 0; k < config.prefill; ++k)
    push(0.0, ChurnEventKind::kArrival, next_ue++);
  if (config.arrival_rate_hz > 0.0)
    push(exp_draw(arrival_rng, inter_arrival_mean), ChurnEventKind::kArrival,
         next_ue++, /*chained=*/true);

  std::vector<ChurnEvent> events;
  std::vector<UserEquipment> slots;
  std::vector<UeGen> gens;
  events.reserve(config.horizon_events);

  const auto new_slot = [&](const UeGen& g, Point pos) {
    const auto id = static_cast<std::uint32_t>(slots.size());
    slots.push_back(UserEquipment{UeId{id}, g.sp, pos, g.service, g.cru_demand,
                                  g.rate_demand_bps});
    return id;
  };

  while (events.size() < config.horizon_events && !heap.empty()) {
    const Pending p = heap.top();
    heap.pop();
    switch (p.kind) {
      case ChurnEventKind::kArrival: {
        if (p.chained)
          push(p.time + exp_draw(arrival_rng, inter_arrival_mean),
               ChurnEventKind::kArrival, next_ue++, /*chained=*/true);
        if (gens.size() <= p.ue) gens.resize(p.ue + 1);
        UeGen& g = gens[p.ue];
        g.alive = true;
        // Attribute draws mirror the generator's §VI-A ranges.
        g.sp = SpId{static_cast<std::uint32_t>(attr_rng.index(base.num_sps()))};
        g.service = ServiceId{
            static_cast<std::uint32_t>(attr_rng.index(base.num_services()))};
        g.cru_demand = static_cast<std::uint32_t>(attr_rng.uniform_int(
            config.deployment.cru_demand_min, config.deployment.cru_demand_max));
        g.rate_demand_bps = attr_rng.uniform_real(
            config.deployment.rate_demand_min_bps, config.deployment.rate_demand_max_bps);
        const Point pos{attr_rng.uniform_real(0.0, side),
                        attr_rng.uniform_real(0.0, side)};
        g.slot = new_slot(g, pos);
        g.dwell_end = p.time + exp_draw(dwell_rng, config.mean_dwell_s);
        events.push_back(
            {ChurnEventKind::kArrival, p.ue, g.slot, kNoChurnSlot, p.time});
        push(g.dwell_end, ChurnEventKind::kDeparture, p.ue);
        if (config.mean_move_interval_s > 0.0) {
          std::string name = "ue";
          name += std::to_string(p.ue);
          g.model = make_random_waypoint({pos}, waypoint, waypoint_root.child(name));
          g.last_time = p.time;
          const double move_at =
              p.time + exp_draw(move_rng, config.mean_move_interval_s);
          if (move_at < g.dwell_end) push(move_at, ChurnEventKind::kMove, p.ue);
        }
        break;
      }
      case ChurnEventKind::kDeparture: {
        UeGen& g = gens[p.ue];
        if (!g.alive) break;
        events.push_back(
            {ChurnEventKind::kDeparture, p.ue, g.slot, kNoChurnSlot, p.time});
        g.alive = false;
        g.model.reset();
        break;
      }
      case ChurnEventKind::kMove: {
        UeGen& g = gens[p.ue];
        if (!g.alive) break;  // departed before its move fired
        g.model->advance(p.time - g.last_time);
        g.last_time = p.time;
        const Point pos = g.model->positions()[0];
        const std::uint32_t prev = g.slot;
        g.slot = new_slot(g, pos);
        events.push_back(
            {ChurnEventKind::kMove, p.ue, g.slot, prev, p.time});
        const double move_at =
            p.time + exp_draw(move_rng, config.mean_move_interval_s);
        if (move_at < g.dwell_end) push(move_at, ChurnEventKind::kMove, p.ue);
        break;
      }
    }
  }
  // Rebuild the scenario with the slot population appended: same
  // deployment, every link/candidate/price precomputed once for the whole
  // horizon. (Scenario is immutable — this is the one construction.)
  ScenarioData data;
  data.num_services = base.num_services();
  data.sps.assign(base.sps().begin(), base.sps().end());
  data.bss.assign(base.bss().begin(), base.bss().end());
  data.ues = std::move(slots);
  data.channel = base.channel();
  data.ofdma = base.ofdma();
  data.pricing = base.pricing();
  data.coverage_radius_m = base.coverage_radius_m();
  data.link_build = config.deployment.link_build;
  return ChurnTimeline{Scenario(std::move(data)), std::move(events), next_ue};
}

ChurnResult run_churn(const ChurnTimeline& timeline, const ChurnConfig& config) {
  const Scenario& universe = timeline.universe;
  const RegionPartition partition = partition_regions(universe, config.regions);

  ChurnResult result;
  ChurnStats& stats = result.stats;
  stats.universe_slots = universe.num_ues();
  for (const std::uint32_t r : partition.ue_region) {
    if (r == RegionPartition::kBoundary) ++stats.boundary_slots;
    if (r == RegionPartition::kCloudOnly) ++stats.cloud_only_slots;
  }

  IncrementalAllocator alloc(universe, config.incremental);

  // Flight recorder: sized for the whole slot universe up front so replay
  // never grows a per-agent counter. The lifecycle ops (crash_bs,
  // recover_bs, degrade_bs) record their own flight events and the crash
  // trigger fires inside core/incremental — replay only adds the
  // per-event timeline narrative, counters, and round aggregates.
  obs::FlightRecorder* const fr = obs::flight();
  if (fr != nullptr) fr->reserve_agents(universe.num_ues(), universe.num_bss());

  // SLO tracking (ChurnConfig::slo_p99_ns): wall-clock-driven, so the
  // report and any breach-triggered dump stay OUTSIDE the deterministic
  // surfaces (the dump is marked deterministic=false).
  result.slo.objective_p99_ns = config.slo_p99_ns;
  obs::LatencyHistogram slo_window;
  std::size_t slo_window_count = 0;
  const auto close_slo_window = [&](std::size_t idx) {
    if (slo_window_count == 0) return;
    ++result.slo.windows;
    const double p99 = slo_window.percentile_ns(0.99);
    if (p99 > result.slo.worst_window_p99_ns) result.slo.worst_window_p99_ns = p99;
    if (p99 > static_cast<double>(config.slo_p99_ns)) {
      ++result.slo.breached_windows;
      if (fr != nullptr)
        fr->trigger("slo-breach", idx, obs::kNoId, obs::kNoId,
                    /*deterministic=*/false);
    }
    slo_window = obs::LatencyHistogram();
    slo_window_count = 0;
  };

  // Fault plan on the event timeline: FaultPlan rounds are event indices.
  // Actions scheduled past the applied horizon never fire.
  std::vector<std::pair<std::size_t, BsId>> crash_at, recover_at;
  std::vector<std::pair<std::size_t, CapacityDegradation>> degrade_at;
  if (config.faults && config.faults->any()) {
    FaultPlan plan = make_fault_plan(*config.faults, universe.num_bss());
    plan.validate(universe.num_bss());
    for (const BsOutage& o : plan.outages) {
      crash_at.emplace_back(o.crash_round, o.bs);
      if (o.recover_round != kNeverRecovers)
        recover_at.emplace_back(o.recover_round, o.bs);
    }
    for (const CapacityDegradation& d : plan.degradations)
      degrade_at.emplace_back(d.round, d);
    const auto by_index = [](const auto& a, const auto& b) { return a.first < b.first; };
    std::stable_sort(crash_at.begin(), crash_at.end(), by_index);
    std::stable_sort(recover_at.begin(), recover_at.end(), by_index);
    std::stable_sort(degrade_at.begin(), degrade_at.end(), by_index);
  }
  std::size_t crash_cursor = 0, recover_cursor = 0, degrade_cursor = 0;

  // Crash orphans await their one re-placement attempt here (FIFO,
  // recovery_batch drained per event). head indexes the next attempt.
  std::vector<UeId> backlog;
  std::size_t backlog_head = 0;
  std::size_t episode_start = 0;

  std::string& log = result.event_log;
  std::size_t cloud_active = 0;  // active slots currently cloud-forwarded

  const auto region_of = [&](std::uint32_t slot) { return partition.ue_region[slot]; };
  const auto record_timeline = [&](obs::TraceRecorder* rec, std::string_view label,
                                   std::uint32_t ue, std::optional<BsId> bs,
                                   std::size_t idx) {
    if (rec == nullptr && fr == nullptr) return;
    obs::TraceEvent e;
    e.kind = obs::EventKind::kTimeline;
    e.label = label;
    e.ue = ue;
    if (bs) e.bs = bs->value;
    e.value = idx;
    if (rec != nullptr) rec->record(e);
    if (fr != nullptr) fr->record(e);
  };
  const auto append_bs = [&](std::optional<BsId> bs) {
    if (bs) {
      log += "bs=";
      append_num(log, static_cast<std::uint64_t>(bs->value));
    } else {
      log += "cloud";
    }
  };

  for (std::size_t idx = 0; idx < timeline.events.size(); ++idx) {
    const ChurnEvent& ev = timeline.events[idx];
    obs::TraceRecorder* const rec = obs::recorder();
    if (rec != nullptr) rec->set_round(idx);
    if (fr != nullptr) fr->set_round(idx);

    // 1. Faults scheduled at this event index (crashes, then
    //    degradations, then recoveries — a fixed documented order).
    for (; crash_cursor < crash_at.size() && crash_at[crash_cursor].first == idx;
         ++crash_cursor) {
      const BsId bs = crash_at[crash_cursor].second;
      if (backlog_head == backlog.size()) {  // backlog idle → episode starts
        backlog.clear();
        backlog_head = 0;
        episode_start = idx;
      }
      const std::size_t evicted = alloc.crash_bs(bs, backlog);
      ++stats.crashes;
      stats.orphaned_ues += evicted;
      stats.reassociations += evicted;  // served → cloud is an assignment move
      cloud_active += evicted;
      if (fr != nullptr) {
        // Incremental (not end-of-run) so windowed rollups see the step.
        fr->metrics().add_counter("churn.crashes");
        fr->metrics().add_counter("churn.orphaned", evicted);
      }
      log += "e=";
      append_num(log, idx);
      log += " fault crash bs=";
      append_num(log, static_cast<std::uint64_t>(bs.value));
      log += " orphans=";
      append_num(log, evicted);
      log += '\n';
      if (rec != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kFault;
        e.label = "bs-crash";
        e.bs = bs.value;
        e.value = idx;
        rec->record(e);
      }
    }
    for (; degrade_cursor < degrade_at.size() && degrade_at[degrade_cursor].first == idx;
         ++degrade_cursor) {
      const CapacityDegradation& d = degrade_at[degrade_cursor].second;
      alloc.degrade_bs(d.bs, d.cru_factor, d.rrb_factor);
      ++stats.degradations;
      if (fr != nullptr) fr->metrics().add_counter("churn.degradations");
      log += "e=";
      append_num(log, idx);
      log += " fault degrade bs=";
      append_num(log, static_cast<std::uint64_t>(d.bs.value));
      log += '\n';
      if (rec != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kFault;
        e.label = "bs-degrade";
        e.bs = d.bs.value;
        e.value = idx;
        rec->record(e);
      }
    }
    for (; recover_cursor < recover_at.size() && recover_at[recover_cursor].first == idx;
         ++recover_cursor) {
      const BsId bs = recover_at[recover_cursor].second;
      alloc.recover_bs(bs);
      ++stats.recoveries;
      if (fr != nullptr) fr->metrics().add_counter("churn.recoveries");
      log += "e=";
      append_num(log, idx);
      log += " fault recover bs=";
      append_num(log, static_cast<std::uint64_t>(bs.value));
      log += '\n';
      if (rec != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kRepair;
        e.label = "bs-recover";
        e.bs = bs.value;
        e.value = idx;
        rec->record(e);
      }
    }

    // 2. The event itself — the timed serving decision. Only allocator
    //    calls sit inside the clocked window; accounting and logging are
    //    outside it.
    ++stats.events;
    const UeId slot{ev.slot};
    std::optional<BsId> was;       // previous assignment (departure/move)
    std::optional<BsId> decided;   // new assignment (arrival/move)
    if (ev.kind == ChurnEventKind::kDeparture) was = alloc.allocation().bs_of(slot);
    if (ev.kind == ChurnEventKind::kMove)
      was = alloc.allocation().bs_of(UeId{ev.prev_slot});

    const std::uint64_t t0 = obs::monotonic_now_ns();
    switch (ev.kind) {
      case ChurnEventKind::kArrival:
        decided = alloc.admit(slot);
        break;
      case ChurnEventKind::kDeparture:
        alloc.remove(slot);
        break;
      case ChurnEventKind::kMove:
        alloc.remove(UeId{ev.prev_slot});
        decided = alloc.admit(slot);
        break;
    }
    const std::uint64_t elapsed_ns = obs::monotonic_now_ns() - t0;
    result.latency.record(elapsed_ns);
    if (config.slo_p99_ns > 0) {
      slo_window.record(elapsed_ns);
      if (++slo_window_count >= config.slo_window_events) close_slo_window(idx);
    }

    log += "e=";
    append_num(log, idx);
    log += " t=";
    append_num(log, ev.time_s);
    log += ' ';
    log += to_string(ev.kind);
    log += " ue=";
    append_num(log, static_cast<std::uint64_t>(ev.ue));
    log += " slot=";
    append_num(log, static_cast<std::uint64_t>(ev.slot));
    switch (ev.kind) {
      case ChurnEventKind::kArrival:
        ++stats.arrivals;
        decided ? ++stats.admitted_to_bs : ++stats.admitted_to_cloud;
        if (!decided) ++cloud_active;
        log += " -> ";
        append_bs(decided);
        break;
      case ChurnEventKind::kDeparture:
        ++stats.departures;
        if (!was) --cloud_active;
        log += " was=";
        append_bs(was);
        break;
      case ChurnEventKind::kMove: {
        ++stats.moves;
        decided ? ++stats.admitted_to_bs : ++stats.admitted_to_cloud;
        if (!was) --cloud_active;
        if (!decided) ++cloud_active;
        if (was && (!decided || *decided != *was)) ++stats.reassociations;
        const bool crossed = region_of(ev.prev_slot) != region_of(ev.slot);
        if (crossed) ++stats.cross_region_moves;
        log += " prev=";
        append_num(log, static_cast<std::uint64_t>(ev.prev_slot));
        log += " was=";
        append_bs(was);
        log += " -> ";
        append_bs(decided);
        log += " xregion=";
        append_num(log, static_cast<std::uint64_t>(crossed ? 1 : 0));
        break;
      }
    }
    log += '\n';
    record_timeline(rec, to_string(ev.kind), ev.ue, decided, idx);
    stats.peak_active = std::max(stats.peak_active, alloc.num_active());
    if (fr != nullptr) {
      obs::MetricsRegistry& m = fr->metrics();
      switch (ev.kind) {
        case ChurnEventKind::kArrival: m.add_counter("churn.arrivals"); break;
        case ChurnEventKind::kDeparture: m.add_counter("churn.departures"); break;
        case ChurnEventKind::kMove: m.add_counter("churn.moves"); break;
      }
      m.set_gauge("churn.active", static_cast<double>(alloc.num_active()));
      m.set_gauge("churn.cloud_active", static_cast<double>(cloud_active));
    }

    // 3. Drain the crash backlog: recovery_batch re-placement attempts.
    //    Entries that departed, moved, or were swept onto a BS in the
    //    meantime are skipped for free.
    for (std::size_t budget = config.recovery_batch;
         budget > 0 && backlog_head < backlog.size();) {
      const UeId u = backlog[backlog_head++];
      if (!alloc.active(u) || !alloc.allocation().is_cloud(u)) continue;
      --budget;
      const auto placed = alloc.reattempt(u);
      if (placed) {
        ++stats.readmitted;
        --cloud_active;
        if (fr != nullptr) fr->metrics().add_counter("churn.readmitted");
        log += "e=";
        append_num(log, idx);
        log += " recover slot=";
        append_num(log, static_cast<std::uint64_t>(u.value));
        log += " -> ";
        append_bs(placed);
        log += '\n';
      }
    }
    if (backlog_head == backlog.size() && !backlog.empty()) {
      const std::size_t episode = idx - episode_start + 1;
      stats.recovery_events_max = std::max(stats.recovery_events_max, episode);
      stats.recovery_events_total += episode;
      backlog.clear();
      backlog_head = 0;
    }

    // 4. Periodic readmit sweep over every cloud dweller with candidates.
    if (config.readmit_every > 0 && (idx + 1) % config.readmit_every == 0) {
      for (std::size_t si = 0; si < universe.num_ues(); ++si) {
        const UeId u{static_cast<std::uint32_t>(si)};
        if (!alloc.active(u) || !alloc.allocation().is_cloud(u)) continue;
        if (universe.coverage_count(u) == 0) continue;
        const auto placed = alloc.reattempt(u);
        if (placed) {
          ++stats.readmitted;
          --cloud_active;
          if (fr != nullptr) fr->metrics().add_counter("churn.readmitted");
          log += "e=";
          append_num(log, idx);
          log += " readmit slot=";
          append_num(log, static_cast<std::uint64_t>(u.value));
          log += " -> ";
          append_bs(placed);
          log += '\n';
        }
      }
    }

    // 5. Periodic from-scratch baseline: what would a fresh solve_dmra
    //    over the live population earn right now? Runs muted (no trace,
    //    no audit) on a capacity view equal to the allocator's world —
    //    remaining plus its own commitments — so clamps carry over.
    if (config.resolve_every > 0 && (idx + 1) % config.resolve_every == 0) {
      ++stats.resolves;
      if (fr != nullptr) fr->metrics().add_counter("churn.resolves");
      const std::size_t nb = universe.num_bss();
      const std::size_t ns = universe.num_services();
      std::vector<std::uint32_t> world_crus(nb * ns);
      std::vector<std::uint32_t> world_rrbs(nb);
      for (std::size_t i = 0; i < nb; ++i) {
        const BsId bs{static_cast<std::uint32_t>(i)};
        world_rrbs[i] = alloc.state().remaining_rrbs(bs);
        for (std::size_t j = 0; j < ns; ++j)
          world_crus[i * ns + j] = alloc.state().remaining_crus(
              bs, ServiceId{static_cast<std::uint32_t>(j)});
      }
      std::vector<bool> matched(universe.num_ues(), false);
      for (std::size_t si = 0; si < universe.num_ues(); ++si) {
        const UeId u{static_cast<std::uint32_t>(si)};
        if (!alloc.active(u)) {
          matched[si] = true;  // inactive slots sit out (cloud, zero profit)
          continue;
        }
        if (const auto bs = alloc.allocation().bs_of(u)) {
          const UserEquipment& e = universe.ue(u);
          world_crus[bs->idx() * ns + e.service.idx()] += e.cru_demand;
          world_rrbs[bs->idx()] += universe.link(u, *bs).n_rrbs;
        }
      }
      ResourceState scratch(universe);
      std::vector<std::uint32_t> caps(ns);
      for (std::size_t i = 0; i < nb; ++i) {
        const BsId bs{static_cast<std::uint32_t>(i)};
        for (std::size_t j = 0; j < ns; ++j) caps[j] = world_crus[i * ns + j];
        scratch.clamp_remaining(bs, caps, world_rrbs[i]);
      }
      Allocation scratch_alloc(universe.num_ues());
      {
        obs::ScopedTraceRecorder mute(nullptr);
        audit::ScopedAuditObserver mute_audit(nullptr);
        solve_dmra_partial(universe, config.incremental.dmra, scratch,
                           scratch_alloc, matched);
      }
      const double scratch_profit = total_profit(universe, scratch_alloc);
      const double live = alloc.live_profit();
      const double gap = scratch_profit > 0.0
                             ? std::max(0.0, (scratch_profit - live) / scratch_profit)
                             : 0.0;
      stats.resolve_gap_last = gap;
      stats.resolve_gap_max = std::max(stats.resolve_gap_max, gap);
      log += "e=";
      append_num(log, idx);
      log += " resolve live=";
      append_num(log, live);
      log += " scratch=";
      append_num(log, scratch_profit);
      log += " gap=";
      append_num(log, gap);
      log += '\n';
    }

    // 6. Audit seam + per-event RoundRow. Round 0 keeps the auditor
    //    stateless: feasibility + ledger recount every event, no
    //    monotone-profit chain (departures lower profit by design).
    alloc.audit_round(0);
    if (rec != nullptr) {
      const obs::EventTally tally = rec->take_tally();
      obs::RoundRow row;
      row.source = "sim/churn";
      row.round = idx;
      row.proposals = tally.proposals;
      row.accepts = tally.accepts;
      row.rejects = tally.rejects;
      row.trim_evictions = tally.trim_evictions;
      row.broadcasts = tally.broadcasts;
      row.messages = 0;
      row.unmatched_ues = cloud_active;
      row.cumulative_profit = alloc.live_profit();
      std::uint64_t cru_headroom = 0, rrb_headroom = 0;
      for (std::size_t i = 0; i < universe.num_bss(); ++i) {
        const BsId bs{static_cast<std::uint32_t>(i)};
        rrb_headroom += alloc.state().remaining_rrbs(bs);
        for (std::size_t j = 0; j < universe.num_services(); ++j)
          cru_headroom += alloc.state().remaining_crus(
              bs, ServiceId{static_cast<std::uint32_t>(j)});
      }
      row.cru_headroom = cru_headroom;
      row.rrb_headroom = rrb_headroom;
      rec->finish_round(row);
    }
    if (fr != nullptr) {
      // Cheap aggregate only (no headroom recount): the flight ring is on
      // the always-on path.
      obs::RoundRow row;
      row.source = "sim/churn";
      row.round = idx;
      row.unmatched_ues = cloud_active;
      row.cumulative_profit = alloc.live_profit();
      fr->finish_round(row);
    }
  }

  // Trailing partial SLO window + whole-run error-budget burn rate.
  if (config.slo_p99_ns > 0) {
    close_slo_window(timeline.events.empty() ? 0 : timeline.events.size() - 1);
    if (result.latency.count() > 0) {
      const double above = static_cast<double>(
          result.latency.count_above_ns(config.slo_p99_ns));
      result.slo.burn_rate =
          above / static_cast<double>(result.latency.count()) / 0.01;
    }
  }

  // A backlog still open at the horizon counts as one unfinished episode.
  if (backlog_head < backlog.size() && !timeline.events.empty()) {
    const std::size_t episode = timeline.events.size() - episode_start;
    stats.recovery_events_max = std::max(stats.recovery_events_max, episode);
    stats.recovery_events_total += episode;
  }

  stats.final_profit = alloc.live_profit();
  stats.final_active = alloc.num_active();
  stats.final_served = alloc.allocation().num_served();
  stats.final_cloud = cloud_active;
  log += "final events=";
  append_num(log, stats.events);
  log += " active=";
  append_num(log, stats.final_active);
  log += " served=";
  append_num(log, stats.final_served);
  log += " cloud=";
  append_num(log, stats.final_cloud);
  log += " profit=";
  append_num(log, stats.final_profit);
  log += '\n';

  if (obs::TraceRecorder* const rec = obs::recorder(); rec != nullptr) {
    obs::MetricsRegistry& m = rec->metrics();
    m.add_counter("churn.arrivals", stats.arrivals);
    m.add_counter("churn.departures", stats.departures);
    m.add_counter("churn.moves", stats.moves);
    m.add_counter("churn.reassociations", stats.reassociations);
    m.add_counter("churn.readmitted", stats.readmitted);
    m.add_counter("churn.orphaned", stats.orphaned_ues);
    m.add_counter("churn.crashes", stats.crashes);
    m.add_counter("churn.recoveries", stats.recoveries);
    m.add_counter("churn.degradations", stats.degradations);
    m.add_counter("churn.resolves", stats.resolves);
  }

  result.final_allocation = alloc.allocation();
  return result;
}

ChurnResult run_churn(const ChurnConfig& config) {
  return run_churn(build_churn_timeline(config), config);
}

}  // namespace dmra
