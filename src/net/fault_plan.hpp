// Deterministic fault plans for the decentralized runtime.
//
// A FaultPlan is a *schedule*, not a random process: given the same plan
// and the same seed, every run injects exactly the same faults at exactly
// the same protocol rounds. Randomness exists only inside the message-bus
// link model (per-message drop/duplicate/delay draws), and those draws
// come from named child RNG streams ("bus-loss", "bus-faults") so arming
// one fault class never perturbs another's stream.
//
// Three fault classes (docs/RESILIENCE.md):
//  * link faults      — per-message loss, duplication, and bounded delay,
//                       applied by MessageBus::set_faults;
//  * BS outages       — a BS crashes at a scheduled round (volatile state
//                       lost, inbox discarded, broadcasts stop) and
//                       optionally recovers cold at a later round;
//  * capacity faults  — a BS's *remaining* CRUs/RRBs are scaled down at a
//                       scheduled round (degraded hardware keeps serving
//                       what it already admitted, but admits less).
//
// An empty plan — or one whose knobs are all at their neutral values —
// must be indistinguishable from no plan at all: run_decentralized_dmra
// only enters its fault-handling paths when FaultPlan::any() is true, and
// a golden test asserts byte-identical output for the zero-fault case.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "mec/ids.hpp"

namespace dmra {

/// Per-message link impairments, applied independently to every pending
/// message at delivery time. All probabilities are per message, in [0, 1).
struct LinkFaults {
  /// Message is silently lost. Draws come from the same "bus-loss" stream
  /// as MessageBus::set_loss, so a loss-only plan reproduces the legacy
  /// lossy bus bit-for-bit for the same seed.
  double drop_probability = 0.0;
  /// A surviving message is delivered now AND a copy arrives one round
  /// later (stale retransmission). The copy is delivered unconditionally.
  double duplicate_probability = 0.0;
  /// A surviving message is held back uniformly 1..max_delay_rounds rounds
  /// instead of being delivered now. Delivery order among delayed messages
  /// stays send-sequence order.
  double delay_probability = 0.0;
  /// Upper bound (inclusive) on the delay draw. Must be >= 1 when
  /// delay_probability > 0.
  std::uint64_t max_delay_rounds = 2;

  /// True iff any impairment is armed.
  bool any() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           delay_probability > 0.0;
  }
};

/// Sentinel for BsOutage::recover_round: the BS never comes back.
inline constexpr std::size_t kNeverRecovers = std::numeric_limits<std::size_t>::max();

/// A scheduled BS crash. At the start of protocol round `crash_round` the
/// BS loses all volatile state (its admission ledger and pending inbox);
/// the runtime voids its commitments, orphaning the UEs it served. At
/// `recover_round` (if any) it restarts cold with full nominal capacity.
struct BsOutage {
  BsId bs;
  std::size_t crash_round = 0;
  std::size_t recover_round = kNeverRecovers;  ///< must be > crash_round
};

/// A scheduled capacity degradation: at the start of round `round` the
/// BS's *remaining* CRUs and RRBs are scaled by the given factors (floor).
/// Already-admitted UEs keep their service; only future admissions shrink.
struct CapacityDegradation {
  BsId bs;
  std::size_t round = 0;
  double cru_factor = 1.0;  ///< in [0, 1]
  double rrb_factor = 1.0;  ///< in [0, 1]
};

/// A complete, seeded fault schedule for one decentralized run. Attach it
/// via NetworkConditions::faults; sim/faults.hpp builds plans from a
/// compact CLI spec (the --faults flag of every bench).
struct FaultPlan {
  LinkFaults link;
  std::vector<BsOutage> outages;
  std::vector<CapacityDegradation> degradations;

  /// True iff the plan injects anything at all. A plan with any() == false
  /// attached to a run is contractually a no-op (golden-tested).
  bool any() const {
    return link.any() || !outages.empty() || !degradations.empty();
  }

  /// DMRA_REQUIREs the plan is well-formed against a deployment of
  /// `num_bss` base stations: probabilities in range, BS ids in range, at
  /// most one outage per BS, recover_round > crash_round, factors in [0,1].
  void validate(std::size_t num_bss) const;

  /// Largest scheduled round in the plan (0 when only link faults are
  /// armed) — the runtime extends its round limit past this horizon so a
  /// late crash or recovery is never silently skipped.
  std::size_t schedule_horizon() const;
};

}  // namespace dmra
