// Message-bus traffic statistics, reported by the decentralized runtime
// (the coordination cost the paper's complexity analysis talks about).
#pragma once

#include <cstdint>
#include <string>

namespace dmra {

struct BusStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;     ///< lost by the lossy-network model
  std::uint64_t messages_duplicated = 0;  ///< extra copies injected by duplication faults
  std::uint64_t messages_delayed = 0;     ///< held back by delay faults
  // With duplication/delay faults armed, sent == delivered + dropped no
  // longer balances round-for-round: duplicate copies add deliveries that
  // were never sent, and delayed messages can still be in flight when the
  // run ends.
};

/// One-line human-readable rendering.
std::string to_string(const BusStats& stats);

}  // namespace dmra
