// In-process message bus for the decentralized runtime.
//
// The DMRA paper's algorithm is decentralized: UEs, SPs, and BSs exchange
// proposals, decisions, and resource broadcasts. This bus models that
// exchange explicitly — agents only communicate through typed envelopes,
// never by reading each other's state — while staying deterministic:
// messages sent during round r are delivered at the start of round r+1,
// ordered by (recipient, send sequence number).
//
// The bus is synchronous and single-threaded on purpose. What we need
// from "decentralized" is the information structure (who can know what,
// and when), not OS-level parallelism; a deterministic bus makes the
// equivalence proof against the direct solver an exact, testable claim.
//
// Storage model (ROADMAP item 2): envelopes live in two pooled flat
// buffers that the bus reuses round after round. deliver() drains the
// pending pool in one batch — fault draws first, then a per-recipient
// counting pass, then placement into per-agent segments of one
// contiguous buffer — and swaps the buffers. After the first few rounds
// reach their high-water marks, the steady state performs zero heap
// allocations; reserve() warms the pools up front. take_inbox() hands
// out a non-owning InboxView into the segment instead of moving a heap
// vector out. Payload must be default-constructible (the pool is sized
// with value-initialized envelopes before placement move-assigns into
// it).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/fault_plan.hpp"
#include "net/stats.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dmra {

/// Opaque agent address on a bus.
struct AgentId {
  std::uint32_t value = 0;
  constexpr friend auto operator<=>(AgentId, AgentId) = default;
  constexpr std::size_t idx() const { return value; }
};

/// A delivered message.
template <typename Payload>
struct Envelope {
  AgentId from;
  AgentId to;
  std::uint64_t sent_round = 0;
  std::uint64_t seq = 0;  ///< global send order, for deterministic delivery
  Payload payload;
};

/// Non-owning window over one agent's drained inbox segment. Valid until
/// the next deliver() call on the bus that produced it (delivery swaps
/// the underlying pool); drain-and-dispatch immediately, don't store.
template <typename Payload>
class InboxView {
 public:
  InboxView() = default;
  InboxView(const Envelope<Payload>* data, std::size_t size)
      : data_(data), size_(size) {}

  const Envelope<Payload>* begin() const { return data_; }
  const Envelope<Payload>* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Envelope<Payload>& operator[](std::size_t n) const { return data_[n]; }
  const Envelope<Payload>& at(std::size_t n) const {
    DMRA_REQUIRE(n < size_);
    return data_[n];
  }

 private:
  const Envelope<Payload>* data_ = nullptr;
  std::size_t size_ = 0;
};

template <typename Payload>
class MessageBus {
 public:
  /// Register an agent; returns its address. All registration must happen
  /// before the first send — and before the first deliver(): a late
  /// registration would retroactively grow the per-agent segment tables a
  /// running delivery schedule already committed to, leaving earlier
  /// rounds and later rounds disagreeing about the agent population (the
  /// sharded runtime builds one bus per region on exactly this contract).
  AgentId register_agent() {
    DMRA_REQUIRE_MSG(seq_ == 0 && round_ == 0,
                     "register agents before any send or deliver()");
    const AgentId id{static_cast<std::uint32_t>(num_agents_)};
    ++num_agents_;
    seg_begin_.push_back(0);
    cursor_.push_back(0);
    seg_end_.push_back(0);
    write_pos_.push_back(0);
    return id;
  }

  std::size_t num_agents() const { return num_agents_; }

  /// Warm the pools to a per-deliver()-batch high-water mark so the
  /// steady state never allocates. The inbox pool is sized for two
  /// batches because an agent may leave one generation undrained while
  /// the next arrives (the runtime's UEs do exactly this with broadcasts
  /// and decisions). Also the growth license for the pool push/resize
  /// calls in the hot regions below.
  ///
  /// Call AFTER arming faults (set_loss/set_faults): the fault pools are
  /// sized from the armed LinkFaults, not a guess. A duplicate copy parks
  /// in delayed_ for exactly one round, a delayed original for up to
  /// max_delay_rounds, so the worst-case parked population is one batch
  /// per armed duplicate class plus max_delay_rounds batches per armed
  /// delay class; the same parked messages can all come due alongside a
  /// fresh batch, which is the inbox headroom term. fates_ parallels
  /// pending_ (one fate per pending message), warmed so the first faulted
  /// deliver() does not resize it mid-hotpath.
  void reserve(std::size_t messages_per_deliver) {
    const bool dup_armed = fault_rng_.has_value() && faults_.duplicate_probability > 0.0;
    const bool delay_armed = fault_rng_.has_value() && faults_.delay_probability > 0.0;
    std::size_t parked = 0;
    if (dup_armed) parked += messages_per_deliver;
    if (delay_armed)
      parked += messages_per_deliver * static_cast<std::size_t>(faults_.max_delay_rounds);
    pending_.reserve(messages_per_deliver);
    fates_.reserve(messages_per_deliver);
    inbox_data_.reserve(2 * messages_per_deliver + parked);
    inbox_next_.reserve(2 * messages_per_deliver + parked);
    delayed_.reserve(parked + 16);
  }

  /// Queue a message for delivery at the next deliver() call.
  void send(AgentId from, AgentId to, Payload payload) {
    // dmra::hotpath begin(bus-send)
    DMRA_REQUIRE(from.idx() < num_agents_);
    DMRA_REQUIRE(to.idx() < num_agents_);
    pending_.push_back(Envelope<Payload>{from, to, round_, seq_++, std::move(payload)});
    stats_.messages_sent++;
    // dmra::hotpath end(bus-send)
  }

  /// Make every delivery lossy: each pending message is dropped
  /// independently with probability `drop_probability` (deterministic per
  /// seed). Must be called before the first deliver() — retroactively
  /// changing the loss model mid-run would make the drop sequence depend
  /// on when the caller flipped it, not just on the seed — and at most
  /// once (re-seeding would silently restart the drop stream).
  void set_loss(double drop_probability, std::uint64_t seed) {
    DMRA_REQUIRE(drop_probability >= 0.0 && drop_probability < 1.0);
    DMRA_REQUIRE_MSG(round_ == 0, "set_loss must be called before the first deliver()");
    DMRA_REQUIRE_MSG(!loss_rng_.has_value(), "set_loss may only be called once per bus");
    drop_probability_ = drop_probability;
    loss_rng_.emplace("bus-loss", seed);
  }

  /// Arm the full link-fault model (loss + duplication + bounded delay).
  /// Same contract as set_loss: before the first deliver(), at most once,
  /// and mutually exclusive with set_loss. Drop draws come from the same
  /// "bus-loss" child stream set_loss uses, so a faults value with only
  /// drop_probability armed reproduces set_loss bit-for-bit per seed;
  /// duplicate/delay draws use a separate "bus-faults" stream so arming
  /// them never perturbs the drop sequence of surviving messages.
  void set_faults(const LinkFaults& faults, std::uint64_t seed) {
    DMRA_REQUIRE(faults.drop_probability >= 0.0 && faults.drop_probability < 1.0);
    DMRA_REQUIRE(faults.duplicate_probability >= 0.0 && faults.duplicate_probability < 1.0);
    DMRA_REQUIRE(faults.delay_probability >= 0.0 && faults.delay_probability < 1.0);
    DMRA_REQUIRE_MSG(round_ == 0, "set_faults must be called before the first deliver()");
    DMRA_REQUIRE_MSG(!loss_rng_.has_value(),
                     "set_faults may only be called once per bus (and not after set_loss)");
    if (faults.delay_probability > 0.0)
      DMRA_REQUIRE_MSG(faults.max_delay_rounds >= 1,
                       "delay faults need max_delay_rounds >= 1");
    faults_ = faults;
    drop_probability_ = faults.drop_probability;
    loss_rng_.emplace("bus-loss", seed);
    if (faults.duplicate_probability > 0.0 || faults.delay_probability > 0.0)
      fault_rng_.emplace("bus-faults", seed);
  }

  /// Move pending messages into recipient inbox segments and advance the
  /// round. Returns the number delivered (dropped messages are counted in
  /// stats().messages_dropped instead). Per fresh message the draw order
  /// is fixed — drop, then duplicate, then delay — so each fault class
  /// consumes its stream identically whether or not the others fire.
  /// Delayed messages (and duplicate copies) come due at a later deliver()
  /// call and are then delivered unconditionally, before that round's
  /// fresh messages, in send-sequence order.
  ///
  /// Batch mechanics: one fault pass over the pending pool fixes each
  /// message's fate and consumes the RNG streams in send order; a
  /// counting pass sizes per-agent segments [undrained carryover | due
  /// delayed | surviving fresh]; placement move-assigns into the spare
  /// pool at per-agent cursors; the pools swap. Per-agent order is
  /// exactly the append order of the historical per-agent vectors.
  std::size_t deliver() {
    // dmra::hotpath begin(bus-deliver)
    const std::size_t na = num_agents_;
    // Phase 1a: per-recipient counts, seeded with undrained carryover.
    for (std::size_t a = 0; a < na; ++a) write_pos_[a] = seg_end_[a] - cursor_[a];
    std::size_t due_count = 0;
    for (const Delayed& d : delayed_) {
      if (d.due <= round_) {
        ++write_pos_[d.env.to.idx()];
        ++due_count;
      }
    }
    // Phase 1b: fault draws in send order, one draw sequence per message
    // (drop, then duplicate, then delay), recording each fate. Duplicate
    // copies and delayed originals park in delayed_; they are not due
    // this round (due >= round_ + 1), so the counting above is complete.
    std::size_t fresh_kept = 0;
    const bool faulty = loss_rng_.has_value();
    if (faulty) {
      fates_.resize(pending_.size());
      for (std::size_t m = 0; m < pending_.size(); ++m) {
        Envelope<Payload>& env = pending_[m];
        if (drop_probability_ > 0.0 && loss_rng_->bernoulli(drop_probability_)) {
          stats_.messages_dropped++;
          fates_[m] = kDropped;
          continue;
        }
        if (fault_rng_.has_value()) {
          if (faults_.duplicate_probability > 0.0 &&
              fault_rng_->bernoulli(faults_.duplicate_probability)) {
            stats_.messages_duplicated++;
            delayed_.push_back(Delayed{round_ + 1, env});  // copy arrives next round
          }
          if (faults_.delay_probability > 0.0 &&
              fault_rng_->bernoulli(faults_.delay_probability)) {
            stats_.messages_delayed++;
            const auto d = static_cast<std::uint64_t>(fault_rng_->uniform_int(
                1, static_cast<std::int64_t>(faults_.max_delay_rounds)));
            delayed_.push_back(Delayed{round_ + d, std::move(env)});
            fates_[m] = kDelayedFate;
            continue;
          }
        }
        fates_[m] = kFresh;
        ++write_pos_[env.to.idx()];
        ++fresh_kept;
      }
    } else {
      for (const Envelope<Payload>& env : pending_) ++write_pos_[env.to.idx()];
      fresh_kept = pending_.size();
    }
    // Phase 2: prefix-sum the counts into segment offsets and size the
    // spare pool (grow-only; stale tail entries are never readable).
    std::size_t total = 0;
    for (std::size_t a = 0; a < na; ++a) {
      const std::size_t count = write_pos_[a];
      seg_begin_[a] = total;
      write_pos_[a] = total;  // becomes the placement cursor
      total += count;
    }
    if (inbox_next_.size() < total) inbox_next_.resize(total);
    // Phase 3a: undrained carryover, preserving per-agent order.
    for (std::size_t a = 0; a < na; ++a)
      for (std::size_t k = cursor_[a]; k < seg_end_[a]; ++k)
        inbox_next_[write_pos_[a]++] = std::move(inbox_data_[k]);
    // Phase 3b: due delayed messages in storage order, compacting the
    // survivors in place (entries appended by phase 1b sit at the tail
    // with due > round_, so they are all kept, in order).
    std::size_t kept = 0;
    for (std::size_t k = 0; k < delayed_.size(); ++k) {
      Delayed& d = delayed_[k];
      if (d.due <= round_) {
        inbox_next_[write_pos_[d.env.to.idx()]++] = std::move(d.env);
      } else {
        if (kept != k) delayed_[kept] = std::move(d);
        ++kept;
      }
    }
    delayed_.resize(kept);
    // Phase 3c: surviving fresh messages in send-sequence order.
    if (faulty) {
      for (std::size_t m = 0; m < pending_.size(); ++m)
        if (fates_[m] == kFresh)
          inbox_next_[write_pos_[pending_[m].to.idx()]++] = std::move(pending_[m]);
    } else {
      for (Envelope<Payload>& env : pending_)
        inbox_next_[write_pos_[env.to.idx()]++] = std::move(env);
    }
    inbox_data_.swap(inbox_next_);
    for (std::size_t a = 0; a < na; ++a) {
      cursor_[a] = seg_begin_[a];
      seg_end_[a] = write_pos_[a];
    }
    pending_.clear();
    ++round_;
    const std::size_t delivered = due_count + fresh_kept;
    stats_.rounds = round_;
    stats_.messages_delivered += delivered;
    return delivered;
    // dmra::hotpath end(bus-deliver)
  }

  /// Drain an agent's inbox (messages are in send order; the bus never
  /// reorders messages to the same recipient). Returns a non-owning view
  /// into the pooled segment — valid until the next deliver() — and
  /// marks the segment drained so the next deliver() reclaims it.
  InboxView<Payload> take_inbox(AgentId agent) {
    // dmra::hotpath begin(bus-take-inbox)
    DMRA_REQUIRE(agent.idx() < num_agents_);
    const std::size_t b = cursor_[agent.idx()];
    const std::size_t e = seg_end_[agent.idx()];
    cursor_[agent.idx()] = e;
    return InboxView<Payload>(inbox_data_.data() + b, e - b);
    // dmra::hotpath end(bus-take-inbox)
  }

  bool inbox_empty(AgentId agent) const {
    return cursor_[agent.idx()] == seg_end_[agent.idx()];
  }

  std::uint64_t round() const { return round_; }
  const BusStats& stats() const { return stats_; }

  /// Messages accepted by the bus but not yet delivered or dropped:
  /// pending sends plus delay-faulted messages still in flight. The
  /// runtime's fault-mode termination check uses this to avoid declaring
  /// convergence while a delayed proposal or decision is still coming.
  std::size_t in_flight() const { return pending_.size() + delayed_.size(); }

 private:
  /// A message held back by a delay fault (or a duplicate copy), due for
  /// unconditional delivery at the deliver() call entered with round_ ==
  /// `due`.
  struct Delayed {
    std::uint64_t due = 0;
    Envelope<Payload> env;
  };

  /// Per-message outcome of the phase-1b fault pass.
  static constexpr std::uint8_t kFresh = 0;
  static constexpr std::uint8_t kDropped = 1;
  static constexpr std::uint8_t kDelayedFate = 2;

  std::size_t num_agents_ = 0;
  // Double-buffered envelope pool: inbox_data_ holds the live per-agent
  // segments [seg_begin_, seg_end_) with cursor_ marking the drained
  // prefix; inbox_next_ is the spare the next deliver() packs into.
  std::vector<Envelope<Payload>> inbox_data_;
  std::vector<Envelope<Payload>> inbox_next_;
  std::vector<std::size_t> seg_begin_;
  std::vector<std::size_t> cursor_;
  std::vector<std::size_t> seg_end_;
  std::vector<std::size_t> write_pos_;  ///< counts, then placement cursors
  std::vector<Envelope<Payload>> pending_;
  std::vector<std::uint8_t> fates_;
  std::vector<Delayed> delayed_;
  std::uint64_t round_ = 0;
  std::uint64_t seq_ = 0;
  BusStats stats_;
  double drop_probability_ = 0.0;
  LinkFaults faults_;
  std::optional<Rng> loss_rng_;
  std::optional<Rng> fault_rng_;
};

}  // namespace dmra
