// In-process message bus for the decentralized runtime.
//
// The DMRA paper's algorithm is decentralized: UEs, SPs, and BSs exchange
// proposals, decisions, and resource broadcasts. This bus models that
// exchange explicitly — agents only communicate through typed envelopes,
// never by reading each other's state — while staying deterministic:
// messages sent during round r are delivered at the start of round r+1,
// ordered by (recipient, send sequence number).
//
// The bus is synchronous and single-threaded on purpose. What we need
// from "decentralized" is the information structure (who can know what,
// and when), not OS-level parallelism; a deterministic bus makes the
// equivalence proof against the direct solver an exact, testable claim.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/fault_plan.hpp"
#include "net/stats.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dmra {

/// Opaque agent address on a bus.
struct AgentId {
  std::uint32_t value = 0;
  constexpr friend auto operator<=>(AgentId, AgentId) = default;
  constexpr std::size_t idx() const { return value; }
};

/// A delivered message.
template <typename Payload>
struct Envelope {
  AgentId from;
  AgentId to;
  std::uint64_t sent_round = 0;
  std::uint64_t seq = 0;  ///< global send order, for deterministic delivery
  Payload payload;
};

template <typename Payload>
class MessageBus {
 public:
  /// Register an agent; returns its address. All registration must happen
  /// before the first send.
  AgentId register_agent() {
    DMRA_REQUIRE_MSG(seq_ == 0, "register agents before any send");
    const AgentId id{static_cast<std::uint32_t>(inboxes_.size())};
    inboxes_.emplace_back();
    return id;
  }

  std::size_t num_agents() const { return inboxes_.size(); }

  /// Queue a message for delivery at the next deliver() call.
  void send(AgentId from, AgentId to, Payload payload) {
    // dmra::hotpath begin(bus-send)
    DMRA_REQUIRE(from.idx() < inboxes_.size());
    DMRA_REQUIRE(to.idx() < inboxes_.size());
    pending_.push_back(Envelope<Payload>{from, to, round_, seq_++, std::move(payload)});
    stats_.messages_sent++;
    // dmra::hotpath end(bus-send)
  }

  /// Make every delivery lossy: each pending message is dropped
  /// independently with probability `drop_probability` (deterministic per
  /// seed). Must be called before the first deliver() — retroactively
  /// changing the loss model mid-run would make the drop sequence depend
  /// on when the caller flipped it, not just on the seed — and at most
  /// once (re-seeding would silently restart the drop stream).
  void set_loss(double drop_probability, std::uint64_t seed) {
    DMRA_REQUIRE(drop_probability >= 0.0 && drop_probability < 1.0);
    DMRA_REQUIRE_MSG(round_ == 0, "set_loss must be called before the first deliver()");
    DMRA_REQUIRE_MSG(!loss_rng_.has_value(), "set_loss may only be called once per bus");
    drop_probability_ = drop_probability;
    loss_rng_.emplace("bus-loss", seed);
  }

  /// Arm the full link-fault model (loss + duplication + bounded delay).
  /// Same contract as set_loss: before the first deliver(), at most once,
  /// and mutually exclusive with set_loss. Drop draws come from the same
  /// "bus-loss" child stream set_loss uses, so a faults value with only
  /// drop_probability armed reproduces set_loss bit-for-bit per seed;
  /// duplicate/delay draws use a separate "bus-faults" stream so arming
  /// them never perturbs the drop sequence of surviving messages.
  void set_faults(const LinkFaults& faults, std::uint64_t seed) {
    DMRA_REQUIRE(faults.drop_probability >= 0.0 && faults.drop_probability < 1.0);
    DMRA_REQUIRE(faults.duplicate_probability >= 0.0 && faults.duplicate_probability < 1.0);
    DMRA_REQUIRE(faults.delay_probability >= 0.0 && faults.delay_probability < 1.0);
    DMRA_REQUIRE_MSG(round_ == 0, "set_faults must be called before the first deliver()");
    DMRA_REQUIRE_MSG(!loss_rng_.has_value(),
                     "set_faults may only be called once per bus (and not after set_loss)");
    if (faults.delay_probability > 0.0)
      DMRA_REQUIRE_MSG(faults.max_delay_rounds >= 1,
                       "delay faults need max_delay_rounds >= 1");
    faults_ = faults;
    drop_probability_ = faults.drop_probability;
    loss_rng_.emplace("bus-loss", seed);
    if (faults.duplicate_probability > 0.0 || faults.delay_probability > 0.0)
      fault_rng_.emplace("bus-faults", seed);
  }

  /// Move pending messages into recipient inboxes and advance the round.
  /// Returns the number delivered (dropped messages are counted in
  /// stats().messages_dropped instead). Per fresh message the draw order
  /// is fixed — drop, then duplicate, then delay — so each fault class
  /// consumes its stream identically whether or not the others fire.
  /// Delayed messages (and duplicate copies) come due at a later deliver()
  /// call and are then delivered unconditionally, before that round's
  /// fresh messages, in send-sequence order.
  std::size_t deliver() {
    // dmra::hotpath begin(bus-deliver)
    std::size_t delivered = 0;
    if (!delayed_.empty()) {
      std::size_t kept = 0;
      for (auto& d : delayed_) {
        if (d.due <= round_) {
          inboxes_[d.env.to.idx()].push_back(std::move(d.env));
          ++delivered;
        } else {
          delayed_[kept++] = std::move(d);
        }
      }
      delayed_.resize(kept);
    }
    for (auto& env : pending_) {
      if (drop_probability_ > 0.0 && loss_rng_->bernoulli(drop_probability_)) {
        stats_.messages_dropped++;
        continue;
      }
      if (fault_rng_.has_value()) {
        if (faults_.duplicate_probability > 0.0 &&
            fault_rng_->bernoulli(faults_.duplicate_probability)) {
          stats_.messages_duplicated++;
          delayed_.push_back(Delayed{round_ + 1, env});  // copy arrives next round
        }
        if (faults_.delay_probability > 0.0 &&
            fault_rng_->bernoulli(faults_.delay_probability)) {
          stats_.messages_delayed++;
          const auto d = static_cast<std::uint64_t>(fault_rng_->uniform_int(
              1, static_cast<std::int64_t>(faults_.max_delay_rounds)));
          delayed_.push_back(Delayed{round_ + d, std::move(env)});
          continue;
        }
      }
      inboxes_[env.to.idx()].push_back(std::move(env));
      ++delivered;
    }
    pending_.clear();
    ++round_;
    stats_.rounds = round_;
    stats_.messages_delivered += delivered;
    return delivered;
    // dmra::hotpath end(bus-deliver)
  }

  /// Drain an agent's inbox (messages are in send order; the bus never
  /// reorders messages to the same recipient). The returned vector takes
  /// the inbox's heap buffer with it, so the slot re-grows from empty next
  /// round — the flat ring-buffer inbox of ROADMAP item 2 removes this.
  std::vector<Envelope<Payload>> take_inbox(AgentId agent) {
    // dmra::hotpath begin(bus-take-inbox)
    DMRA_REQUIRE(agent.idx() < inboxes_.size());
    return std::exchange(inboxes_[agent.idx()], {});
    // dmra::hotpath end(bus-take-inbox)
  }

  bool inbox_empty(AgentId agent) const { return inboxes_[agent.idx()].empty(); }

  std::uint64_t round() const { return round_; }
  const BusStats& stats() const { return stats_; }

  /// Messages accepted by the bus but not yet delivered or dropped:
  /// pending sends plus delay-faulted messages still in flight. The
  /// runtime's fault-mode termination check uses this to avoid declaring
  /// convergence while a delayed proposal or decision is still coming.
  std::size_t in_flight() const { return pending_.size() + delayed_.size(); }

 private:
  /// A message held back by a delay fault (or a duplicate copy), due for
  /// unconditional delivery at the deliver() call entered with round_ ==
  /// `due`.
  struct Delayed {
    std::uint64_t due = 0;
    Envelope<Payload> env;
  };

  std::vector<std::vector<Envelope<Payload>>> inboxes_;
  std::vector<Envelope<Payload>> pending_;
  std::vector<Delayed> delayed_;
  std::uint64_t round_ = 0;
  std::uint64_t seq_ = 0;
  BusStats stats_;
  double drop_probability_ = 0.0;
  LinkFaults faults_;
  std::optional<Rng> loss_rng_;
  std::optional<Rng> fault_rng_;
};

}  // namespace dmra
