// In-process message bus for the decentralized runtime.
//
// The DMRA paper's algorithm is decentralized: UEs, SPs, and BSs exchange
// proposals, decisions, and resource broadcasts. This bus models that
// exchange explicitly — agents only communicate through typed envelopes,
// never by reading each other's state — while staying deterministic:
// messages sent during round r are delivered at the start of round r+1,
// ordered by (recipient, send sequence number).
//
// The bus is synchronous and single-threaded on purpose. What we need
// from "decentralized" is the information structure (who can know what,
// and when), not OS-level parallelism; a deterministic bus makes the
// equivalence proof against the direct solver an exact, testable claim.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/stats.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dmra {

/// Opaque agent address on a bus.
struct AgentId {
  std::uint32_t value = 0;
  constexpr friend auto operator<=>(AgentId, AgentId) = default;
  constexpr std::size_t idx() const { return value; }
};

/// A delivered message.
template <typename Payload>
struct Envelope {
  AgentId from;
  AgentId to;
  std::uint64_t sent_round = 0;
  std::uint64_t seq = 0;  ///< global send order, for deterministic delivery
  Payload payload;
};

template <typename Payload>
class MessageBus {
 public:
  /// Register an agent; returns its address. All registration must happen
  /// before the first send.
  AgentId register_agent() {
    DMRA_REQUIRE_MSG(seq_ == 0, "register agents before any send");
    const AgentId id{static_cast<std::uint32_t>(inboxes_.size())};
    inboxes_.emplace_back();
    return id;
  }

  std::size_t num_agents() const { return inboxes_.size(); }

  /// Queue a message for delivery at the next deliver() call.
  void send(AgentId from, AgentId to, Payload payload) {
    DMRA_REQUIRE(from.idx() < inboxes_.size());
    DMRA_REQUIRE(to.idx() < inboxes_.size());
    pending_.push_back(Envelope<Payload>{from, to, round_, seq_++, std::move(payload)});
    stats_.messages_sent++;
  }

  /// Make every delivery lossy: each pending message is dropped
  /// independently with probability `drop_probability` (deterministic per
  /// seed). Must be called before the first deliver() — retroactively
  /// changing the loss model mid-run would make the drop sequence depend
  /// on when the caller flipped it, not just on the seed — and at most
  /// once (re-seeding would silently restart the drop stream).
  void set_loss(double drop_probability, std::uint64_t seed) {
    DMRA_REQUIRE(drop_probability >= 0.0 && drop_probability < 1.0);
    DMRA_REQUIRE_MSG(round_ == 0, "set_loss must be called before the first deliver()");
    DMRA_REQUIRE_MSG(!loss_rng_.has_value(), "set_loss may only be called once per bus");
    drop_probability_ = drop_probability;
    loss_rng_.emplace("bus-loss", seed);
  }

  /// Move pending messages into recipient inboxes and advance the round.
  /// Returns the number delivered (dropped messages are counted in
  /// stats().messages_dropped instead).
  std::size_t deliver() {
    std::size_t delivered = 0;
    for (auto& env : pending_) {
      if (drop_probability_ > 0.0 && loss_rng_->bernoulli(drop_probability_)) {
        stats_.messages_dropped++;
        continue;
      }
      inboxes_[env.to.idx()].push_back(std::move(env));
      ++delivered;
    }
    pending_.clear();
    ++round_;
    stats_.rounds = round_;
    stats_.messages_delivered += delivered;
    return delivered;
  }

  /// Drain an agent's inbox (messages are in send order; the bus never
  /// reorders messages to the same recipient).
  std::vector<Envelope<Payload>> take_inbox(AgentId agent) {
    DMRA_REQUIRE(agent.idx() < inboxes_.size());
    return std::exchange(inboxes_[agent.idx()], {});
  }

  bool inbox_empty(AgentId agent) const { return inboxes_[agent.idx()].empty(); }

  std::uint64_t round() const { return round_; }
  const BusStats& stats() const { return stats_; }

 private:
  std::vector<std::vector<Envelope<Payload>>> inboxes_;
  std::vector<Envelope<Payload>> pending_;
  std::uint64_t round_ = 0;
  std::uint64_t seq_ = 0;
  BusStats stats_;
  double drop_probability_ = 0.0;
  std::optional<Rng> loss_rng_;
};

}  // namespace dmra
