#include "net/fault_plan.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dmra {

namespace {

void validate_probability(double p) { DMRA_REQUIRE(p >= 0.0 && p < 1.0); }

}  // namespace

void FaultPlan::validate(std::size_t num_bss) const {
  validate_probability(link.drop_probability);
  validate_probability(link.duplicate_probability);
  validate_probability(link.delay_probability);
  if (link.delay_probability > 0.0)
    DMRA_REQUIRE_MSG(link.max_delay_rounds >= 1,
                     "delay faults need max_delay_rounds >= 1");

  std::vector<std::uint32_t> outage_bss;
  for (const BsOutage& o : outages) {
    DMRA_REQUIRE_MSG(o.bs.idx() < num_bss, "outage names a BS outside the deployment");
    DMRA_REQUIRE_MSG(o.recover_round > o.crash_round,
                     "a BS must recover strictly after it crashes");
    outage_bss.push_back(o.bs.value);
  }
  std::sort(outage_bss.begin(), outage_bss.end());
  DMRA_REQUIRE_MSG(
      std::adjacent_find(outage_bss.begin(), outage_bss.end()) == outage_bss.end(),
      "at most one outage per BS (chain crash/recover pairs are not modeled)");

  for (const CapacityDegradation& d : degradations) {
    DMRA_REQUIRE_MSG(d.bs.idx() < num_bss,
                     "degradation names a BS outside the deployment");
    DMRA_REQUIRE(d.cru_factor >= 0.0 && d.cru_factor <= 1.0);
    DMRA_REQUIRE(d.rrb_factor >= 0.0 && d.rrb_factor <= 1.0);
  }
}

std::size_t FaultPlan::schedule_horizon() const {
  std::size_t horizon = 0;
  for (const BsOutage& o : outages) {
    horizon = std::max(horizon, o.crash_round);
    if (o.recover_round != kNeverRecovers) horizon = std::max(horizon, o.recover_round);
  }
  for (const CapacityDegradation& d : degradations) horizon = std::max(horizon, d.round);
  return horizon;
}

}  // namespace dmra
