#include "net/stats.hpp"

#include <sstream>

namespace dmra {

std::string to_string(const BusStats& stats) {
  std::ostringstream os;
  os << "rounds=" << stats.rounds << " sent=" << stats.messages_sent
     << " delivered=" << stats.messages_delivered;
  if (stats.messages_dropped > 0) os << " dropped=" << stats.messages_dropped;
  return os.str();
}

}  // namespace dmra
