#include "net/stats.hpp"

#include <sstream>

namespace dmra {

std::string to_string(const BusStats& stats) {
  std::ostringstream os;
  // Always emit every field (including dropped=0): parsers keying off the
  // log line get a fixed schema, not one that changes with the loss model.
  os << "rounds=" << stats.rounds << " sent=" << stats.messages_sent
     << " delivered=" << stats.messages_delivered << " dropped=" << stats.messages_dropped
     << " duplicated=" << stats.messages_duplicated
     << " delayed=" << stats.messages_delayed;
  return os.str();
}

}  // namespace dmra
