#include "radio/channel.hpp"

#include <algorithm>
#include <cmath>

#include "radio/units.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dmra {

double pathloss_db(double distance_m, double min_distance_m) {
  PathlossParams params;
  params.min_distance_m = min_distance_m;
  return pathloss_db(PathlossModel::kPaperEq18, distance_m, params);
}

double shadowing_db(const ChannelConfig& cfg, std::uint32_t ue_key, std::uint32_t bs_key) {
  DMRA_REQUIRE(cfg.shadowing_sigma_db >= 0.0);
  if (cfg.shadowing_sigma_db == 0.0) return 0.0;
  // One deterministic draw per link: seed a throwaway stream from the
  // link identity. The stream name keeps it independent of any other use
  // of the same seed.
  const std::uint64_t link =
      (static_cast<std::uint64_t>(ue_key) << 32) | static_cast<std::uint64_t>(bs_key);
  Rng rng("shadowing", cfg.shadowing_seed ^ link);
  return rng.gaussian(0.0, cfg.shadowing_sigma_db);
}

namespace {

double model_loss_db(const ChannelConfig& cfg, double distance_m) {
  PathlossParams params = cfg.pathloss_params;
  params.min_distance_m = cfg.min_distance_m;
  return pathloss_db(cfg.pathloss_model, distance_m, params);
}

double sinr_from_loss(const ChannelConfig& cfg, double loss_db, double rrb_bandwidth_hz) {
  DMRA_REQUIRE(rrb_bandwidth_hz > 0.0);
  const double signal_mw = dbm_to_mw(cfg.tx_power_dbm - loss_db);
  const double noise_mw = cfg.noise_model == NoiseModel::kPsd
                              ? dbm_to_mw(cfg.noise_dbm) * rrb_bandwidth_hz
                              : dbm_to_mw(cfg.noise_dbm);
  const double interference_mw = cfg.interference_psd_mw_hz * rrb_bandwidth_hz;
  return signal_mw / (noise_mw + interference_mw);
}

}  // namespace

double link_loss_db(const ChannelConfig& cfg, double distance_m, std::uint32_t ue_key,
                    std::uint32_t bs_key) {
  return model_loss_db(cfg, distance_m) + shadowing_db(cfg, ue_key, bs_key);
}

double received_power_mw(const ChannelConfig& cfg, double distance_m) {
  return dbm_to_mw(cfg.tx_power_dbm - model_loss_db(cfg, distance_m));
}

double sinr(const ChannelConfig& cfg, double distance_m, double rrb_bandwidth_hz) {
  return sinr_from_loss(cfg, model_loss_db(cfg, distance_m), rrb_bandwidth_hz);
}

double sinr(const ChannelConfig& cfg, double distance_m, double rrb_bandwidth_hz,
            std::uint32_t ue_key, std::uint32_t bs_key) {
  return sinr_from_loss(cfg, link_loss_db(cfg, distance_m, ue_key, bs_key),
                        rrb_bandwidth_hz);
}

double sinr(const ChannelConfig& cfg, const Point& ue, const Point& bs,
            double rrb_bandwidth_hz) {
  return sinr(cfg, distance_m(ue, bs), rrb_bandwidth_hz);
}

}  // namespace dmra
