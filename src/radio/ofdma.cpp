#include "radio/ofdma.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dmra {

std::uint32_t OfdmaConfig::num_rrbs() const {
  DMRA_REQUIRE(uplink_bandwidth_hz > 0 && rrb_bandwidth_hz > 0);
  return static_cast<std::uint32_t>(uplink_bandwidth_hz / rrb_bandwidth_hz);
}

double rrb_rate_bps(double rrb_bandwidth_hz, double sinr_linear) {
  DMRA_REQUIRE(rrb_bandwidth_hz > 0.0);
  DMRA_REQUIRE(sinr_linear >= 0.0);
  return rrb_bandwidth_hz * std::log2(1.0 + sinr_linear);
}

std::uint32_t rrbs_needed(double demand_bps, double rrb_rate) {
  DMRA_REQUIRE(demand_bps > 0.0);
  DMRA_REQUIRE(rrb_rate > 0.0);
  return static_cast<std::uint32_t>(std::ceil(demand_bps / rrb_rate));
}

}  // namespace dmra
