#include "radio/pathloss.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace dmra {

const char* pathloss_model_name(PathlossModel model) {
  switch (model) {
    case PathlossModel::kPaperEq18: return "paper-eq18";
    case PathlossModel::kFreeSpace: return "free-space";
    case PathlossModel::kLteMacro: return "lte-macro";
    case PathlossModel::kTwoRay: return "two-ray";
  }
  return "?";
}

double pathloss_db(PathlossModel model, double distance_m, const PathlossParams& params) {
  DMRA_REQUIRE(distance_m >= 0.0);
  DMRA_REQUIRE(params.min_distance_m > 0.0);
  const double d_m = std::max(distance_m, params.min_distance_m);
  const double d_km = d_m / 1000.0;
  switch (model) {
    case PathlossModel::kPaperEq18:
      return 140.7 + 36.7 * std::log10(d_km);
    case PathlossModel::kFreeSpace:
      DMRA_REQUIRE(params.carrier_mhz > 0.0);
      return 32.45 + 20.0 * std::log10(d_km) + 20.0 * std::log10(params.carrier_mhz);
    case PathlossModel::kLteMacro:
      return 128.1 + 37.6 * std::log10(d_km);
    case PathlossModel::kTwoRay:
      DMRA_REQUIRE(params.bs_height_m > 0.0 && params.ue_height_m > 0.0);
      return 40.0 * std::log10(d_m) -
             20.0 * std::log10(params.bs_height_m * params.ue_height_m);
  }
  DMRA_REQUIRE_MSG(false, "unknown path-loss model");
  return 0.0;
}

}  // namespace dmra
