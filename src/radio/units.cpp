#include "radio/units.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dmra {

double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

double mw_to_dbm(double mw) {
  DMRA_REQUIRE(mw > 0.0);
  return 10.0 * std::log10(mw);
}

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

double linear_to_db(double linear) {
  DMRA_REQUIRE(linear > 0.0);
  return 10.0 * std::log10(linear);
}

}  // namespace dmra
