// OFDMA radio-resource-block (RRB) accounting (paper §III-C).
//
// e(u,i) = W_sub · log2(1 + λ(u,i))        (Eq. 2)
// n(u,i) = ceil(w_u / e(u,i))              (Eq. 3)
// A BS has N_i = floor(W_i / W_sub) RRBs available for uplink offloading.
#pragma once

#include <cstdint>

namespace dmra {

/// OFDMA numerology; defaults are the paper's (10 MHz uplink, 180 kHz RRB,
/// i.e. an LTE resource block).
struct OfdmaConfig {
  double uplink_bandwidth_hz = 10e6;
  double rrb_bandwidth_hz = 180e3;

  /// N_i: number of allocatable RRBs.
  std::uint32_t num_rrbs() const;
};

/// Eq. 2: achievable rate (bit/s) of one RRB at linear SINR `sinr_linear`.
double rrb_rate_bps(double rrb_bandwidth_hz, double sinr_linear);

/// Eq. 3: RRBs needed to carry `demand_bps` at per-RRB rate `rrb_rate`.
/// Requires demand_bps > 0 and rrb_rate > 0.
std::uint32_t rrbs_needed(double demand_bps, double rrb_rate);

}  // namespace dmra
