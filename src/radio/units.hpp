// Power/rate unit conversions.
//
// Internally the radio substrate works in linear units (mW, Hz, bit/s);
// dBm/dB appear only at configuration boundaries, converted here.
#pragma once

namespace dmra {

/// dBm → milliwatts.
double dbm_to_mw(double dbm);

/// milliwatts → dBm. Requires mw > 0.
double mw_to_dbm(double mw);

/// dB ratio → linear ratio.
double db_to_linear(double db);

/// linear ratio → dB. Requires linear > 0.
double linear_to_db(double linear);

inline constexpr double kBitsPerMbit = 1e6;

}  // namespace dmra
