// Pluggable large-scale path-loss models.
//
// The paper fixes its own model (Eq. 18, the default); the alternatives
// let downstream users study how the allocation results depend on the
// propagation environment (bench abl5_channel_models) without touching
// the rest of the stack.
//
// All models return loss in dB for a distance in meters; distances below
// `min_distance_m` are clamped (every model diverges at d → 0).
#pragma once

namespace dmra {

enum class PathlossModel {
  /// Eq. 18: 140.7 + 36.7·log10(d_km). The paper's uplink model.
  kPaperEq18,
  /// Free-space (Friis): 32.45 + 20·log10(d_km) + 20·log10(f_MHz).
  kFreeSpace,
  /// Classic 3GPP LTE macro NLOS at 2 GHz: 128.1 + 37.6·log10(d_km).
  kLteMacro,
  /// Two-ray ground reflection: 40·log10(d_m) − 20·log10(h_bs·h_ue).
  kTwoRay,
};

const char* pathloss_model_name(PathlossModel model);

/// Model parameters; only the fields a model uses matter to it.
struct PathlossParams {
  double carrier_mhz = 2000.0;  ///< free-space
  double bs_height_m = 25.0;    ///< two-ray
  double ue_height_m = 1.5;     ///< two-ray
  double min_distance_m = 1.0;
};

/// Path loss in dB at `distance_m` meters under `model`.
double pathloss_db(PathlossModel model, double distance_m, const PathlossParams& params);

}  // namespace dmra
