// Uplink channel model (paper §VI-A).
//
// Path loss follows Eq. 18: PL(dB) = 140.7 + 36.7·log10(d_km); noise is a
// power spectral density (see DESIGN.md on the −170 dBm reading); SINR is
// computed per RRB. Interference is optional: intra-cell OFDMA is
// orthogonal, so the default channel is SNR-only; an activity-factor
// inter-cell interference term can be enabled for ablations.
#pragma once

#include <cstdint>

#include "geometry/geometry.hpp"
#include "radio/pathloss.hpp"

namespace dmra {

/// How ChannelConfig::noise_dbm is interpreted.
enum class NoiseModel {
  /// noise_dbm is the total noise power in one RRB (the paper-literal
  /// reading of "the noise in the uplink channel is −170 dBm"; this is
  /// what reproduces the paper's figures — see DESIGN.md §3).
  kTotalPerRrb,
  /// noise_dbm is a power spectral density in dBm/Hz, integrated over the
  /// RRB bandwidth (the physically-conventional reading; radio becomes
  /// far scarcer and distance far more punishing — ablation bench abl1).
  kPsd,
};

/// Channel parameters; defaults are the paper's simulation values.
struct ChannelConfig {
  /// UE transmit power, dBm (paper: 10 dBm).
  double tx_power_dbm = 10.0;
  /// Uplink noise level, dBm; interpreted per `noise_model`.
  double noise_dbm = -170.0;
  NoiseModel noise_model = NoiseModel::kTotalPerRrb;
  /// Path loss below this distance is clamped (model diverges at d → 0).
  double min_distance_m = 1.0;
  /// Extra inter-cell interference, expressed as a power spectral density
  /// in mW/Hz received at the BS. 0 disables interference (SNR channel).
  double interference_psd_mw_hz = 0.0;

  /// Large-scale propagation model; the paper's Eq. 18 by default.
  PathlossModel pathloss_model = PathlossModel::kPaperEq18;
  /// Extra parameters for the non-paper models (carrier, antenna heights).
  PathlossParams pathloss_params;

  /// Log-normal shadowing standard deviation in dB. 0 disables shadowing
  /// (the paper models none). Each (UE, BS) link gets one deterministic
  /// draw derived from (shadowing_seed, ue_key, bs_key), so scenarios
  /// stay reproducible and every component sees the same channel.
  double shadowing_sigma_db = 0.0;
  std::uint64_t shadowing_seed = 0;
};

/// Path loss of Eq. 18 in dB at `distance_m` meters (clamped below
/// `min_distance_m`). Shorthand for pathloss_db(kPaperEq18, ...).
double pathloss_db(double distance_m, double min_distance_m = 1.0);

/// The deterministic log-normal shadowing term for one link, in dB
/// (zero-mean, cfg.shadowing_sigma_db). `ue_key`/`bs_key` identify the
/// link endpoints (any stable ids). 0 dB when shadowing is disabled.
double shadowing_db(const ChannelConfig& cfg, std::uint32_t ue_key, std::uint32_t bs_key);

/// Total large-scale link loss in dB: model path loss plus shadowing.
double link_loss_db(const ChannelConfig& cfg, double distance_m, std::uint32_t ue_key,
                    std::uint32_t bs_key);

/// Received power in mW at the BS from a UE at `distance_m` meters
/// (path loss only; no shadowing).
double received_power_mw(const ChannelConfig& cfg, double distance_m);

/// Per-RRB SINR (linear) for a UE at `distance_m` meters, with the RRB
/// bandwidth `rrb_bandwidth_hz` deciding how much noise is integrated.
/// Path loss only — use the keyed overload for shadowed links.
double sinr(const ChannelConfig& cfg, double distance_m, double rrb_bandwidth_hz);

/// Per-RRB SINR including the link's shadowing draw.
double sinr(const ChannelConfig& cfg, double distance_m, double rrb_bandwidth_hz,
            std::uint32_t ue_key, std::uint32_t bs_key);

/// Convenience overload on points (no shadowing).
double sinr(const ChannelConfig& cfg, const Point& ue, const Point& bs,
            double rrb_bandwidth_hz);

}  // namespace dmra
