// Stability checkers for the matching mechanisms — used by property tests
// and by examples to demonstrate the Gale–Shapley guarantees DMRA builds on.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "matching/deferred_acceptance.hpp"

namespace dmra {

/// All blocking pairs (p, a) of a one-to-one matching: both find each
/// other acceptable and both strictly prefer each other to their current
/// assignment (being unmatched is worse than any acceptable partner).
std::vector<std::pair<std::size_t, std::size_t>> blocking_pairs(
    const PreferenceLists& proposer_prefs, const PreferenceLists& acceptor_prefs,
    const Matching& m);

/// True iff the one-to-one matching has no blocking pair.
bool is_stable(const PreferenceLists& proposer_prefs, const PreferenceLists& acceptor_prefs,
               const Matching& m);

/// Blocking pairs of a many-to-one matching: (p, a) blocks if both sides
/// find each other acceptable, p strictly prefers a to its assignment,
/// and a either has spare capacity or prefers p to its worst held proposer.
std::vector<std::pair<std::size_t, std::size_t>> blocking_pairs_many(
    const PreferenceLists& proposer_prefs, const PreferenceLists& acceptor_prefs,
    const std::vector<std::size_t>& capacities, const ManyToOneMatching& m);

bool is_stable_many(const PreferenceLists& proposer_prefs,
                    const PreferenceLists& acceptor_prefs,
                    const std::vector<std::size_t>& capacities, const ManyToOneMatching& m);

}  // namespace dmra
