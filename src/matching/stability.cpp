#include "matching/stability.hpp"

#include <limits>

#include "util/require.hpp"

namespace dmra {

namespace {
constexpr std::size_t kUnranked = std::numeric_limits<std::size_t>::max();
}

std::vector<std::pair<std::size_t, std::size_t>> blocking_pairs(
    const PreferenceLists& proposer_prefs, const PreferenceLists& acceptor_prefs,
    const Matching& m) {
  const std::size_t np = proposer_prefs.size();
  const std::size_t na = acceptor_prefs.size();
  const auto prank = build_rank_table(proposer_prefs, na);
  const auto arank = build_rank_table(acceptor_prefs, np);
  DMRA_REQUIRE(m.proposer_to_acceptor.size() == np);
  DMRA_REQUIRE(m.acceptor_to_proposer.size() == na);

  auto proposer_rank_of_current = [&](std::size_t p) {
    const auto cur = m.proposer_to_acceptor[p];
    return cur ? prank[p][*cur] : kUnranked;  // unmatched == worst
  };
  auto acceptor_rank_of_current = [&](std::size_t a) {
    const auto cur = m.acceptor_to_proposer[a];
    return cur ? arank[a][*cur] : kUnranked;
  };

  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  for (std::size_t p = 0; p < np; ++p) {
    for (std::size_t a : proposer_prefs[p]) {
      if (arank[a][p] == kUnranked) continue;  // a would not take p
      const bool p_prefers = prank[p][a] < proposer_rank_of_current(p);
      const bool a_prefers = arank[a][p] < acceptor_rank_of_current(a);
      if (p_prefers && a_prefers) blocks.emplace_back(p, a);
    }
  }
  return blocks;
}

bool is_stable(const PreferenceLists& proposer_prefs, const PreferenceLists& acceptor_prefs,
               const Matching& m) {
  return blocking_pairs(proposer_prefs, acceptor_prefs, m).empty();
}

std::vector<std::pair<std::size_t, std::size_t>> blocking_pairs_many(
    const PreferenceLists& proposer_prefs, const PreferenceLists& acceptor_prefs,
    const std::vector<std::size_t>& capacities, const ManyToOneMatching& m) {
  const std::size_t np = proposer_prefs.size();
  const std::size_t na = acceptor_prefs.size();
  const auto prank = build_rank_table(proposer_prefs, na);
  const auto arank = build_rank_table(acceptor_prefs, np);
  DMRA_REQUIRE(capacities.size() == na);
  DMRA_REQUIRE(m.proposer_to_acceptor.size() == np);
  DMRA_REQUIRE(m.acceptor_to_proposers.size() == na);

  // Worst held rank per acceptor (kUnranked if it has spare capacity).
  std::vector<std::size_t> worst(na, kUnranked);
  for (std::size_t a = 0; a < na; ++a) {
    if (m.acceptor_to_proposers[a].size() < capacities[a]) continue;  // spare seat
    std::size_t w = 0;
    for (std::size_t p : m.acceptor_to_proposers[a]) w = std::max(w, arank[a][p]);
    worst[a] = w;
  }

  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  for (std::size_t p = 0; p < np; ++p) {
    const auto cur = m.proposer_to_acceptor[p];
    const std::size_t cur_rank = cur ? prank[p][*cur] : kUnranked;
    for (std::size_t a : proposer_prefs[p]) {
      if (arank[a][p] == kUnranked || capacities[a] == 0) continue;
      if (prank[p][a] >= cur_rank) continue;  // p does not prefer a
      const bool a_prefers = worst[a] == kUnranked || arank[a][p] < worst[a];
      if (a_prefers) blocks.emplace_back(p, a);
    }
  }
  return blocks;
}

bool is_stable_many(const PreferenceLists& proposer_prefs,
                    const PreferenceLists& acceptor_prefs,
                    const std::vector<std::size_t>& capacities, const ManyToOneMatching& m) {
  return blocking_pairs_many(proposer_prefs, acceptor_prefs, capacities, m).empty();
}

}  // namespace dmra
