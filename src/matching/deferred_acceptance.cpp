#include "matching/deferred_acceptance.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/require.hpp"

namespace dmra {

namespace {
constexpr std::size_t kUnranked = std::numeric_limits<std::size_t>::max();
}

std::vector<std::vector<std::size_t>> build_rank_table(const PreferenceLists& prefs,
                                                       std::size_t other_side_size) {
  std::vector<std::vector<std::size_t>> rank(prefs.size(),
                                             std::vector<std::size_t>(other_side_size, kUnranked));
  for (std::size_t a = 0; a < prefs.size(); ++a) {
    for (std::size_t pos = 0; pos < prefs[a].size(); ++pos) {
      const std::size_t p = prefs[a][pos];
      DMRA_REQUIRE_MSG(p < other_side_size, "preference list references out-of-range index");
      DMRA_REQUIRE_MSG(rank[a][p] == kUnranked, "duplicate entry in a preference list");
      rank[a][p] = pos;
    }
  }
  return rank;
}

Matching stable_marriage(const PreferenceLists& proposer_prefs,
                         const PreferenceLists& acceptor_prefs) {
  const std::size_t np = proposer_prefs.size();
  const std::size_t na = acceptor_prefs.size();
  const auto acceptor_rank = build_rank_table(acceptor_prefs, np);
  // Validate proposer lists too (and catch duplicates early).
  (void)build_rank_table(proposer_prefs, na);

  Matching m;
  m.proposer_to_acceptor.assign(np, std::nullopt);
  m.acceptor_to_proposer.assign(na, std::nullopt);

  std::vector<std::size_t> next_choice(np, 0);  // next index to propose to
  std::deque<std::size_t> free;
  for (std::size_t p = 0; p < np; ++p) free.push_back(p);

  while (!free.empty()) {
    const std::size_t p = free.front();
    free.pop_front();
    bool matched = false;
    while (next_choice[p] < proposer_prefs[p].size()) {
      const std::size_t a = proposer_prefs[p][next_choice[p]++];
      if (acceptor_rank[a][p] == kUnranked) continue;  // a finds p unacceptable
      const auto current = m.acceptor_to_proposer[a];
      if (!current) {
        m.acceptor_to_proposer[a] = p;
        m.proposer_to_acceptor[p] = a;
        matched = true;
        break;
      }
      if (acceptor_rank[a][p] < acceptor_rank[a][*current]) {
        // a trades up: the displaced proposer becomes free again.
        m.proposer_to_acceptor[*current] = std::nullopt;
        free.push_back(*current);
        m.acceptor_to_proposer[a] = p;
        m.proposer_to_acceptor[p] = a;
        matched = true;
        break;
      }
      // rejected; try the next choice
    }
    (void)matched;  // p stays unmatched if its list is exhausted
  }
  return m;
}

ManyToOneMatching college_admissions(const PreferenceLists& proposer_prefs,
                                     const PreferenceLists& acceptor_prefs,
                                     const std::vector<std::size_t>& capacities) {
  const std::size_t np = proposer_prefs.size();
  const std::size_t na = acceptor_prefs.size();
  DMRA_REQUIRE_MSG(capacities.size() == na, "one capacity per acceptor");
  const auto acceptor_rank = build_rank_table(acceptor_prefs, np);
  (void)build_rank_table(proposer_prefs, na);

  ManyToOneMatching m;
  m.proposer_to_acceptor.assign(np, std::nullopt);
  m.acceptor_to_proposers.assign(na, {});

  std::vector<std::size_t> next_choice(np, 0);
  std::deque<std::size_t> free;
  for (std::size_t p = 0; p < np; ++p) free.push_back(p);

  auto worst_held = [&](std::size_t a) {
    // Index into acceptor_to_proposers[a] of the lowest-ranked held proposer.
    const auto& held = m.acceptor_to_proposers[a];
    std::size_t worst = 0;
    for (std::size_t i = 1; i < held.size(); ++i)
      if (acceptor_rank[a][held[i]] > acceptor_rank[a][held[worst]]) worst = i;
    return worst;
  };

  while (!free.empty()) {
    const std::size_t p = free.front();
    free.pop_front();
    while (next_choice[p] < proposer_prefs[p].size()) {
      const std::size_t a = proposer_prefs[p][next_choice[p]++];
      if (acceptor_rank[a][p] == kUnranked) continue;
      auto& held = m.acceptor_to_proposers[a];
      if (held.size() < capacities[a]) {
        held.push_back(p);
        m.proposer_to_acceptor[p] = a;
        break;
      }
      if (capacities[a] == 0) continue;
      const std::size_t w = worst_held(a);
      if (acceptor_rank[a][p] < acceptor_rank[a][held[w]]) {
        const std::size_t displaced = held[w];
        held[w] = p;
        m.proposer_to_acceptor[displaced] = std::nullopt;
        m.proposer_to_acceptor[p] = a;
        free.push_back(displaced);
        break;
      }
    }
  }

  // Canonical order for deterministic comparison in tests.
  for (auto& held : m.acceptor_to_proposers) std::sort(held.begin(), held.end());
  return m;
}

}  // namespace dmra
