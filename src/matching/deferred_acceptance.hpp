// Matching theory substrate (paper §V builds DMRA on this foundation,
// citing Gale & Shapley [8]).
//
// Two classic mechanisms:
//  * stable_marriage     — one-to-one deferred acceptance;
//  * college_admissions  — many-to-one deferred acceptance with acceptor
//                          capacities (each BS-service seat in DMRA's
//                          framing).
// Preference lists may be incomplete: a pair absent from either side's
// list is unacceptable and will never be matched. Proposers end unmatched
// when every acceptable acceptor rejects them — the analogue of a UE
// falling through to the remote cloud.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace dmra {

/// Preference lists: prefs[p] ranks acceptors best-first.
using PreferenceLists = std::vector<std::vector<std::size_t>>;

/// Result of a one-to-one matching over n proposers and m acceptors.
struct Matching {
  std::vector<std::optional<std::size_t>> proposer_to_acceptor;
  std::vector<std::optional<std::size_t>> acceptor_to_proposer;
};

/// Proposer-optimal stable marriage via deferred acceptance.
///
/// `proposer_prefs[p]` and `acceptor_prefs[a]` rank the other side
/// best-first; indices must be in range. O(n·m).
Matching stable_marriage(const PreferenceLists& proposer_prefs,
                         const PreferenceLists& acceptor_prefs);

/// Result of a many-to-one matching.
struct ManyToOneMatching {
  std::vector<std::optional<std::size_t>> proposer_to_acceptor;
  std::vector<std::vector<std::size_t>> acceptor_to_proposers;
};

/// Proposer-optimal college admissions: acceptor a holds at most
/// `capacities[a]` proposers, always keeping the best ones seen so far.
ManyToOneMatching college_admissions(const PreferenceLists& proposer_prefs,
                                     const PreferenceLists& acceptor_prefs,
                                     const std::vector<std::size_t>& capacities);

/// rank[a][p] = position of p in acceptor a's list, or SIZE_MAX if
/// unacceptable. Shared by the mechanisms and the stability checkers.
std::vector<std::vector<std::size_t>> build_rank_table(const PreferenceLists& prefs,
                                                       std::size_t other_side_size);

}  // namespace dmra
