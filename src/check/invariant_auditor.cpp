#include "check/invariant_auditor.hpp"

#include <sstream>

#include "obs/flight.hpp"
#include "util/require.hpp"

namespace dmra::check {

namespace {

/// Tolerance for the monotonic-profit comparison: profits are sums of
/// doubles, so permit rounding noise but not a real regression.
constexpr double kProfitSlack = 1e-9;

}  // namespace

void InvariantAuditor::record(const std::string& context, FeasibilityReport report) {
  if (report.ok) return;
  findings_.merge(report);
  // Freeze the flight-recorder ring before (possibly) throwing: the
  // post-mortem should show the events leading up to the violation, not
  // whatever unwinding happens afterwards. (A bench that lets AuditFailure
  // propagate uncaught still terminates without a dump — the dump writer
  // runs in ObsSession's destructor; catch the failure to keep it.)
  if (obs::FlightRecorder* const fr = obs::flight(); fr != nullptr)
    fr->trigger("audit-violation", fr->round());
  if (!options_.throw_on_violation) return;
  std::ostringstream os;
  os << "invariant audit failed (" << context << "):";
  for (const std::string& line : findings_.violations) os << "\n  " << line;
  throw AuditFailure(os.str(), findings_);
}

void InvariantAuditor::on_round(const audit::RoundContext& ctx) {
  DMRA_REQUIRE(ctx.scenario != nullptr);
  DMRA_REQUIRE(ctx.allocation != nullptr);
  ++rounds_audited_;

  FeasibilityReport combined;
  if (options_.check_partial_feasibility)
    combined.merge(check_feasibility(*ctx.scenario, *ctx.allocation));
  if (options_.check_ledger && !ctx.ledger.rrbs.empty())
    combined.merge(check_ledger_consistency(*ctx.scenario, *ctx.allocation,
                                            ctx.ledger.crus, ctx.ledger.rrbs));

  if (options_.check_monotonic_profit) {
    const double profit = total_profit(*ctx.scenario, *ctx.allocation);
    auto [it, inserted] = profit_baselines_.try_emplace(std::string(ctx.source));
    ProfitBaseline& base = it->second;
    // The baseline only carries over within one run: same scenario,
    // consecutive rounds. Anything else (new run, new epoch) resets it.
    const bool continues =
        !inserted && base.scenario == ctx.scenario && ctx.round == base.round + 1;
    if (continues && profit + kProfitSlack < base.profit) {
      std::ostringstream os;
      os << ctx.source << " round " << ctx.round << ": total profit decreased from "
         << base.profit << " to " << profit << " (monotonic-profit)";
      combined.ok = false;
      combined.violations.push_back(os.str());
    }
    base = {ctx.scenario, ctx.round, profit};
  }

  std::ostringstream context;
  context << ctx.source << ", round " << ctx.round;
  record(context.str(), std::move(combined));
}

FeasibilityReport InvariantAuditor::audit_final(const Scenario& scenario,
                                                const Allocation& alloc) {
  FeasibilityReport report = check_feasibility(scenario, alloc);
  record("final allocation", report);
  return report;
}

void InvariantAuditor::reset() {
  findings_ = {};
  rounds_audited_ = 0;
  profit_baselines_.clear();
}

Allocation AuditedAllocator::allocate(const Scenario& scenario) const {
  InvariantAuditor auditor(options_);
  audit::ScopedAuditObserver guard(&auditor);
  Allocation alloc = inner_->allocate(scenario);
  auditor.audit_final(scenario, alloc);
  return alloc;
}

AllocatorPtr wrap_audited(AllocatorPtr inner, AuditorOptions options) {
  return std::make_unique<AuditedAllocator>(std::move(inner), options);
}

namespace detail {

audit::Observer* env_auditor_factory() {
  // Thread lifetime, throwing: the observer slot is thread-local, so each
  // worker that trips the DMRA_AUDIT=1 path gets its own auditor and the
  // per-run state (profit baselines, findings) is never shared.
  thread_local InvariantAuditor auditor;
  return &auditor;
}

}  // namespace detail

}  // namespace dmra::check
