// The runtime invariant auditor: a from-scratch cross-check of allocator
// behavior, run every proposal round through the mec/audit.hpp hooks and
// once more on the final allocation.
//
// Invariant catalogue (see docs/CORRECTNESS.md for the Eq. mapping):
//  * partial-feasibility — after every round the allocation built so far
//    satisfies Eq. 12–16 (capacity, hosting, RRB budget, association,
//    profitability);
//  * ledger-consistency — the allocator's internal CRU/RRB ledger equals
//    capacity minus a from-scratch recount of the partial allocation; a
//    ledger below the recount is a double commit (the no-double-RRB
//    invariant), above it is a leak / unpaired release;
//  * monotonic-profit — within one run, total SP profit (Eq. 11) never
//    decreases round over round: DMRA and every baseline only ever add
//    strictly profitable pairs (Eq. 16), so a dip means lost assignments
//    or corrupted accounting.
//
// Use it one of three ways:
//  * wrap any Allocator in AuditedAllocator (audits rounds + final);
//  * install an InvariantAuditor with audit::ScopedAuditObserver around
//    hand-rolled runs;
//  * set DMRA_AUDIT=1 in the environment — any binary that links this
//    header's registrar gets a process-wide throwing auditor.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "mec/allocator.hpp"
#include "mec/audit.hpp"
#include "sim/feasibility.hpp"

namespace dmra::check {

/// Thrown when an invariant is violated and the auditor is configured to
/// throw (the default). Carries the full violation report.
class AuditFailure : public std::runtime_error {
 public:
  AuditFailure(const std::string& what, FeasibilityReport report)
      : std::runtime_error(what), report_(std::move(report)) {}
  const FeasibilityReport& report() const { return report_; }

 private:
  FeasibilityReport report_;
};

struct AuditorOptions {
  /// Throw AuditFailure on the first violated invariant. When false the
  /// auditor only accumulates findings() — used by negative tests.
  bool throw_on_violation = true;
  bool check_partial_feasibility = true;
  bool check_ledger = true;
  bool check_monotonic_profit = true;
};

class InvariantAuditor final : public audit::Observer {
 public:
  explicit InvariantAuditor(AuditorOptions options = {}) : options_(options) {}

  /// Cross-check one round report (see file comment for the invariants).
  void on_round(const audit::RoundContext& ctx) override;

  /// Validate a complete allocation (Eq. 12–16). Returns the report and
  /// accumulates it into findings().
  FeasibilityReport audit_final(const Scenario& scenario, const Allocation& alloc);

  /// Everything found so far, across rounds and final audits.
  const FeasibilityReport& findings() const { return findings_; }
  std::size_t rounds_audited() const { return rounds_audited_; }

  /// Forget findings and per-run monotonic-profit baselines.
  void reset();

 private:
  struct ProfitBaseline {
    const Scenario* scenario = nullptr;
    std::size_t round = 0;
    double profit = 0.0;
  };

  void record(const std::string& context, FeasibilityReport report);

  AuditorOptions options_;
  FeasibilityReport findings_;
  std::size_t rounds_audited_ = 0;
  std::map<std::string, ProfitBaseline, std::less<>> profit_baselines_;
};

/// Wraps any Allocator: installs a fresh InvariantAuditor for the
/// duration of allocate(), so every instrumented proposal round is
/// cross-checked, then audits the final allocation. Throws AuditFailure
/// (by default) if the wrapped allocator ever violates an invariant.
class AuditedAllocator final : public Allocator {
 public:
  explicit AuditedAllocator(AllocatorPtr inner, AuditorOptions options = {})
      : inner_(std::move(inner)), options_(options) {}

  std::string name() const override { return inner_->name(); }
  Allocation allocate(const Scenario& scenario) const override;

 private:
  AllocatorPtr inner_;
  AuditorOptions options_;
};

/// Convenience: std::make_unique<AuditedAllocator>(std::move(inner)).
AllocatorPtr wrap_audited(AllocatorPtr inner, AuditorOptions options = {});

namespace detail {
/// Factory behind the DMRA_AUDIT=1 environment flag: a thread-lifetime
/// throwing auditor (one per thread that runs instrumented work — the
/// observer slot in mec/audit is thread-local).
audit::Observer* env_auditor_factory();

struct EnvAuditorRegistrar {
  EnvAuditorRegistrar() { audit::set_env_observer_factory(&env_auditor_factory); }
};
/// One instance program-wide (inline); constructing it registers the
/// factory before main() in any binary that includes this header.
inline EnvAuditorRegistrar env_auditor_registrar{};
}  // namespace detail

}  // namespace dmra::check
