// Minimal command-line flag parser for benches and examples.
//
// Supports "--name value" and "--name=value"; unknown flags are an error
// so typos don't silently run the default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dmra {

class Cli {
 public:
  /// Declare a flag with a default value and help text. Call before parse().
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parse argv. Returns false (and fills `error`) on unknown flags,
  /// missing values, or malformed input. "--help" sets help_requested().
  bool parse(int argc, const char* const* argv, std::string* error = nullptr);

  bool help_requested() const { return help_requested_; }
  std::string help_text(const std::string& program) const;

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated list of doubles, e.g. "--rho=0,100,200".
  std::vector<double> get_double_list(const std::string& name) const;

  /// Every declared flag with its effective (parsed-or-default) value, in
  /// name order — the provenance snapshot a run manifest records.
  std::map<std::string, std::string> values() const;

  /// True iff the flag was set on the command line (differs from knowing
  /// its value: an explicit "--jobs=0" counts as set).
  bool is_set(const std::string& name) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool set = false;  ///< appeared on the command line
  };
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
  const Flag& lookup(const std::string& name) const;
};

}  // namespace dmra
