// Descriptive statistics for experiment results.
#pragma once

#include <cstddef>
#include <vector>

namespace dmra {

/// Single-pass accumulator (Welford) for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const;
  double min() const;
  double max() const;

  /// Merge another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample, computed in one call for reporting.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double stderr_mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Summarize a sample. Accepts an empty vector (all-zero summary).
Summary summarize(const std::vector<double>& xs);

/// Linear-interpolated percentile, q in [0, 1]. Requires non-empty input.
double percentile(std::vector<double> xs, double q);

/// Half-width of a ~95% normal-approximation confidence interval
/// (1.96 × stderr). Returns 0 for fewer than two samples.
double ci95_halfwidth(const RunningStats& s);

/// Welch's unequal-variance t-test between two summarized samples.
struct WelchResult {
  double t = 0.0;   ///< t statistic (sign: mean_a − mean_b)
  double df = 0.0;  ///< Welch–Satterthwaite degrees of freedom
  /// True iff |t| exceeds the two-sided 95% critical value for df
  /// (tabulated for small df, 1.96 asymptotically).
  bool significant_95 = false;
};

/// Requires ≥ 2 samples on each side. Degenerate zero-variance inputs
/// yield significant_95 = (means differ) with t = ±inf.
WelchResult welch_t_test(double mean_a, double var_a, std::size_t n_a, double mean_b,
                         double var_b, std::size_t n_b);
WelchResult welch_t_test(const RunningStats& a, const RunningStats& b);

/// Two-sided 95% critical value of Student's t for `df` degrees of
/// freedom (linear interpolation over a standard table; 1.96 as df → ∞).
double t_critical_95(double df);

}  // namespace dmra
