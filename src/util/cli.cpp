#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "util/require.hpp"

namespace dmra {

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  DMRA_REQUIRE_MSG(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, default_value, help};
}

bool Cli::parse(int argc, const char* const* argv, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) return fail("unexpected positional argument: " + arg);
    arg = arg.substr(2);
    std::string name, value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 >= argc) return fail("flag --" + name + " is missing a value");
      value = argv[++i];
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) return fail("unknown flag: --" + name);
    it->second.value = value;
    it->second.set = true;
  }
  return true;
}

std::string Cli::help_text(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [--flag value | --flag=value]...\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      " << flag.help
       << '\n';
  }
  return os.str();
}

const Cli::Flag& Cli::lookup(const std::string& name) const {
  auto it = flags_.find(name);
  DMRA_REQUIRE_MSG(it != flags_.end(), "flag not declared: " + name);
  return it->second;
}

std::string Cli::get_string(const std::string& name) const { return lookup(name).value; }

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string& v = lookup(name).value;
  char* end = nullptr;
  const long long r = std::strtoll(v.c_str(), &end, 10);
  DMRA_REQUIRE_MSG(end && *end == '\0' && !v.empty(), "flag --" + name + " is not an int: " + v);
  return r;
}

double Cli::get_double(const std::string& name) const {
  const std::string& v = lookup(name).value;
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  DMRA_REQUIRE_MSG(end && *end == '\0' && !v.empty(),
                   "flag --" + name + " is not a number: " + v);
  return r;
}

bool Cli::get_bool(const std::string& name) const {
  const std::string& v = lookup(name).value;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  DMRA_REQUIRE_MSG(false, "flag --" + name + " is not a bool: " + v);
  return false;
}

std::map<std::string, std::string> Cli::values() const {
  std::map<std::string, std::string> out;
  for (const auto& [name, flag] : flags_) out[name] = flag.value;
  return out;
}

bool Cli::is_set(const std::string& name) const { return lookup(name).set; }

std::vector<double> Cli::get_double_list(const std::string& name) const {
  const std::string& v = lookup(name).value;
  std::vector<double> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const double r = std::strtod(item.c_str(), &end);
    DMRA_REQUIRE_MSG(end && *end == '\0', "flag --" + name + " has a bad element: " + item);
    out.push_back(r);
  }
  return out;
}

}  // namespace dmra
