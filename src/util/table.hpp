// Aligned-table and CSV rendering for experiment output.
//
// Benches print their series both as a human-readable aligned table
// (what the paper's figures plot) and, optionally, as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dmra {

/// A simple column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row. Must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Render with columns padded to their widest cell.
  std::string to_aligned() const;

  /// Render as RFC-4180-ish CSV (quotes cells containing , " or newline).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` places after the decimal point.
std::string fmt(double v, int digits = 2);

/// Format "mean ± halfwidth".
std::string fmt_pm(double mean, double halfwidth, int digits = 2);

}  // namespace dmra
