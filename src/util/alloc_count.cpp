// Counting global allocator — the dmra_alloc_count library.
//
// Link this library ONLY into binaries that measure allocations
// (bench/perf_report, tests/core/alloc_test): its strong operator
// new/delete definitions replace the toolchain's for the whole binary.
// Each operator new bumps a thread-local counter that the alloc_hook
// probe exposes; deletes are free. Call dmra::allocprobe::install() once
// at startup to publish the probe.
//
// Counting is per-thread and allocation-count-based (not bytes), so a
// deterministic single-threaded run reports a deterministic number that
// CI can hard-fail on.

#include "util/alloc_count.hpp"

#include <cstdlib>
#include <new>

#include "util/alloc_hook.hpp"

namespace dmra::allocprobe {

namespace {
thread_local std::uint64_t tl_news = 0;

std::uint64_t read_tl() noexcept { return tl_news; }

void* alloc_or_throw(std::size_t n) {
  ++tl_news;
  if (n == 0) n = 1;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* alloc_aligned(std::size_t n, std::size_t align) {
  ++tl_news;
  if (n == 0) n = 1;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void install() noexcept { alloc_hook::set_probe(&read_tl); }

std::uint64_t thread_count() noexcept { return tl_news; }

}  // namespace dmra::allocprobe

void* operator new(std::size_t n) { return dmra::allocprobe::alloc_or_throw(n); }
void* operator new[](std::size_t n) { return dmra::allocprobe::alloc_or_throw(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++dmra::allocprobe::tl_news;
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++dmra::allocprobe::tl_news;
  return std::malloc(n != 0 ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return dmra::allocprobe::alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return dmra::allocprobe::alloc_aligned(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
