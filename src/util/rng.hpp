// Deterministic random number generation.
//
// Every random quantity in this library flows from one 64-bit seed through
// named child streams: Rng("topology", seed), Rng("workload", seed), etc.
// Two consequences:
//   * an experiment is reproducible bit-for-bit from its seed, and
//   * adding draws to one subsystem does not perturb another subsystem's
//     stream (no accidental coupling through a shared generator).
//
// The generator is xoshiro256** (public-domain algorithm by Blackman &
// Vigna); seeding uses splitmix64 as recommended by its authors.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace dmra {

/// splitmix64 step: returns the next value and advances the state.
/// Exposed for tests and for hashing stream names.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// FNV-1a hash of a string, used to derive child-stream seeds from names.
std::uint64_t hash_name(std::string_view name);

/// xoshiro256** generator with convenience draw helpers.
/// Satisfies UniformRandomBitGenerator, so it also works with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Root stream from a bare seed.
  explicit Rng(std::uint64_t seed);

  /// Named child stream: deterministic function of (name, seed).
  Rng(std::string_view name, std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Derive an independent child stream. Child draws never affect this
  /// stream and vice versa.
  Rng child(std::string_view name) const;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform_real(double lo, double hi);

  /// Bernoulli draw with probability p in [0, 1].
  bool bernoulli(double p);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Normal draw (Box–Muller). Requires stddev >= 0.
  double gaussian(double mean, double stddev);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  void seed_from(std::uint64_t seed);
};

}  // namespace dmra
