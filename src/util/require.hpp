// Contract checking for programmer errors.
//
// DMRA_REQUIRE fires on violated preconditions/invariants: it throws
// dmra::ContractViolation with file/line and the failed expression so
// tests can assert on misuse.  It is always on (not compiled out in
// release builds) — the checks in this library are cheap relative to the
// simulation work they guard.
#pragma once

#include <stdexcept>
#include <string>

namespace dmra {

/// Thrown when a DMRA_REQUIRE contract is violated. Indicates a bug in the
/// caller (bad arguments, broken invariants), never an environmental error.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::string full = std::string("contract violated: ") + expr + " at " + file + ":" +
                     std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw ContractViolation(full);
}
}  // namespace detail

}  // namespace dmra

#define DMRA_REQUIRE(expr)                                                  \
  do {                                                                      \
    if (!(expr)) ::dmra::detail::contract_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define DMRA_REQUIRE_MSG(expr, msg)                                           \
  do {                                                                        \
    if (!(expr)) ::dmra::detail::contract_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
