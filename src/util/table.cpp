#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace dmra {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DMRA_REQUIRE(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DMRA_REQUIRE_MSG(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::to_aligned() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_aligned(); }

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_pm(double mean, double halfwidth, int digits) {
  return fmt(mean, digits) + " ± " + fmt(halfwidth, digits);
}

}  // namespace dmra
