#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/require.hpp"

namespace dmra {

// ---- accessors ------------------------------------------------------------------

bool JsonValue::as_bool() const {
  DMRA_REQUIRE_MSG(is_bool(), "JSON value is not a bool");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  DMRA_REQUIRE_MSG(is_number(), "JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  DMRA_REQUIRE_MSG(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::as_array() const {
  DMRA_REQUIRE_MSG(is_array(), "JSON value is not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::as_object() const {
  DMRA_REQUIRE_MSG(is_object(), "JSON value is not an object");
  return std::get<JsonObject>(value_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonObject& obj = as_object();
  const auto it = obj.find(key);
  DMRA_REQUIRE_MSG(it != obj.end(), "JSON object has no key '" + key + "'");
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  if (!is_object()) return false;
  return as_object().count(key) > 0;
}

std::int64_t JsonValue::as_int() const {
  const double d = as_number();
  const double r = std::nearbyint(d);
  DMRA_REQUIRE_MSG(std::abs(d - r) < 1e-9, "JSON number is not integral");
  return static_cast<std::int64_t>(r);
}

std::uint32_t JsonValue::as_u32() const {
  const std::int64_t i = as_int();
  DMRA_REQUIRE_MSG(i >= 0 && i <= 0xffffffffLL, "JSON number out of uint32 range");
  return static_cast<std::uint32_t>(i);
}

// ---- serialization ----------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void dump_number(std::ostringstream& os, double d) {
  DMRA_REQUIRE_MSG(std::isfinite(d), "JSON cannot represent NaN/Inf");
  if (d == std::nearbyint(d) && std::abs(d) < 1e15) {
    os << static_cast<long long>(d);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os << buf;
}

void dump_value(std::ostringstream& os, const JsonValue& v, int indent, int depth);

void newline(std::ostringstream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n' << std::string(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_value(std::ostringstream& os, const JsonValue& v, int indent, int depth) {
  if (v.is_null()) {
    os << "null";
  } else if (v.is_bool()) {
    os << (v.as_bool() ? "true" : "false");
  } else if (v.is_number()) {
    dump_number(os, v.as_number());
  } else if (v.is_string()) {
    os << '"' << json_escape(v.as_string()) << '"';
  } else if (v.is_array()) {
    const JsonArray& arr = v.as_array();
    os << '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) os << ',';
      newline(os, indent, depth + 1);
      dump_value(os, arr[i], indent, depth + 1);
    }
    if (!arr.empty()) newline(os, indent, depth);
    os << ']';
  } else {
    const JsonObject& obj = v.as_object();
    os << '{';
    std::size_t i = 0;
    for (const auto& [key, value] : obj) {
      if (i++) os << ',';
      newline(os, indent, depth + 1);
      os << '"' << json_escape(key) << "\":";
      if (indent > 0) os << ' ';
      dump_value(os, value, indent, depth + 1);
    }
    if (!obj.empty()) newline(os, indent, depth);
    os << '}';
  }
}

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  dump_value(os, *this, indent, 0);
  return os.str();
}

// ---- parsing -----------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_;
      result.offset = pos_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing content after JSON value";
      result.offset = pos_;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;

  bool fail(const std::string& msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool parse_null(JsonValue& out) {
    if (!parse_literal("null")) return false;
    out = JsonValue(nullptr);
    return true;
  }

  bool parse_bool(JsonValue& out) {
    if (text_[pos_] == 't') {
      if (!parse_literal("true")) return false;
      out = JsonValue(true);
    } else {
      if (!parse_literal("false")) return false;
      out = JsonValue(false);
    }
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (!end || *end != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    out = JsonValue(d);
    return true;
  }

  bool parse_string_raw(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Encode the code point as UTF-8 (BMP only; enough for our use).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_string_value(JsonValue& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = JsonValue(std::move(s));
    return true;
  }

  bool parse_array(JsonValue& out) {
    consume('[');
    JsonArray arr;
    skip_ws();
    if (consume(']')) {
      out = JsonValue(std::move(arr));
      return true;
    }
    while (true) {
      JsonValue v;
      skip_ws();
      if (!parse_value(v)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (consume(']')) break;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
    out = JsonValue(std::move(arr));
    return true;
  }

  bool parse_object(JsonValue& out) {
    consume('{');
    JsonObject obj;
    skip_ws();
    if (consume('}')) {
      out = JsonValue(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string_raw(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) break;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
    out = JsonValue(std::move(obj));
    return true;
  }
};

}  // namespace

JsonParseResult json_parse(std::string_view text) { return Parser(text).run(); }

}  // namespace dmra
