#include "util/thread_pool.hpp"

namespace dmra {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // packaged_task stores any exception in its future
  }
}

std::size_t ThreadPool::hardware_concurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace dmra
