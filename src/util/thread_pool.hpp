// Fixed-size worker pool for fan-out/fan-in parallelism.
//
// The pool exists for replication-style workloads (same computation over
// many seeds): callers submit independent tasks and collect futures, so
// exceptions thrown inside a task surface at the collection point exactly
// like in serial code. Determinism is the caller's job — the pool makes
// no ordering promises between tasks, so any order-sensitive reduction
// must happen on the collecting thread, in task-index order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dmra {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers (≥ 1 enforced).
  explicit ThreadPool(std::size_t num_threads);
  /// Drains the queue: already-submitted tasks finish before the join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Queue `fn` for execution; the future carries its result or exception.
  template <typename Fn>
  std::future<std::invoke_result_t<std::decay_t<Fn>>> submit(Fn&& fn) {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    // shared_ptr because std::function requires a copyable callable.
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// std::thread::hardware_concurrency, clamped to ≥ 1 (the standard
  /// allows it to return 0 when unknowable).
  static std::size_t hardware_concurrency();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

/// Per-task lifecycle hooks for parallel_map. `before(i)` / `after(i)`
/// run on the thread that executes task i, immediately around the call —
/// the seam through which thread-local machinery (the obs trace shards,
/// see obs/shard.hpp) follows a task onto whichever worker picks it up.
/// `after` runs even when the task throws, so installations never leak
/// into the next task on that worker. Default-constructed hooks are free:
/// the empty-std::function test is the only cost.
struct TaskHooks {
  std::function<void(std::size_t task)> before;
  std::function<void(std::size_t task)> after;
};

/// Map fn over indices [0, n) with `jobs` workers, returning results in
/// index order; jobs == 0 means hardware_concurrency(). jobs ≤ 1 (or
/// n ≤ 1) runs inline on the calling thread — the serial path and the
/// parallel path run the identical per-task sequence (hooks included),
/// so results never depend on jobs.
/// On task failure, the exception of the first failing index propagates
/// (later tasks still finish — the pool drains before joining — but
/// their exceptions stay in their abandoned futures).
template <typename Fn>
auto parallel_map(std::size_t jobs, std::size_t n, Fn&& fn, const TaskHooks& hooks = {})
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  if (jobs == 0) jobs = ThreadPool::hardware_concurrency();
  auto run_one = [&fn, &hooks](std::size_t i) -> Result {
    if (hooks.before) hooks.before(i);
    struct AfterGuard {
      const TaskHooks& hooks;
      std::size_t i;
      ~AfterGuard() {
        if (hooks.after) hooks.after(i);
      }
    } guard{hooks, i};
    return fn(i);
  };
  std::vector<Result> results;
  results.reserve(n);
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) results.push_back(run_one(i));
    return results;
  }
  ThreadPool pool(jobs < n ? jobs : n);
  std::vector<std::future<Result>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(pool.submit([&run_one, i] { return run_one(i); }));
  // get() in index order: the first failing index wins, matching what the
  // serial loop would have thrown first.
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace dmra
