#include "util/log.hpp"

#include <cstdio>

namespace dmra {

namespace {
LogLevel g_level = LogLevel::kWarn;
}

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), msg.c_str());
}

}  // namespace dmra
