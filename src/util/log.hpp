// Minimal leveled logger.
//
// The library itself is silent by default; examples flip the level to
// kInfo/kDebug to trace algorithm rounds. Not thread-safe by design —
// the simulator is single-threaded (decentralization is modeled with the
// message bus in src/net, not with OS threads).
#pragma once

#include <sstream>
#include <string>

namespace dmra {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` (stderr). Prefer the DMRA_LOG macro.
void log_line(LogLevel level, const std::string& msg);

const char* log_level_name(LogLevel level);

}  // namespace dmra

#define DMRA_LOG(level, expr)                                 \
  do {                                                        \
    if (static_cast<int>(level) >= static_cast<int>(::dmra::log_level())) { \
      std::ostringstream dmra_log_os;                         \
      dmra_log_os << expr;                                    \
      ::dmra::log_line(level, dmra_log_os.str());             \
    }                                                         \
  } while (false)

#define DMRA_DEBUG(expr) DMRA_LOG(::dmra::LogLevel::kDebug, expr)
#define DMRA_INFO(expr) DMRA_LOG(::dmra::LogLevel::kInfo, expr)
#define DMRA_WARN(expr) DMRA_LOG(::dmra::LogLevel::kWarn, expr)
