// Pluggable heap-allocation counting probe (ROADMAP item 2).
//
// The zero-allocation claim of the hot-path rework is *test-asserted*,
// not just linted: binaries that want to measure link the dmra_alloc_count
// library (alloc_count.cpp), whose global operator new overrides bump a
// thread-local counter and install a probe here. Everything else never
// defines a probe, so the runtimes' sampling code costs one branch and
// the allocator is the system one.
//
// The counter is a count of operator-new calls on the calling thread —
// a deterministic quantity for a deterministic run, unlike bytes or
// malloc-internal events. That is what makes it safe to gate in CI.
#pragma once

#include <cstdint>

namespace dmra::alloc_hook {

/// A probe returns the calling thread's running allocation count.
using Probe = std::uint64_t (*)() noexcept;

/// Install (or clear, with nullptr) the process-wide probe. Called once at
/// startup by binaries linking the counting allocator.
void set_probe(Probe probe) noexcept;

/// Whether a probe is installed.
bool active() noexcept;

/// Current allocation count of the calling thread; 0 when no probe is
/// installed (callers must check active() to distinguish "none" from
/// "not measuring").
std::uint64_t count() noexcept;

}  // namespace dmra::alloc_hook
