#include "util/rng.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dmra {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_name(std::string_view name) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::seed_from(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64_next(sm);
  // xoshiro256** state must not be all-zero; splitmix64 output never
  // produces four consecutive zeros in practice, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::Rng(std::uint64_t seed) { seed_from(seed); }

Rng::Rng(std::string_view name, std::uint64_t seed) { seed_from(seed ^ hash_name(name)); }

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::child(std::string_view name) const {
  // Mix the current state into the child seed so two children with the
  // same name taken at different points of the parent stream differ.
  std::uint64_t mixed = s_[0] ^ rotl(s_[2], 13) ^ hash_name(name);
  return Rng(mixed);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DMRA_REQUIRE(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform_real(double lo, double hi) {
  DMRA_REQUIRE(lo <= hi);
  // 53 random bits → uniform in [0, 1).
  const double u = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

bool Rng::bernoulli(double p) {
  DMRA_REQUIRE(p >= 0.0 && p <= 1.0);
  return uniform_real(0.0, 1.0) < p;
}

std::size_t Rng::index(std::size_t n) {
  DMRA_REQUIRE(n > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::gaussian(double mean, double stddev) {
  DMRA_REQUIRE(stddev >= 0.0);
  // Box–Muller; u1 in (0, 1] so the log is finite.
  const double u1 = 1.0 - uniform_real(0.0, 1.0);
  const double u2 = uniform_real(0.0, 1.0);
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  return mean + stddev * z;
}

}  // namespace dmra
