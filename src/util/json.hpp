// Minimal JSON support — enough to persist scenarios and allocations
// (mec/scenario_io.hpp) without an external dependency.
//
// Writer: streaming, always emits valid JSON (keys escaped, numbers via
// shortest round-trip formatting). Parser: strict recursive descent over
// the JSON grammar; errors carry the byte offset. Neither aims to be a
// general-purpose library — no comments, no trailing commas, UTF-8 passed
// through untouched.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace dmra {

// ---- value model -------------------------------------------------------------

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys ordered — deterministic round-trips.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::uint32_t i) : value_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t i) : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; ContractViolation on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member access; ContractViolation if absent or not an object.
  const JsonValue& at(const std::string& key) const;
  /// True iff this is an object containing `key`.
  bool has(const std::string& key) const;

  /// Integer helpers (number must be integral within epsilon).
  std::int64_t as_int() const;
  std::uint32_t as_u32() const;

  /// Serialize. `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

 private:
  Storage value_;
};

// ---- parsing -------------------------------------------------------------------

/// Result of json_parse: either a value or an error with byte offset.
struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;       ///< empty when ok
  std::size_t offset = 0;  ///< byte offset of the error
};

JsonParseResult json_parse(std::string_view text);

/// Escape a string for embedding in JSON (without surrounding quotes).
std::string json_escape(std::string_view s);

}  // namespace dmra
