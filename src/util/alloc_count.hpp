// Public face of the counting-allocator library (dmra_alloc_count).
// See alloc_count.cpp for the operator new/delete overrides; link that
// library only into binaries that measure allocations.
#pragma once

#include <cstdint>

namespace dmra::allocprobe {

/// Publish the thread-local allocation counter through alloc_hook. Call
/// once at startup, before the code under measurement runs.
void install() noexcept;

/// The calling thread's running operator-new count.
std::uint64_t thread_count() noexcept;

}  // namespace dmra::allocprobe
