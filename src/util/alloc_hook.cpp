#include "util/alloc_hook.hpp"

#include <atomic>

namespace dmra::alloc_hook {

namespace {
std::atomic<Probe> g_probe{nullptr};
}  // namespace

void set_probe(Probe probe) noexcept { g_probe.store(probe, std::memory_order_release); }

bool active() noexcept { return g_probe.load(std::memory_order_acquire) != nullptr; }

std::uint64_t count() noexcept {
  const Probe p = g_probe.load(std::memory_order_acquire);
  return p != nullptr ? p() : 0;
}

}  // namespace dmra::alloc_hook
