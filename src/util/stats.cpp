#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace dmra {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  RunningStats rs;
  for (double x : xs) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.stderr_mean = rs.stderr_mean();
  s.min = rs.min();
  s.max = rs.max();
  s.median = percentile(xs, 0.5);
  return s;
}

double percentile(std::vector<double> xs, double q) {
  DMRA_REQUIRE(!xs.empty());
  DMRA_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double ci95_halfwidth(const RunningStats& s) { return 1.96 * s.stderr_mean(); }

double t_critical_95(double df) {
  DMRA_REQUIRE(df > 0.0);
  // Two-sided 95% critical values for df = 1..30, then selected points.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df <= 1.0) return kTable[0];
  if (df < 30.0) {
    const auto lo = static_cast<std::size_t>(df);
    const double frac = df - static_cast<double>(lo);
    return kTable[lo - 1] * (1.0 - frac) + kTable[lo] * frac;
  }
  if (df < 60.0) return 2.042 + (2.000 - 2.042) * (df - 30.0) / 30.0;
  if (df < 120.0) return 2.000 + (1.980 - 2.000) * (df - 60.0) / 60.0;
  return 1.96;
}

WelchResult welch_t_test(double mean_a, double var_a, std::size_t n_a, double mean_b,
                         double var_b, std::size_t n_b) {
  DMRA_REQUIRE(n_a >= 2 && n_b >= 2);
  DMRA_REQUIRE(var_a >= 0.0 && var_b >= 0.0);
  WelchResult r;
  const double sa = var_a / static_cast<double>(n_a);
  const double sb = var_b / static_cast<double>(n_b);
  const double se_sq = sa + sb;
  if (se_sq == 0.0) {
    // Both samples are constants.
    r.t = mean_a == mean_b ? 0.0
                           : std::numeric_limits<double>::infinity() *
                                 (mean_a > mean_b ? 1.0 : -1.0);
    r.df = static_cast<double>(n_a + n_b - 2);
    r.significant_95 = mean_a != mean_b;
    return r;
  }
  r.t = (mean_a - mean_b) / std::sqrt(se_sq);
  const double num = se_sq * se_sq;
  const double den = sa * sa / static_cast<double>(n_a - 1) +
                     sb * sb / static_cast<double>(n_b - 1);
  r.df = den > 0.0 ? num / den : static_cast<double>(n_a + n_b - 2);
  r.significant_95 = std::abs(r.t) > t_critical_95(r.df);
  return r;
}

WelchResult welch_t_test(const RunningStats& a, const RunningStats& b) {
  return welch_t_test(a.mean(), a.variance(), a.count(), b.mean(), b.variance(),
                      b.count());
}

}  // namespace dmra
