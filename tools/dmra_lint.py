#!/usr/bin/env python3
"""dmra-lint: the repo's static-analysis suite (stdlib only).

Usage:
    tools/dmra_lint.py [--root DIR] [--pass NAME ...] [--json] [--no-waivers]

Four passes over the first-party C++ sources, each with a committed,
justification-required waiver file under tools/waivers/:

  determinism   nondeterministic constructs in result-affecting code:
                unordered-container declarations and iteration, pointer-keyed
                associative containers, wall-clock reads outside src/obs,
                default-constructed (unseeded) <random> engines.
  hotpath       heap allocation inside `// dmra::hotpath begin(x)` ...
                `// dmra::hotpath end(x)` regions: new / make_unique /
                make_shared, std::function construction, allocating-container
                declarations, and container growth with no visible reserve().
                The waiver file is the allocation budget for ROADMAP item 2 —
                its entry count must only shrink.
  layering      every `#include "lib/..."` edge between src/ libraries must be
                allowed by tools/layers.json (the machine-readable form of the
                docs/ARCHITECTURE.md dependency map).
  banned        the historical banned-API table (ex tools/check_banned.sh):
                raw rand()/srand(), std::random_device, raw <random> engines,
                and float arithmetic in money/rate code.

A finding is suppressed only by a waiver entry naming its rule, file, and a
`contains` substring of the offending line, plus a non-empty justification.
Waivers that no longer match anything are themselves errors (stale), so the
waiver ledger can only shrink unless a commit consciously grows it.

Exit status 0 when every pass is clean (after waivers); 1 otherwise, with one
diagnostic per finding. Comments and string literals are stripped before rule
matching, so prose like "unlike rand()" never trips a rule.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

PASSES = ("determinism", "hotpath", "layering", "banned")

MIN_JUSTIFICATION = 10  # characters; "perf" is not a justification

HOTPATH_DIRECTIVE_RE = re.compile(
    r"//\s*dmra::hotpath\s+(begin|end)\s*\(\s*([A-Za-z0-9_.-]+)\s*\)"
)

# ---------------------------------------------------------------------------
# Source model: per-line raw text plus a comment/string-stripped shadow.
# ---------------------------------------------------------------------------


@dataclass
class SourceFile:
    path: str  # repo-relative, forward slashes
    raw: list[str]
    code: list[str]  # comments and string/char literals blanked out
    regions: list[tuple[int, int, str]] = field(default_factory=list)  # 1-based, inclusive
    region_errors: list[tuple[int, str]] = field(default_factory=list)

    def in_region(self, lineno: int) -> str | None:
        for lo, hi, name in self.regions:
            if lo <= lineno <= hi:
                return name
        return None


def strip_line(line: str, in_block: bool) -> tuple[str, bool]:
    """Blank out comments and string/char literals, preserving length-ish
    structure (replaced with spaces) so column-free regexes stay honest."""
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block:
            close = line.find("*/", i)
            if close < 0:
                out.append(" " * (n - i))
                i = n
            else:
                out.append(" " * (close + 2 - i))
                i = close + 2
                in_block = False
            continue
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            i = n
        elif ch == "/" and i + 1 < n and line[i + 1] == "*":
            in_block = True
            out.append("  ")
            i += 2
        elif ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            while j < n:
                if line[j] == "\\":
                    j += 2
                    continue
                if line[j] == quote:
                    break
                j += 1
            j = min(j, n - 1)
            out.append(quote + " " * (j - i - 1) + (line[j] if j < n else ""))
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out), in_block


def load_source(root: Path, rel: str) -> SourceFile:
    raw = (root / rel).read_text(encoding="utf-8").splitlines()
    code: list[str] = []
    in_block = False
    for line in raw:
        stripped, in_block = strip_line(line, in_block)
        code.append(stripped)
    sf = SourceFile(path=rel, raw=raw, code=code)
    parse_regions(sf)
    return sf


def parse_regions(sf: SourceFile) -> None:
    """Extract // dmra::hotpath begin(x)/end(x) pairs from the raw text
    (directives live in comments, which the code shadow blanks out)."""
    open_name: str | None = None
    open_line = 0
    for lineno, line in enumerate(sf.raw, start=1):
        m = HOTPATH_DIRECTIVE_RE.search(line)
        if not m:
            continue
        verb, name = m.group(1), m.group(2)
        if verb == "begin":
            if open_name is not None:
                sf.region_errors.append(
                    (lineno, f"nested hotpath region '{name}' inside '{open_name}'")
                )
                continue
            open_name, open_line = name, lineno
        else:
            if open_name is None:
                sf.region_errors.append((lineno, f"hotpath end('{name}') with no open region"))
            elif name != open_name:
                sf.region_errors.append(
                    (lineno, f"hotpath end('{name}') does not match begin('{open_name}')")
                )
                open_name = None
            else:
                sf.regions.append((open_line, lineno, name))
                open_name = None
    if open_name is not None:
        sf.region_errors.append((open_line, f"hotpath region '{open_name}' is never closed"))


# ---------------------------------------------------------------------------
# Findings and waivers
# ---------------------------------------------------------------------------


@dataclass
class Finding:
    pass_name: str
    rule: str
    file: str
    line: int  # 1-based; 0 for file-level findings
    text: str  # offending raw line (stripped of trailing whitespace)
    message: str
    waived_by: str | None = None  # justification, when waived

    def key(self):
        return (self.file, self.line, self.rule)


class WaiverSet:
    def __init__(self, pass_name: str, path: Path):
        self.pass_name = pass_name
        self.path = path
        self.entries: list[dict] = []
        self.used: list[bool] = []
        self.errors: list[str] = []
        if not path.is_file():
            return
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as e:
            self.errors.append(f"{path}: not valid JSON: {e}")
            return
        entries = doc.get("waivers") if isinstance(doc, dict) else doc
        if not isinstance(entries, list):
            self.errors.append(f"{path}: expected a list under 'waivers'")
            return
        # Ratchet: a ledger that declares max_entries may never grow past
        # it. Raising the number is possible but must happen in the same
        # diff as the new waiver, where a reviewer will see both.
        budget = doc.get("max_entries") if isinstance(doc, dict) else None
        if budget is not None:
            if not isinstance(budget, int) or isinstance(budget, bool) or budget < 0:
                self.errors.append(f"{path}: max_entries must be a non-negative integer")
            elif len(entries) > budget:
                self.errors.append(
                    f"{path}: waiver ledger grew past its budget "
                    f"({len(entries)} entries > max_entries={budget}); this ledger "
                    f"only shrinks — design the allocation out instead of waiving it"
                )
        for idx, w in enumerate(entries):
            label = f"{path}: waiver #{idx + 1}"
            if not isinstance(w, dict):
                self.errors.append(f"{label}: not an object")
                continue
            missing = [k for k in ("rule", "file", "contains", "justification") if k not in w]
            if missing:
                self.errors.append(f"{label}: missing field(s): {', '.join(missing)}")
                continue
            just = str(w["justification"]).strip()
            if len(just) < MIN_JUSTIFICATION:
                self.errors.append(
                    f"{label}: justification too short "
                    f"(≥{MIN_JUSTIFICATION} chars of actual reasoning required)"
                )
                continue
            self.entries.append(w)
            self.used.append(False)

    def try_waive(self, f: Finding) -> bool:
        for idx, w in enumerate(self.entries):
            if w["rule"] == f.rule and w["file"] == f.file and w["contains"] in f.text:
                self.used[idx] = True
                f.waived_by = w["justification"]
                return True
        return False

    def stale(self) -> list[str]:
        out = []
        for idx, w in enumerate(self.entries):
            if not self.used[idx]:
                out.append(
                    f"{self.path}: stale waiver (matches nothing): "
                    f"rule={w['rule']} file={w['file']} contains={w['contains']!r} — delete it"
                )
        return out


# ---------------------------------------------------------------------------
# Pass 1: determinism
# ---------------------------------------------------------------------------

UNORDERED_USE_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+(\w+)\s*[;{=(]"
)
POINTER_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|multimap|set|multiset)\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*"
)
WALLCLOCK_RES = [
    (re.compile(r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)::now"),
     "wall-clock read — result-affecting code must be a pure function of the seed"),
    (re.compile(r"(?:^|[^\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&\w+)?\s*\)"),
     "time() — wall-clock reads are banned outside src/obs"),
    (re.compile(r"(?:^|[^\w:.>])(?:clock|gettimeofday|clock_gettime|localtime|gmtime)\s*\("),
     "C clock API — wall-clock reads are banned outside src/obs"),
]
UNSEEDED_RNG_RE = re.compile(
    r"\b(?:std::)?(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux(?:24|48)(?:_base)?|knuth_b)\s+\w+\s*;"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*&?(\w+(?:\.\w+|->\w+)*)\s*\)")


def pass_determinism(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        unordered_names: set[str] = set()
        for code in sf.code:
            for m in UNORDERED_DECL_RE.finditer(code):
                unordered_names.add(m.group(1))
        in_obs = sf.path.startswith("src/obs/")
        for lineno, code in enumerate(sf.code, start=1):
            text = sf.raw[lineno - 1].rstrip()
            if UNORDERED_USE_RE.search(code):
                findings.append(Finding(
                    "determinism", "det-unordered-container", sf.path, lineno, text,
                    "unordered container — iteration order is implementation-defined; "
                    "use std::map / a sorted vector, or waive with proof that no "
                    "iteration feeds output or message order"))
            for m in RANGE_FOR_RE.finditer(code):
                base = m.group(1).split(".")[0].split("->")[0]
                if m.group(1) in unordered_names or base in unordered_names:
                    findings.append(Finding(
                        "determinism", "det-unordered-iter", sf.path, lineno, text,
                        f"iteration over unordered container '{m.group(1)}' — "
                        "ordering is nondeterministic across implementations"))
            for name in unordered_names:
                if re.search(rf"\b{re.escape(name)}\s*\.\s*begin\s*\(", code):
                    findings.append(Finding(
                        "determinism", "det-unordered-iter", sf.path, lineno, text,
                        f"begin() on unordered container '{name}' — "
                        "ordering is nondeterministic across implementations"))
            if POINTER_KEY_RE.search(code):
                findings.append(Finding(
                    "determinism", "det-pointer-key", sf.path, lineno, text,
                    "pointer-keyed container — ordering/hashing follows allocation "
                    "addresses, which vary run to run; key by a stable id instead"))
            if not in_obs:
                for rx, msg in WALLCLOCK_RES:
                    if rx.search(code):
                        findings.append(Finding(
                            "determinism", "det-wallclock", sf.path, lineno, text, msg))
            if UNSEEDED_RNG_RE.search(code):
                findings.append(Finding(
                    "determinism", "det-unseeded-rng", sf.path, lineno, text,
                    "default-constructed random engine — unseeded; derive a named "
                    "child stream from dmra::Rng instead"))
    return findings


# ---------------------------------------------------------------------------
# Pass 2: hot-path allocation
# ---------------------------------------------------------------------------

NEW_RE = re.compile(r"(?:^|[^\w:.])new\b(?!\s*\()")
PLACEMENT_NEW_RE = re.compile(r"(?:^|[^\w:.])new\b")
MAKE_RE = re.compile(r"\bmake_(?:unique|shared)\s*<")
STD_FUNCTION_RE = re.compile(r"\bstd::function\s*<")
CONTAINER_DECL_RE = re.compile(
    r"\b(?:std::)?(?:vector|deque|list|forward_list|map|multimap|set|multiset|"
    r"unordered_map|unordered_set|unordered_multimap|unordered_multiset|"
    r"queue|stack|priority_queue)\s*<[^;{}]*?>\s+\w+\s*[;{=(]"
)
STRING_DECL_RE = re.compile(r"\bstd::(?:string|wstring)\s+\w+\s*[;{=(]")
GROWTH_RE = re.compile(
    r"\b(\w+(?:\[[^][]*\])?(?:(?:\.|->)\w+(?:\[[^][]*\])?)*)\s*(?:\.|->)\s*"
    r"(push_back|emplace_back|emplace_front|push_front|emplace|insert|append|resize)\s*\("
)
RESERVE_METHODS = ("reserve", "assign")


def has_visible_reserve(sf: SourceFile, receiver: str) -> bool:
    """True if the receiver (or its terminal member) calls reserve()/assign()
    anywhere in the file — the 'visible reserve' that licenses growth calls.
    Subscripts are erased first: any growth on any element of `inboxes_[i]`
    is licensed by a reserve on any element, which is the best a line-based
    scan can honestly claim."""
    receiver = re.sub(r"\[[^][]*\]", "", receiver)
    tail = receiver.split(".")[-1].split("->")[-1]
    for cand in {receiver, tail}:
        pat = re.compile(
            rf"\b{re.escape(cand)}\s*(?:\.|->)\s*(?:{'|'.join(RESERVE_METHODS)})\s*\("
        )
        for code in sf.code:
            if pat.search(code):
                return True
    return False


def pass_hotpath(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        for lineno, msg in sf.region_errors:
            findings.append(Finding(
                "hotpath", "hotpath-region-syntax", sf.path, lineno,
                sf.raw[lineno - 1].rstrip(), msg))
        if not sf.regions:
            continue
        for lo, hi, name in sf.regions:
            for lineno in range(lo, hi + 1):
                code = sf.code[lineno - 1]
                text = sf.raw[lineno - 1].rstrip()
                where = f"hotpath region '{name}'"
                if PLACEMENT_NEW_RE.search(code):
                    findings.append(Finding(
                        "hotpath", "hotpath-new", sf.path, lineno, text,
                        f"operator new in {where} — allocate outside the region "
                        "and reuse"))
                if MAKE_RE.search(code):
                    findings.append(Finding(
                        "hotpath", "hotpath-make", sf.path, lineno, text,
                        f"make_unique/make_shared in {where} — heap allocation per call"))
                if STD_FUNCTION_RE.search(code):
                    findings.append(Finding(
                        "hotpath", "hotpath-std-function", sf.path, lineno, text,
                        f"std::function in {where} — may heap-allocate its target; "
                        "use a template parameter or function_ref pattern"))
                if CONTAINER_DECL_RE.search(code) or STRING_DECL_RE.search(code):
                    findings.append(Finding(
                        "hotpath", "hotpath-container-decl", sf.path, lineno, text,
                        f"allocating container constructed in {where} — hoist it out "
                        "of the loop and clear()/reuse"))
                for m in GROWTH_RE.finditer(code):
                    receiver = m.group(1)
                    if not has_visible_reserve(sf, receiver):
                        findings.append(Finding(
                            "hotpath", "hotpath-growth", sf.path, lineno, text,
                            f"{receiver}.{m.group(2)}() in {where} with no visible "
                            f"{receiver}.reserve()/assign() in this file — growth may "
                            "reallocate mid-round"))
    return findings


# ---------------------------------------------------------------------------
# Pass 3: layering
# ---------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def pass_layering(files: list[SourceFile], layers_path: Path) -> list[Finding]:
    findings: list[Finding] = []
    if not layers_path.is_file():
        return [Finding("layering", "layering-config", str(layers_path), 0, "",
                        "tools/layers.json not found — the layering pass has no map "
                        "to check against")]
    try:
        doc = json.loads(layers_path.read_text(encoding="utf-8"))
        layers = doc["layers"]
        umbrella = set(doc.get("umbrella", []))
    except (json.JSONDecodeError, KeyError, TypeError) as e:
        return [Finding("layering", "layering-config", str(layers_path), 0, "",
                        f"tools/layers.json unreadable: {e}")]

    lib_names = set(layers) | umbrella
    for sf in files:
        parts = sf.path.split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue
        lib = parts[1]
        if lib in umbrella:
            continue
        if lib not in layers:
            findings.append(Finding(
                "layering", "layering-unmapped", sf.path, 0, "",
                f"src/{lib} is not declared in tools/layers.json — add it with its "
                "allowed dependencies"))
            continue
        allowed = set(layers[lib]) | {lib}
        # Include paths live inside string literals, which the code shadow
        # blanks out — match the raw line instead. A commented-out include
        # never matches: '//' or '*' prefixes break the ^#include anchor.
        for lineno, raw in enumerate(sf.raw, start=1):
            m = INCLUDE_RE.match(raw)
            if not m:
                continue
            target = m.group(1).split("/")[0]
            if target not in lib_names or target in allowed:
                continue
            findings.append(Finding(
                "layering", "layering-violation", sf.path, lineno,
                sf.raw[lineno - 1].rstrip(),
                f"src/{lib} may not include from src/{target} "
                f"(allowed: {', '.join(sorted(allowed - {lib})) or 'nothing'}) — "
                "either fix the dependency or amend tools/layers.json, the "
                "ARCHITECTURE.md map, and the CMake link graph together"))
    return findings


# ---------------------------------------------------------------------------
# Pass 4: banned APIs (ex tools/check_banned.sh)
# ---------------------------------------------------------------------------

BANNED_TABLE = [
    ("banned-rand",
     re.compile(r"(?:^|[^\w:.])s?rand\s*\("),
     "raw C rand()/srand() — use the seeded named-stream dmra::Rng"),
    ("banned-random-device",
     re.compile(r"\bstd::random_device\b"),
     "std::random_device is nondeterministic — seed dmra::Rng explicitly"),
    ("banned-raw-engine",
     re.compile(r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine)\b"),
     "raw <random> engine — use dmra::Rng (util/rng.hpp) so streams are named "
     "and seeded"),
    ("banned-float",
     re.compile(r"(?:^|[^\w])float(?:[^\w]|$)"),
     "float arithmetic — money/profit/rate math must use double"),
]


def pass_banned(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        for lineno, code in enumerate(sf.code, start=1):
            for rule, rx, msg in BANNED_TABLE:
                if rx.search(code):
                    findings.append(Finding(
                        "banned", rule, sf.path, lineno,
                        sf.raw[lineno - 1].rstrip(), msg))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect(root: Path, globs: list[str]) -> list[str]:
    out: set[str] = set()
    for g in globs:
        for p in root.glob(g):
            if p.is_file() and "third_party" not in p.parts:
                out.add(p.relative_to(root).as_posix())
    return sorted(out)


SRC_GLOBS = ["src/**/*.cpp", "src/**/*.hpp"]
BANNED_GLOBS = SRC_GLOBS + ["bench/**/*.cpp", "bench/**/*.hpp",
                            "examples/**/*.cpp", "examples/**/*.hpp"]


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repo root to lint (default: this script's repo)")
    ap.add_argument("--pass", dest="passes", action="append", choices=PASSES,
                    help="run only the named pass(es); default: all four")
    ap.add_argument("--json", action="store_true",
                    help="machine-readable findings on stdout")
    ap.add_argument("--no-waivers", action="store_true",
                    help="report findings even when a waiver matches (audit view)")
    args = ap.parse_args(argv)

    root = args.root.resolve()
    selected = tuple(args.passes) if args.passes else PASSES

    src_files = [load_source(root, rel) for rel in collect(root, SRC_GLOBS)]
    banned_files = [load_source(root, rel) for rel in collect(root, BANNED_GLOBS)]

    all_findings: list[Finding] = []
    config_errors: list[str] = []
    stale: list[str] = []
    per_pass: dict[str, dict[str, int]] = {}

    for pass_name in selected:
        if pass_name == "determinism":
            findings = pass_determinism(src_files)
        elif pass_name == "hotpath":
            findings = pass_hotpath(src_files)
        elif pass_name == "layering":
            findings = pass_layering(src_files, root / "tools" / "layers.json")
        else:
            findings = pass_banned(banned_files)

        waivers = WaiverSet(pass_name, root / "tools" / "waivers" / f"{pass_name}.json")
        config_errors.extend(waivers.errors)
        waived = 0
        if not args.no_waivers:
            for f in findings:
                # Structural/config findings are never waivable: a broken
                # region annotation or layers map must be fixed, not excused.
                if f.rule in ("hotpath-region-syntax", "layering-config",
                              "layering-unmapped"):
                    continue
                if waivers.try_waive(f):
                    waived += 1
            stale.extend(waivers.stale())
        per_pass[pass_name] = {
            "findings": len(findings),
            "waived": waived,
            "active": len([f for f in findings if f.waived_by is None]),
        }
        all_findings.extend(findings)

    active = [f for f in all_findings if f.waived_by is None]
    failed = bool(active) or bool(stale) or bool(config_errors)

    if args.json:
        print(json.dumps({
            "root": str(root),
            "passes": per_pass,
            "findings": [
                {"pass": f.pass_name, "rule": f.rule, "file": f.file,
                 "line": f.line, "text": f.text, "message": f.message,
                 "waived": f.waived_by is not None}
                for f in all_findings
            ],
            "stale_waivers": stale,
            "config_errors": config_errors,
            "ok": not failed,
        }, indent=2))
        return 1 if failed else 0

    for e in config_errors:
        print(f"dmra-lint: CONFIG: {e}", file=sys.stderr)
    for f in sorted(active, key=Finding.key):
        loc = f"{f.file}:{f.line}" if f.line else f.file
        print(f"dmra-lint: {f.rule}: {loc}: {f.message}", file=sys.stderr)
        if f.text:
            print(f"    {f.text.strip()}", file=sys.stderr)
    for s in stale:
        print(f"dmra-lint: STALE: {s}", file=sys.stderr)

    for pass_name in selected:
        c = per_pass[pass_name]
        status = "clean" if c["active"] == 0 else f"{c['active']} finding(s)"
        print(f"dmra-lint: {pass_name}: {status}"
              f" ({c['waived']} waived, {c['findings']} total)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
