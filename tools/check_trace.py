#!/usr/bin/env python3
"""Validate DMRA observability exports (stdlib only).

Usage:
    tools/check_trace.py --trace trace.json --round-csv rounds.csv

Checks the Chrome trace-event JSON against the dmra-trace/1 schema and the
per-round CSV against the fixed column contract, then cross-checks that the
two exports describe the same run (one "X" slice per CSV row).

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

EXPECTED_SCHEMA = "dmra-trace/1"
EXPECTED_CSV_HEADER = (
    "source,round,proposals,accepts,rejects,trim_evictions,broadcasts,"
    "messages,unmatched_ues,cumulative_profit,cru_headroom,rrb_headroom"
)
# Column index -> python type used to parse it (source stays a string).
CSV_INT_COLUMNS = range(1, 9)
CSV_FLOAT_COLUMNS = (9,)
CSV_SIZE_COLUMNS = (10, 11)

KNOWN_PHASES = {"M", "X", "C", "i"}


def fail(msg: str) -> "NoReturn":
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(idx: int, ev: dict) -> None:
    for field in ("ph", "pid", "tid", "name"):
        if field not in ev:
            fail(f"traceEvents[{idx}] is missing required field '{field}': {ev}")
    ph = ev["ph"]
    if ph not in KNOWN_PHASES:
        fail(f"traceEvents[{idx}] has unknown phase '{ph}'")
    if ph != "M" and "ts" not in ev:
        fail(f"traceEvents[{idx}] ({ph}) is missing 'ts'")
    if ph == "X" and "dur" not in ev:
        fail(f"traceEvents[{idx}] is a slice without 'dur'")
    if ph == "i" and ev.get("s") != "t":
        fail(f"traceEvents[{idx}] instant must have thread scope s='t'")
    if ph == "C" and not isinstance(ev.get("args"), dict):
        fail(f"traceEvents[{idx}] counter has no args series")


def check_trace(path: str) -> int:
    """Validate the trace file; returns the number of 'X' round slices."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            root = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
    if not isinstance(root, dict):
        fail(f"{path}: root must be an object")
    schema = root.get("otherData", {}).get("schema")
    if schema != EXPECTED_SCHEMA:
        fail(f"{path}: otherData.schema is {schema!r}, expected {EXPECTED_SCHEMA!r}")
    if root.get("displayTimeUnit") != "ms":
        fail(f"{path}: displayTimeUnit must be 'ms'")
    events = root.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")

    phases = {ph: 0 for ph in KNOWN_PHASES}
    for idx, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"traceEvents[{idx}] is not an object")
        check_event(idx, ev)
        phases[ev["ph"]] += 1
    if phases["M"] == 0:
        fail(f"{path}: no track-name metadata events")
    print(
        f"check_trace: {path}: {len(events)} events "
        f"(meta={phases['M']} slices={phases['X']} "
        f"counters={phases['C']} instants={phases['i']})"
    )
    return phases["X"]


def check_csv(path: str) -> int:
    """Validate the round CSV; returns the number of data rows."""
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path} is empty")
    if lines[0] != EXPECTED_CSV_HEADER:
        fail(f"{path}: header mismatch\n  got:      {lines[0]}\n  expected: {EXPECTED_CSV_HEADER}")
    n_cols = len(EXPECTED_CSV_HEADER.split(","))
    for lineno, line in enumerate(lines[1:], start=2):
        cols = line.split(",")
        if len(cols) != n_cols:
            fail(f"{path}:{lineno}: {len(cols)} columns, expected {n_cols}")
        if not cols[0]:
            fail(f"{path}:{lineno}: empty source column")
        for i in CSV_INT_COLUMNS:
            try:
                int(cols[i])
            except ValueError:
                fail(f"{path}:{lineno}: column {i} ({cols[i]!r}) is not an integer")
        for i in (*CSV_FLOAT_COLUMNS, *CSV_SIZE_COLUMNS):
            try:
                v = float(cols[i])
            except ValueError:
                fail(f"{path}:{lineno}: column {i} ({cols[i]!r}) is not numeric")
            if v != v:  # NaN
                fail(f"{path}:{lineno}: column {i} is NaN")
    rows = len(lines) - 1
    print(f"check_trace: {path}: {rows} round rows, header OK")
    return rows


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON export")
    ap.add_argument("--round-csv", help="per-round metric CSV export")
    args = ap.parse_args()
    if not args.trace and not args.round_csv:
        ap.error("nothing to check: pass --trace and/or --round-csv")

    slices = check_trace(args.trace) if args.trace else None
    rows = check_csv(args.round_csv) if args.round_csv else None
    if slices is not None and rows is not None and slices != rows:
        fail(
            f"export mismatch: trace has {slices} round slices "
            f"but CSV has {rows} rows — the files describe different runs"
        )
    print("check_trace: OK")


if __name__ == "__main__":
    main()
