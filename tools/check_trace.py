#!/usr/bin/env python3
"""Validate DMRA observability exports (stdlib only).

Usage:
    tools/check_trace.py --trace trace.json --round-csv rounds.csv \
        [--manifest manifest.json]

Checks the Chrome trace-event JSON against the dmra-trace/1 schema and the
per-round CSV against the fixed column contract, then cross-checks that the
two exports describe the same run (one "X" slice per CSV row).

Timestamps must be strictly increasing per track (slices and instants per
tid; counter samples per series). A traced parallel run is merged from
per-task shards (obs/shard.hpp), so this ordering is exactly the
determinism guarantee the merge makes — an interleaved merge shows up
here as a ts inversion.

With --manifest, also validates the run-provenance manifest against the
dmra-manifest/1 schema (docs/PROVENANCE.md) and cross-checks that every
--trace/--round-csv file passed on this command line is declared in the
manifest's outputs list.

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import argparse
import json
import os
import sys

EXPECTED_SCHEMA = "dmra-trace/1"
EXPECTED_CSV_HEADER = (
    "source,round,proposals,accepts,rejects,trim_evictions,broadcasts,"
    "messages,unmatched_ues,cumulative_profit,cru_headroom,rrb_headroom"
)
# Column index -> python type used to parse it (source stays a string).
CSV_INT_COLUMNS = range(1, 9)
CSV_FLOAT_COLUMNS = (9,)
CSV_SIZE_COLUMNS = (10, 11)

KNOWN_PHASES = {"M", "X", "C", "i"}


def fail(msg: str) -> "NoReturn":
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(idx: int, ev: dict) -> None:
    for field in ("ph", "pid", "tid", "name"):
        if field not in ev:
            fail(f"traceEvents[{idx}] is missing required field '{field}': {ev}")
    ph = ev["ph"]
    if ph not in KNOWN_PHASES:
        fail(f"traceEvents[{idx}] has unknown phase '{ph}'")
    if ph != "M" and "ts" not in ev:
        fail(f"traceEvents[{idx}] ({ph}) is missing 'ts'")
    if ph == "X" and "dur" not in ev:
        fail(f"traceEvents[{idx}] is a slice without 'dur'")
    if ph == "i" and ev.get("s") != "t":
        fail(f"traceEvents[{idx}] instant must have thread scope s='t'")
    if ph == "C" and not isinstance(ev.get("args"), dict):
        fail(f"traceEvents[{idx}] counter has no args series")


def check_trace(path: str) -> int:
    """Validate the trace file; returns the number of 'X' round slices."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            root = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
    if not isinstance(root, dict):
        fail(f"{path}: root must be an object")
    schema = root.get("otherData", {}).get("schema")
    if schema != EXPECTED_SCHEMA:
        fail(f"{path}: otherData.schema is {schema!r}, expected {EXPECTED_SCHEMA!r}")
    if root.get("displayTimeUnit") != "ms":
        fail(f"{path}: displayTimeUnit must be 'ms'")
    events = root.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")

    phases = {ph: 0 for ph in KNOWN_PHASES}
    last_ts = {}  # track key -> last seen ts, for the per-track ordering check
    for idx, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"traceEvents[{idx}] is not an object")
        check_event(idx, ev)
        phases[ev["ph"]] += 1
        if ev["ph"] == "M":
            continue
        # Counters are per-series (one counter name can carry several
        # sources at the same row); slices and instants are per-tid.
        if ev["ph"] == "C":
            series = next(iter(ev["args"]), "")
            key = (ev["pid"], ev["tid"], ev["name"], series)
        else:
            key = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if key in last_ts and ts <= last_ts[key]:
            fail(
                f"traceEvents[{idx}]: ts {ts} is not strictly increasing on "
                f"track {key} (previous {last_ts[key]}) — a sharded merge "
                f"(obs/shard.hpp) must replay events in deterministic order"
            )
        last_ts[key] = ts
    if phases["M"] == 0:
        fail(f"{path}: no track-name metadata events")
    print(
        f"check_trace: {path}: {len(events)} events "
        f"(meta={phases['M']} slices={phases['X']} "
        f"counters={phases['C']} instants={phases['i']})"
    )
    return phases["X"]


def check_csv(path: str) -> int:
    """Validate the round CSV; returns the number of data rows."""
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path} is empty")
    if lines[0] != EXPECTED_CSV_HEADER:
        fail(f"{path}: header mismatch\n  got:      {lines[0]}\n  expected: {EXPECTED_CSV_HEADER}")
    n_cols = len(EXPECTED_CSV_HEADER.split(","))
    for lineno, line in enumerate(lines[1:], start=2):
        cols = line.split(",")
        if len(cols) != n_cols:
            fail(f"{path}:{lineno}: {len(cols)} columns, expected {n_cols}")
        if not cols[0]:
            fail(f"{path}:{lineno}: empty source column")
        for i in CSV_INT_COLUMNS:
            try:
                int(cols[i])
            except ValueError:
                fail(f"{path}:{lineno}: column {i} ({cols[i]!r}) is not an integer")
        for i in (*CSV_FLOAT_COLUMNS, *CSV_SIZE_COLUMNS):
            try:
                v = float(cols[i])
            except ValueError:
                fail(f"{path}:{lineno}: column {i} ({cols[i]!r}) is not numeric")
            if v != v:  # NaN
                fail(f"{path}:{lineno}: column {i} is NaN")
    rows = len(lines) - 1
    print(f"check_trace: {path}: {rows} round rows, header OK")
    return rows


EXPECTED_MANIFEST_SCHEMA = "dmra-manifest/1"
MANIFEST_FIELDS = {
    "schema": str,
    "program": str,
    "git": str,
    "build": dict,
    "flags": dict,
    "scenario_config": dict,
    "seeds": list,
    "jobs": (int, float),
    "fault_spec": str,
    "outputs": list,
    "metrics": dict,
}


def check_manifest(path: str) -> dict:
    """Validate the run-provenance manifest; returns {kind: [paths]}."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            root = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
    if not isinstance(root, dict):
        fail(f"{path}: root must be an object")
    for field, ftype in MANIFEST_FIELDS.items():
        if field not in root:
            fail(f"{path}: missing required field '{field}'")
        if not isinstance(root[field], ftype):
            fail(f"{path}: field '{field}' has type {type(root[field]).__name__}")
    if root["schema"] != EXPECTED_MANIFEST_SCHEMA:
        fail(f"{path}: schema is {root['schema']!r}, expected {EXPECTED_MANIFEST_SCHEMA!r}")
    for field in ("type", "sanitizers", "audit"):
        if field not in root["build"]:
            fail(f"{path}: build is missing '{field}'")
    for i, seed in enumerate(root["seeds"]):
        if not isinstance(seed, (int, float)) or seed != int(seed):
            fail(f"{path}: seeds[{i}] ({seed!r}) is not an integer")
    outputs = {}
    for i, entry in enumerate(root["outputs"]):
        if not isinstance(entry, dict) or "kind" not in entry or "path" not in entry:
            fail(f"{path}: outputs[{i}] must be an object with 'kind' and 'path'")
        if not entry["path"]:
            fail(f"{path}: outputs[{i}] has an empty path")
        outputs.setdefault(entry["kind"], []).append(entry["path"])
    print(
        f"check_trace: {path}: manifest OK "
        f"(git {root['git']}, {len(root['seeds'])} seeds, "
        f"{sum(len(v) for v in outputs.values())} outputs)"
    )
    return outputs


def check_manifest_links(manifest_path: str, outputs: dict, kind: str, path: str) -> None:
    """The export at `path` must be declared in the manifest's outputs."""
    declared = outputs.get(kind, [])
    if path in declared or os.path.basename(path) in map(os.path.basename, declared):
        return
    fail(
        f"{manifest_path}: outputs do not link the {kind} export {path!r} "
        f"(declared: {declared}) — the manifest and exports describe different runs"
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON export")
    ap.add_argument("--round-csv", help="per-round metric CSV export")
    ap.add_argument("--manifest", help="dmra-manifest/1 run-provenance JSON")
    args = ap.parse_args()
    if not args.trace and not args.round_csv and not args.manifest:
        ap.error("nothing to check: pass --trace, --round-csv, and/or --manifest")

    slices = check_trace(args.trace) if args.trace else None
    rows = check_csv(args.round_csv) if args.round_csv else None
    if slices is not None and rows is not None and slices != rows:
        fail(
            f"export mismatch: trace has {slices} round slices "
            f"but CSV has {rows} rows — the files describe different runs"
        )
    if args.manifest:
        outputs = check_manifest(args.manifest)
        if args.trace:
            check_manifest_links(args.manifest, outputs, "trace", args.trace)
        if args.round_csv:
            check_manifest_links(args.manifest, outputs, "round-csv", args.round_csv)
    print("check_trace: OK")


if __name__ == "__main__":
    main()
