#!/usr/bin/env python3
"""Validate DMRA observability exports (stdlib only).

Usage:
    tools/check_trace.py --trace trace.json --round-csv rounds.csv \
        [--manifest manifest.json]

Checks the Chrome trace-event JSON against the dmra-trace/1 schema and the
per-round CSV against the fixed column contract, then cross-checks that the
two exports describe the same run (one "X" slice per CSV row).

Timestamps must be strictly increasing per track (slices and instants per
tid; counter samples per series). A traced parallel run is merged from
per-task shards (obs/shard.hpp), so this ordering is exactly the
determinism guarantee the merge makes — an interleaved merge shows up
here as a ts inversion.

With --manifest, also validates the run-provenance manifest against the
dmra-manifest/1 schema (docs/PROVENANCE.md) and cross-checks that every
--trace/--round-csv file passed on this command line is declared in the
manifest's outputs list.

With --postmortem, validates a flight-recorder dump against the
dmra-postmortem/1 schema (docs/OBSERVABILITY.md): required top-level
fields, per-event fields with strictly increasing seq stamps, round
aggregates, windowed metric rollups, and trigger consistency
(events_after_trigger only meaningful when a trigger fired).

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import argparse
import json
import os
import sys

EXPECTED_SCHEMA = "dmra-trace/1"
EXPECTED_CSV_HEADER = (
    "source,round,proposals,accepts,rejects,trim_evictions,broadcasts,"
    "messages,unmatched_ues,cumulative_profit,cru_headroom,rrb_headroom"
)
# Column index -> python type used to parse it (source stays a string).
CSV_INT_COLUMNS = range(1, 9)
CSV_FLOAT_COLUMNS = (9,)
CSV_SIZE_COLUMNS = (10, 11)

KNOWN_PHASES = {"M", "X", "C", "i"}


def fail(msg: str) -> "NoReturn":
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(idx: int, ev: dict) -> None:
    for field in ("ph", "pid", "tid", "name"):
        if field not in ev:
            fail(f"traceEvents[{idx}] is missing required field '{field}': {ev}")
    ph = ev["ph"]
    if ph not in KNOWN_PHASES:
        fail(f"traceEvents[{idx}] has unknown phase '{ph}'")
    if ph != "M" and "ts" not in ev:
        fail(f"traceEvents[{idx}] ({ph}) is missing 'ts'")
    if ph == "X" and "dur" not in ev:
        fail(f"traceEvents[{idx}] is a slice without 'dur'")
    if ph == "i" and ev.get("s") != "t":
        fail(f"traceEvents[{idx}] instant must have thread scope s='t'")
    if ph == "C" and not isinstance(ev.get("args"), dict):
        fail(f"traceEvents[{idx}] counter has no args series")


def check_trace(path: str) -> int:
    """Validate the trace file; returns the number of 'X' round slices."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            root = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
    if not isinstance(root, dict):
        fail(f"{path}: root must be an object")
    schema = root.get("otherData", {}).get("schema")
    if schema != EXPECTED_SCHEMA:
        fail(f"{path}: otherData.schema is {schema!r}, expected {EXPECTED_SCHEMA!r}")
    if root.get("displayTimeUnit") != "ms":
        fail(f"{path}: displayTimeUnit must be 'ms'")
    events = root.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")

    phases = {ph: 0 for ph in KNOWN_PHASES}
    last_ts = {}  # track key -> last seen ts, for the per-track ordering check
    for idx, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"traceEvents[{idx}] is not an object")
        check_event(idx, ev)
        phases[ev["ph"]] += 1
        if ev["ph"] == "M":
            continue
        # Counters are per-series (one counter name can carry several
        # sources at the same row); slices and instants are per-tid.
        if ev["ph"] == "C":
            series = next(iter(ev["args"]), "")
            key = (ev["pid"], ev["tid"], ev["name"], series)
        else:
            key = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if key in last_ts and ts <= last_ts[key]:
            fail(
                f"traceEvents[{idx}]: ts {ts} is not strictly increasing on "
                f"track {key} (previous {last_ts[key]}) — a sharded merge "
                f"(obs/shard.hpp) must replay events in deterministic order"
            )
        last_ts[key] = ts
    if phases["M"] == 0:
        fail(f"{path}: no track-name metadata events")
    print(
        f"check_trace: {path}: {len(events)} events "
        f"(meta={phases['M']} slices={phases['X']} "
        f"counters={phases['C']} instants={phases['i']})"
    )
    return phases["X"]


def check_csv(path: str) -> int:
    """Validate the round CSV; returns the number of data rows."""
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path} is empty")
    if lines[0] != EXPECTED_CSV_HEADER:
        fail(f"{path}: header mismatch\n  got:      {lines[0]}\n  expected: {EXPECTED_CSV_HEADER}")
    n_cols = len(EXPECTED_CSV_HEADER.split(","))
    for lineno, line in enumerate(lines[1:], start=2):
        cols = line.split(",")
        if len(cols) != n_cols:
            fail(f"{path}:{lineno}: {len(cols)} columns, expected {n_cols}")
        if not cols[0]:
            fail(f"{path}:{lineno}: empty source column")
        for i in CSV_INT_COLUMNS:
            try:
                int(cols[i])
            except ValueError:
                fail(f"{path}:{lineno}: column {i} ({cols[i]!r}) is not an integer")
        for i in (*CSV_FLOAT_COLUMNS, *CSV_SIZE_COLUMNS):
            try:
                v = float(cols[i])
            except ValueError:
                fail(f"{path}:{lineno}: column {i} ({cols[i]!r}) is not numeric")
            if v != v:  # NaN
                fail(f"{path}:{lineno}: column {i} is NaN")
    rows = len(lines) - 1
    print(f"check_trace: {path}: {rows} round rows, header OK")
    return rows


EXPECTED_MANIFEST_SCHEMA = "dmra-manifest/1"
MANIFEST_FIELDS = {
    "schema": str,
    "program": str,
    "git": str,
    "build": dict,
    "flags": dict,
    "scenario_config": dict,
    "seeds": list,
    "jobs": (int, float),
    "fault_spec": str,
    "outputs": list,
    "metrics": dict,
}


def check_manifest(path: str) -> dict:
    """Validate the run-provenance manifest; returns {kind: [paths]}."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            root = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
    if not isinstance(root, dict):
        fail(f"{path}: root must be an object")
    for field, ftype in MANIFEST_FIELDS.items():
        if field not in root:
            fail(f"{path}: missing required field '{field}'")
        if not isinstance(root[field], ftype):
            fail(f"{path}: field '{field}' has type {type(root[field]).__name__}")
    if root["schema"] != EXPECTED_MANIFEST_SCHEMA:
        fail(f"{path}: schema is {root['schema']!r}, expected {EXPECTED_MANIFEST_SCHEMA!r}")
    for field in ("type", "sanitizers", "audit"):
        if field not in root["build"]:
            fail(f"{path}: build is missing '{field}'")
    for i, seed in enumerate(root["seeds"]):
        if not isinstance(seed, (int, float)) or seed != int(seed):
            fail(f"{path}: seeds[{i}] ({seed!r}) is not an integer")
    outputs = {}
    for i, entry in enumerate(root["outputs"]):
        if not isinstance(entry, dict) or "kind" not in entry or "path" not in entry:
            fail(f"{path}: outputs[{i}] must be an object with 'kind' and 'path'")
        if not entry["path"]:
            fail(f"{path}: outputs[{i}] has an empty path")
        outputs.setdefault(entry["kind"], []).append(entry["path"])
    print(
        f"check_trace: {path}: manifest OK "
        f"(git {root['git']}, {len(root['seeds'])} seeds, "
        f"{sum(len(v) for v in outputs.values())} outputs)"
    )
    return outputs


EXPECTED_POSTMORTEM_SCHEMA = "dmra-postmortem/1"
POSTMORTEM_FIELDS = {
    "schema": str,
    "git": str,
    "build": dict,
    "trigger": (dict, type(None)),
    "events_after_trigger": (int, float),
    "fault_context": str,
    "flight": dict,
    "events": list,
    "rounds": list,
    "metrics": dict,
    "windows": list,
}
POSTMORTEM_EVENT_KINDS = {
    "propose", "decision", "trim-eviction", "broadcast", "phase",
    "termination", "fault", "repair", "timeline",
}
POSTMORTEM_FLIGHT_FIELDS = (
    "events_seen", "events_retained", "events_dropped", "event_capacity",
    "rounds_seen", "rounds_retained", "round_capacity", "triggers",
)


def check_postmortem(path: str) -> None:
    """Validate a flight-recorder dump against dmra-postmortem/1."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            root = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
    if not isinstance(root, dict):
        fail(f"{path}: root must be an object")
    for field, ftype in POSTMORTEM_FIELDS.items():
        if field not in root:
            fail(f"{path}: missing required field '{field}'")
        if not isinstance(root[field], ftype):
            fail(f"{path}: field '{field}' has type {type(root[field]).__name__}")
    if root["schema"] != EXPECTED_POSTMORTEM_SCHEMA:
        fail(
            f"{path}: schema is {root['schema']!r}, "
            f"expected {EXPECTED_POSTMORTEM_SCHEMA!r}"
        )
    flight = root["flight"]
    for field in POSTMORTEM_FLIGHT_FIELDS:
        if not isinstance(flight.get(field), int):
            fail(f"{path}: flight.{field} ({flight.get(field)!r}) is not an integer")
    if flight["events_retained"] > flight["event_capacity"]:
        fail(f"{path}: flight retained more events than its capacity")
    if flight["events_seen"] != flight["events_retained"] + flight["events_dropped"]:
        fail(f"{path}: flight events_seen != retained + dropped")

    trigger = root["trigger"]
    if trigger is not None:
        for field in ("reason", "round", "deterministic", "count"):
            if field not in trigger:
                fail(f"{path}: trigger is missing '{field}'")
        if not trigger["reason"]:
            fail(f"{path}: trigger has an empty reason")
        if flight["triggers"] < 1:
            fail(f"{path}: trigger present but flight.triggers is 0")
    elif root["events_after_trigger"] != 0:
        fail(f"{path}: events_after_trigger nonzero without a trigger")

    last_seq = None
    for i, ev in enumerate(root["events"]):
        if not isinstance(ev, dict):
            fail(f"{path}: events[{i}] is not an object")
        for field in ("kind", "round", "seq", "agent_seq", "value"):
            if field not in ev:
                fail(f"{path}: events[{i}] is missing '{field}'")
        if ev["kind"] not in POSTMORTEM_EVENT_KINDS:
            fail(f"{path}: events[{i}] has unknown kind {ev['kind']!r}")
        if last_seq is not None and ev["seq"] <= last_seq:
            fail(
                f"{path}: events[{i}].seq {ev['seq']} is not strictly "
                f"increasing (previous {last_seq}) — the ring must dump "
                f"oldest-first in global stream order"
            )
        last_seq = ev["seq"]

    csv_columns = EXPECTED_CSV_HEADER.split(",")
    for i, row in enumerate(root["rounds"]):
        if not isinstance(row, dict):
            fail(f"{path}: rounds[{i}] is not an object")
        for field in csv_columns:
            if field not in row:
                fail(f"{path}: rounds[{i}] is missing '{field}'")

    for i, w in enumerate(root["windows"]):
        if not isinstance(w, dict):
            fail(f"{path}: windows[{i}] is not an object")
        for field in ("first_tick", "last_tick", "counter_deltas",
                      "gauge_last", "gauge_max"):
            if field not in w:
                fail(f"{path}: windows[{i}] is missing '{field}'")
        if w["last_tick"] < w["first_tick"]:
            fail(f"{path}: windows[{i}] last_tick precedes first_tick")

    trig = "none" if trigger is None else trigger["reason"]
    print(
        f"check_trace: {path}: postmortem OK (trigger={trig}, "
        f"{len(root['events'])} events, {len(root['rounds'])} rounds, "
        f"{len(root['windows'])} windows)"
    )


def check_manifest_links(manifest_path: str, outputs: dict, kind: str, path: str) -> None:
    """The export at `path` must be declared in the manifest's outputs."""
    declared = outputs.get(kind, [])
    if path in declared or os.path.basename(path) in map(os.path.basename, declared):
        return
    fail(
        f"{manifest_path}: outputs do not link the {kind} export {path!r} "
        f"(declared: {declared}) — the manifest and exports describe different runs"
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON export")
    ap.add_argument("--round-csv", help="per-round metric CSV export")
    ap.add_argument("--manifest", help="dmra-manifest/1 run-provenance JSON")
    ap.add_argument("--postmortem", help="dmra-postmortem/1 flight-recorder dump")
    args = ap.parse_args()
    if not args.trace and not args.round_csv and not args.manifest and not args.postmortem:
        ap.error(
            "nothing to check: pass --trace, --round-csv, --manifest, "
            "and/or --postmortem"
        )

    slices = check_trace(args.trace) if args.trace else None
    rows = check_csv(args.round_csv) if args.round_csv else None
    if slices is not None and rows is not None and slices != rows:
        fail(
            f"export mismatch: trace has {slices} round slices "
            f"but CSV has {rows} rows — the files describe different runs"
        )
    if args.postmortem:
        check_postmortem(args.postmortem)
    if args.manifest:
        outputs = check_manifest(args.manifest)
        if args.trace:
            check_manifest_links(args.manifest, outputs, "trace", args.trace)
        if args.round_csv:
            check_manifest_links(args.manifest, outputs, "round-csv", args.round_csv)
        if args.postmortem:
            check_manifest_links(args.manifest, outputs, "postmortem", args.postmortem)
    print("check_trace: OK")


if __name__ == "__main__":
    main()
