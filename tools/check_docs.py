#!/usr/bin/env python3
"""Validate the repo's documentation graph (stdlib only).

Usage:
    tools/check_docs.py [repo_root]

Two checks over README.md and every page under docs/:
  1. every relative markdown link resolves to a file (or directory) that
     actually exists in the repo — external http(s)/mailto links and pure
     #anchor links are skipped;
  2. every docs/*.md page is reachable from README.md by following
     relative links, so no documentation page is orphaned from the
     README's docs index.

Exit status 0 on success; 1 with one diagnostic per violation.
"""

import re
import sys
from pathlib import Path

# Inline markdown links: [text](target). Images share the syntax; the
# leading '!' doesn't change how the target resolves.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def doc_pages(root: Path) -> list[Path]:
    pages = [root / "README.md"]
    pages += sorted((root / "docs").glob("*.md"))
    return [p for p in pages if p.is_file()]


def links_in(page: Path) -> list[str]:
    text = page.read_text(encoding="utf-8")
    # Fenced code blocks quote link syntax without meaning it.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return LINK_RE.findall(text)


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    errors = []
    pages = doc_pages(root)
    if not pages:
        print(f"check_docs: FAIL: no README.md under {root}", file=sys.stderr)
        return 1

    # Pass 1: every relative link resolves.
    resolved_targets = {}  # page -> set of repo files it links to
    for page in pages:
        targets = set()
        for raw in links_in(page):
            if raw.startswith(SKIP_SCHEMES) or raw.startswith("#"):
                continue
            target = raw.split("#", 1)[0]
            if not target:
                continue
            resolved = (page.parent / target).resolve()
            if not resolved.exists():
                errors.append(
                    f"{page.relative_to(root)}: broken link '{raw}' "
                    f"(no such file: {target})"
                )
            elif resolved.suffix == ".md":
                targets.add(resolved)
        resolved_targets[page.resolve()] = targets

    # Pass 2: BFS over markdown links from README.md; every docs page must
    # be reachable (directly or through another docs page).
    readme = (root / "README.md").resolve()
    reachable = {readme}
    queue = [readme]
    while queue:
        for target in sorted(resolved_targets.get(queue.pop(), set())):
            if target not in reachable:
                reachable.add(target)
                queue.append(target)
    for page in pages:
        if page.resolve() not in reachable:
            errors.append(
                f"{page.relative_to(root)}: not reachable from README.md — "
                "add it to the README docs index"
            )

    if errors:
        for e in errors:
            print(f"check_docs: FAIL: {e}", file=sys.stderr)
        return 1
    n_links = sum(len(t) for t in resolved_targets.values())
    print(f"check_docs: OK ({len(pages)} pages, {n_links} internal md links)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
