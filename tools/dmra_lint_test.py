#!/usr/bin/env python3
"""Self-test for tools/dmra_lint.py (stdlib only, pytest-free; run by ctest).

Three suites:

  1. bad fixtures   — every file under tests/tools/fixtures/bad/ declares the
                      rules it must trigger in a leading `// expect:` line;
                      the linter must report each of them for that file.
  2. good fixtures  — everything under tests/tools/fixtures/good/ must come
                      back with zero findings across all four passes.
  3. waiver machinery — a justified waiver suppresses a finding, a stale
                      waiver fails the run, a thin justification is rejected,
                      and structural findings (broken region annotations)
                      cannot be waived at all.

Each check builds a throwaway repo root in a temp dir (fixture file at its
src/<lib>/ path + the fixture layers.json) so fixtures can't interfere with
each other or with the real repo's waivers.
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "dmra_lint.py"
FIXTURES = REPO / "tests" / "tools" / "fixtures"

EXPECT_RE = re.compile(r"^//\s*expect:\s*(.+)$")

failures: list[str] = []


def check(ok: bool, label: str, detail: str = "") -> None:
    if ok:
        print(f"  ok: {label}")
    else:
        failures.append(label + (f" — {detail}" if detail else ""))
        print(f"  FAIL: {label}" + (f" — {detail}" if detail else ""))


def run_lint(root: Path, *extra: str) -> dict:
    proc = subprocess.run(
        [sys.executable, str(LINT), "--root", str(root), "--json", *extra],
        capture_output=True, text=True)
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError:
        raise SystemExit(
            f"dmra_lint_test: linter emitted invalid JSON for {root}:\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
    doc["exit_code"] = proc.returncode
    return doc


def make_root(tmp: Path, files: dict[str, str | Path]) -> Path:
    """Build a throwaway repo root: {relpath: source-path-or-content}."""
    root = tmp
    for rel, src in files.items():
        dst = root / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        if isinstance(src, Path):
            shutil.copyfile(src, dst)
        else:
            dst.write_text(src, encoding="utf-8")
    return root


def expected_rules(path: Path) -> list[str]:
    first = path.read_text(encoding="utf-8").splitlines()[0]
    m = EXPECT_RE.match(first)
    if not m:
        raise SystemExit(f"{path}: bad fixture without a leading // expect: line")
    return m.group(1).split()


def test_bad_fixtures() -> None:
    print("== bad fixtures: every declared rule must fire ==")
    bad = sorted((FIXTURES / "bad").rglob("*.cpp"))
    if not bad:
        raise SystemExit("no bad fixtures found")
    for fixture in bad:
        rel = fixture.relative_to(FIXTURES / "bad").as_posix()
        with tempfile.TemporaryDirectory(prefix="dmra-lint-") as td:
            root = make_root(Path(td), {
                rel: fixture,
                "tools/layers.json": FIXTURES / "layers.json",
            })
            doc = run_lint(root)
            fired = {f["rule"] for f in doc["findings"] if f["file"] == rel}
            for rule in expected_rules(fixture):
                check(rule in fired, f"{rel}: triggers {rule}",
                      f"fired: {sorted(fired) or 'nothing'}")
            check(doc["exit_code"] == 1, f"{rel}: lint exits nonzero")


def test_good_fixtures() -> None:
    print("== good fixtures: all passes silent ==")
    good = sorted((FIXTURES / "good").rglob("*.cpp"))
    if not good:
        raise SystemExit("no good fixtures found")
    with tempfile.TemporaryDirectory(prefix="dmra-lint-") as td:
        files: dict[str, str | Path] = {
            g.relative_to(FIXTURES / "good").as_posix(): g for g in good}
        files["tools/layers.json"] = FIXTURES / "layers.json"
        root = make_root(Path(td), files)
        doc = run_lint(root)
        check(doc["findings"] == [], "no findings on clean sources",
              f"got: {[ (f['rule'], f['file'], f['line']) for f in doc['findings'] ]}")
        check(doc["exit_code"] == 0, "lint exits zero")


BAD_HOTPATH = FIXTURES / "bad" / "src" / "core" / "hotpath_alloc.cpp"
BAD_REGION = FIXTURES / "bad" / "src" / "core" / "hotpath_region_syntax.cpp"


def waiver_json(entries: list[dict], max_entries: int | None = None) -> str:
    doc: dict = {"waivers": entries}
    if max_entries is not None:
        doc["max_entries"] = max_entries
    return json.dumps(doc)


def test_waiver_machinery() -> None:
    print("== waiver machinery ==")
    rel = "src/core/hotpath_alloc.cpp"
    full_waivers = [
        {"rule": "hotpath-new", "file": rel, "contains": "new Msg{2}",
         "justification": "fixture: raw new exercised deliberately by the self-test"},
        {"rule": "hotpath-make", "file": rel, "contains": "std::make_unique<Msg>",
         "justification": "fixture: make_unique exercised deliberately by the self-test"},
        {"rule": "hotpath-std-function", "file": rel, "contains": "std::function<int(int)>",
         "justification": "fixture: std::function exercised deliberately by the self-test"},
        {"rule": "hotpath-container-decl", "file": rel, "contains": "std::vector<Msg> batch;",
         "justification": "fixture: per-iteration vector exercised deliberately by the self-test"},
        {"rule": "hotpath-growth", "file": rel, "contains": "batch.push_back",
         "justification": "fixture: unreserved growth exercised deliberately by the self-test"},
    ]

    with tempfile.TemporaryDirectory(prefix="dmra-lint-") as td:
        root = make_root(Path(td), {
            rel: BAD_HOTPATH,
            "tools/layers.json": FIXTURES / "layers.json",
            "tools/waivers/hotpath.json": waiver_json(full_waivers),
        })
        doc = run_lint(root, "--pass", "hotpath")
        check(doc["exit_code"] == 0, "justified waivers suppress all findings",
              f"stale={doc['stale_waivers']} findings="
              f"{[f['rule'] for f in doc['findings'] if not f['waived']]}")
        check(all(f["waived"] for f in doc["findings"]),
              "findings are reported as waived, not dropped")

        audit = run_lint(root, "--pass", "hotpath", "--no-waivers")
        check(audit["exit_code"] == 1, "--no-waivers re-surfaces the findings")

    with tempfile.TemporaryDirectory(prefix="dmra-lint-") as td:
        stale = full_waivers + [{
            "rule": "hotpath-new", "file": rel, "contains": "no such line anywhere",
            "justification": "stale on purpose: matches nothing in the fixture"}]
        root = make_root(Path(td), {
            rel: BAD_HOTPATH,
            "tools/layers.json": FIXTURES / "layers.json",
            "tools/waivers/hotpath.json": waiver_json(stale),
        })
        doc = run_lint(root, "--pass", "hotpath")
        check(doc["exit_code"] == 1 and doc["stale_waivers"],
              "a stale waiver fails the run")

    with tempfile.TemporaryDirectory(prefix="dmra-lint-") as td:
        thin = [dict(full_waivers[0], justification="perf")]
        root = make_root(Path(td), {
            rel: BAD_HOTPATH,
            "tools/layers.json": FIXTURES / "layers.json",
            "tools/waivers/hotpath.json": waiver_json(thin),
        })
        doc = run_lint(root, "--pass", "hotpath")
        check(doc["exit_code"] == 1 and doc["config_errors"],
              "a one-word justification is rejected")

    with tempfile.TemporaryDirectory(prefix="dmra-lint-") as td:
        rel_syntax = "src/core/hotpath_region_syntax.cpp"
        root = make_root(Path(td), {
            rel_syntax: BAD_REGION,
            "tools/layers.json": FIXTURES / "layers.json",
            "tools/waivers/hotpath.json": waiver_json([{
                "rule": "hotpath-region-syntax", "file": rel_syntax,
                "contains": "dmra::hotpath begin(never-closed)",
                "justification": "attempting to waive a structural error must not work"}]),
        })
        doc = run_lint(root, "--pass", "hotpath")
        active = [f for f in doc["findings"] if not f["waived"]]
        check(doc["exit_code"] == 1 and any(
            f["rule"] == "hotpath-region-syntax" for f in active),
            "broken region annotations cannot be waived")

    # max_entries ratchet: a ledger within budget is fine; one past its
    # declared budget is a config error even when every entry is justified
    # and matches a real finding.
    with tempfile.TemporaryDirectory(prefix="dmra-lint-") as td:
        root = make_root(Path(td), {
            rel: BAD_HOTPATH,
            "tools/layers.json": FIXTURES / "layers.json",
            "tools/waivers/hotpath.json": waiver_json(full_waivers,
                                                      max_entries=len(full_waivers)),
        })
        doc = run_lint(root, "--pass", "hotpath")
        check(doc["exit_code"] == 0 and not doc["config_errors"],
              "a ledger at its max_entries budget passes")

    with tempfile.TemporaryDirectory(prefix="dmra-lint-") as td:
        root = make_root(Path(td), {
            rel: BAD_HOTPATH,
            "tools/layers.json": FIXTURES / "layers.json",
            "tools/waivers/hotpath.json": waiver_json(full_waivers,
                                                      max_entries=len(full_waivers) - 1),
        })
        doc = run_lint(root, "--pass", "hotpath")
        check(doc["exit_code"] == 1 and any(
            "max_entries" in e for e in doc["config_errors"]),
            "a ledger past its max_entries budget is a config error")

    with tempfile.TemporaryDirectory(prefix="dmra-lint-") as td:
        root = make_root(Path(td), {
            rel: BAD_HOTPATH,
            "tools/layers.json": FIXTURES / "layers.json",
            "tools/waivers/hotpath.json": waiver_json(full_waivers, max_entries=-1),
        })
        doc = run_lint(root, "--pass", "hotpath")
        check(doc["exit_code"] == 1 and any(
            "max_entries" in e for e in doc["config_errors"]),
            "a negative max_entries is a config error")


def main() -> int:
    test_bad_fixtures()
    test_good_fixtures()
    test_waiver_machinery()
    if failures:
        print(f"\ndmra_lint_test: {len(failures)} FAILURE(S)")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\ndmra_lint_test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
