#!/usr/bin/env bash
# Static-analysis entry point: dmra-lint (always; pure python3 stdlib) +
# clang-tidy (when available). Degrades gracefully on machines without
# clang-tidy — the tidy pass is reported as skipped, not failed — so the
# script is safe to run in any dev container while still gating hard in CI.
#
# dmra-lint runs all four passes (determinism, hotpath, layering, banned)
# against the committed waiver ledger in tools/waivers/. The former
# tools/check_banned.sh scan is now the `banned` pass.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir must contain compile_commands.json (any CMake preset emits
#   one; default: build/default, falling back to build/).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

status=0

echo "== dmra-lint (determinism / hotpath / layering / banned) =="
if ! python3 tools/dmra_lint.py --root "$repo_root"; then
  status=1
fi

build_dir="${1:-}"
if [ -z "$build_dir" ]; then
  for candidate in build/default build; do
    if [ -f "$candidate/compile_commands.json" ]; then
      build_dir="$candidate"
      break
    fi
  done
fi

echo
echo "== clang-tidy =="
tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "clang-tidy not found on PATH — skipping tidy pass (install it or set CLANG_TIDY)."
elif [ -z "$build_dir" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "no compile_commands.json found (looked in build/default, build) — configure first:"
  echo "  cmake --preset default"
  status=1
else
  # Lint our own translation units only; third-party and generated code are
  # excluded. Headers are covered transitively via HeaderFilterRegex.
  mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'tools/*.cpp' | grep -v third_party)
  echo "linting ${#sources[@]} translation units against $build_dir/compile_commands.json"
  if ! "$tidy_bin" -p "$build_dir" --quiet "${sources[@]}"; then
    status=1
  fi
fi

exit "$status"
