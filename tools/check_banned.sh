#!/usr/bin/env bash
# Grep-gate for patterns that have bitten this codebase's domain before:
#
#   1. raw C rand()/srand()      — unseeded, global, non-reproducible
#   2. std::random_device        — nondeterministic; breaks replayable runs
#   3. std::mt19937 / minstd     — bypasses the named-stream Rng (util/rng.hpp)
#   4. float                     — money/profit/rate arithmetic must be double;
#                                  this repo is float-free by policy
#
# Comments and doc text are exempt: each file is scanned with // and /* */
# comments stripped, so writing "unlike rand()" in a comment is fine.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

# Strip // line comments and /* ... */ block comments (handles multi-line
# blocks; does not try to be clever about comment markers inside string
# literals, which do not occur in this codebase).
strip_comments() {
  sed -e 's://.*$::' "$1" | awk '
    BEGIN { inblock = 0 }
    {
      line = $0
      out = ""
      while (length(line) > 0) {
        if (inblock) {
          close_at = index(line, "*/")
          if (close_at == 0) { line = ""; break }
          line = substr(line, close_at + 2)
          inblock = 0
        } else {
          open_at = index(line, "/*")
          if (open_at == 0) { out = out line; line = ""; break }
          out = out substr(line, 1, open_at - 1)
          line = substr(line, open_at + 2)
          inblock = 1
        }
      }
      print out
    }'
}

fail=0
report() {  # report <file> <pattern> <message>
  local hits
  hits=$(strip_comments "$1" | grep -nE "$2")
  if [ -n "$hits" ]; then
    fail=1
    while IFS= read -r hit; do
      echo "BANNED: $1:${hit%%:*}: $3"
      echo "    ${hit#*:}"
    done <<< "$hits"
  fi
}

while IFS= read -r f; do
  report "$f" '(^|[^[:alnum:]_:.])s?rand[[:space:]]*\(' \
    "raw C rand()/srand() — use the seeded named-stream dmra::Rng"
  report "$f" 'std::random_device' \
    "std::random_device is nondeterministic — seed dmra::Rng explicitly"
  report "$f" 'std::(mt19937|minstd_rand|default_random_engine)' \
    "raw <random> engine — use dmra::Rng (util/rng.hpp) so streams are named and seeded"
  report "$f" '(^|[^[:alnum:]_])float([^[:alnum:]_]|$)' \
    "float arithmetic — money/profit/rate math must use double"
done < <(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' 'bench/**/*.cpp' 'examples/**/*.cpp')

if [ "$fail" -eq 0 ]; then
  echo "banned-pattern scan clean"
fi
exit "$fail"
