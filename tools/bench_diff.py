#!/usr/bin/env python3
"""Noise-aware comparison of two perf_report outputs (BENCH_core.json).

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json
        [--baseline-manifest M1.json] [--candidate-manifest M2.json]
        [--warn-ratio 1.25] [--fail-ratio 1.5] [--min-ms 1.0]
        [--fail-on fail|warn|never]

Joins the probe tables (scenario_build, decentralized_run, experiment,
since schema 1.3 sharded_run, and since 1.4 serving_run) on the "ues"
scale (plus "shards" for sharded rows; serving rows join on the fault
arm and steady-state/horizon shape) and classifies each wall-time row:

    PASS  candidate/baseline ratio below --warn-ratio, or both sides are
          under the --min-ms noise floor (sub-millisecond probes jitter
          far more than 25% on shared machines)
    WARN  ratio in [--warn-ratio, --fail-ratio)
    FAIL  ratio >= --fail-ratio

Semantic counters (rounds, messages_sent, matching_rounds, since
schema 1.2 the allocation counters when both reports measured them,
since 1.3 the sharded partition/reconcile accounting, since 1.4 the
serving churn-rate and recovery counters, and since 1.5 the flight-
recorder telemetry: flight_events_retained, postmortem_dumps,
metric_windows)
are protocol outputs, not timings: any change is reported as WARN so a
"perf-only" change that silently altered protocol behaviour shows up.
wall_ms_flight_off (schema 1.5) is a timing like wall_ms and is never
compared directly — the overhead budget lives in the report itself.
The serving latency percentiles (latency_p50_ns/p99/p999) are wall-clock
measurements like wall_ms and stay warn-only under every gate.
With --fail-on-semantic those changes are FAIL instead (the CI hard
gate: wall-clock stays warn-only, deterministic counters do not drift),
except that an allocation-count *decrease* stays WARN — fewer
allocations is an improvement that just needs a baseline refresh.
messages_per_sec is wall-clock derived and never compared. Peak RSS
regressions beyond --fail-ratio are WARN (allocator noise). Experiment
rows with different seed counts, and reports with different quick-mode
scales, are skipped as incomparable rather than compared apples-to-pears.

When run manifests (docs/PROVENANCE.md) sit next to the reports, pass
them too: differing git revisions are expected and printed as context,
but a build-flavor mismatch (sanitizers, build type) makes every timing
row incomparable and is reported as WARN.

Exit status: 1 when the worst class reaches --fail-on (default "fail");
CI's perf-regression job runs with --fail-on never (warn-only gate).
Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys

SEMANTIC_KEYS = ("rounds", "messages_sent", "matching_rounds")
# Schema 1.2 allocation counters: deterministic, but only meaningful when
# the emitting binary linked the counting allocator (alloc_measured).
ALLOC_KEYS = ("alloc_settle_rounds", "steady_state_allocations", "round_loop_allocations")
# Schema 1.3 sharded_run counters: the region partition and reconcile
# pass are deterministic, so any drift in the shard accounting is a
# protocol change, not noise. Rows join on (ues, shards).
SHARDED_KEYS = ("interior_ues", "boundary_ues", "boundary_ues_reconciled",
                "cloud_only_ues", "reconcile_rounds", "max_shard_rounds")
# Schema 1.4 serving_run counters: the event timeline and every decision
# on it are a pure function of the seed, so the churn/recovery accounting
# is semantic. The latency percentiles are wall clock and warn-only.
SERVING_KEYS = ("events", "arrivals", "departures", "moves", "reassociations",
                "churn_rate", "cross_region_moves", "readmitted", "orphaned",
                "recovery_events_max", "resolves")
# Schema 1.5 flight-recorder telemetry: retained-event counts, post-mortem
# dump counts, and metric-window counts are deterministic per run (the
# recorder shards and merges like the tracer), so drift means the
# always-on instrumentation changed behaviour — semantic, not noise.
TELEMETRY_KEYS = ("flight_events_retained", "postmortem_dumps", "metric_windows")
LATENCY_KEYS = ("latency_p50_ns", "latency_p99_ns", "latency_p999_ns")
KNOWN_SCHEMAS = ("dmra-perf-report/1", "dmra-perf-report/1.1", "dmra-perf-report/1.2",
                 "dmra-perf-report/1.3", "dmra-perf-report/1.4",
                 "dmra-perf-report/1.5")


def load_json(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")


class Report:
    """One comparison row: status + human-readable detail."""

    def __init__(self) -> None:
        self.rows: list[tuple[str, str, str]] = []  # (status, probe, detail)
        self.semantic_fail = False  # a deterministic counter drifted under the hard gate

    def add(self, status: str, probe: str, detail: str) -> None:
        self.rows.append((status, probe, detail))

    def worst(self) -> str:
        order = {"PASS": 0, "SKIP": 0, "WARN": 1, "FAIL": 2}
        return max((r[0] for r in self.rows), key=lambda s: order.get(s, 0), default="PASS")


def check_schema(report: Report, name: str, doc: dict) -> None:
    schema = doc.get("schema", "<missing>")
    if schema not in KNOWN_SCHEMAS:
        report.add("WARN", "schema", f"{name}: unknown schema {schema!r}")


def provenance_line(doc: dict, manifest: dict | None) -> str:
    git = doc.get("git") or (manifest or {}).get("git") or "unknown"
    build = doc.get("build") or (manifest or {}).get("build") or {}
    flavor = build.get("type", "unknown")
    san = build.get("sanitizers", "")
    return f"git {git}, {flavor}" + (f" +{san}" if san else "")


def build_flavor(doc: dict, manifest: dict | None) -> tuple:
    build = doc.get("build") or (manifest or {}).get("build") or {}
    return (build.get("type"), build.get("sanitizers"))


def compare_wall(report: Report, probe: str, base: dict, cand: dict,
                 args: argparse.Namespace) -> None:
    b, c = base["wall_ms"], cand["wall_ms"]
    if b < args.min_ms and c < args.min_ms:
        report.add("PASS", probe, f"{b:.3f} -> {c:.3f} ms (below {args.min_ms} ms noise floor)")
        return
    if b <= 0.0:
        report.add("SKIP", probe, f"non-positive baseline wall_ms {b}")
        return
    ratio = c / b
    detail = f"{b:.3f} -> {c:.3f} ms ({ratio:.2f}x)"
    if ratio >= args.fail_ratio:
        report.add("FAIL", probe, detail)
    elif ratio >= args.warn_ratio:
        report.add("WARN", probe, detail)
    else:
        report.add("PASS", probe, detail)


def compare_semantics(report: Report, probe: str, base: dict, cand: dict,
                      args: argparse.Namespace) -> None:
    keys = SEMANTIC_KEYS
    if base.get("alloc_measured") and cand.get("alloc_measured"):
        keys = SEMANTIC_KEYS + ALLOC_KEYS
    if "shards" in base and "shards" in cand:
        keys = keys + SHARDED_KEYS
    if "faults" in base and "faults" in cand:
        keys = SERVING_KEYS  # serving rows carry no bus/matching counters
    # Schema 1.5: flight telemetry rides on both decentralized and serving
    # rows; compared only when both reports emitted it.
    keys = keys + TELEMETRY_KEYS
    for key in keys:
        if key not in base or key not in cand:
            continue  # pre-1.2 report on one side: nothing to compare
        b, c = base[key], cand[key]
        if b == c:
            continue
        status = "WARN"
        if args.fail_on_semantic:
            improved = (key in ALLOC_KEYS
                        and isinstance(b, (int, float)) and isinstance(c, (int, float))
                        and c < b)
            status = "WARN" if improved else "FAIL"
            report.semantic_fail = report.semantic_fail or status == "FAIL"
        report.add(status, f"{probe}.{key}",
                   f"semantic counter changed: {b} -> {c}")


def compare_latency(report: Report, probe: str, base: dict, cand: dict,
                    args: argparse.Namespace) -> None:
    """Serving latency percentiles: wall clock, so never worse than WARN."""
    for key in LATENCY_KEYS:
        if key not in base or key not in cand:
            continue
        b, c = base[key], cand[key]
        if not b or b <= 0.0:
            continue
        ratio = c / b
        status = "WARN" if ratio >= args.fail_ratio else "PASS"
        report.add(status, f"{probe}.{key}",
                   f"{b / 1e3:.2f} -> {c / 1e3:.2f} us ({ratio:.2f}x, warn-only)")


def row_key(row: dict) -> tuple:
    # sharded_run rows sweep shard counts at one scale, so "ues" alone
    # would pair a 4-shard row with a 16-shard one. serving_run rows have
    # no "ues" column: they join on the fault arm + run shape.
    if "faults" in row:
        return ("serving", row["faults"], row.get("steady_state_ues"),
                row.get("horizon_events"))
    return (row["ues"], row["shards"]) if "shards" in row else (row["ues"],)


def join_rows(table_base: list, table_cand: list) -> list[tuple[dict, dict]]:
    cand_by_key = {row_key(row): row for row in table_cand}
    return [(row, cand_by_key[row_key(row)]) for row in table_base
            if row_key(row) in cand_by_key]


def compare_reports(report: Report, base: dict, cand: dict, args: argparse.Namespace) -> None:
    for table in ("scenario_build", "decentralized_run", "experiment", "sharded_run",
                  "serving_run"):
        pairs = join_rows(base.get(table, []), cand.get(table, []))
        if not pairs:
            if table in ("sharded_run", "serving_run") and not base.get(table) \
                    and not cand.get(table):
                continue  # both reports predate this table's schema
            report.add("SKIP", table, "no common 'ues' scales (quick vs full reports?)")
            continue
        for brow, crow in pairs:
            probe = f"{table}@" + "x".join(str(k) for k in row_key(brow))
            if table == "experiment" and brow.get("seeds") != crow.get("seeds"):
                report.add("SKIP", probe,
                           f"seed counts differ ({brow.get('seeds')} vs {crow.get('seeds')})")
                continue
            compare_wall(report, probe, brow, crow, args)
            compare_semantics(report, probe, brow, crow, args)
            if table == "serving_run":
                compare_latency(report, probe, brow, crow, args)
    b_rss, c_rss = base.get("peak_rss_mib"), cand.get("peak_rss_mib")
    if isinstance(b_rss, (int, float)) and isinstance(c_rss, (int, float)) and b_rss > 0:
        ratio = c_rss / b_rss
        status = "WARN" if ratio >= args.fail_ratio else "PASS"
        report.add(status, "peak_rss_mib", f"{b_rss:.1f} -> {c_rss:.1f} MiB ({ratio:.2f}x)")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--baseline-manifest", help="dmra-manifest/1 next to the baseline report")
    ap.add_argument("--candidate-manifest", help="dmra-manifest/1 next to the candidate report")
    ap.add_argument("--warn-ratio", type=float, default=1.25,
                    help="slowdown ratio that starts a WARN (default 1.25)")
    ap.add_argument("--fail-ratio", type=float, default=1.5,
                    help="slowdown ratio that starts a FAIL (default 1.5)")
    ap.add_argument("--min-ms", type=float, default=1.0,
                    help="noise floor: rows where both sides are faster pass (default 1.0)")
    ap.add_argument("--fail-on", choices=("fail", "warn", "never"), default="fail",
                    help="exit 1 when the worst row reaches this class (default fail)")
    ap.add_argument("--fail-on-semantic", action="store_true",
                    help="deterministic-counter drift is FAIL instead of WARN "
                         "(allocation-count decreases stay WARN); the CI hard gate")
    args = ap.parse_args()
    if not args.warn_ratio <= args.fail_ratio:
        ap.error("--warn-ratio must be <= --fail-ratio")

    base = load_json(args.baseline)
    cand = load_json(args.candidate)
    base_manifest = load_json(args.baseline_manifest) if args.baseline_manifest else None
    cand_manifest = load_json(args.candidate_manifest) if args.candidate_manifest else None

    report = Report()
    check_schema(report, "baseline", base)
    check_schema(report, "candidate", cand)

    print(f"baseline : {args.baseline} ({provenance_line(base, base_manifest)})")
    print(f"candidate: {args.candidate} ({provenance_line(cand, cand_manifest)})")
    bf, cf = build_flavor(base, base_manifest), build_flavor(cand, cand_manifest)
    if bf != cf and any(bf) and any(cf):
        report.add("WARN", "build-flavor",
                   f"{bf} vs {cf}: timings are not comparable across build flavors")

    compare_reports(report, base, cand, args)

    width = max((len(p) for _, p, _ in report.rows), default=5)
    print()
    for status, probe, detail in report.rows:
        print(f"{status:4} | {probe:<{width}} | {detail}")
    worst = report.worst()
    print(f"\nresult: {worst}")

    # The semantic hard gate bypasses --fail-on: CI runs wall-clock
    # comparisons with --fail-on never (noisy runners) but still must not
    # let a deterministic counter drift through.
    if report.semantic_fail:
        return 1
    threshold = {"fail": ("FAIL",), "warn": ("FAIL", "WARN"), "never": ()}[args.fail_on]
    return 1 if worst in threshold else 0


if __name__ == "__main__":
    sys.exit(main())
