#include "baselines/exact.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "baselines/greedy.hpp"
#include "core/dmra_allocator.hpp"
#include "sim/feasibility.hpp"
#include "util/require.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

TEST(Exact, SolvesTrivialInstanceOptimally) {
  const Scenario s = test::two_bs_scenario(4);
  const Allocation a = ExactAllocator().allocate(s);
  // Plenty of resources: the optimum serves everyone.
  EXPECT_EQ(a.num_served(), 4u);
  EXPECT_TRUE(check_feasibility(s, a).ok);
}

TEST(Exact, PicksTheProfitMaximalAssignmentUnderContention) {
  // One slot, two takers with different margins: optimum takes the better.
  test::MiniScenario ms;
  const SpId sp0 = ms.add_sp();
  const SpId sp1 = ms.add_sp();
  ms.add_bs(sp0, {0, 0}, /*cru=*/4);
  ms.add_ue(sp1, {10, 0}, ServiceId{0}, 4);  // cross-SP margin
  ms.add_ue(sp0, {10, 5}, ServiceId{0}, 4);  // same-SP margin (higher)
  const Scenario s = ms.build();
  const Allocation a = ExactAllocator().allocate(s);
  EXPECT_TRUE(a.is_cloud(UeId{0}));
  EXPECT_EQ(a.bs_of(UeId{1}), (BsId{0}));
}

TEST(Exact, BeatsOrTiesGreedyWhereGreedyIsMyopic) {
  // Greedy grabs the single most profitable pair and may block two smaller
  // pairs whose sum is higher; the exact solver must not.
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/6);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 5);  // big task: margin × 5
  ms.add_ue(sp, {12, 0}, ServiceId{0}, 3);  // two small tasks: margin × 6
  ms.add_ue(sp, {14, 0}, ServiceId{0}, 3);
  const Scenario s = ms.build();
  const double exact = total_profit(s, ExactAllocator().allocate(s));
  const double greedy = total_profit(s, GreedyProfitAllocator().allocate(s));
  EXPECT_GE(exact, greedy);
  // The two small tasks fit together (6 CRUs) and out-earn the big one.
  const Allocation a = ExactAllocator().allocate(s);
  EXPECT_TRUE(a.is_cloud(UeId{0}));
  EXPECT_FALSE(a.is_cloud(UeId{1}));
  EXPECT_FALSE(a.is_cloud(UeId{2}));
}

// Property: on small random instances the exact optimum dominates every
// heuristic, and DMRA's optimality gap stays moderate.
class ExactDominance : public ::testing::TestWithParam<int> {};

TEST_P(ExactDominance, ExactIsAnUpperBound) {
  ScenarioConfig cfg;
  cfg.num_sps = 2;
  cfg.bss_per_sp = 2;
  cfg.num_ues = 10;
  cfg.num_services = 2;
  cfg.services_per_bs = 2;
  cfg.cru_capacity_min = 8;  // tight capacities so choices actually conflict
  cfg.cru_capacity_max = 12;
  const Scenario s = generate_scenario(cfg, static_cast<std::uint64_t>(GetParam()));

  const Allocation exact = ExactAllocator().allocate(s);
  EXPECT_TRUE(check_feasibility(s, exact).ok);
  const double best = total_profit(s, exact);

  const double dmra = total_profit(s, DmraAllocator().allocate(s));
  const double greedy = total_profit(s, GreedyProfitAllocator().allocate(s));
  EXPECT_GE(best, dmra - 1e-9);
  EXPECT_GE(best, greedy - 1e-9);
  if (best > 0) {
    EXPECT_GT(dmra, 0.5 * best);  // sanity: DMRA is not garbage
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactDominance, ::testing::Range(1, 9));

TEST(Exact, RefusesOversizedInstances) {
  ScenarioConfig cfg;
  cfg.num_ues = 100;
  const Scenario s = generate_scenario(cfg, 1);
  EXPECT_THROW(ExactAllocator(15).allocate(s), ContractViolation);
}

TEST(Exact, HandlesAllCloudInstances) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {4000, 0}, ServiceId{0});
  const Scenario s = ms.build();
  const Allocation a = ExactAllocator().allocate(s);
  EXPECT_EQ(a.num_served(), 0u);
}

}  // namespace
}  // namespace dmra
