#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.hpp"
#include "baselines/dcsp.hpp"
#include "baselines/greedy.hpp"
#include "baselines/nonco.hpp"
#include "baselines/random_alloc.hpp"
#include "core/dmra_allocator.hpp"
#include "mec/resources.hpp"
#include "sim/feasibility.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

// Every allocator must produce a feasible allocation on every scenario.
class AllAllocatorsFeasible : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllAllocatorsFeasible, ConstraintsHold) {
  const auto [ues, seed] = GetParam();
  ScenarioConfig cfg;
  cfg.num_ues = static_cast<std::size_t>(ues);
  const Scenario s = generate_scenario(cfg, static_cast<std::uint64_t>(seed));

  std::vector<AllocatorPtr> algos;
  algos.push_back(std::make_unique<DmraAllocator>());
  algos.push_back(std::make_unique<DcspAllocator>());
  algos.push_back(std::make_unique<NonCoAllocator>());
  algos.push_back(std::make_unique<GreedyProfitAllocator>());
  algos.push_back(std::make_unique<RandomAllocator>(99));

  for (const auto& algo : algos) {
    const Allocation a = algo->allocate(s);
    const FeasibilityReport report = check_feasibility(s, a);
    EXPECT_TRUE(report.ok) << algo->name() << ": "
                           << (report.violations.empty() ? "" : report.violations.front());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllAllocatorsFeasible,
                         ::testing::Combine(::testing::Values(100, 600, 1200),
                                            ::testing::Values(1, 2)));

TEST(NonCo, ServesOnlyAtMaxSinrCandidate) {
  ScenarioConfig cfg;
  cfg.num_ues = 300;
  const Scenario s = generate_scenario(cfg, 3);
  const Allocation a = NonCoAllocator().allocate(s);
  for (std::size_t ui = 0; ui < s.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    const auto bs = a.bs_of(u);
    if (!bs) continue;
    for (BsId i : s.candidates(u))
      EXPECT_LE(s.link(u, i).sinr, s.link(u, *bs).sinr)
          << "NonCo must never serve a UE away from its best-SINR candidate";
  }
}

TEST(NonCo, OneShotStrandsLosersWhileOtherBssHaveRoom) {
  // The defining non-collaborative weakness: a UE rejected by its max-SINR
  // BS goes straight to the cloud even when another covering BS could
  // still serve it. DMRA never leaves such a UE behind (its B_u only
  // empties on exhaustion), so the stranding count is NonCo-specific.
  ScenarioConfig cfg;
  cfg.num_ues = 1200;
  const Scenario s = generate_scenario(cfg, 5);

  auto stranded_with_room = [&](const Allocation& a) {
    ResourceState state(s);
    for (std::size_t ui = 0; ui < s.num_ues(); ++ui) {
      const UeId u{static_cast<std::uint32_t>(ui)};
      if (const auto bs = a.bs_of(u)) state.commit(u, *bs);
    }
    std::size_t stranded = 0;
    for (std::size_t ui = 0; ui < s.num_ues(); ++ui) {
      const UeId u{static_cast<std::uint32_t>(ui)};
      if (!a.is_cloud(u)) continue;
      for (BsId i : s.candidates(u)) {
        if (state.can_serve(u, i)) {
          ++stranded;
          break;
        }
      }
    }
    return stranded;
  };

  EXPECT_GT(stranded_with_room(NonCoAllocator().allocate(s)), 0u);
  EXPECT_EQ(stranded_with_room(DmraAllocator().allocate(s)), 0u);
}

TEST(NonCo, LosesToDmraOnProfitDespiteServingEfficiently) {
  // NonCo's max-SINR / min-RRB policy is radio-efficient and can serve
  // more UEs than DMRA, yet it monetizes them worse: cross-SP, SP-blind.
  ScenarioConfig cfg;
  cfg.num_ues = 1200;
  const Scenario s = generate_scenario(cfg, 5);
  const Allocation nonco = NonCoAllocator().allocate(s);
  const Allocation dmra = DmraAllocator().allocate(s);
  EXPECT_GT(total_profit(s, dmra), total_profit(s, nonco));
}

TEST(Dcsp, IgnoresSpOwnership) {
  // DCSP's decisions never look at SPs: permuting UE subscriptions must
  // not change the allocation.
  ScenarioConfig cfg;
  cfg.num_ues = 200;
  const Scenario s1 = generate_scenario(cfg, 7);
  // Same deployment with every UE's subscription rotated to the next SP.
  const Scenario s2_base = generate_scenario(cfg, 7);
  ScenarioData rebuilt;
  rebuilt.num_services = s2_base.num_services();
  rebuilt.sps.assign(s2_base.sps().begin(), s2_base.sps().end());
  rebuilt.bss.assign(s2_base.bss().begin(), s2_base.bss().end());
  rebuilt.ues.assign(s2_base.ues().begin(), s2_base.ues().end());
  for (auto& ue : rebuilt.ues)
    ue.sp = SpId{static_cast<std::uint32_t>((ue.sp.value + 1) % s2_base.num_sps())};
  rebuilt.channel = s2_base.channel();
  rebuilt.ofdma = s2_base.ofdma();
  rebuilt.pricing = s2_base.pricing();
  rebuilt.coverage_radius_m = s2_base.coverage_radius_m();
  const Scenario s2(std::move(rebuilt));

  EXPECT_EQ(DcspAllocator().allocate(s1), DcspAllocator().allocate(s2));
}

TEST(Dcsp, EqualOccupancyTieBreaksTowardLowerIdThenSpills) {
  // Every BS starts at relative occupancy 0, so the first wave lands on
  // the lowest id; once a BS can no longer serve, later UEs spill over.
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/4);   // one 4-CRU slot
  ms.add_bs(sp, {10, 0}, /*cru=*/100);
  ms.add_ue(sp, {5, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {5, 1}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  const Allocation a = DcspAllocator().allocate(s);
  EXPECT_EQ(a.bs_of(UeId{0}), (BsId{0}));
  EXPECT_EQ(a.bs_of(UeId{1}), (BsId{1}));
}

TEST(Dcsp, PrefersTheLessOccupiedBsAcrossRounds) {
  // BS 0 fills up in round one; a later UE whose request arrives after the
  // first wave sees BS 0 at higher occupancy and picks BS 1 even though
  // BS 0 could still serve it.
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/12);
  ms.add_bs(sp, {10, 0}, /*cru=*/12);
  // Three UEs on service 0: round 1 sends all to BS 0 (tie), which admits
  // them while resources last (12 CRUs = three 4-CRU tasks fit).
  ms.add_ue(sp, {5, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {5, 1}, ServiceId{0}, 4);
  ms.add_ue(sp, {5, 2}, ServiceId{0}, 4);
  // A service-1 UE also lands in the same wave; afterwards BS 0 carries
  // strictly more load than BS 1 for any later arrival.
  ms.add_ue(sp, {5, 3}, ServiceId{1}, 4);
  const Scenario s = ms.build();
  const Allocation a = DcspAllocator().allocate(s);
  // All four served somewhere, constraints hold.
  EXPECT_EQ(a.num_served(), 4u);
  EXPECT_TRUE(check_feasibility(s, a).ok);
}

TEST(Greedy, TakesTheMostProfitablePairFirst) {
  test::MiniScenario ms;
  const SpId sp0 = ms.add_sp();
  const SpId sp1 = ms.add_sp();
  ms.add_bs(sp0, {0, 0}, /*cru=*/4);
  ms.add_ue(sp0, {10, 0}, ServiceId{0}, 4);   // same SP, near → best margin
  ms.add_ue(sp1, {10, 5}, ServiceId{0}, 4);   // cross SP → worse margin
  const Scenario s = ms.build();
  const Allocation a = GreedyProfitAllocator().allocate(s);
  EXPECT_EQ(a.bs_of(UeId{0}), (BsId{0}));
  EXPECT_TRUE(a.is_cloud(UeId{1}));
}

TEST(Greedy, NeverWorseThanRandomOnDefaults) {
  ScenarioConfig cfg;
  cfg.num_ues = 500;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Scenario s = generate_scenario(cfg, seed);
    const double greedy = total_profit(s, GreedyProfitAllocator().allocate(s));
    const double random = total_profit(s, RandomAllocator(seed).allocate(s));
    EXPECT_GE(greedy, random);
  }
}

TEST(Random, DeterministicPerSeedAndSeedSensitive) {
  ScenarioConfig cfg;
  cfg.num_ues = 200;
  const Scenario s = generate_scenario(cfg, 9);
  EXPECT_EQ(RandomAllocator(5).allocate(s), RandomAllocator(5).allocate(s));
  EXPECT_NE(RandomAllocator(5).allocate(s), RandomAllocator(6).allocate(s));
}

TEST(NonCoIterative, NeverStrandsWithRoomLeft) {
  ScenarioConfig cfg;
  cfg.num_ues = 1000;
  const Scenario s = generate_scenario(cfg, 5);
  const Allocation a = NonCoAllocator(NonCoAllocator::Mode::kIterative).allocate(s);
  ResourceState state(s);
  for (std::size_t ui = 0; ui < s.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    if (const auto bs = a.bs_of(u)) state.commit(u, *bs);
  }
  for (std::size_t ui = 0; ui < s.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    if (!a.is_cloud(u)) continue;
    for (BsId i : s.candidates(u)) EXPECT_FALSE(state.can_serve(u, i));
  }
}

TEST(NonCoIterative, ServesAtLeastAsManyAsOneShot) {
  ScenarioConfig cfg;
  cfg.num_ues = 1000;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Scenario s = generate_scenario(cfg, seed);
    EXPECT_GE(NonCoAllocator(NonCoAllocator::Mode::kIterative).allocate(s).num_served(),
              NonCoAllocator().allocate(s).num_served());
  }
}

TEST(NonCoIterative, FeasibleAndFallsBackDownTheSinrList) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/4);   // best SINR for both UEs, one slot
  ms.add_bs(sp, {60, 0});
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {12, 0}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  const Allocation one_shot = NonCoAllocator().allocate(s);
  const Allocation iter = NonCoAllocator(NonCoAllocator::Mode::kIterative).allocate(s);
  // One-shot: the loser of BS 0 goes to the cloud despite BS 1's room.
  EXPECT_EQ(one_shot.num_served(), 1u);
  // Iterative: the loser retries and lands on BS 1.
  EXPECT_EQ(iter.num_served(), 2u);
  EXPECT_TRUE(check_feasibility(s, iter).ok);
}

TEST(Names, AreStable) {
  EXPECT_EQ(DmraAllocator().name(), "DMRA");
  EXPECT_EQ(DcspAllocator().name(), "DCSP");
  EXPECT_EQ(NonCoAllocator().name(), "NonCo");
  EXPECT_EQ(NonCoAllocator(NonCoAllocator::Mode::kIterative).name(), "NonCo-iter");
  EXPECT_EQ(GreedyProfitAllocator().name(), "Greedy");
  EXPECT_EQ(RandomAllocator(1).name(), "Random");
}

}  // namespace
}  // namespace dmra
