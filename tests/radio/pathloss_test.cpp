#include "radio/pathloss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "radio/channel.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dmra {
namespace {

const PathlossParams kDefault{};

TEST(PathlossModels, PaperModelMatchesLegacyFunction) {
  for (double d : {1.0, 50.0, 300.0, 1000.0, 2000.0})
    EXPECT_DOUBLE_EQ(pathloss_db(PathlossModel::kPaperEq18, d, kDefault), pathloss_db(d));
}

TEST(PathlossModels, FreeSpaceKnownValue) {
  // 32.45 + 20·log10(1 km) + 20·log10(2000 MHz) = 32.45 + 66.02 = 98.47.
  EXPECT_NEAR(pathloss_db(PathlossModel::kFreeSpace, 1000.0, kDefault),
              32.45 + 20.0 * std::log10(2000.0), 1e-9);
}

TEST(PathlossModels, LteMacroKnownValue) {
  EXPECT_NEAR(pathloss_db(PathlossModel::kLteMacro, 1000.0, kDefault), 128.1, 1e-9);
  EXPECT_NEAR(pathloss_db(PathlossModel::kLteMacro, 100.0, kDefault), 128.1 - 37.6, 1e-9);
}

TEST(PathlossModels, TwoRayKnownValue) {
  // 40·log10(1000 m) − 20·log10(25·1.5) = 120 − 31.48.
  EXPECT_NEAR(pathloss_db(PathlossModel::kTwoRay, 1000.0, kDefault),
              120.0 - 20.0 * std::log10(37.5), 1e-9);
}

TEST(PathlossModels, AllModelsMonotoneInDistance) {
  for (auto model : {PathlossModel::kPaperEq18, PathlossModel::kFreeSpace,
                     PathlossModel::kLteMacro, PathlossModel::kTwoRay}) {
    double prev = pathloss_db(model, 10.0, kDefault);
    for (double d = 50.0; d <= 2000.0; d += 50.0) {
      const double pl = pathloss_db(model, d, kDefault);
      EXPECT_GT(pl, prev) << pathloss_model_name(model);
      prev = pl;
    }
  }
}

TEST(PathlossModels, ClampBelowMinDistance) {
  for (auto model : {PathlossModel::kPaperEq18, PathlossModel::kFreeSpace,
                     PathlossModel::kLteMacro, PathlossModel::kTwoRay}) {
    EXPECT_DOUBLE_EQ(pathloss_db(model, 0.0, kDefault),
                     pathloss_db(model, kDefault.min_distance_m, kDefault));
  }
}

TEST(PathlossModels, NamesAreDistinct) {
  EXPECT_STREQ(pathloss_model_name(PathlossModel::kPaperEq18), "paper-eq18");
  EXPECT_STREQ(pathloss_model_name(PathlossModel::kFreeSpace), "free-space");
  EXPECT_STREQ(pathloss_model_name(PathlossModel::kLteMacro), "lte-macro");
  EXPECT_STREQ(pathloss_model_name(PathlossModel::kTwoRay), "two-ray");
}

TEST(PathlossModels, Contracts) {
  EXPECT_THROW(pathloss_db(PathlossModel::kPaperEq18, -1.0, kDefault), ContractViolation);
  PathlossParams bad = kDefault;
  bad.carrier_mhz = 0.0;
  EXPECT_THROW(pathloss_db(PathlossModel::kFreeSpace, 10.0, bad), ContractViolation);
  bad = kDefault;
  bad.bs_height_m = 0.0;
  EXPECT_THROW(pathloss_db(PathlossModel::kTwoRay, 10.0, bad), ContractViolation);
}

// ---- shadowing ---------------------------------------------------------------

TEST(Shadowing, ZeroSigmaIsExactlyZero) {
  const ChannelConfig cfg;  // sigma = 0 by default
  EXPECT_DOUBLE_EQ(shadowing_db(cfg, 1, 2), 0.0);
  EXPECT_DOUBLE_EQ(link_loss_db(cfg, 250.0, 1, 2), pathloss_db(250.0));
}

TEST(Shadowing, DeterministicPerLink) {
  ChannelConfig cfg;
  cfg.shadowing_sigma_db = 8.0;
  cfg.shadowing_seed = 99;
  EXPECT_DOUBLE_EQ(shadowing_db(cfg, 3, 7), shadowing_db(cfg, 3, 7));
  EXPECT_NE(shadowing_db(cfg, 3, 7), shadowing_db(cfg, 3, 8));
  EXPECT_NE(shadowing_db(cfg, 4, 7), shadowing_db(cfg, 3, 7));
}

TEST(Shadowing, SeedChangesTheDraws) {
  ChannelConfig a, b;
  a.shadowing_sigma_db = b.shadowing_sigma_db = 8.0;
  a.shadowing_seed = 1;
  b.shadowing_seed = 2;
  EXPECT_NE(shadowing_db(a, 3, 7), shadowing_db(b, 3, 7));
}

TEST(Shadowing, EmpiricalMomentsMatchSigma) {
  ChannelConfig cfg;
  cfg.shadowing_sigma_db = 6.0;
  RunningStats stats;
  for (std::uint32_t u = 0; u < 400; ++u)
    for (std::uint32_t b = 0; b < 10; ++b) stats.add(shadowing_db(cfg, u, b));
  EXPECT_NEAR(stats.mean(), 0.0, 0.5);
  EXPECT_NEAR(stats.stddev(), 6.0, 0.5);
}

TEST(Shadowing, KeyedSinrAppliesTheDraw) {
  ChannelConfig cfg;
  cfg.shadowing_sigma_db = 8.0;
  const double base = sinr(cfg, 200.0, 180e3);
  const double shadowed = sinr(cfg, 200.0, 180e3, 1, 2);
  const double sh_db = shadowing_db(cfg, 1, 2);
  EXPECT_NEAR(10.0 * std::log10(base / shadowed), sh_db, 1e-9);
}

TEST(RngGaussian, MomentsAndContract) {
  Rng rng(123);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), ContractViolation);
}

}  // namespace
}  // namespace dmra
