#include <gtest/gtest.h>

#include <cmath>

#include "radio/channel.hpp"
#include "radio/ofdma.hpp"
#include "radio/units.hpp"
#include "util/require.hpp"

namespace dmra {
namespace {

// ---- units -----------------------------------------------------------------

TEST(Units, DbmMwRoundTrip) {
  EXPECT_DOUBLE_EQ(dbm_to_mw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(10.0), 10.0);
  EXPECT_NEAR(mw_to_dbm(dbm_to_mw(-93.7)), -93.7, 1e-9);
}

TEST(Units, DbLinearRoundTrip) {
  EXPECT_DOUBLE_EQ(db_to_linear(0.0), 1.0);
  EXPECT_DOUBLE_EQ(db_to_linear(30.0), 1000.0);
  EXPECT_NEAR(linear_to_db(db_to_linear(17.3)), 17.3, 1e-9);
}

TEST(Units, Contracts) {
  EXPECT_THROW(mw_to_dbm(0.0), ContractViolation);
  EXPECT_THROW(linear_to_db(-1.0), ContractViolation);
}

// ---- path loss (Eq. 18) -----------------------------------------------------

TEST(Pathloss, PaperFormulaAtOneKm) {
  // PL(1 km) = 140.7 + 36.7·log10(1) = 140.7 dB.
  EXPECT_NEAR(pathloss_db(1000.0), 140.7, 1e-9);
}

TEST(Pathloss, SlopePerDecade) {
  EXPECT_NEAR(pathloss_db(1000.0) - pathloss_db(100.0), 36.7, 1e-9);
}

TEST(Pathloss, ClampsBelowMinDistance) {
  EXPECT_DOUBLE_EQ(pathloss_db(0.0, 1.0), pathloss_db(1.0, 1.0));
  EXPECT_DOUBLE_EQ(pathloss_db(0.5, 1.0), pathloss_db(1.0, 1.0));
  EXPECT_LT(pathloss_db(0.5, 1.0), pathloss_db(2.0, 1.0));
}

TEST(Pathloss, Contracts) {
  EXPECT_THROW(pathloss_db(-1.0), ContractViolation);
  EXPECT_THROW(pathloss_db(10.0, 0.0), ContractViolation);
}

// ---- SINR -------------------------------------------------------------------

TEST(Sinr, DecreasesWithDistance) {
  const ChannelConfig cfg;
  const double near = sinr(cfg, 100.0, 180e3);
  const double mid = sinr(cfg, 300.0, 180e3);
  const double far = sinr(cfg, 500.0, 180e3);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
}

TEST(Sinr, PaperDefaultMagnitudeAt100m) {
  // Rx = 10 dBm − (140.7 + 36.7·log10(0.1)) = −94 dBm; noise −170 dBm
  // per RRB → SNR = 76 dB.
  const ChannelConfig cfg;
  EXPECT_NEAR(linear_to_db(sinr(cfg, 100.0, 180e3)), 76.0, 1e-6);
}

TEST(Sinr, PsdModelIntegratesNoiseOverBandwidth) {
  ChannelConfig psd;
  psd.noise_model = NoiseModel::kPsd;
  const ChannelConfig total;  // default: per-RRB total
  // −170 dBm/Hz over 180 kHz is 52.6 dB more noise than −170 dBm total.
  const double ratio_db =
      linear_to_db(sinr(total, 200.0, 180e3) / sinr(psd, 200.0, 180e3));
  EXPECT_NEAR(ratio_db, 10.0 * std::log10(180e3), 1e-6);
}

TEST(Sinr, InterferenceReducesSinr) {
  ChannelConfig cfg;
  const double clean = sinr(cfg, 200.0, 180e3);
  cfg.interference_psd_mw_hz = 1e-15;
  EXPECT_LT(sinr(cfg, 200.0, 180e3), clean);
}

TEST(Sinr, PointOverloadMatchesScalar) {
  const ChannelConfig cfg;
  EXPECT_DOUBLE_EQ(sinr(cfg, Point{0, 0}, Point{300, 400}, 180e3),
                   sinr(cfg, 500.0, 180e3));
}

TEST(ReceivedPower, MatchesLinkBudget) {
  const ChannelConfig cfg;  // 10 dBm transmit
  const double rx = received_power_mw(cfg, 1000.0);
  EXPECT_NEAR(mw_to_dbm(rx), 10.0 - 140.7, 1e-9);
}

// ---- OFDMA (Eq. 2/3) ----------------------------------------------------------

TEST(Ofdma, PaperRrbCount) {
  // 10 MHz / 180 kHz = 55 RRBs.
  EXPECT_EQ(OfdmaConfig{}.num_rrbs(), 55u);
}

TEST(Ofdma, RrbRateFormula) {
  // e = W·log2(1 + λ): at λ = 3, e = 2·W.
  EXPECT_DOUBLE_EQ(rrb_rate_bps(180e3, 3.0), 2.0 * 180e3);
  EXPECT_DOUBLE_EQ(rrb_rate_bps(180e3, 0.0), 0.0);
}

TEST(Ofdma, RrbsNeededIsCeil) {
  EXPECT_EQ(rrbs_needed(4e6, 2e6), 2u);
  EXPECT_EQ(rrbs_needed(4.1e6, 2e6), 3u);
  EXPECT_EQ(rrbs_needed(1.0, 2e6), 1u);
}

TEST(Ofdma, RrbsNeededMonotoneInDemand) {
  const double rate = 3.3e6;
  std::uint32_t prev = 0;
  for (double demand = 1e6; demand <= 2e7; demand += 1e6) {
    const std::uint32_t n = rrbs_needed(demand, rate);
    EXPECT_GE(n, prev);
    prev = n;
  }
}

TEST(Ofdma, Contracts) {
  EXPECT_THROW(rrb_rate_bps(0.0, 1.0), ContractViolation);
  EXPECT_THROW(rrb_rate_bps(180e3, -0.1), ContractViolation);
  EXPECT_THROW(rrbs_needed(0.0, 1e6), ContractViolation);
  EXPECT_THROW(rrbs_needed(1e6, 0.0), ContractViolation);
}

// ---- end-to-end sanity over the paper's deployment ----------------------------

TEST(RadioRegime, PaperDefaultsNeedOneToTwoRrbsInCoverage) {
  // With the default channel, a UE inside the 500 m coverage disk demands
  // 1–3 RRBs for 2–6 Mbit/s — the regime DESIGN.md documents.
  const ChannelConfig ch;
  const OfdmaConfig of;
  for (double d : {50.0, 100.0, 250.0, 400.0, 500.0}) {
    const double e = rrb_rate_bps(of.rrb_bandwidth_hz, sinr(ch, d, of.rrb_bandwidth_hz));
    for (double w : {2e6, 4e6, 6e6}) {
      const std::uint32_t n = rrbs_needed(w, e);
      EXPECT_GE(n, 1u);
      EXPECT_LE(n, 3u) << "d=" << d << " w=" << w;
    }
  }
}

}  // namespace
}  // namespace dmra
