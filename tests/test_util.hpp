// Shared helpers for the test suite: hand-built miniature scenarios with
// fully-known geometry so expected values can be computed by hand.
#pragma once

#include <cstdint>
#include <vector>

#include "mec/scenario.hpp"

namespace dmra::test {

/// Options for the miniature scenario builder.
struct MiniOpts {
  std::size_t num_services = 2;
  double coverage_radius_m = 500.0;
  double iota = 2.0;
};

/// A builder for small hand-crafted scenarios. BSs/UEs are appended with
/// explicit positions and demands; everything else gets simple defaults.
class MiniScenario {
 public:
  explicit MiniScenario(MiniOpts opts = {}) : opts_(opts) {
    data_.num_services = opts.num_services;
    data_.coverage_radius_m = opts.coverage_radius_m;
    data_.pricing.iota = opts.iota;
  }

  /// Add an SP; returns its id.
  SpId add_sp() {
    const SpId id{static_cast<std::uint32_t>(data_.sps.size())};
    data_.sps.push_back({id, "SP-" + std::to_string(id.value)});
    return id;
  }

  /// Add a BS owned by `sp` at `pos` hosting every service with capacity
  /// `cru_per_service` and `rrbs` radio blocks.
  BsId add_bs(SpId sp, Point pos, std::uint32_t cru_per_service = 100,
              std::uint32_t rrbs = 55) {
    BaseStation b;
    b.id = BsId{static_cast<std::uint32_t>(data_.bss.size())};
    b.sp = sp;
    b.position = pos;
    b.cru_capacity.assign(data_.num_services, cru_per_service);
    b.num_rrbs = rrbs;
    data_.bss.push_back(std::move(b));
    return data_.bss.back().id;
  }

  /// Add a BS hosting only the given services (capacity per hosted service).
  BsId add_bs_hosting(SpId sp, Point pos, const std::vector<ServiceId>& services,
                      std::uint32_t cru_per_service = 100, std::uint32_t rrbs = 55) {
    const BsId id = add_bs(sp, pos, 0, rrbs);
    for (ServiceId j : services) data_.bss[id.idx()].cru_capacity[j.idx()] = cru_per_service;
    return id;
  }

  /// Add a UE subscribed to `sp` at `pos` requesting `service`.
  UeId add_ue(SpId sp, Point pos, ServiceId service, std::uint32_t cru_demand = 4,
              double rate_bps = 4e6) {
    UserEquipment e;
    e.id = UeId{static_cast<std::uint32_t>(data_.ues.size())};
    e.sp = sp;
    e.position = pos;
    e.service = service;
    e.cru_demand = cru_demand;
    e.rate_demand_bps = rate_bps;
    data_.ues.push_back(e);
    return data_.ues.back().id;
  }

  /// Mutable access for tests that want unusual configurations.
  ScenarioData& data() { return data_; }

  /// Finalize. Call once.
  Scenario build() { return Scenario(std::move(data_)); }

 private:
  MiniOpts opts_;
  ScenarioData data_;
};

/// The simplest useful instance: 2 SPs, 2 BSs (one each, 200 m apart),
/// services {0, 1} everywhere, and `n_ues` UEs alternating SPs placed
/// between the BSs.
inline Scenario two_bs_scenario(std::size_t n_ues = 4) {
  MiniScenario ms;
  const SpId sp0 = ms.add_sp();
  const SpId sp1 = ms.add_sp();
  ms.add_bs(sp0, {0.0, 0.0});
  ms.add_bs(sp1, {200.0, 0.0});
  for (std::size_t i = 0; i < n_ues; ++i) {
    const SpId sp = (i % 2 == 0) ? sp0 : sp1;
    const ServiceId svc{static_cast<std::uint32_t>(i % 2)};
    ms.add_ue(sp, {50.0 + 25.0 * static_cast<double>(i), 0.0}, svc);
  }
  return ms.build();
}

}  // namespace dmra::test
