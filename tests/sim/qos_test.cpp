#include "sim/qos.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/dmra_allocator.hpp"
#include "util/require.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

TEST(Latency, EdgeProxyGrowsWithDistance) {
  const LatencyModel m;
  EXPECT_DOUBLE_EQ(edge_latency_ms(m, 0.0), m.edge_base_ms);
  EXPECT_DOUBLE_EQ(edge_latency_ms(m, 1000.0), m.edge_base_ms + m.per_km_ms);
  EXPECT_LT(edge_latency_ms(m, 100.0), edge_latency_ms(m, 400.0));
}

TEST(Latency, CloudAlwaysWorseThanAnyEdgeInCoverage) {
  const LatencyModel m;
  EXPECT_GT(cloud_latency_ms(m), edge_latency_ms(m, 500.0));
}

TEST(Jain, KnownValues) {
  const std::vector<double> equal{3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(jain_index(equal), 1.0);
  const std::vector<double> solo{5.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(solo), 0.2);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(Jain, ScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{10.0, 20.0, 30.0};
  EXPECT_NEAR(jain_index(a), jain_index(b), 1e-12);
}

TEST(Jain, Contracts) {
  EXPECT_THROW(jain_index(std::vector<double>{}), ContractViolation);
  EXPECT_THROW(jain_index(std::vector<double>{-1.0, 1.0}), ContractViolation);
}

TEST(Qos, HandComputedScenario) {
  const Scenario s = test::two_bs_scenario(2);
  Allocation a(2);
  a.assign(UeId{0}, BsId{0});  // served; UE 1 → cloud
  const LatencyModel m;
  const QosMetrics q = evaluate_qos(s, a, m);
  const double d = s.link(UeId{0}, BsId{0}).distance_m;
  const double edge = edge_latency_ms(m, d);
  const double cloud = cloud_latency_ms(m);
  ASSERT_EQ(q.per_ue_latency_ms.size(), 2u);
  EXPECT_DOUBLE_EQ(q.per_ue_latency_ms[0], edge);
  EXPECT_DOUBLE_EQ(q.per_ue_latency_ms[1], cloud);
  EXPECT_DOUBLE_EQ(q.mean_latency_ms, (edge + cloud) / 2.0);
  EXPECT_DOUBLE_EQ(q.mean_edge_latency_ms, edge);
}

TEST(Qos, P95TracksTheCloudTail) {
  ScenarioConfig cfg;
  cfg.num_ues = 1600;  // overload → a real cloud tail
  const Scenario s = generate_scenario(cfg, 3);
  const QosMetrics q = evaluate_qos(s, DmraAllocator().allocate(s));
  const LatencyModel m;
  EXPECT_GT(q.p95_latency_ms, q.mean_edge_latency_ms);
  EXPECT_LE(q.p95_latency_ms, cloud_latency_ms(m) + 1e-9);
}

TEST(Qos, ServingAtTheEdgeBeatsCloudOnMeanLatency) {
  ScenarioConfig cfg;
  cfg.num_ues = 600;
  const Scenario s = generate_scenario(cfg, 5);
  const QosMetrics served = evaluate_qos(s, DmraAllocator().allocate(s));
  const QosMetrics nothing = evaluate_qos(s, Allocation(s.num_ues()));
  EXPECT_LT(served.mean_latency_ms, nothing.mean_latency_ms);
  EXPECT_DOUBLE_EQ(nothing.mean_latency_ms, cloud_latency_ms(LatencyModel{}));
}

TEST(Qos, FairnessIndicesInUnitInterval) {
  ScenarioConfig cfg;
  cfg.num_ues = 700;
  const Scenario s = generate_scenario(cfg, 7);
  const QosMetrics q = evaluate_qos(s, DmraAllocator().allocate(s));
  EXPECT_GT(q.jain_sp_profit, 0.0);
  EXPECT_LE(q.jain_sp_profit, 1.0);
  EXPECT_GT(q.jain_ue_latency, 0.0);
  EXPECT_LE(q.jain_ue_latency, 1.0);
  // Five symmetric SPs under uniform demand → close to perfect fairness.
  EXPECT_GT(q.jain_sp_profit, 0.9);
}

}  // namespace
}  // namespace dmra
