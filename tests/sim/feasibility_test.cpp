#include "sim/feasibility.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "../test_util.hpp"
#include "mec/resources.hpp"
#include "util/require.hpp"

namespace dmra {
namespace {

TEST(Feasibility, CleanAllocationPasses) {
  const Scenario s = test::two_bs_scenario(4);
  Allocation a(4);
  a.assign(UeId{0}, BsId{0});
  a.assign(UeId{1}, BsId{1});
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.violations.empty());
}

TEST(Feasibility, AllCloudIsTriviallyFeasible) {
  const Scenario s = test::two_bs_scenario(4);
  EXPECT_TRUE(check_feasibility(s, Allocation(4)).ok);
}

TEST(Feasibility, DetectsCruOvercommit) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/6);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {20, 0}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  Allocation a(2);
  a.assign(UeId{0}, BsId{0});
  a.assign(UeId{1}, BsId{0});  // 8 CRUs demanded, 6 available
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations.front().find("Eq. 12"), std::string::npos);
}

TEST(Feasibility, DetectsRrbOvercommit) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, 100, /*rrbs=*/1);
  ms.add_ue(sp, {400, 0}, ServiceId{0}, 4, 2e6);
  ms.add_ue(sp, {410, 0}, ServiceId{0}, 4, 2e6);
  const Scenario s = ms.build();
  Allocation a(2);
  a.assign(UeId{0}, BsId{0});
  a.assign(UeId{1}, BsId{0});
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_FALSE(r.ok);
  bool found = false;
  for (const auto& v : r.violations)
    if (v.find("Eq. 14") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Feasibility, DetectsUnhostedService) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs_hosting(sp, {0, 0}, {ServiceId{0}});
  ms.add_ue(sp, {10, 0}, ServiceId{1});
  const Scenario s = ms.build();
  Allocation a(1);
  a.assign(UeId{0}, BsId{0});
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations.front().find("Eq. 13"), std::string::npos);
}

TEST(Feasibility, DetectsOutOfCoverageAssignment) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {900, 0}, ServiceId{0});
  const Scenario s = ms.build();
  Allocation a(1);
  a.assign(UeId{0}, BsId{0});
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations.front().find("coverage"), std::string::npos);
}

TEST(Feasibility, ReportsMultipleViolationsAtOnce) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs_hosting(sp, {0, 0}, {ServiceId{0}}, /*cru=*/3);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);  // CRU overcommit
  ms.add_ue(sp, {20, 0}, ServiceId{1}, 4);  // unhosted service
  const Scenario s = ms.build();
  Allocation a(2);
  a.assign(UeId{0}, BsId{0});
  a.assign(UeId{1}, BsId{0});
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_FALSE(r.ok);
  EXPECT_GE(r.violations.size(), 2u);
}

TEST(Feasibility, SizeMismatchIsContractViolation) {
  const Scenario s = test::two_bs_scenario(4);
  EXPECT_THROW(check_feasibility(s, Allocation(3)), ContractViolation);
}

TEST(Feasibility, ViolationsAreSortedByBsThenUe) {
  // Two BSs, each with an out-of-coverage assignment, listed UE-reversed:
  // the report must still come out BS 0 before BS 1, and within a BS the
  // lower UE id first, with the BS-aggregate line after the per-UE lines.
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/3, /*rrbs=*/55);
  ms.add_bs(sp, {200, 0}, /*cru=*/100, /*rrbs=*/55);
  ms.add_ue(sp, {900, 0}, ServiceId{0}, 4);   // ue 0 → bs 1: out of coverage
  ms.add_ue(sp, {1000, 0}, ServiceId{0}, 4);  // ue 1 → bs 0: coverage + CRU
  ms.add_ue(sp, {950, 0}, ServiceId{0}, 4);   // ue 2 → bs 0: coverage + CRU
  const Scenario s = ms.build();
  Allocation a(3);
  a.assign(UeId{0}, BsId{1});
  a.assign(UeId{2}, BsId{0});
  a.assign(UeId{1}, BsId{0});
  const FeasibilityReport r = check_feasibility(s, a);
  ASSERT_FALSE(r.ok);
  // Expected order: bs0/ue1 lines, bs0/ue2 lines, bs0 aggregate (Eq. 12),
  // then everything about bs1/ue0.
  ASSERT_GE(r.violations.size(), 4u);
  auto first_index_of = [&](const std::string& needle) {
    for (std::size_t n = 0; n < r.violations.size(); ++n)
      if (r.violations[n].find(needle) != std::string::npos) return n;
    ADD_FAILURE() << "no violation mentions: " << needle;
    return r.violations.size();
  };
  EXPECT_LT(first_index_of("bs 0 ue 1"), first_index_of("bs 0 ue 2"));
  EXPECT_LT(first_index_of("bs 0 ue 2"), first_index_of("Eq. 12"));
  EXPECT_LT(first_index_of("Eq. 12"), first_index_of("bs 1 ue 0"));

  // Deterministic: a second audit renders the identical report.
  const FeasibilityReport again = check_feasibility(s, a);
  EXPECT_EQ(r.violations, again.violations);
}

TEST(Feasibility, StreamOperatorRendersReport) {
  const Scenario s = test::two_bs_scenario(4);
  std::ostringstream clean;
  clean << check_feasibility(s, Allocation(4));
  EXPECT_EQ(clean.str(), "feasible");

  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {900, 0}, ServiceId{0});
  const Scenario far = ms.build();
  Allocation a(1);
  a.assign(UeId{0}, BsId{0});
  const FeasibilityReport r = check_feasibility(far, a);
  std::ostringstream os;
  os << r;
  EXPECT_NE(os.str().find("coverage"), std::string::npos);
}

TEST(Feasibility, LedgerConsistencyAcceptsTruthfulLedger) {
  const Scenario s = test::two_bs_scenario(4);
  ResourceState state(s);
  Allocation a(4);
  state.commit(UeId{0}, BsId{0});
  a.assign(UeId{0}, BsId{0});
  std::vector<std::uint32_t> crus(s.num_bss() * s.num_services());
  std::vector<std::uint32_t> rrbs(s.num_bss());
  for (std::size_t i = 0; i < s.num_bss(); ++i) {
    const BsId bs{static_cast<std::uint32_t>(i)};
    rrbs[i] = state.remaining_rrbs(bs);
    for (std::size_t j = 0; j < s.num_services(); ++j)
      crus[i * s.num_services() + j] =
          state.remaining_crus(bs, ServiceId{static_cast<std::uint32_t>(j)});
  }
  EXPECT_TRUE(check_ledger_consistency(s, a, crus, rrbs).ok);

  // Drift one RRB and it must be called out, on the right BS.
  rrbs[0] += 1;
  const FeasibilityReport drifted = check_ledger_consistency(s, a, crus, rrbs);
  ASSERT_FALSE(drifted.ok);
  EXPECT_NE(drifted.violations.front().find("bs 0"), std::string::npos);
  EXPECT_NE(drifted.violations.front().find("RRB"), std::string::npos);
}

}  // namespace
}  // namespace dmra
