#include "sim/feasibility.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "util/require.hpp"

namespace dmra {
namespace {

TEST(Feasibility, CleanAllocationPasses) {
  const Scenario s = test::two_bs_scenario(4);
  Allocation a(4);
  a.assign(UeId{0}, BsId{0});
  a.assign(UeId{1}, BsId{1});
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.violations.empty());
}

TEST(Feasibility, AllCloudIsTriviallyFeasible) {
  const Scenario s = test::two_bs_scenario(4);
  EXPECT_TRUE(check_feasibility(s, Allocation(4)).ok);
}

TEST(Feasibility, DetectsCruOvercommit) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/6);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {20, 0}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  Allocation a(2);
  a.assign(UeId{0}, BsId{0});
  a.assign(UeId{1}, BsId{0});  // 8 CRUs demanded, 6 available
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations.front().find("Eq. 12"), std::string::npos);
}

TEST(Feasibility, DetectsRrbOvercommit) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, 100, /*rrbs=*/1);
  ms.add_ue(sp, {400, 0}, ServiceId{0}, 4, 2e6);
  ms.add_ue(sp, {410, 0}, ServiceId{0}, 4, 2e6);
  const Scenario s = ms.build();
  Allocation a(2);
  a.assign(UeId{0}, BsId{0});
  a.assign(UeId{1}, BsId{0});
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_FALSE(r.ok);
  bool found = false;
  for (const auto& v : r.violations)
    if (v.find("Eq. 14") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Feasibility, DetectsUnhostedService) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs_hosting(sp, {0, 0}, {ServiceId{0}});
  ms.add_ue(sp, {10, 0}, ServiceId{1});
  const Scenario s = ms.build();
  Allocation a(1);
  a.assign(UeId{0}, BsId{0});
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations.front().find("Eq. 13"), std::string::npos);
}

TEST(Feasibility, DetectsOutOfCoverageAssignment) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {900, 0}, ServiceId{0});
  const Scenario s = ms.build();
  Allocation a(1);
  a.assign(UeId{0}, BsId{0});
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations.front().find("coverage"), std::string::npos);
}

TEST(Feasibility, ReportsMultipleViolationsAtOnce) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs_hosting(sp, {0, 0}, {ServiceId{0}}, /*cru=*/3);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);  // CRU overcommit
  ms.add_ue(sp, {20, 0}, ServiceId{1}, 4);  // unhosted service
  const Scenario s = ms.build();
  Allocation a(2);
  a.assign(UeId{0}, BsId{0});
  a.assign(UeId{1}, BsId{0});
  const FeasibilityReport r = check_feasibility(s, a);
  EXPECT_FALSE(r.ok);
  EXPECT_GE(r.violations.size(), 2u);
}

TEST(Feasibility, SizeMismatchIsContractViolation) {
  const Scenario s = test::two_bs_scenario(4);
  EXPECT_THROW(check_feasibility(s, Allocation(3)), ContractViolation);
}

}  // namespace
}  // namespace dmra
