#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "radio/units.hpp"

namespace dmra {
namespace {

TEST(Metrics, MatchHandComputation) {
  const Scenario s = test::two_bs_scenario(4);
  Allocation a(4);
  a.assign(UeId{0}, BsId{0});  // same SP
  a.assign(UeId{1}, BsId{0});  // cross SP (UE 1 subscribes to SP 1)

  const RunMetrics m = evaluate(s, a);
  EXPECT_EQ(m.served, 2u);
  EXPECT_EQ(m.cloud, 2u);
  EXPECT_DOUBLE_EQ(m.served_ratio, 0.5);
  EXPECT_DOUBLE_EQ(m.same_sp_ratio, 0.5);
  EXPECT_NEAR(m.total_profit,
              s.pair_profit(UeId{0}, BsId{0}) + s.pair_profit(UeId{1}, BsId{0}), 1e-9);
  const double expected_fwd =
      (s.ue(UeId{2}).rate_demand_bps + s.ue(UeId{3}).rate_demand_bps) / kBitsPerMbit;
  EXPECT_NEAR(m.forwarded_traffic_mbps, expected_fwd, 1e-9);
  ASSERT_EQ(m.per_sp_profit.size(), 2u);
}

TEST(Metrics, UtilizationReflectsCommittedResources) {
  const Scenario s = test::two_bs_scenario(2);
  Allocation a(2);
  a.assign(UeId{0}, BsId{0});
  const RunMetrics m = evaluate(s, a);
  // BS 0: 4 CRUs of 200 total (2 services × 100); BS 1 idle.
  const double bs0_cru = 4.0 / 200.0;
  EXPECT_NEAR(m.mean_cru_utilization, bs0_cru / 2.0, 1e-12);
  const double bs0_rrb =
      static_cast<double>(s.link(UeId{0}, BsId{0}).n_rrbs) / 55.0;
  EXPECT_NEAR(m.mean_rrb_utilization, bs0_rrb / 2.0, 1e-12);
}

TEST(Metrics, EmptyAllocationIsAllZeros) {
  const Scenario s = test::two_bs_scenario(3);
  const RunMetrics m = evaluate(s, Allocation(3));
  EXPECT_DOUBLE_EQ(m.total_profit, 0.0);
  EXPECT_EQ(m.served, 0u);
  EXPECT_DOUBLE_EQ(m.mean_cru_utilization, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_rrb_utilization, 0.0);
  EXPECT_GT(m.forwarded_traffic_mbps, 0.0);
}

TEST(Metrics, PerSpProfitSumsToTotal) {
  const Scenario s = test::two_bs_scenario(4);
  Allocation a(4);
  a.assign(UeId{0}, BsId{0});
  a.assign(UeId{1}, BsId{1});
  a.assign(UeId{2}, BsId{0});
  const RunMetrics m = evaluate(s, a);
  double sum = 0.0;
  for (double p : m.per_sp_profit) sum += p;
  EXPECT_NEAR(sum, m.total_profit, 1e-9);
}

}  // namespace
}  // namespace dmra
