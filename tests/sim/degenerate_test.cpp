// Degenerate-scenario coverage: zero BSs and zero UEs are legal instances
// (e.g. the residual scenario of a drained online run). Every allocator
// and the metrics pipeline must handle them without NaNs, crashes, or
// auditor complaints.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "baselines/dcsp.hpp"
#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "baselines/nonco.hpp"
#include "baselines/random_alloc.hpp"
#include "check/invariant_auditor.hpp"
#include "core/decentralized.hpp"
#include "core/dmra_allocator.hpp"
#include "core/solver.hpp"
#include "mec/audit.hpp"
#include "sim/metrics.hpp"
#include "../test_util.hpp"

namespace dmra {
namespace {

using test::MiniScenario;

/// One SP, two services, no BSs; `ues` UEs with nothing to propose to.
Scenario zero_bs_scenario(std::size_t ues) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  for (std::size_t i = 0; i < ues; ++i)
    ms.add_ue(sp, {50.0 * static_cast<double>(i), 0.0},
              ServiceId{static_cast<std::uint32_t>(i % 2)});
  return ms.build();
}

/// One SP, one BS, no UEs.
Scenario zero_ue_scenario() {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0.0, 0.0});
  return ms.build();
}

std::vector<AllocatorPtr> all_allocators() {
  std::vector<AllocatorPtr> algos;
  algos.push_back(std::make_unique<DmraAllocator>());
  algos.push_back(std::make_unique<DcspAllocator>());
  algos.push_back(std::make_unique<NonCoAllocator>());
  algos.push_back(std::make_unique<GreedyProfitAllocator>());
  algos.push_back(std::make_unique<RandomAllocator>(/*seed=*/7));
  algos.push_back(std::make_unique<ExactAllocator>());
  return algos;
}

void expect_finite_metrics(const RunMetrics& m) {
  EXPECT_TRUE(std::isfinite(m.total_profit));
  EXPECT_TRUE(std::isfinite(m.mean_cru_utilization));
  EXPECT_TRUE(std::isfinite(m.mean_rrb_utilization));
  EXPECT_TRUE(std::isfinite(m.forwarded_traffic_mbps));
}

TEST(Degenerate, ZeroBsScenarioBuilds) {
  const Scenario scenario = zero_bs_scenario(3);
  EXPECT_EQ(scenario.num_bss(), 0u);
  EXPECT_EQ(scenario.num_ues(), 3u);
  for (const UserEquipment& ue : scenario.ues())
    EXPECT_TRUE(scenario.candidates(ue.id).empty());
}

TEST(Degenerate, EvaluateZeroBsHasNoNan) {
  const Scenario scenario = zero_bs_scenario(3);
  const Allocation alloc(scenario.num_ues());  // everyone at the cloud
  const RunMetrics m = evaluate(scenario, alloc);
  expect_finite_metrics(m);
  EXPECT_EQ(m.served, 0u);
  EXPECT_EQ(m.cloud, 3u);
  EXPECT_DOUBLE_EQ(m.mean_cru_utilization, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_rrb_utilization, 0.0);
}

TEST(Degenerate, EvaluateZeroUeHasNoNan) {
  const Scenario scenario = zero_ue_scenario();
  const Allocation alloc(0);
  const RunMetrics m = evaluate(scenario, alloc);
  expect_finite_metrics(m);
  EXPECT_EQ(m.served, 0u);
  EXPECT_EQ(m.cloud, 0u);
  EXPECT_DOUBLE_EQ(m.total_profit, 0.0);
}

TEST(Degenerate, DmraSolverHandlesZeroBsAndZeroUe) {
  check::InvariantAuditor auditor;
  audit::ScopedAuditObserver install(&auditor);

  const Scenario no_bs = zero_bs_scenario(3);
  const DmraResult r1 = solve_dmra(no_bs, {});
  EXPECT_EQ(r1.allocation.num_served(), 0u);
  EXPECT_EQ(r1.rounds, 0u);

  const Scenario no_ue = zero_ue_scenario();
  const DmraResult r2 = solve_dmra(no_ue, {});
  EXPECT_EQ(r2.allocation.num_ues(), 0u);
  EXPECT_EQ(r2.rounds, 0u);
}

TEST(Degenerate, DecentralizedRuntimeHandlesZeroBsAndZeroUe) {
  check::InvariantAuditor auditor;
  audit::ScopedAuditObserver install(&auditor);

  const DecentralizedResult r1 = run_decentralized_dmra(zero_bs_scenario(3));
  EXPECT_EQ(r1.dmra.allocation.num_served(), 0u);
  EXPECT_EQ(r1.bus.messages_sent, 0u);  // nothing to broadcast, nothing proposed

  const DecentralizedResult r2 = run_decentralized_dmra(zero_ue_scenario());
  EXPECT_EQ(r2.dmra.allocation.num_ues(), 0u);
}

TEST(Degenerate, AllAllocatorsSurviveZeroBs) {
  check::InvariantAuditor auditor;
  audit::ScopedAuditObserver install(&auditor);
  const Scenario scenario = zero_bs_scenario(4);
  for (const AllocatorPtr& algo : all_allocators()) {
    SCOPED_TRACE(algo->name());
    const Allocation alloc = algo->allocate(scenario);
    EXPECT_EQ(alloc.num_ues(), scenario.num_ues());
    EXPECT_EQ(alloc.num_served(), 0u);
    expect_finite_metrics(evaluate(scenario, alloc));
  }
}

TEST(Degenerate, AllAllocatorsSurviveZeroUe) {
  check::InvariantAuditor auditor;
  audit::ScopedAuditObserver install(&auditor);
  const Scenario scenario = zero_ue_scenario();
  for (const AllocatorPtr& algo : all_allocators()) {
    SCOPED_TRACE(algo->name());
    const Allocation alloc = algo->allocate(scenario);
    EXPECT_EQ(alloc.num_ues(), 0u);
    expect_finite_metrics(evaluate(scenario, alloc));
  }
}

}  // namespace
}  // namespace dmra
