#include "sim/render.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "../test_util.hpp"
#include "core/dmra_allocator.hpp"
#include "util/require.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> lines;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(Render, DeploymentHasExpectedDimensions) {
  ScenarioConfig cfg;
  cfg.num_ues = 200;
  const Scenario s = generate_scenario(cfg, 1);
  RenderOptions opts;
  opts.cols = 40;
  opts.rows = 10;
  opts.legend = false;
  const auto lines = lines_of(render_deployment(s, opts));
  ASSERT_EQ(lines.size(), 12u);  // top border + 10 rows + bottom border
  for (const std::string& line : lines) EXPECT_EQ(line.size(), 42u);
}

TEST(Render, EveryBsAppearsAsItsSpLetter) {
  ScenarioConfig cfg;
  cfg.num_ues = 50;
  const Scenario s = generate_scenario(cfg, 2);
  const std::string map = render_deployment(s);
  for (char sp_letter : {'A', 'B', 'C', 'D', 'E'})
    EXPECT_NE(map.find(sp_letter), std::string::npos) << sp_letter;
}

TEST(Render, DenseCellsUseHeavierGlyphs) {
  // All UEs in one corner → exactly one heavy cell, everything else blank.
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {1200, 1200});
  for (int i = 0; i < 30; ++i) ms.add_ue(sp, {2.0, 2.0}, ServiceId{0});
  const Scenario s = ms.build();
  RenderOptions opts;
  opts.legend = false;
  const std::string map = render_deployment(s, opts);
  EXPECT_NE(map.find('@'), std::string::npos);
}

TEST(Render, UtilizationShowsIdleAndBusyBuckets) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, 100, /*rrbs=*/2);    // will saturate
  ms.add_bs(sp, {400, 0});                   // stays idle
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4, 6e6);
  ms.add_ue(sp, {12, 0}, ServiceId{0}, 4, 6e6);
  const Scenario s = ms.build();
  Allocation a(2);
  a.assign(UeId{0}, BsId{0});  // 1 RRB of 2 → bucket '5'
  RenderOptions opts;
  opts.legend = false;
  const std::string map = render_utilization(s, a, opts);
  EXPECT_NE(map.find('5'), std::string::npos);  // half-loaded BS
  EXPECT_NE(map.find('0'), std::string::npos);  // idle BS
}

TEST(Render, CloudForwardedUesShadeTheMap) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  for (int i = 0; i < 10; ++i) ms.add_ue(sp, {1100.0, 1100.0}, ServiceId{0});
  const Scenario s = ms.build();
  const Allocation all_cloud(10);
  RenderOptions opts;
  opts.legend = false;
  const std::string map = render_utilization(s, all_cloud, opts);
  EXPECT_NE(map.find('@'), std::string::npos);  // the stranded cluster
}

TEST(Render, LegendToggle) {
  ScenarioConfig cfg;
  cfg.num_ues = 20;
  const Scenario s = generate_scenario(cfg, 3);
  RenderOptions with, without;
  without.legend = false;
  EXPECT_NE(render_deployment(s, with).find("UE density"), std::string::npos);
  EXPECT_EQ(render_deployment(s, without).find("UE density"), std::string::npos);
}

TEST(Render, TinyGridsRejected) {
  ScenarioConfig cfg;
  cfg.num_ues = 10;
  const Scenario s = generate_scenario(cfg, 1);
  RenderOptions opts;
  opts.cols = 2;
  EXPECT_THROW(render_deployment(s, opts), ContractViolation);
}

TEST(Render, AllocationSizeMismatchRejected) {
  ScenarioConfig cfg;
  cfg.num_ues = 10;
  const Scenario s = generate_scenario(cfg, 1);
  EXPECT_THROW(render_utilization(s, Allocation(3)), ContractViolation);
}

}  // namespace
}  // namespace dmra
