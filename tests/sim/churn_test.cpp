// Serving-driver contracts (docs/SERVING.md): deterministic timelines and
// event logs, auditor-clean replay (including departures and faults), and
// the degenerate 0-arrival / 0-dwell cases next to sim/degenerate_test.
#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "check/invariant_auditor.hpp"
#include "mec/allocation.hpp"
#include "mec/audit.hpp"
#include "obs/recorder.hpp"
#include "sim/feasibility.hpp"

namespace dmra {
namespace {

ChurnConfig small_config() {
  ChurnConfig cfg;
  cfg.arrival_rate_hz = 8.0;
  cfg.mean_dwell_s = 25.0;
  cfg.mean_move_interval_s = 10.0;
  cfg.horizon_events = 400;
  cfg.resolve_every = 100;
  cfg.readmit_every = 32;
  cfg.seed = 17;
  return cfg;
}

TEST(Churn, TimelineIsDeterministic) {
  const ChurnConfig cfg = small_config();
  const ChurnTimeline a = build_churn_timeline(cfg);
  const ChurnTimeline b = build_churn_timeline(cfg);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.events.size(), cfg.horizon_events);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].ue, b.events[i].ue);
    EXPECT_EQ(a.events[i].slot, b.events[i].slot);
    EXPECT_EQ(a.events[i].prev_slot, b.events[i].prev_slot);
    EXPECT_EQ(a.events[i].time_s, b.events[i].time_s);
  }
  EXPECT_EQ(a.universe.num_ues(), b.universe.num_ues());
  EXPECT_EQ(a.num_logical_ues, b.num_logical_ues);
  // One slot per arrival plus one per move; event times never decrease.
  double last = 0.0;
  std::size_t arrivals = 0, moves = 0;
  for (const ChurnEvent& e : a.events) {
    EXPECT_GE(e.time_s, last);
    last = e.time_s;
    if (e.kind == ChurnEventKind::kArrival) ++arrivals;
    if (e.kind == ChurnEventKind::kMove) ++moves;
  }
  EXPECT_EQ(a.universe.num_ues(), arrivals + moves);
}

TEST(Churn, RunIsDeterministicAndTracingInvariant) {
  const ChurnConfig cfg = small_config();
  const ChurnResult untraced = run_churn(cfg);

  obs::TraceRecorder rec;
  ChurnResult traced;
  {
    obs::ScopedTraceRecorder install(&rec);
    traced = run_churn(cfg);
  }
  // Tracing must not perturb any deterministic surface.
  EXPECT_EQ(untraced.event_log, traced.event_log);
  EXPECT_EQ(untraced.final_allocation, traced.final_allocation);
  EXPECT_EQ(untraced.stats.events, traced.stats.events);
  EXPECT_EQ(untraced.stats.reassociations, traced.stats.reassociations);
  EXPECT_EQ(untraced.stats.final_profit, traced.stats.final_profit);

  // One RoundRow per applied event, all from this driver.
  ASSERT_EQ(rec.rows().size(), traced.stats.events);
  for (const obs::RoundRow& row : rec.rows()) EXPECT_EQ(row.source, "sim/churn");
  // Every applied event narrates itself on the timeline track.
  std::size_t timeline_events = 0;
  for (const obs::TraceEvent& e : rec.events())
    if (e.kind == obs::EventKind::kTimeline) ++timeline_events;
  EXPECT_EQ(timeline_events, traced.stats.events);
}

TEST(Churn, StatsAreInternallyConsistent) {
  const ChurnResult r = run_churn(small_config());
  const ChurnStats& s = r.stats;
  EXPECT_EQ(s.events, s.arrivals + s.departures + s.moves);
  EXPECT_EQ(s.final_active, s.arrivals - s.departures);
  EXPECT_EQ(s.final_active, s.final_served + s.final_cloud);
  EXPECT_GT(s.moves, 0u);
  EXPECT_LE(s.reassociations, s.moves + s.orphaned_ues);
  EXPECT_LE(s.cross_region_moves, s.moves);
  EXPECT_GE(s.peak_active, s.final_active);
  EXPECT_EQ(s.resolves, small_config().horizon_events / 100);
}

TEST(Churn, FinalAllocationIsFeasibleAndProfitMatches) {
  const ChurnConfig cfg = small_config();
  const ChurnTimeline timeline = build_churn_timeline(cfg);
  const ChurnResult r = run_churn(timeline, cfg);
  const FeasibilityReport report = check_feasibility(timeline.universe, r.final_allocation);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
  const double recomputed = total_profit(timeline.universe, r.final_allocation);
  EXPECT_NEAR(r.stats.final_profit, recomputed,
              1e-9 * std::max(1.0, std::abs(recomputed)));
}

// Departure conservation: every release is recounted by the auditor's
// ledger cross-check after every event (round 0 keeps it stateless). A
// short dwell maximizes departures through the audited window.
TEST(Churn, AuditedHighChurnRunIsClean) {
  ChurnConfig cfg = small_config();
  cfg.mean_dwell_s = 5.0;  // heavy departure traffic
  check::InvariantAuditor auditor;
  audit::ScopedAuditObserver install(&auditor);
  ChurnResult r;
  EXPECT_NO_THROW(r = run_churn(cfg));
  EXPECT_GT(r.stats.departures, 50u);
}

TEST(Churn, AuditedFaultRunIsClean) {
  ChurnConfig cfg = small_config();
  cfg.prefill = 200;  // crash lands on a loaded deployment
  FaultSpec faults;
  faults.crashes = 1;
  faults.crash_round = 120;   // event index on the serving timeline
  faults.down_rounds = 150;   // recovers at event 270
  faults.seed = 3;
  cfg.faults = faults;
  check::InvariantAuditor auditor;
  audit::ScopedAuditObserver install(&auditor);
  ChurnResult r;
  EXPECT_NO_THROW(r = run_churn(cfg));
  EXPECT_EQ(r.stats.crashes, 1u);
  EXPECT_EQ(r.stats.recoveries, 1u);
  EXPECT_GT(r.stats.orphaned_ues, 0u);
  EXPECT_GE(r.stats.recovery_events_max, 1u);
  // Crash evictions are reassociations (served → cloud).
  EXPECT_GE(r.stats.reassociations, r.stats.orphaned_ues);
}

TEST(Churn, FaultSameSeedIsByteIdentical) {
  ChurnConfig cfg = small_config();
  FaultSpec faults;
  faults.crashes = 2;
  faults.crash_round = 80;
  faults.down_rounds = 100;
  faults.degradations = 1;
  faults.degrade_round = 50;
  faults.seed = 11;
  cfg.faults = faults;
  const ChurnResult a = run_churn(cfg);
  const ChurnResult b = run_churn(cfg);
  EXPECT_EQ(a.event_log, b.event_log);
  EXPECT_EQ(a.final_allocation, b.final_allocation);
  EXPECT_EQ(a.stats.readmitted, b.stats.readmitted);
  EXPECT_EQ(a.stats.recovery_events_max, b.stats.recovery_events_max);
}

TEST(Churn, ZeroArrivalDegenerate) {
  ChurnConfig cfg;
  cfg.arrival_rate_hz = 0.0;
  cfg.prefill = 0;
  cfg.horizon_events = 100;
  const ChurnResult r = run_churn(cfg);
  EXPECT_EQ(r.stats.events, 0u);
  EXPECT_EQ(r.stats.universe_slots, 0u);
  EXPECT_EQ(r.final_allocation.num_ues(), 0u);
  EXPECT_EQ(r.latency.count(), 0u);
  EXPECT_EQ(r.event_log, "final events=0 active=0 served=0 cloud=0 profit=0\n");
}

TEST(Churn, ZeroDwellDegenerate) {
  ChurnConfig cfg;
  cfg.arrival_rate_hz = 5.0;
  cfg.mean_dwell_s = 0.0;  // depart the instant they arrive
  cfg.horizon_events = 100;
  cfg.seed = 5;
  check::InvariantAuditor auditor;
  audit::ScopedAuditObserver install(&auditor);
  ChurnResult r;
  EXPECT_NO_THROW(r = run_churn(cfg));
  // Arrivals and departures interleave one-for-one.
  EXPECT_EQ(r.stats.final_active, r.stats.arrivals - r.stats.departures);
  EXPECT_LE(r.stats.final_active, 1u);
  EXPECT_EQ(r.stats.moves, 0u);
  EXPECT_NEAR(r.stats.final_profit,
              total_profit(build_churn_timeline(cfg).universe, r.final_allocation), 1e-9);
}

TEST(Churn, PrefillArrivesAtTimeZeroAndCountsTowardHorizon) {
  ChurnConfig cfg;
  cfg.arrival_rate_hz = 0.0;  // prefill only
  cfg.mean_dwell_s = 50.0;
  cfg.prefill = 60;
  cfg.horizon_events = 60;
  const ChurnResult r = run_churn(cfg);
  EXPECT_EQ(r.stats.events, 60u);
  EXPECT_EQ(r.stats.arrivals, 60u);
  EXPECT_EQ(r.stats.final_active, 60u);
  const ChurnTimeline timeline = build_churn_timeline(cfg);
  for (const ChurnEvent& e : timeline.events) EXPECT_EQ(e.time_s, 0.0);
}

TEST(Churn, SteadyStateTargetIsRateTimesDwell) {
  ChurnConfig cfg;
  cfg.arrival_rate_hz = 20.0;
  cfg.mean_dwell_s = 100.0;
  EXPECT_EQ(cfg.steady_state_target(), 2000u);
  cfg.arrival_rate_hz = 0.0;
  EXPECT_EQ(cfg.steady_state_target(), 0u);
}

}  // namespace
}  // namespace dmra
