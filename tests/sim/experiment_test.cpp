#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/nonco.hpp"
#include "core/dmra_allocator.hpp"
#include "util/require.hpp"

namespace dmra {
namespace {

ExperimentSpec tiny_spec() {
  ExperimentSpec spec;
  spec.title = "tiny";
  spec.x_label = "UEs";
  spec.xs = {30, 60};
  spec.seeds = {1, 2, 3};
  spec.make_config = [](double x) {
    ScenarioConfig cfg;
    cfg.num_ues = static_cast<std::size_t>(x);
    return cfg;
  };
  spec.make_allocators = [](double) {
    std::vector<AllocatorPtr> algos;
    algos.push_back(std::make_unique<DmraAllocator>());
    algos.push_back(std::make_unique<NonCoAllocator>());
    return algos;
  };
  return spec;
}

TEST(Experiment, ShapesAndNames) {
  const ExperimentResult r = run_experiment(tiny_spec());
  EXPECT_EQ(r.title, "tiny");
  ASSERT_EQ(r.xs.size(), 2u);
  ASSERT_EQ(r.cells.size(), 2u);
  ASSERT_EQ(r.cells[0].size(), 2u);
  EXPECT_EQ(r.algo_names, (std::vector<std::string>{"DMRA", "NonCo"}));
  for (const auto& row : r.cells)
    for (const Summary& s : row) EXPECT_EQ(s.count, 3u);
}

TEST(Experiment, Deterministic) {
  const ExperimentResult a = run_experiment(tiny_spec());
  const ExperimentResult b = run_experiment(tiny_spec());
  for (std::size_t x = 0; x < a.cells.size(); ++x)
    for (std::size_t i = 0; i < a.cells[x].size(); ++i)
      EXPECT_DOUBLE_EQ(a.cells[x][i].mean, b.cells[x][i].mean);
}

TEST(Experiment, DefaultMetricIsTotalProfit) {
  ExperimentSpec spec = tiny_spec();
  const ExperimentResult with_default = run_experiment(spec);
  spec.metric = [](const RunMetrics& m) { return m.total_profit; };
  const ExperimentResult with_explicit = run_experiment(spec);
  EXPECT_DOUBLE_EQ(with_default.cells[0][0].mean, with_explicit.cells[0][0].mean);
}

TEST(Experiment, CustomMetricIsUsed) {
  ExperimentSpec spec = tiny_spec();
  spec.metric = [](const RunMetrics& m) { return static_cast<double>(m.served); };
  const ExperimentResult r = run_experiment(spec);
  // At 30 UEs with paper capacities everything is served.
  EXPECT_DOUBLE_EQ(r.cells[0][0].mean, 30.0);
}

TEST(Experiment, TableHasOneRowPerSweepPoint) {
  const ExperimentResult r = run_experiment(tiny_spec());
  const Table t = r.to_table();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 3u);  // x + 2 algorithms
  EXPECT_NE(t.to_aligned().find("DMRA"), std::string::npos);
}

TEST(Experiment, SpecMisuseIsContractViolation) {
  ExperimentSpec spec = tiny_spec();
  spec.xs.clear();
  EXPECT_THROW(run_experiment(spec), ContractViolation);

  spec = tiny_spec();
  spec.make_config = nullptr;
  EXPECT_THROW(run_experiment(spec), ContractViolation);

  spec = tiny_spec();
  spec.seeds.clear();
  EXPECT_THROW(run_experiment(spec), ContractViolation);

  spec = tiny_spec();
  spec.make_allocators = [](double) { return std::vector<AllocatorPtr>{}; };
  EXPECT_THROW(run_experiment(spec), ContractViolation);
}

TEST(Experiment, InconsistentAlgorithmSetsRejected) {
  ExperimentSpec spec = tiny_spec();
  spec.make_allocators = [](double x) {
    std::vector<AllocatorPtr> algos;
    algos.push_back(std::make_unique<DmraAllocator>());
    if (x > 40) algos.push_back(std::make_unique<NonCoAllocator>());
    return algos;
  };
  EXPECT_THROW(run_experiment(spec), ContractViolation);
}

TEST(Experiment, SignificanceTableComparesLeaderToChallengers) {
  const ExperimentResult r = run_experiment(tiny_spec());
  const Table t = r.to_significance_table();
  EXPECT_EQ(t.num_rows(), 2u);  // 2 sweep points × 1 challenger
  const std::string text = t.to_aligned();
  EXPECT_NE(text.find("DMRA vs NonCo"), std::string::npos);
}

TEST(Experiment, SignificanceNeedsTwoAlgorithms) {
  ExperimentSpec spec = tiny_spec();
  spec.make_allocators = [](double) {
    std::vector<AllocatorPtr> algos;
    algos.push_back(std::make_unique<DmraAllocator>());
    return algos;
  };
  const ExperimentResult r = run_experiment(spec);
  EXPECT_THROW(r.to_significance_table(), ContractViolation);
}

TEST(Experiment, DatOutputIsColumnar) {
  const ExperimentResult r = run_experiment(tiny_spec());
  const std::string dat = r.to_dat();
  // Two comment lines + one line per sweep point, 1 + 2·algos columns.
  std::istringstream is(dat);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line.front(), '#');
  std::getline(is, line);
  EXPECT_NE(line.find("DMRA"), std::string::npos);
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    std::istringstream fields(line);
    double v;
    std::size_t n = 0;
    while (fields >> v) ++n;
    EXPECT_EQ(n, 1u + 2u * r.algo_names.size());
    ++rows;
  }
  EXPECT_EQ(rows, r.xs.size());
}

TEST(Experiment, GnuplotScriptReferencesEverySeries) {
  const ExperimentResult r = run_experiment(tiny_spec());
  const std::string gp = r.to_gnuplot("series.dat");
  EXPECT_NE(gp.find("series.dat"), std::string::npos);
  for (const std::string& name : r.algo_names)
    EXPECT_NE(gp.find("title \"" + name + "\""), std::string::npos);
  EXPECT_NE(gp.find("yerrorlines"), std::string::npos);
}

TEST(Experiment, DefaultSeedsHelper) {
  const auto seeds = default_seeds(4);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(Experiment, ParallelJobsAreByteIdenticalToSerial) {
  // The tentpole determinism contract: fanning replications across worker
  // threads must not change a single bit of the rendered output, because
  // the per-seed metric values are reduced in seed order on one thread.
  ExperimentSpec spec = tiny_spec();
  spec.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.jobs = 1;
  const ExperimentResult serial = run_experiment(spec);
  const std::string serial_dat = serial.to_dat();
  for (const std::size_t jobs : {2u, 8u, 0u}) {  // 0 = hardware concurrency
    spec.jobs = jobs;
    const ExperimentResult parallel = run_experiment(spec);
    EXPECT_EQ(parallel.to_dat(), serial_dat) << "jobs=" << jobs;
    for (std::size_t x = 0; x < serial.cells.size(); ++x)
      for (std::size_t i = 0; i < serial.cells[x].size(); ++i) {
        // Bitwise, not just EXPECT_DOUBLE_EQ-close.
        EXPECT_EQ(parallel.cells[x][i].mean, serial.cells[x][i].mean);
        EXPECT_EQ(parallel.cells[x][i].stddev, serial.cells[x][i].stddev);
      }
  }
}

TEST(Experiment, WorkerExceptionPropagatesToCaller) {
  ExperimentSpec spec = tiny_spec();
  spec.jobs = 4;
  spec.metric = [](const RunMetrics&) -> double {
    throw ContractViolation("metric failure inside worker");
  };
  EXPECT_THROW(run_experiment(spec), ContractViolation);
}

}  // namespace
}  // namespace dmra
