#include "sim/online.hpp"

#include <gtest/gtest.h>

#include "baselines/nonco.hpp"
#include "core/dmra_allocator.hpp"
#include "util/require.hpp"

namespace dmra {
namespace {

OnlineConfig small_config() {
  OnlineConfig cfg;
  cfg.scenario.num_ues = 80;
  cfg.epochs = 8;
  cfg.lifetime_min_epochs = 2;
  cfg.lifetime_max_epochs = 3;
  cfg.seed = 5;
  return cfg;
}

TEST(Online, RunsAllEpochsAndAccounts) {
  const DmraAllocator algo;
  OnlineSimulator sim(small_config(), algo);
  const OnlineResult r = sim.run();
  ASSERT_EQ(r.epochs.size(), 8u);
  double profit = 0.0;
  std::size_t served = 0, cloud = 0;
  for (const EpochStats& e : r.epochs) {
    EXPECT_EQ(e.arrivals, 80u);
    EXPECT_EQ(e.served + e.cloud, e.arrivals);
    profit += e.profit;
    served += e.served;
    cloud += e.cloud;
  }
  EXPECT_DOUBLE_EQ(r.cumulative_profit, profit);
  EXPECT_EQ(r.total_served, served);
  EXPECT_EQ(r.total_cloud, cloud);
}

TEST(Online, Deterministic) {
  const DmraAllocator algo;
  const OnlineResult a = OnlineSimulator(small_config(), algo).run();
  const OnlineResult b = OnlineSimulator(small_config(), algo).run();
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].served, b.epochs[i].served);
    EXPECT_DOUBLE_EQ(a.epochs[i].profit, b.epochs[i].profit);
  }
}

TEST(Online, ArrivalBatchesDifferAcrossEpochs) {
  const DmraAllocator algo;
  OnlineSimulator sim(small_config(), algo);
  const EpochStats e0 = sim.step();
  const EpochStats e1 = sim.step();
  // Same batch size, but independent draws → profits differ.
  EXPECT_NE(e0.profit, e1.profit);
}

TEST(Online, ResourcesConserved) {
  // After every epoch, remaining + held-by-active equals the original
  // capacity, for every BS and service.
  OnlineConfig cfg = small_config();
  cfg.scenario.num_ues = 200;  // enough load to commit plenty
  const DmraAllocator algo;
  OnlineSimulator sim(cfg, algo);
  const Scenario base = generate_scenario(cfg.scenario, cfg.seed);

  for (int e = 0; e < 6; ++e) {
    sim.step();
    std::vector<std::uint64_t> rrb_total(base.num_bss());
    for (std::size_t i = 0; i < base.num_bss(); ++i)
      rrb_total[i] = sim.remaining_rrbs(BsId{static_cast<std::uint32_t>(i)});
    // remaining never exceeds capacity (no double release)...
    for (std::size_t i = 0; i < base.num_bss(); ++i) {
      const BsId bs{static_cast<std::uint32_t>(i)};
      EXPECT_LE(sim.remaining_rrbs(bs), base.bs(bs).num_rrbs);
      for (std::size_t j = 0; j < base.num_services(); ++j) {
        const ServiceId svc{static_cast<std::uint32_t>(j)};
        EXPECT_LE(sim.remaining_crus(bs, svc), base.bs(bs).cru_capacity[j]);
      }
    }
  }
}

TEST(Online, DeparturesFreeResources) {
  OnlineConfig cfg = small_config();
  cfg.scenario.num_ues = 300;
  cfg.lifetime_min_epochs = 1;
  cfg.lifetime_max_epochs = 1;  // everything departs after one epoch
  const DmraAllocator algo;
  OnlineSimulator sim(cfg, algo);
  const EpochStats e0 = sim.step();
  EXPECT_GT(e0.active_tasks, 0u);
  const EpochStats e1 = sim.step();
  // With 1-epoch lifetimes the previous batch fully departed: the active
  // count equals just this epoch's admissions.
  EXPECT_EQ(e1.active_tasks, e1.served);
}

TEST(Online, SteadyStateUtilizationStabilizes) {
  OnlineConfig cfg = small_config();
  cfg.scenario.num_ues = 260;
  cfg.epochs = 12;
  cfg.lifetime_min_epochs = 4;
  cfg.lifetime_max_epochs = 4;
  const DmraAllocator algo;
  const OnlineResult r = OnlineSimulator(cfg, algo).run();
  // Warm-up grows utilization; afterwards it stays within a band.
  EXPECT_GT(r.epochs[4].mean_rrb_utilization, r.epochs[0].mean_rrb_utilization);
  const double late_a = r.epochs[9].mean_rrb_utilization;
  const double late_b = r.epochs[11].mean_rrb_utilization;
  EXPECT_NEAR(late_a, late_b, 0.15);
}

TEST(Online, WorksWithAnyAllocator) {
  const NonCoAllocator nonco;
  OnlineConfig cfg = small_config();
  cfg.epochs = 4;
  const OnlineResult r = OnlineSimulator(cfg, nonco).run();
  EXPECT_EQ(r.epochs.size(), 4u);
  EXPECT_GT(r.total_served, 0u);
}

TEST(Online, TableHasOneRowPerEpoch) {
  const DmraAllocator algo;
  const OnlineResult r = OnlineSimulator(small_config(), algo).run();
  EXPECT_EQ(r.to_table().num_rows(), r.epochs.size());
}

TEST(Online, LifetimeContracts) {
  OnlineConfig cfg = small_config();
  cfg.lifetime_min_epochs = 0;
  const DmraAllocator algo;
  EXPECT_THROW(OnlineSimulator(cfg, algo), ContractViolation);
  cfg.lifetime_min_epochs = 5;
  cfg.lifetime_max_epochs = 4;
  EXPECT_THROW(OnlineSimulator(cfg, algo), ContractViolation);
}

}  // namespace
}  // namespace dmra
