#include "mec/pricing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"

namespace dmra {
namespace {

PricingConfig linear_cfg() {
  PricingConfig cfg;  // defaults: b=1, iota=2, sigma=0.003/m, linear
  return cfg;
}

TEST(Pricing, LinearFormKnownValues) {
  const PricingConfig cfg = linear_cfg();
  // same SP: b + σ·d·b = 1 + 0.003·200 = 1.6
  EXPECT_NEAR(cru_price(cfg, 200.0, true), 1.6, 1e-12);
  // cross SP: ι·b + σ·d·b = 2 + 0.6 = 2.6
  EXPECT_NEAR(cru_price(cfg, 200.0, false), 2.6, 1e-12);
}

TEST(Pricing, PowerFormKnownValues) {
  PricingConfig cfg = linear_cfg();
  cfg.transmission = TransmissionPricing::kPower;
  cfg.sigma = 0.01;
  EXPECT_NEAR(cru_price(cfg, 200.0, true), 1.0 + std::pow(200.0, 0.01), 1e-12);
  EXPECT_NEAR(cru_price(cfg, 200.0, false), 2.0 + std::pow(200.0, 0.01), 1e-12);
}

TEST(Pricing, CrossSpAlwaysCostsMore) {
  const PricingConfig cfg = linear_cfg();
  for (double d : {1.0, 50.0, 200.0, 500.0})
    EXPECT_GT(cru_price(cfg, d, false), cru_price(cfg, d, true));
}

TEST(Pricing, MonotoneInDistanceBothForms) {
  for (auto form : {TransmissionPricing::kLinear, TransmissionPricing::kPower}) {
    PricingConfig cfg = linear_cfg();
    cfg.transmission = form;
    double prev = cru_price(cfg, 1.0, true);
    for (double d = 50.0; d <= 500.0; d += 50.0) {
      const double p = cru_price(cfg, d, true);
      EXPECT_GT(p, prev);
      prev = p;
    }
  }
}

TEST(Pricing, DistanceClampedBelowMinimum) {
  const PricingConfig cfg = linear_cfg();
  EXPECT_DOUBLE_EQ(cru_price(cfg, 0.0, true), cru_price(cfg, cfg.min_distance_m, true));
}

TEST(Pricing, MarginIsPriceComplement) {
  const PricingConfig cfg = linear_cfg();
  const double d = 123.0;
  EXPECT_NEAR(cru_margin(cfg, d, true), cfg.m_k - cru_price(cfg, d, true) - cfg.m_k_o,
              1e-12);
}

TEST(Pricing, Eq16HoldsAtPaperDefaultsWithinCoverage) {
  const PricingConfig cfg = linear_cfg();
  EXPECT_TRUE(pricing_valid_for(cfg, 500.0));
  EXPECT_TRUE(is_profitable(cfg, 500.0, false));
  EXPECT_TRUE(is_profitable(cfg, 500.0, true));
}

TEST(Pricing, Eq16FailsWhenMarginExhausted) {
  PricingConfig cfg = linear_cfg();
  cfg.m_k = 3.0;  // max cross-SP price at 500 m is 2 + 1.5 = 3.5 > 3 − 1
  EXPECT_FALSE(pricing_valid_for(cfg, 500.0));
  // But a short link can still be profitable.
  EXPECT_TRUE(is_profitable(cfg, 100.0, true));
}

TEST(Pricing, SameSpMarginBeatsCrossSpByIotaMinusOne) {
  const PricingConfig cfg = linear_cfg();
  const double d = 250.0;
  EXPECT_NEAR(cru_margin(cfg, d, true) - cru_margin(cfg, d, false),
              (cfg.iota - 1.0) * cfg.b, 1e-12);
}

TEST(Pricing, Contracts) {
  PricingConfig cfg = linear_cfg();
  EXPECT_THROW(cru_price(cfg, -1.0, true), ContractViolation);
  cfg.iota = 1.0;  // Eq. 10 needs iota > 1
  EXPECT_THROW(cru_price(cfg, 10.0, false), ContractViolation);
  cfg = linear_cfg();
  cfg.b = 0.0;
  EXPECT_THROW(cru_price(cfg, 10.0, true), ContractViolation);
}

}  // namespace
}  // namespace dmra
