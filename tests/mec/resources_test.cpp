#include "mec/resources.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "util/require.hpp"

namespace dmra {
namespace {

TEST(Resources, InitializedFromScenarioCapacities) {
  const Scenario s = test::two_bs_scenario();
  const ResourceState rs(s);
  for (std::size_t b = 0; b < s.num_bss(); ++b) {
    const BsId i{static_cast<std::uint32_t>(b)};
    EXPECT_EQ(rs.remaining_rrbs(i), s.bs(i).num_rrbs);
    for (std::size_t j = 0; j < s.num_services(); ++j) {
      const ServiceId svc{static_cast<std::uint32_t>(j)};
      EXPECT_EQ(rs.remaining_crus(i, svc), s.bs(i).cru_capacity[j]);
    }
  }
}

TEST(Resources, CommitDeductsBothResources) {
  const Scenario s = test::two_bs_scenario();
  ResourceState rs(s);
  const UeId u{0};
  const BsId i{0};
  const auto crus_before = rs.remaining_crus(i, s.ue(u).service);
  const auto rrbs_before = rs.remaining_rrbs(i);
  rs.commit(u, i);
  EXPECT_EQ(rs.remaining_crus(i, s.ue(u).service), crus_before - s.ue(u).cru_demand);
  EXPECT_EQ(rs.remaining_rrbs(i), rrbs_before - s.link(u, i).n_rrbs);
}

TEST(Resources, ReleaseInvertsCommit) {
  const Scenario s = test::two_bs_scenario();
  ResourceState rs(s);
  const UeId u{1};
  const BsId i{1};
  rs.commit(u, i);
  rs.release(u, i);
  EXPECT_EQ(rs.remaining_crus(i, s.ue(u).service), s.bs(i).cru_capacity[s.ue(u).service.idx()]);
  EXPECT_EQ(rs.remaining_rrbs(i), s.bs(i).num_rrbs);
}

TEST(Resources, UnpairedReleaseIsContractViolation) {
  const Scenario s = test::two_bs_scenario();
  ResourceState rs(s);
  EXPECT_THROW(rs.release(UeId{0}, BsId{0}), ContractViolation);
}

TEST(Resources, CanServeFalseWhenCrusExhausted) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru_per_service=*/7);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {20, 0}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  ResourceState rs(s);
  EXPECT_TRUE(rs.can_serve(UeId{0}, BsId{0}));
  rs.commit(UeId{0}, BsId{0});  // 3 CRUs left < 4 demanded
  EXPECT_FALSE(rs.can_serve(UeId{1}, BsId{0}));
}

TEST(Resources, CanServeFalseWhenRrbsExhausted) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, 100, /*rrbs=*/2);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4, 4e6);  // needs 1 RRB up close
  ms.add_ue(sp, {450, 0}, ServiceId{0}, 4, 6e6);  // needs 2 RRBs far out
  const Scenario s = ms.build();
  ResourceState rs(s);
  ASSERT_TRUE(rs.can_serve(UeId{1}, BsId{0}));
  rs.commit(UeId{0}, BsId{0});
  EXPECT_FALSE(rs.can_serve(UeId{1}, BsId{0}));  // 1 RRB left < 2 needed
}

TEST(Resources, CanServeFalseOutOfCoverage) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {800, 0}, ServiceId{0});
  const Scenario s = ms.build();
  const ResourceState rs(s);
  EXPECT_FALSE(rs.can_serve(UeId{0}, BsId{0}));
}

TEST(Resources, CommitWithoutCapacityIsContractViolation) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru_per_service=*/3);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  ResourceState rs(s);
  EXPECT_THROW(rs.commit(UeId{0}, BsId{0}), ContractViolation);
}

TEST(Resources, PreferenceDenominatorSumsServiceCrusAndRrbs) {
  const Scenario s = test::two_bs_scenario();
  ResourceState rs(s);
  const BsId i{0};
  const ServiceId j{0};
  EXPECT_EQ(rs.remaining_for_preference(i, j),
            rs.remaining_crus(i, j) + rs.remaining_rrbs(i));
}

}  // namespace
}  // namespace dmra
