#include "mec/scenario_io.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/dmra_allocator.hpp"
#include "util/require.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

void expect_scenarios_equal(const Scenario& a, const Scenario& b) {
  ASSERT_EQ(a.num_sps(), b.num_sps());
  ASSERT_EQ(a.num_bss(), b.num_bss());
  ASSERT_EQ(a.num_ues(), b.num_ues());
  ASSERT_EQ(a.num_services(), b.num_services());
  EXPECT_DOUBLE_EQ(a.coverage_radius_m(), b.coverage_radius_m());
  for (std::size_t i = 0; i < a.num_bss(); ++i) {
    const BsId bs{static_cast<std::uint32_t>(i)};
    EXPECT_EQ(a.bs(bs).sp, b.bs(bs).sp);
    EXPECT_EQ(a.bs(bs).position, b.bs(bs).position);
    EXPECT_EQ(a.bs(bs).cru_capacity, b.bs(bs).cru_capacity);
    EXPECT_EQ(a.bs(bs).num_rrbs, b.bs(bs).num_rrbs);
  }
  for (std::size_t i = 0; i < a.num_ues(); ++i) {
    const UeId u{static_cast<std::uint32_t>(i)};
    EXPECT_EQ(a.ue(u).sp, b.ue(u).sp);
    EXPECT_EQ(a.ue(u).position, b.ue(u).position);
    EXPECT_EQ(a.ue(u).service, b.ue(u).service);
    EXPECT_EQ(a.ue(u).cru_demand, b.ue(u).cru_demand);
    EXPECT_DOUBLE_EQ(a.ue(u).rate_demand_bps, b.ue(u).rate_demand_bps);
  }
}

TEST(ScenarioIo, GeneratedScenarioRoundTrips) {
  ScenarioConfig cfg;
  cfg.num_ues = 150;
  const Scenario original = generate_scenario(cfg, 42);
  const Scenario loaded = scenario_from_json(scenario_to_json(original));
  expect_scenarios_equal(original, loaded);
}

TEST(ScenarioIo, DerivedLinksIdenticalAfterRoundTrip) {
  ScenarioConfig cfg;
  cfg.num_ues = 60;
  cfg.channel.shadowing_sigma_db = 6.0;  // exercises channel persistence
  cfg.channel.shadowing_seed = 7;
  const Scenario original = generate_scenario(cfg, 3);
  const Scenario loaded = scenario_from_json(scenario_to_json(original));
  for (std::size_t ui = 0; ui < original.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    for (std::size_t bi = 0; bi < original.num_bss(); ++bi) {
      const BsId i{static_cast<std::uint32_t>(bi)};
      EXPECT_DOUBLE_EQ(original.link(u, i).sinr, loaded.link(u, i).sinr);
      EXPECT_EQ(original.link(u, i).n_rrbs, loaded.link(u, i).n_rrbs);
    }
    const auto ca = original.candidates(u);
    const auto cb = loaded.candidates(u);
    ASSERT_EQ(ca.size(), cb.size());
  }
}

TEST(ScenarioIo, AllocationRoundTripsAndReproducesProfit) {
  ScenarioConfig cfg;
  cfg.num_ues = 200;
  const Scenario scenario = generate_scenario(cfg, 9);
  const Allocation alloc = DmraAllocator().allocate(scenario);
  const Allocation loaded = allocation_from_json(allocation_to_json(alloc));
  EXPECT_EQ(loaded, alloc);
  EXPECT_DOUBLE_EQ(total_profit(scenario, loaded), total_profit(scenario, alloc));
}

TEST(ScenarioIo, SolveAfterLoadMatchesSolveBeforeSave) {
  ScenarioConfig cfg;
  cfg.num_ues = 120;
  const Scenario original = generate_scenario(cfg, 5);
  const Scenario loaded = scenario_from_json(scenario_to_json(original));
  EXPECT_EQ(DmraAllocator().allocate(loaded), DmraAllocator().allocate(original));
}

TEST(ScenarioIo, NonDefaultConfigsSurvive) {
  test::MiniScenario ms({.num_services = 3, .coverage_radius_m = 350.0, .iota = 1.5});
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {1.5, 2.5}, 77, 13);
  ms.add_ue(sp, {10.25, 0.125}, ServiceId{2}, 5, 3.25e6);
  ms.data().pricing.transmission = TransmissionPricing::kPower;
  ms.data().pricing.sigma = 0.01;
  ms.data().channel.noise_model = NoiseModel::kPsd;
  ms.data().channel.pathloss_model = PathlossModel::kLteMacro;
  const Scenario original = ms.build();
  const Scenario loaded = scenario_from_json(scenario_to_json(original));
  expect_scenarios_equal(original, loaded);
  EXPECT_EQ(loaded.pricing().transmission, TransmissionPricing::kPower);
  EXPECT_EQ(loaded.channel().noise_model, NoiseModel::kPsd);
  EXPECT_EQ(loaded.channel().pathloss_model, PathlossModel::kLteMacro);
  EXPECT_DOUBLE_EQ(loaded.price(UeId{0}, BsId{0}), original.price(UeId{0}, BsId{0}));
}

TEST(ScenarioIo, RejectsGarbageAndWrongFormat) {
  EXPECT_THROW(scenario_from_json("not json"), ContractViolation);
  EXPECT_THROW(scenario_from_json("{\"format\": \"something-else\", \"version\": 1}"),
               ContractViolation);
  EXPECT_THROW(allocation_from_json("{\"format\": \"dmra-scenario\", \"version\": 1}"),
               ContractViolation);
}

TEST(ScenarioIo, RejectsUnsupportedVersion) {
  ScenarioConfig cfg;
  cfg.num_ues = 10;
  std::string text = scenario_to_json(generate_scenario(cfg, 1));
  const auto pos = text.find("\"version\": 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 12, "\"version\": 9");
  EXPECT_THROW(scenario_from_json(text), ContractViolation);
}

}  // namespace
}  // namespace dmra
