#include "mec/scenario.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "../test_util.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

using test::MiniScenario;

TEST(Scenario, LinkStatsMatchManualComputation) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0.0, 0.0});
  ms.add_ue(sp, {300.0, 400.0}, ServiceId{0}, 4, 4e6);
  const Scenario s = ms.build();

  const LinkStats& l = s.link(UeId{0}, BsId{0});
  EXPECT_DOUBLE_EQ(l.distance_m, 500.0);
  EXPECT_TRUE(l.in_coverage);  // exactly at the default 500 m radius
  const double expected_sinr = sinr(s.channel(), 500.0, s.ofdma().rrb_bandwidth_hz);
  EXPECT_DOUBLE_EQ(l.sinr, expected_sinr);
  const double expected_rate = rrb_rate_bps(s.ofdma().rrb_bandwidth_hz, expected_sinr);
  EXPECT_DOUBLE_EQ(l.rrb_rate_bps, expected_rate);
  EXPECT_EQ(l.n_rrbs, rrbs_needed(4e6, expected_rate));
}

TEST(Scenario, OutOfCoverageLinkHasNoRrbs) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0.0, 0.0});
  ms.add_ue(sp, {501.0, 0.0}, ServiceId{0});
  const Scenario s = ms.build();
  EXPECT_FALSE(s.link(UeId{0}, BsId{0}).in_coverage);
  EXPECT_EQ(s.link(UeId{0}, BsId{0}).n_rrbs, 0u);
  EXPECT_TRUE(s.candidates(UeId{0}).empty());
}

TEST(Scenario, CandidatesRequireHostedService) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs_hosting(sp, {0.0, 0.0}, {ServiceId{0}});    // hosts only service 0
  ms.add_bs_hosting(sp, {100.0, 0.0}, {ServiceId{1}});  // hosts only service 1
  ms.add_ue(sp, {50.0, 0.0}, ServiceId{1});
  const Scenario s = ms.build();
  const auto cands = s.candidates(UeId{0});
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], (BsId{1}));
}

TEST(Scenario, CandidatesRequireCapacityForTheDemand) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0.0, 0.0}, /*cru_per_service=*/3);
  ms.add_ue(sp, {10.0, 0.0}, ServiceId{0}, /*cru_demand=*/4);
  const Scenario s = ms.build();
  EXPECT_TRUE(s.candidates(UeId{0}).empty());  // 4 CRUs never fit in 3
}

TEST(Scenario, CandidatesRequireRadioFeasibility) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0.0, 0.0}, 100, /*rrbs=*/1);
  // 6 Mbit/s at 450 m needs 2 RRBs > budget of 1.
  ms.add_ue(sp, {450.0, 0.0}, ServiceId{0}, 4, 6e6);
  const Scenario s = ms.build();
  EXPECT_TRUE(s.candidates(UeId{0}).empty());
}

TEST(Scenario, SameSpAndPricing) {
  const Scenario s = test::two_bs_scenario(2);
  EXPECT_TRUE(s.same_sp(UeId{0}, BsId{0}));   // UE 0 → SP0, BS 0 → SP0
  EXPECT_FALSE(s.same_sp(UeId{0}, BsId{1}));
  const double d = s.link(UeId{0}, BsId{0}).distance_m;
  EXPECT_DOUBLE_EQ(s.price(UeId{0}, BsId{0}), cru_price(s.pricing(), d, true));
  EXPECT_DOUBLE_EQ(s.pair_profit(UeId{0}, BsId{0}),
                   4.0 * cru_margin(s.pricing(), d, true));
}

TEST(Scenario, CoverageCountIsCandidateCount) {
  const Scenario s = test::two_bs_scenario(4);
  for (std::size_t u = 0; u < s.num_ues(); ++u) {
    const UeId id{static_cast<std::uint32_t>(u)};
    EXPECT_EQ(s.coverage_count(id), s.candidates(id).size());
  }
}

TEST(ScenarioValidation, RejectsEmptyEntitySets) {
  ScenarioData d;
  d.num_services = 1;
  EXPECT_THROW(Scenario(std::move(d)), ContractViolation);
}

TEST(ScenarioValidation, RejectsNonContiguousIds) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {0, 0}, ServiceId{0});
  ms.data().ues[0].id = UeId{5};
  EXPECT_THROW(ms.build(), ContractViolation);
}

TEST(ScenarioValidation, RejectsUnknownSpReference) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {0, 0}, ServiceId{0});
  ms.data().bss[0].sp = SpId{9};
  EXPECT_THROW(ms.build(), ContractViolation);
}

TEST(ScenarioValidation, RejectsUnknownServiceRequest) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {0, 0}, ServiceId{7});
  EXPECT_THROW(ms.build(), ContractViolation);
}

TEST(ScenarioValidation, RejectsWrongCapacityVectorLength) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {0, 0}, ServiceId{0});
  ms.data().bss[0].cru_capacity.resize(1);  // num_services is 2
  EXPECT_THROW(ms.build(), ContractViolation);
}

TEST(ScenarioValidation, RejectsZeroCruDemand) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {0, 0}, ServiceId{0}, /*cru_demand=*/0);
  EXPECT_THROW(ms.build(), ContractViolation);
}

TEST(Scenario, ZeroRrbBsIsInertNotInvalid) {
  // Radio-exhausted BSs occur in residual scenarios of online runs; they
  // must validate but can never be candidates.
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, 100, /*rrbs=*/0);
  ms.add_ue(sp, {10, 0}, ServiceId{0});
  const Scenario s = ms.build();
  EXPECT_TRUE(s.candidates(UeId{0}).empty());
}

TEST(ScenarioValidation, RejectsPricingViolatingEq16) {
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {0, 0}, ServiceId{0});
  ms.data().pricing.m_k = 2.0;  // cannot cover cross-SP price at 500 m
  EXPECT_THROW(ms.build(), ContractViolation);
}

// ---- sparse vs dense link storage ------------------------------------------

/// Bitwise equality — the two strategies must agree to the last ulp, since
/// algorithms branch on exact comparisons of these values.
bool bit_equal(const LinkStats& a, const LinkStats& b) {
  return std::memcmp(&a.distance_m, &b.distance_m, sizeof a.distance_m) == 0 &&
         std::memcmp(&a.sinr, &b.sinr, sizeof a.sinr) == 0 &&
         std::memcmp(&a.rrb_rate_bps, &b.rrb_rate_bps, sizeof a.rrb_rate_bps) == 0 &&
         a.n_rrbs == b.n_rrbs && a.in_coverage == b.in_coverage;
}

void expect_equivalent(const Scenario& dense, const Scenario& sparse,
                       const std::string& label) {
  ASSERT_EQ(dense.num_ues(), sparse.num_ues()) << label;
  ASSERT_EQ(dense.num_bss(), sparse.num_bss()) << label;
  for (std::size_t ui = 0; ui < dense.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    ASSERT_EQ(dense.coverage_count(u), sparse.coverage_count(u)) << label;
    const auto dc = dense.candidates(u);
    const auto sc = sparse.candidates(u);
    ASSERT_TRUE(std::equal(dc.begin(), dc.end(), sc.begin(), sc.end())) << label;
    for (std::size_t bi = 0; bi < dense.num_bss(); ++bi) {
      const BsId b{static_cast<std::uint32_t>(bi)};
      ASSERT_TRUE(bit_equal(dense.link(u, b), sparse.link(u, b)))
          << label << " ue=" << ui << " bs=" << bi;
    }
  }
}

TEST(ScenarioLinkBuild, SparseMatchesDenseAcrossRandomConfigs) {
  // Property test: 25 random deployments, each built with both storage
  // strategies from the same (config, seed), compared over every pair.
  Rng rng("link-build-property", 7);
  for (int trial = 0; trial < 25; ++trial) {
    ScenarioConfig cfg;
    cfg.num_sps = 1 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    cfg.bss_per_sp = 1 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    cfg.num_ues = 10 + static_cast<std::size_t>(rng.uniform_int(0, 190));
    cfg.coverage_radius_m = 150.0 + 150.0 * rng.uniform_int(0, 3);
    cfg.area_side_m = 600.0 + 300.0 * rng.uniform_int(0, 4);
    cfg.placement = rng.uniform_int(0, 1) == 0 ? PlacementMethod::kRegularGrid
                                               : PlacementMethod::kRandom;
    const std::uint64_t seed = static_cast<std::uint64_t>(trial) + 1;
    cfg.link_build = LinkBuild::kDense;
    const Scenario dense = generate_scenario(cfg, seed);
    cfg.link_build = LinkBuild::kSparse;
    const Scenario sparse = generate_scenario(cfg, seed);
    expect_equivalent(dense, sparse, "trial " + std::to_string(trial));
  }
}

TEST(ScenarioLinkBuild, AllOutOfCoverageDegenerateScenario) {
  // Degenerate case: a radius so small no BS covers any UE — every link
  // must come back as the canonical zero stats under both strategies.
  ScenarioConfig cfg;
  cfg.num_ues = 40;
  cfg.coverage_radius_m = 1e-3;
  for (const LinkBuild build : {LinkBuild::kDense, LinkBuild::kSparse}) {
    cfg.link_build = build;
    const Scenario s = generate_scenario(cfg, 11);
    for (std::size_t ui = 0; ui < s.num_ues(); ++ui) {
      const UeId u{static_cast<std::uint32_t>(ui)};
      EXPECT_TRUE(s.candidates(u).empty());
      for (std::size_t bi = 0; bi < s.num_bss(); ++bi) {
        const LinkStats& l = s.link(u, BsId{static_cast<std::uint32_t>(bi)});
        EXPECT_FALSE(l.in_coverage);
        EXPECT_EQ(l.n_rrbs, 0u);
        EXPECT_EQ(l.sinr, 0.0);
        EXPECT_EQ(l.rrb_rate_bps, 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace dmra
