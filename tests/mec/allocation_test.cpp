#include "mec/allocation.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "radio/units.hpp"
#include "util/require.hpp"

namespace dmra {
namespace {

TEST(Allocation, StartsAllCloud) {
  const Allocation a(3);
  EXPECT_EQ(a.num_ues(), 3u);
  EXPECT_EQ(a.num_served(), 0u);
  EXPECT_EQ(a.num_cloud(), 3u);
  for (std::uint32_t u = 0; u < 3; ++u) EXPECT_TRUE(a.is_cloud(UeId{u}));
}

TEST(Allocation, AssignAndReassign) {
  Allocation a(2);
  a.assign(UeId{0}, BsId{4});
  EXPECT_EQ(a.bs_of(UeId{0}), (BsId{4}));
  EXPECT_EQ(a.num_served(), 1u);
  a.assign(UeId{0}, BsId{7});
  EXPECT_EQ(a.bs_of(UeId{0}), (BsId{7}));
  a.assign_cloud(UeId{0});
  EXPECT_TRUE(a.is_cloud(UeId{0}));
  EXPECT_EQ(a.num_served(), 0u);
}

TEST(Allocation, OutOfRangeIsContractViolation) {
  Allocation a(1);
  EXPECT_THROW(a.bs_of(UeId{1}), ContractViolation);
  EXPECT_THROW(a.assign(UeId{1}, BsId{0}), ContractViolation);
}

TEST(Allocation, EqualityComparesAssignments) {
  Allocation a(2), b(2);
  EXPECT_EQ(a, b);
  a.assign(UeId{0}, BsId{1});
  EXPECT_NE(a, b);
  b.assign(UeId{0}, BsId{1});
  EXPECT_EQ(a, b);
}

TEST(Profit, MatchesHandComputation) {
  const Scenario s = test::two_bs_scenario(2);
  Allocation a(2);
  a.assign(UeId{0}, BsId{0});  // same SP
  a.assign(UeId{1}, BsId{1});  // same SP (UE1 → SP1, BS1 → SP1)

  const ProfitBreakdown pb = compute_profit(s, a);
  const double expected0 = s.pair_profit(UeId{0}, BsId{0});
  const double expected1 = s.pair_profit(UeId{1}, BsId{1});
  ASSERT_EQ(pb.per_sp.size(), 2u);
  EXPECT_NEAR(pb.per_sp[0], expected0, 1e-9);
  EXPECT_NEAR(pb.per_sp[1], expected1, 1e-9);
  EXPECT_NEAR(pb.total, expected0 + expected1, 1e-9);
  EXPECT_NEAR(total_profit(s, a), pb.total, 1e-12);
}

TEST(Profit, BreakdownComponentsAreConsistent) {
  const Scenario s = test::two_bs_scenario(4);
  Allocation a(4);
  a.assign(UeId{0}, BsId{0});
  a.assign(UeId{1}, BsId{0});  // cross-SP pair
  const ProfitBreakdown pb = compute_profit(s, a);
  EXPECT_NEAR(pb.total, pb.revenue - pb.bs_payments - pb.other_costs, 1e-9);
  EXPECT_GT(pb.revenue, 0.0);
  EXPECT_GT(pb.bs_payments, 0.0);
}

TEST(Profit, CloudUEsContributeNothing) {
  const Scenario s = test::two_bs_scenario(4);
  const Allocation a(4);  // everyone at the cloud
  EXPECT_DOUBLE_EQ(total_profit(s, a), 0.0);
}

TEST(Profit, CrossSpServingEarnsLessThanSameSp) {
  test::MiniScenario ms;
  const SpId sp0 = ms.add_sp();
  const SpId sp1 = ms.add_sp();
  ms.add_bs(sp0, {0, 0});
  ms.add_bs(sp1, {0, 0});  // co-located → identical distance
  ms.add_ue(sp0, {100, 0}, ServiceId{0});
  const Scenario s = ms.build();
  Allocation same(1), cross(1);
  same.assign(UeId{0}, BsId{0});
  cross.assign(UeId{0}, BsId{1});
  EXPECT_GT(total_profit(s, same), total_profit(s, cross));
}

TEST(ForwardedTraffic, SumsCloudDemands) {
  const Scenario s = test::two_bs_scenario(4);
  Allocation a(4);
  a.assign(UeId{0}, BsId{0});
  double expected = 0.0;
  for (std::uint32_t u = 1; u < 4; ++u) expected += s.ue(UeId{u}).rate_demand_bps;
  EXPECT_NEAR(forwarded_traffic_bps(s, a), expected, 1e-6);
}

TEST(SameSpRatio, CountsOnlyServedUEs) {
  const Scenario s = test::two_bs_scenario(4);
  Allocation a(4);
  EXPECT_DOUBLE_EQ(same_sp_ratio(s, a), 0.0);  // nothing served
  a.assign(UeId{0}, BsId{0});                  // same SP
  a.assign(UeId{1}, BsId{0});                  // cross SP (UE1 is SP1)
  EXPECT_DOUBLE_EQ(same_sp_ratio(s, a), 0.5);
}

TEST(Profit, MismatchedSizesAreContractViolation) {
  const Scenario s = test::two_bs_scenario(4);
  const Allocation a(2);
  EXPECT_THROW(compute_profit(s, a), ContractViolation);
  EXPECT_THROW(forwarded_traffic_bps(s, a), ContractViolation);
}

}  // namespace
}  // namespace dmra
