#include "core/solver.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "mec/resources.hpp"
#include "sim/feasibility.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

TEST(Solver, ServesEveryoneWhenResourcesAbound) {
  const Scenario s = test::two_bs_scenario(4);
  const DmraResult r = solve_dmra(s);
  EXPECT_EQ(r.allocation.num_served(), 4u);
  EXPECT_TRUE(check_feasibility(s, r.allocation).ok);
}

TEST(Solver, PrefersOwnSpBsAtEqualDistance) {
  test::MiniScenario ms;
  const SpId sp0 = ms.add_sp();
  const SpId sp1 = ms.add_sp();
  ms.add_bs(sp0, {0, 0});
  ms.add_bs(sp1, {100, 0});
  ms.add_ue(sp0, {50, 0}, ServiceId{0});  // exactly between the two BSs
  const Scenario s = ms.build();
  const DmraResult r = solve_dmra(s);
  EXPECT_EQ(r.allocation.bs_of(UeId{0}), (BsId{0}));  // same SP is cheaper
}

TEST(Solver, PrefersNearBsWhenDistanceDominatesIota) {
  test::MiniScenario ms({.iota = 1.1});
  const SpId sp0 = ms.add_sp();
  const SpId sp1 = ms.add_sp();
  ms.add_bs(sp0, {0, 0});
  ms.add_bs(sp1, {300, 0});
  // 280 m from its own BS, 20 m from the rival's: with ι = 1.1 the rival
  // is cheaper (0.1·b markup < 0.78·b distance saving).
  ms.add_ue(sp0, {280, 0}, ServiceId{0});
  const Scenario s = ms.build();
  const DmraResult r = solve_dmra(s, {.rho = 0.0});
  EXPECT_EQ(r.allocation.bs_of(UeId{0}), (BsId{1}));
}

TEST(Solver, UncoveredUeGoesToCloud) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {2000, 2000}, ServiceId{0});
  const Scenario s = ms.build();
  const DmraResult r = solve_dmra(s);
  EXPECT_TRUE(r.allocation.is_cloud(UeId{0}));
  EXPECT_EQ(r.rounds, 0u);  // no proposals ever sent
}

TEST(Solver, OverloadedServiceOverflowsToCloud) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/10);  // room for two 4-CRU tasks, not three
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {20, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {30, 0}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  const DmraResult r = solve_dmra(s);
  EXPECT_EQ(r.allocation.num_served(), 2u);
  EXPECT_EQ(r.allocation.num_cloud(), 1u);
  EXPECT_TRUE(check_feasibility(s, r.allocation).ok);
}

TEST(Solver, ContestedSlotGoesToSameSpUe) {
  test::MiniScenario ms;
  const SpId sp0 = ms.add_sp();
  const SpId sp1 = ms.add_sp();
  ms.add_bs(sp0, {0, 0}, /*cru=*/4);  // exactly one task fits
  ms.add_ue(sp1, {10, 0}, ServiceId{0}, 4);  // cross-SP, closer
  ms.add_ue(sp0, {50, 0}, ServiceId{0}, 4);  // same-SP, farther
  const Scenario s = ms.build();
  const DmraResult r = solve_dmra(s);
  EXPECT_EQ(r.allocation.bs_of(UeId{1}), (BsId{0}));
  EXPECT_TRUE(r.allocation.is_cloud(UeId{0}));
}

TEST(Solver, RespectsMaxRounds) {
  const Scenario s = generate_scenario(ScenarioConfig{}, 3);
  const DmraResult r = solve_dmra(s, {.rho = 100.0, .max_rounds = 2});
  EXPECT_LE(r.rounds, 2u);
}

TEST(Solver, Deterministic) {
  ScenarioConfig cfg;
  cfg.num_ues = 300;
  const Scenario s = generate_scenario(cfg, 17);
  const DmraResult a = solve_dmra(s);
  const DmraResult b = solve_dmra(s);
  EXPECT_EQ(a.allocation, b.allocation);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.proposals_sent, b.proposals_sent);
}

TEST(Solver, AccountingIsConsistent) {
  ScenarioConfig cfg;
  cfg.num_ues = 400;
  const Scenario s = generate_scenario(cfg, 5);
  const DmraResult r = solve_dmra(s);
  EXPECT_GE(r.proposals_sent, r.allocation.num_served());
  EXPECT_EQ(r.rejections, r.proposals_sent - r.allocation.num_served());
  EXPECT_GE(r.rounds, 1u);
  EXPECT_LE(r.rounds, s.num_ues());
}

// Property sweep: feasibility + termination + maximality-style invariants
// on generated scenarios of several sizes and seeds.
class SolverProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SolverProperty, FeasibleTerminatingAndLocallyMaximal) {
  const auto [ues, seed] = GetParam();
  ScenarioConfig cfg;
  cfg.num_ues = static_cast<std::size_t>(ues);
  const Scenario s = generate_scenario(cfg, static_cast<std::uint64_t>(seed));
  const DmraResult r = solve_dmra(s);

  const FeasibilityReport report = check_feasibility(s, r.allocation);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());

  // Local maximality: no cloud-forwarded UE could still be served by a BS
  // with leftover resources (DMRA never strands a UE while an option
  // remains — B_u only empties when every candidate is exhausted).
  ResourceState final_state(s);
  for (std::size_t ui = 0; ui < s.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    if (const auto bs = r.allocation.bs_of(u)) final_state.commit(u, *bs);
  }
  for (std::size_t ui = 0; ui < s.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    if (!r.allocation.is_cloud(u)) continue;
    for (BsId i : s.candidates(u))
      EXPECT_FALSE(final_state.can_serve(u, i))
          << "ue " << u.value << " stranded while bs " << i.value << " had room";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverProperty,
                         ::testing::Combine(::testing::Values(50, 200, 600, 1100),
                                            ::testing::Values(1, 2, 3)));

// Property: rho sweep keeps feasibility and the ablation switches all run.
class SolverConfigProperty : public ::testing::TestWithParam<double> {};

TEST_P(SolverConfigProperty, FeasibleUnderAnyRho) {
  ScenarioConfig cfg;
  cfg.num_ues = 500;
  const Scenario s = generate_scenario(cfg, 23);
  DmraConfig dc;
  dc.rho = GetParam();
  const DmraResult r = solve_dmra(s, dc);
  EXPECT_TRUE(check_feasibility(s, r.allocation).ok);
  EXPECT_GT(r.allocation.num_served(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Rhos, SolverConfigProperty,
                         ::testing::Values(0.0, 10.0, 100.0, 1000.0, 10000.0));

TEST(Solver, AblationSwitchesStillFeasible) {
  ScenarioConfig cfg;
  cfg.num_ues = 400;
  const Scenario s = generate_scenario(cfg, 29);
  for (const DmraConfig dc : {DmraConfig{.prefer_same_sp = false},
                              DmraConfig{.use_coverage_count = false},
                              DmraConfig{.use_footprint = false},
                              DmraConfig{.drop_rejected = true}}) {
    const DmraResult r = solve_dmra(s, dc);
    EXPECT_TRUE(check_feasibility(s, r.allocation).ok);
  }
}

TEST(Solver, SameSpPreferenceLiftsSameSpRatio) {
  ScenarioConfig cfg;
  cfg.num_ues = 800;
  const Scenario s = generate_scenario(cfg, 31);
  const DmraResult with = solve_dmra(s, DmraConfig{});
  const DmraResult without = solve_dmra(s, DmraConfig{.prefer_same_sp = false});
  EXPECT_GT(same_sp_ratio(s, with.allocation), same_sp_ratio(s, without.allocation));
}

}  // namespace
}  // namespace dmra
