#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/dmra_allocator.hpp"
#include "mobility/handover.hpp"
#include "sim/feasibility.hpp"
#include "util/require.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

Scenario moved_copy(const Scenario& base, double dx) {
  ScenarioData data;
  data.num_services = base.num_services();
  data.sps.assign(base.sps().begin(), base.sps().end());
  data.bss.assign(base.bss().begin(), base.bss().end());
  data.ues.assign(base.ues().begin(), base.ues().end());
  for (auto& ue : data.ues) ue.position.x += dx;
  data.channel = base.channel();
  data.ofdma = base.ofdma();
  data.pricing = base.pricing();
  data.coverage_radius_m = base.coverage_radius_m();
  return Scenario(std::move(data));
}

TEST(Incremental, UnchangedScenarioKeepsEverything) {
  ScenarioConfig cfg;
  cfg.num_ues = 300;
  const Scenario s = generate_scenario(cfg, 7);
  const Allocation previous = DmraAllocator().allocate(s);
  const IncrementalResult r = solve_incremental_dmra(s, previous);
  EXPECT_EQ(r.allocation, previous);
  EXPECT_EQ(r.kept, previous.num_served());
  EXPECT_EQ(r.invalidated, 0u);
  EXPECT_EQ(r.released, 0u);
}

TEST(Incremental, StartingFromScratchEqualsPlainDmra) {
  ScenarioConfig cfg;
  cfg.num_ues = 250;
  const Scenario s = generate_scenario(cfg, 9);
  const IncrementalResult r = solve_incremental_dmra(s, Allocation(s.num_ues()));
  EXPECT_EQ(r.allocation, solve_dmra(s).allocation);
  EXPECT_EQ(r.kept, 0u);
}

TEST(Incremental, SmallMovesProduceFewerHandoversThanRerun) {
  ScenarioConfig cfg;
  cfg.num_ues = 500;
  const Scenario before = generate_scenario(cfg, 11);
  const Allocation prev = DmraAllocator().allocate(before);
  const Scenario after = moved_copy(before, 15.0);  // everyone drifts 15 m

  const Allocation rerun = DmraAllocator().allocate(after);
  const IncrementalResult inc = solve_incremental_dmra(after, prev);

  auto handovers = [&](const Allocation& now) {
    std::size_t n = 0;
    for (std::size_t ui = 0; ui < after.num_ues(); ++ui) {
      const UeId u{static_cast<std::uint32_t>(ui)};
      const auto a = prev.bs_of(u);
      const auto b = now.bs_of(u);
      if (a && b && *a != *b) ++n;
    }
    return n;
  };
  EXPECT_LT(handovers(inc.allocation), handovers(rerun));
  EXPECT_TRUE(check_feasibility(after, inc.allocation).ok);
  // Staying costs little profit relative to the full re-optimization.
  EXPECT_GT(total_profit(after, inc.allocation), 0.9 * total_profit(after, rerun));
}

TEST(Incremental, InvalidatedAssignmentsAreRematched) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_bs(sp, {400, 0});
  ms.add_ue(sp, {100, 0}, ServiceId{0});
  const Scenario before = ms.build();
  Allocation prev(1);
  prev.assign(UeId{0}, BsId{0});
  // The UE walks out of BS 0's coverage but stays in BS 1's.
  const Scenario after = moved_copy(before, 450.0);  // at x=550: d0=550, d1=150
  const IncrementalResult r = solve_incremental_dmra(after, prev);
  EXPECT_EQ(r.invalidated, 1u);
  EXPECT_EQ(r.allocation.bs_of(UeId{0}), (BsId{1}));
}

TEST(Incremental, HysteresisReleasesDriftedUes) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_bs(sp, {480, 0});
  ms.add_ue(sp, {40, 0}, ServiceId{0});
  const Scenario before = ms.build();
  Allocation prev(1);
  prev.assign(UeId{0}, BsId{0});
  // Drift close to BS 1: current price (d=400) far above best (d=80).
  const Scenario after = moved_copy(before, 360.0);

  // Without hysteresis (default): sticky.
  const IncrementalResult sticky = solve_incremental_dmra(after, prev);
  EXPECT_EQ(sticky.allocation.bs_of(UeId{0}), (BsId{0}));

  // With a modest margin the drift exceeds it → switch.
  IncrementalConfig cfg;
  cfg.hysteresis_margin = 0.5;  // price gap is σ·Δd·b = 0.003·360 ≈ 1.08
  const IncrementalResult agile = solve_incremental_dmra(after, prev, cfg);
  EXPECT_EQ(agile.released, 1u);
  EXPECT_EQ(agile.allocation.bs_of(UeId{0}), (BsId{1}));
}

TEST(Incremental, FeasibleAcrossManySteps) {
  ScenarioConfig cfg;
  cfg.num_ues = 300;
  Scenario scenario = generate_scenario(cfg, 13);
  Allocation alloc = DmraAllocator().allocate(scenario);
  for (int step = 1; step <= 5; ++step) {
    scenario = moved_copy(scenario, 25.0);
    const IncrementalResult r = solve_incremental_dmra(scenario, alloc);
    const FeasibilityReport report = check_feasibility(scenario, r.allocation);
    EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
    alloc = r.allocation;
  }
}

TEST(Incremental, HandoverStudyPolicyReducesChurn) {
  HandoverConfig cfg;
  cfg.scenario.num_ues = 300;
  cfg.mobility = MobilityKind::kRandomWaypoint;
  cfg.waypoint.speed_min_mps = 8.0;
  cfg.waypoint.speed_max_mps = 16.0;
  cfg.steps = 6;
  cfg.step_duration_s = 2.0;
  cfg.seed = 3;

  const DmraAllocator algo;
  const HandoverResult rerun = run_handover_study(cfg, algo);
  cfg.policy = ReallocationPolicy::kIncremental;
  const HandoverResult incremental = run_handover_study(cfg, algo);

  EXPECT_LT(incremental.handover_rate, rerun.handover_rate);
  EXPECT_GT(incremental.mean_profit, 0.85 * rerun.mean_profit);
}

TEST(Incremental, SizeMismatchIsContractViolation) {
  ScenarioConfig cfg;
  cfg.num_ues = 10;
  const Scenario s = generate_scenario(cfg, 1);
  EXPECT_THROW(solve_incremental_dmra(s, Allocation(9)), ContractViolation);
}

}  // namespace
}  // namespace dmra
