#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/dmra_allocator.hpp"
#include "mobility/handover.hpp"
#include "sim/feasibility.hpp"
#include "util/require.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

Scenario moved_copy(const Scenario& base, double dx) {
  ScenarioData data;
  data.num_services = base.num_services();
  data.sps.assign(base.sps().begin(), base.sps().end());
  data.bss.assign(base.bss().begin(), base.bss().end());
  data.ues.assign(base.ues().begin(), base.ues().end());
  for (auto& ue : data.ues) ue.position.x += dx;
  data.channel = base.channel();
  data.ofdma = base.ofdma();
  data.pricing = base.pricing();
  data.coverage_radius_m = base.coverage_radius_m();
  return Scenario(std::move(data));
}

TEST(Incremental, UnchangedScenarioKeepsEverything) {
  ScenarioConfig cfg;
  cfg.num_ues = 300;
  const Scenario s = generate_scenario(cfg, 7);
  const Allocation previous = DmraAllocator().allocate(s);
  const IncrementalResult r = solve_incremental_dmra(s, previous);
  EXPECT_EQ(r.allocation, previous);
  EXPECT_EQ(r.kept, previous.num_served());
  EXPECT_EQ(r.invalidated, 0u);
  EXPECT_EQ(r.released, 0u);
}

TEST(Incremental, StartingFromScratchEqualsPlainDmra) {
  ScenarioConfig cfg;
  cfg.num_ues = 250;
  const Scenario s = generate_scenario(cfg, 9);
  const IncrementalResult r = solve_incremental_dmra(s, Allocation(s.num_ues()));
  EXPECT_EQ(r.allocation, solve_dmra(s).allocation);
  EXPECT_EQ(r.kept, 0u);
}

TEST(Incremental, SmallMovesProduceFewerHandoversThanRerun) {
  ScenarioConfig cfg;
  cfg.num_ues = 500;
  const Scenario before = generate_scenario(cfg, 11);
  const Allocation prev = DmraAllocator().allocate(before);
  const Scenario after = moved_copy(before, 15.0);  // everyone drifts 15 m

  const Allocation rerun = DmraAllocator().allocate(after);
  const IncrementalResult inc = solve_incremental_dmra(after, prev);

  auto handovers = [&](const Allocation& now) {
    std::size_t n = 0;
    for (std::size_t ui = 0; ui < after.num_ues(); ++ui) {
      const UeId u{static_cast<std::uint32_t>(ui)};
      const auto a = prev.bs_of(u);
      const auto b = now.bs_of(u);
      if (a && b && *a != *b) ++n;
    }
    return n;
  };
  EXPECT_LT(handovers(inc.allocation), handovers(rerun));
  EXPECT_TRUE(check_feasibility(after, inc.allocation).ok);
  // Staying costs little profit relative to the full re-optimization.
  EXPECT_GT(total_profit(after, inc.allocation), 0.9 * total_profit(after, rerun));
}

TEST(Incremental, InvalidatedAssignmentsAreRematched) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_bs(sp, {400, 0});
  ms.add_ue(sp, {100, 0}, ServiceId{0});
  const Scenario before = ms.build();
  Allocation prev(1);
  prev.assign(UeId{0}, BsId{0});
  // The UE walks out of BS 0's coverage but stays in BS 1's.
  const Scenario after = moved_copy(before, 450.0);  // at x=550: d0=550, d1=150
  const IncrementalResult r = solve_incremental_dmra(after, prev);
  EXPECT_EQ(r.invalidated, 1u);
  EXPECT_EQ(r.allocation.bs_of(UeId{0}), (BsId{1}));
}

TEST(Incremental, HysteresisReleasesDriftedUes) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_bs(sp, {480, 0});
  ms.add_ue(sp, {40, 0}, ServiceId{0});
  const Scenario before = ms.build();
  Allocation prev(1);
  prev.assign(UeId{0}, BsId{0});
  // Drift close to BS 1: current price (d=400) far above best (d=80).
  const Scenario after = moved_copy(before, 360.0);

  // Without hysteresis (default): sticky.
  const IncrementalResult sticky = solve_incremental_dmra(after, prev);
  EXPECT_EQ(sticky.allocation.bs_of(UeId{0}), (BsId{0}));

  // With a modest margin the drift exceeds it → switch.
  IncrementalConfig cfg;
  cfg.hysteresis_margin = 0.5;  // price gap is σ·Δd·b = 0.003·360 ≈ 1.08
  const IncrementalResult agile = solve_incremental_dmra(after, prev, cfg);
  EXPECT_EQ(agile.released, 1u);
  EXPECT_EQ(agile.allocation.bs_of(UeId{0}), (BsId{1}));
}

TEST(Incremental, FeasibleAcrossManySteps) {
  ScenarioConfig cfg;
  cfg.num_ues = 300;
  Scenario scenario = generate_scenario(cfg, 13);
  Allocation alloc = DmraAllocator().allocate(scenario);
  for (int step = 1; step <= 5; ++step) {
    scenario = moved_copy(scenario, 25.0);
    const IncrementalResult r = solve_incremental_dmra(scenario, alloc);
    const FeasibilityReport report = check_feasibility(scenario, r.allocation);
    EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
    alloc = r.allocation;
  }
}

TEST(Incremental, HandoverStudyPolicyReducesChurn) {
  HandoverConfig cfg;
  cfg.scenario.num_ues = 300;
  cfg.mobility = MobilityKind::kRandomWaypoint;
  cfg.waypoint.speed_min_mps = 8.0;
  cfg.waypoint.speed_max_mps = 16.0;
  cfg.steps = 6;
  cfg.step_duration_s = 2.0;
  cfg.seed = 3;

  const DmraAllocator algo;
  const HandoverResult rerun = run_handover_study(cfg, algo);
  cfg.policy = ReallocationPolicy::kIncremental;
  const HandoverResult incremental = run_handover_study(cfg, algo);

  EXPECT_LT(incremental.handover_rate, rerun.handover_rate);
  EXPECT_GT(incremental.mean_profit, 0.85 * rerun.mean_profit);
}

TEST(Incremental, SizeMismatchIsContractViolation) {
  ScenarioConfig cfg;
  cfg.num_ues = 10;
  const Scenario s = generate_scenario(cfg, 1);
  EXPECT_THROW(solve_incremental_dmra(s, Allocation(9)), ContractViolation);
}

// ---- IncrementalAllocator: the persistent admit/remove surface -------------

// The header's claim: admit() (single-proposer Alg. 1) decides exactly
// what solve_dmra_partial computes for one unmatched UE against the same
// ledger. Run both side by side, one admission at a time.
TEST(IncrementalAllocator, AdmitMatchesSolveDmraPartialSingleProposer) {
  ScenarioConfig cfg;
  cfg.num_ues = 150;
  const Scenario s = generate_scenario(cfg, 21);

  IncrementalAllocator inc(s);
  ResourceState state(s);
  Allocation ref(s.num_ues());
  std::vector<bool> matched(s.num_ues(), true);
  for (std::size_t ui = 0; ui < s.num_ues(); ++ui) {
    const UeId u{static_cast<std::uint32_t>(ui)};
    inc.admit(u);
    matched[ui] = false;
    solve_dmra_partial(s, IncrementalConfig{}.dmra, state, ref, matched);
    matched[ui] = true;  // cloud-forwarded UEs stay unmatched in the partial run
    ASSERT_EQ(inc.allocation().bs_of(u), ref.bs_of(u)) << "ue " << ui;
  }
  EXPECT_EQ(inc.allocation(), ref);
  EXPECT_NEAR(inc.live_profit(), total_profit(s, inc.allocation()), 1e-9);
}

TEST(IncrementalAllocator, RemoveReleasesEverything) {
  ScenarioConfig cfg;
  cfg.num_ues = 120;
  const Scenario s = generate_scenario(cfg, 23);
  IncrementalAllocator inc(s);
  for (std::size_t ui = 0; ui < s.num_ues(); ++ui)
    inc.admit(UeId{static_cast<std::uint32_t>(ui)});
  EXPECT_EQ(inc.num_active(), s.num_ues());
  for (std::size_t ui = 0; ui < s.num_ues(); ++ui)
    inc.remove(UeId{static_cast<std::uint32_t>(ui)});
  EXPECT_EQ(inc.num_active(), 0u);
  EXPECT_NEAR(inc.live_profit(), 0.0, 1e-9);
  // The ledger is back at nominal capacity for every (BS, service).
  const ResourceState fresh(s);
  for (const BaseStation& b : s.bss()) {
    EXPECT_EQ(inc.state().remaining_rrbs(b.id), fresh.remaining_rrbs(b.id));
    for (std::size_t j = 0; j < s.num_services(); ++j) {
      const ServiceId sj{static_cast<std::uint32_t>(j)};
      EXPECT_EQ(inc.state().remaining_crus(b.id, sj), fresh.remaining_crus(b.id, sj));
    }
  }
}

TEST(IncrementalAllocator, LifecycleContractsAreEnforced) {
  ScenarioConfig cfg;
  cfg.num_ues = 10;
  const Scenario s = generate_scenario(cfg, 1);
  IncrementalAllocator inc(s);
  EXPECT_THROW(inc.remove(UeId{0}), ContractViolation);     // not active
  EXPECT_THROW(inc.reattempt(UeId{0}), ContractViolation);  // not active
  inc.admit(UeId{0});
  EXPECT_THROW(inc.admit(UeId{0}), ContractViolation);  // already active
  if (inc.allocation().bs_of(UeId{0})) {
    EXPECT_THROW(inc.reattempt(UeId{0}), ContractViolation);  // served, not cloud
  }
  inc.remove(UeId{0});
  EXPECT_THROW(inc.remove(UeId{0}), ContractViolation);
}

TEST(IncrementalAllocator, CrashEvictsAndRecoverRestoresNominal) {
  ScenarioConfig cfg;
  cfg.num_ues = 200;
  const Scenario s = generate_scenario(cfg, 29);
  IncrementalAllocator inc(s);
  for (std::size_t ui = 0; ui < s.num_ues(); ++ui)
    inc.admit(UeId{static_cast<std::uint32_t>(ui)});

  // Crash the busiest BS so the eviction set is non-empty.
  BsId victim{0};
  std::size_t best = 0;
  std::vector<std::size_t> load(s.bss().size(), 0);
  for (std::size_t ui = 0; ui < s.num_ues(); ++ui)
    if (const auto b = inc.allocation().bs_of(UeId{static_cast<std::uint32_t>(ui)}))
      ++load[b->idx()];
  for (std::size_t bi = 0; bi < load.size(); ++bi)
    if (load[bi] > best) best = load[bi], victim = BsId{static_cast<std::uint32_t>(bi)};
  ASSERT_GT(best, 0u);

  std::vector<UeId> orphans;
  const std::size_t evicted = inc.crash_bs(victim, orphans);
  EXPECT_EQ(evicted, best);
  EXPECT_EQ(orphans.size(), best);
  EXPECT_FALSE(inc.capacity_nominal());
  for (const UeId u : orphans) {
    EXPECT_TRUE(inc.active(u));                     // evicted, not departed
    EXPECT_TRUE(inc.allocation().is_cloud(u));      // waiting at the cloud
  }
  for (std::size_t j = 0; j < s.num_services(); ++j)
    EXPECT_EQ(inc.state().remaining_crus(victim, ServiceId{static_cast<std::uint32_t>(j)}), 0u);
  EXPECT_EQ(inc.state().remaining_rrbs(victim), 0u);

  // Departing a UE during the outage must not leak capacity back into the
  // clamped BS (the orphan now lives at the cloud anyway).
  inc.remove(orphans[0]);

  inc.recover_bs(victim);
  EXPECT_TRUE(inc.capacity_nominal());
  // Recovered capacity is nominal minus live commitments (none here).
  const ResourceState fresh(s);
  EXPECT_EQ(inc.state().remaining_rrbs(victim), fresh.remaining_rrbs(victim));

  // Orphans re-placed via reattempt() land somewhere feasible again.
  std::size_t rehomed = 0;
  for (std::size_t k = 1; k < orphans.size(); ++k)
    if (inc.reattempt(orphans[k])) ++rehomed;
  EXPECT_GT(rehomed, 0u);
  EXPECT_TRUE(check_feasibility(s, inc.allocation()).ok);
  EXPECT_NEAR(inc.live_profit(), total_profit(s, inc.allocation()), 1e-9);
}

TEST(IncrementalAllocator, DegradeScalesRemainingAndRecoverRecounts) {
  ScenarioConfig cfg;
  cfg.num_ues = 100;
  const Scenario s = generate_scenario(cfg, 31);
  IncrementalAllocator inc(s);
  for (std::size_t ui = 0; ui < s.num_ues(); ++ui)
    inc.admit(UeId{static_cast<std::uint32_t>(ui)});
  const BsId target{0};
  const std::uint32_t rrbs_before = inc.state().remaining_rrbs(target);
  inc.degrade_bs(target, 0.5, 0.5);
  EXPECT_FALSE(inc.capacity_nominal());
  EXPECT_LE(inc.state().remaining_rrbs(target), rrbs_before / 2 + 1);
  inc.recover_bs(target);
  EXPECT_TRUE(inc.capacity_nominal());
  // Post-recovery the ledger equals a from-scratch recount: remaining =
  // nominal − commitments of the UEs still assigned there.
  ResourceState recount(s);
  recount.recount_remaining(target, inc.allocation());
  EXPECT_EQ(inc.state().remaining_rrbs(target), recount.remaining_rrbs(target));
  for (std::size_t j = 0; j < s.num_services(); ++j) {
    const ServiceId sj{static_cast<std::uint32_t>(j)};
    EXPECT_EQ(inc.state().remaining_crus(target, sj), recount.remaining_crus(target, sj));
  }
}

}  // namespace
}  // namespace dmra
